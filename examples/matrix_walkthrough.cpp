/// Interactive companion to docs/ALGORITHM.md: replays the worked
/// five-transaction history and prints the reachability matrix after
/// every step, so you can watch closure entries appear, a transaction
/// commit "into the past", and a four-edge cycle get caught by a
/// single W-bit AND.
///
///   ./build/examples/matrix_walkthrough
#include <cstdio>

#include "common/bitvector.h"
#include "core/reachability_matrix.h"

using namespace rococo;
using core::ProbeResult;
using core::ReachabilityMatrix;

namespace {

BitVector
bits(std::initializer_list<int> set_bits)
{
    BitVector v(4);
    for (int b : set_bits) v.set(static_cast<size_t>(b));
    return v;
}

void
step(ReachabilityMatrix& m, const char* story, int slot,
     std::initializer_list<int> f, std::initializer_list<int> b)
{
    std::printf("--- %s\n", story);
    const ProbeResult probe = m.probe(bits(f), bits(b));
    std::printf("probe: p=%s s=%s -> %s\n",
                probe.proceeding.to_string().c_str(),
                probe.succeeding.to_string().c_str(),
                probe.cyclic ? "CYCLE, abort" : "acyclic, commit");
    if (!probe.cyclic && slot >= 0) {
        m.insert(static_cast<size_t>(slot), probe);
        std::printf("%s", m.debug_dump().c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("ROCoCo reachability-matrix walkthrough (W = 4).\n"
                "f = forward edges (t must precede the slot), "
                "b = backward edges (slot precedes t).\n\n");

    ReachabilityMatrix m(4);
    step(m, "t0 commits: wrote x, no dependencies", 0, {}, {});
    step(m, "t1 commits: read t0's x (RAW backward edge)", 1, {}, {0});
    step(m,
         "t2 commits INTO THE PAST: read y before t1 overwrote it "
         "(forward edge to t1 — a timestamp scheme would abort here)",
         2, {1}, {});
    step(m,
         "t3 commits: read t2's z (backward) AND pre-t0 x (forward) — "
         "the closure update makes t2 reach t0 through t3",
         3, {0}, {2});
    step(m,
         "t4 validates: read t0's update (backward) and a pre-t2 "
         "version (forward). p covers every slot t4 must precede, s "
         "every slot that must precede it; they overlap -> the 4-edge "
         "cycle t4 -> t2 -> t3 -> t0 -> t4 is caught in one AND",
         -1, {2}, {0});
    return 0;
}
