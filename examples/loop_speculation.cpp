/// Speculative loop parallelization — the programming model the paper
/// targets ("This CPU-side design is specialized for speculation in
/// loop parallelization, which is the programming model used in STAMP",
/// §5.3, and "parallelizing programs with unknown dependence", §1).
///
/// The sequential loop below walks a pseudo-random chain over an array
/// and rewrites cells; iterations *may* depend on each other (when
/// chains collide) but usually do not. Each iteration becomes one
/// transaction; the TM discovers the real dependences at run time and
/// aborts only actual collisions, extracting the parallelism a static
/// compiler could not prove.
///
///   ./build/examples/loop_speculation [--threads=4] [--iters=4000]
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "tm/rococo_tm.h"

using namespace rococo;

namespace {

constexpr size_t kCells = 4096;

/// One loop iteration: follow a 4-hop chain from `start`, summing and
/// rewriting each visited cell. Written against any Tx.
uint64_t
iteration(tm::Tx& tx, tm::TmArray<uint64_t>& data, uint64_t start)
{
    uint64_t cursor = start % kCells;
    uint64_t acc = 0;
    for (int hop = 0; hop < 4; ++hop) {
        const uint64_t value = data.get(tx, cursor);
        acc += value;
        data.set(tx, cursor, value * 2654435761u + 1);
        cursor = (cursor + value) % kCells; // data-dependent next hop
    }
    return acc;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"threads", "iters"});
    const unsigned threads = static_cast<unsigned>(cli.get_int("threads", 4));
    const int iters = static_cast<int>(cli.get_int("iters", 4000));

    // Sequential reference run.
    tm::TmArray<uint64_t> reference(kCells);
    for (size_t i = 0; i < kCells; ++i) reference.set_unsafe(i, i * 7 + 1);
    {
        // The sequential loop, executed directly.
        struct DirectTx final : tm::Tx
        {
            tm::Word load(const tm::TmCell& c) override
            {
                return c.unsafe_load();
            }
            void store(tm::TmCell& c, tm::Word v) override
            {
                c.unsafe_store(v);
            }
            [[noreturn]] void retry() override
            {
                throw tm::TxAbortException{};
            }
        } tx;
        for (int i = 0; i < iters; ++i) {
            iteration(tx, reference, static_cast<uint64_t>(i) * 2971u);
        }
    }

    // Speculatively parallelized run: iterations distributed over
    // threads, each one a transaction.
    tm::TmArray<uint64_t> parallel(kCells);
    for (size_t i = 0; i < kCells; ++i) parallel.set_unsafe(i, i * 7 + 1);
    tm::RococoTm runtime;
    std::atomic<int> next_iter{0};
    std::vector<std::thread> workers;
    for (unsigned tid = 0; tid < threads; ++tid) {
        workers.emplace_back([&, tid] {
            runtime.thread_init(tid);
            for (;;) {
                const int i = next_iter.fetch_add(1);
                if (i >= iters) break;
                runtime.execute([&](tm::Tx& tx) {
                    iteration(tx, parallel,
                              static_cast<uint64_t>(i) * 2971u);
                });
            }
            runtime.thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();

    // NOTE: the speculative loop is serializable but not necessarily in
    // iteration order, so cell-exact equality with the sequential run
    // is not guaranteed — conserved aggregate properties are. We check
    // the cheapest one: every cell was rewritten the same total number
    // of times, i.e. the multiset of chain visits matches in size.
    uint64_t rewritten_seq = 0, rewritten_par = 0;
    for (size_t i = 0; i < kCells; ++i) {
        rewritten_seq += reference.get_unsafe(i) != i * 7 + 1;
        rewritten_par += parallel.get_unsafe(i) != i * 7 + 1;
    }

    const auto stats = runtime.stats();
    std::printf("iterations          : %d on %u threads\n", iters, threads);
    std::printf("commits / aborts    : %llu / %llu\n",
                static_cast<unsigned long long>(stats.get("commits")),
                static_cast<unsigned long long>(stats.get("aborts")));
    std::printf("cells touched (seq) : %llu\n",
                static_cast<unsigned long long>(rewritten_seq));
    std::printf("cells touched (par) : %llu\n",
                static_cast<unsigned long long>(rewritten_par));
    std::printf("every iteration ran atomically; true dependences were "
                "resolved by aborts, not by a conservative schedule.\n");
    return 0;
}
