/// Trace workflow tool: generate synthetic traces, save/load them in
/// the plain-text format, and replay a saved trace under every CC
/// algorithm. The intended loop for a downstream user:
///
///   # produce a reproducer
///   ./build/examples/trace_tool --generate=/tmp/hot.trace --skew=1.1
///   # analyse it (here, or in a bug report, or in CI)
///   ./build/examples/trace_tool --replay=/tmp/hot.trace --threads=16
#include <cstdio>

#include "cc/nongreedy.h"
#include "cc/replay.h"
#include "cc/rococo_cc.h"
#include "cc/snapshot_isolation.h"
#include "cc/tocc.h"
#include "cc/trace_generator.h"
#include "cc/trace_io.h"
#include "cc/two_phase_locking.h"
#include "common/cli.h"
#include "common/table.h"
#include "obs/telemetry.h"

using namespace rococo;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv,
            {"generate", "replay", "txns", "accesses", "skew", "seed",
             "threads", "window", "batch", "telemetry-out"});
    // Records the cc.* replay counters; spans come from the real-thread
    // runtimes, so a trace_tool telemetry file is metrics-only.
    obs::TelemetrySession telemetry(cli.get("telemetry-out", ""));

    if (cli.has("generate")) {
        const std::string path = cli.get("generate", "");
        cc::Trace trace;
        const double skew = cli.get_double("skew", 0.0);
        if (skew > 0) {
            cc::SkewedTraceParams params;
            params.txns = static_cast<size_t>(cli.get_int("txns", 500));
            params.accesses =
                static_cast<unsigned>(cli.get_int("accesses", 12));
            params.theta = skew;
            params.seed = static_cast<uint64_t>(cli.get_int("seed", 1));
            trace = cc::generate_skewed_trace(params);
        } else {
            cc::UniformTraceParams params;
            params.txns = static_cast<size_t>(cli.get_int("txns", 500));
            params.accesses =
                static_cast<unsigned>(cli.get_int("accesses", 12));
            params.seed = static_cast<uint64_t>(cli.get_int("seed", 1));
            trace = cc::generate_uniform_trace(params);
        }
        if (!cc::save_trace_file(path, trace)) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        std::printf("wrote %zu transactions to %s\n", trace.size(),
                    path.c_str());
        return 0;
    }

    if (!cli.has("replay")) {
        std::fprintf(stderr,
                     "usage: trace_tool --generate=<path> [--txns --accesses"
                     " --skew --seed]\n"
                     "       trace_tool --replay=<path> [--threads --window"
                     " --batch]\n");
        return 2;
    }

    const std::string path = cli.get("replay", "");
    auto trace = cc::load_trace_file(path);
    if (!trace) {
        std::fprintf(stderr, "cannot parse %s\n", path.c_str());
        return 1;
    }
    const int threads = static_cast<int>(cli.get_int("threads", 16));
    const size_t window = static_cast<size_t>(cli.get_int("window", 64));
    const size_t batch = static_cast<size_t>(cli.get_int("batch", 4));

    std::printf("%s: %zu transactions, %d-way concurrency\n\n",
                path.c_str(), trace->size(), threads);
    Table table({"algorithm", "commits", "aborts", "abort rate",
                 "serializable"});

    cc::TwoPhaseLocking tpl;
    cc::Tocc tocc;
    cc::SnapshotIsolation si;
    cc::RococoCc rococo(window);
    for (cc::CcAlgorithm* algorithm :
         std::initializer_list<cc::CcAlgorithm*>{&tpl, &tocc, &si,
                                                 &rococo}) {
        const auto result = cc::replay(*algorithm, *trace, threads);
        const auto check =
            cc::check_history(*trace, result.committed, threads);
        table.row()
            .cell(algorithm->name())
            .num(result.commit_count)
            .num(result.abort_count)
            .num(result.abort_rate(), 3)
            .cell(check.serializable ? "yes" : "NO");
    }
    const auto batched = cc::batch_replay(*trace, threads, batch, window);
    table.row()
        .cell("ROCoCo-batch" + std::to_string(batch))
        .num(batched.commit_count)
        .num(batched.abort_count)
        .num(batched.abort_rate(), 3)
        .cell(cc::check_history_ordered(*trace, batched.committed, threads,
                                        batched.commit_seq)
                      .serializable
                  ? "yes"
                  : "NO");
    table.print();
    return telemetry.finish() ? 0 : 1;
}
