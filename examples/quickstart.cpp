/// Quickstart: the classic bank-transfer example on ROCoCoTM.
///
/// Shows the core API surface:
///   * shared state in TmVar/TmArray cells,
///   * TmRuntime::execute running a lambda transactionally (retried
///     until it commits),
///   * worker-thread lifecycle (thread_init / thread_fini),
///   * runtime statistics, including the FPGA-side verdict counters.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart [--threads=4] [--transfers=2000]
#include <cstdio>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "tm/rococo_tm.h"

int
main(int argc, char** argv)
{
    rococo::Cli cli(argc, argv, {"threads", "transfers", "accounts"});
    const unsigned threads =
        static_cast<unsigned>(cli.get_int("threads", 4));
    const int transfers = static_cast<int>(cli.get_int("transfers", 2000));
    const size_t accounts =
        static_cast<size_t>(cli.get_int("accounts", 64));

    // 1. Shared transactional state. Cells are ordinary objects; the
    //    runtime never needs to know about them up front.
    constexpr int64_t kInitialBalance = 1000;
    rococo::tm::TmArray<int64_t> bank(accounts);
    for (size_t i = 0; i < accounts; ++i) {
        bank.set_unsafe(i, kInitialBalance);
    }

    // 2. The runtime: ROCoCoTM with its default HARP2-like
    //    configuration (W = 64 sliding window, 512-bit signatures, a
    //    software-modelled FPGA validation pipeline).
    rococo::tm::RococoTm runtime;

    // 3. Worker threads move money in transactions. A transaction
    //    body may run several times (on aborts), so it must be free of
    //    irrevocable side effects.
    std::vector<std::thread> workers;
    for (unsigned tid = 0; tid < threads; ++tid) {
        workers.emplace_back([&, tid] {
            runtime.thread_init(tid);
            rococo::Xoshiro256 rng(2024 + tid);
            for (int i = 0; i < transfers; ++i) {
                const size_t from = rng.below(accounts);
                const size_t to = rng.below(accounts);
                const auto amount = static_cast<int64_t>(1 + rng.below(100));
                if (from == to) continue;
                runtime.execute([&](rococo::tm::Tx& tx) {
                    bank.set(tx, from, bank.get(tx, from) - amount);
                    bank.set(tx, to, bank.get(tx, to) + amount);
                });
            }
            runtime.thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();

    // 4. Verify and report.
    int64_t total = 0;
    for (size_t i = 0; i < accounts; ++i) total += bank.get_unsafe(i);
    const auto stats = runtime.stats();
    const auto fpga = runtime.fpga_stats();

    std::printf("threads             : %u\n", threads);
    std::printf("total balance       : %lld (expected %lld) %s\n",
                static_cast<long long>(total),
                static_cast<long long>(accounts * kInitialBalance),
                total == static_cast<int64_t>(accounts) * kInitialBalance
                    ? "OK"
                    : "BROKEN");
    std::printf("commits             : %llu\n",
                static_cast<unsigned long long>(stats.get("commits")));
    std::printf("aborts              : %llu\n",
                static_cast<unsigned long long>(stats.get("aborts")));
    std::printf("validated on 'FPGA' : %llu commits, %llu cycle aborts\n",
                static_cast<unsigned long long>(fpga.get("commit")),
                static_cast<unsigned long long>(fpga.get("abort-cycle")));
    return total == static_cast<int64_t>(accounts) * kInitialBalance ? 0 : 1;
}
