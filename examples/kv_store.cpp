/// A transactional key-value store exercised on every runtime in the
/// library: ROCoCoTM, the TinySTM-like LSA baseline, the simulated
/// TSX HTM, and the global-lock reference.
///
/// Demonstrates: transactional containers (TxMap), multi-key
/// transactions (atomic multi-put / consistent multi-get), runtime
/// interchangeability behind the TmRuntime interface, and per-runtime
/// statistics. On this container's single core the wall-clock numbers
/// are not a scalability statement — see bench/fig10_stamp for
/// modelled scaling.
///
///   ./build/examples/kv_store [--threads=4] [--ops=3000]
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/global_lock_tm.h"
#include "baselines/htm_tsx.h"
#include "baselines/tinystm_lsa.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "stamp/containers/tx_map.h"
#include "tm/rococo_tm.h"

using namespace rococo;

namespace {

struct RunStats
{
    double seconds = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    bool consistent = false;
};

/// Each operation touches two keys atomically: a "document" and its
/// reverse-index entry must always agree.
RunStats
run_store(tm::TmRuntime& runtime, unsigned threads, int ops_per_thread,
          uint64_t keys)
{
    stamp::TxMap documents(keys * 4 + 1024);
    stamp::TxMap index(keys * 4 + 1024);

    std::vector<std::thread> workers;
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned tid = 0; tid < threads; ++tid) {
        workers.emplace_back([&, tid] {
            runtime.thread_init(tid);
            Xoshiro256 rng(99 + tid);
            for (int i = 0; i < ops_per_thread; ++i) {
                const uint64_t key = rng.below(keys);
                const uint64_t version = rng();
                if (rng.chance(0.5)) {
                    // Atomic two-table upsert.
                    runtime.execute([&](tm::Tx& tx) {
                        documents.put(tx, key, version);
                        index.put(tx, version % keys, key);
                    });
                } else {
                    // Consistent read of both tables.
                    runtime.execute([&](tm::Tx& tx) {
                        auto doc = documents.find(tx, key);
                        if (doc) index.find(tx, *doc % keys);
                    });
                }
            }
            runtime.thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();
    const auto t1 = std::chrono::steady_clock::now();

    RunStats out;
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.commits = runtime.stats().get("commits");
    out.aborts = runtime.stats().get("aborts");
    // Consistency: every document's index entry exists.
    out.consistent = true;
    documents.unsafe_for_each([&](uint64_t, uint64_t version) {
        bool found = false;
        index.unsafe_for_each([&](uint64_t ikey, uint64_t) {
            found |= ikey == version % keys;
        });
        out.consistent &= found;
    });
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"threads", "ops", "keys"});
    const unsigned threads = static_cast<unsigned>(cli.get_int("threads", 4));
    const int ops = static_cast<int>(cli.get_int("ops", 1500));
    const uint64_t keys = static_cast<uint64_t>(cli.get_int("keys", 256));

    Table table({"runtime", "seconds", "commits", "aborts", "consistent"});
    for (const char* which : {"rococo", "tinystm", "htm", "lock"}) {
        std::unique_ptr<tm::TmRuntime> runtime;
        if (std::string(which) == "rococo") {
            runtime = std::make_unique<tm::RococoTm>();
        } else if (std::string(which) == "tinystm") {
            runtime = std::make_unique<baselines::TinyStmLsa>();
        } else if (std::string(which) == "htm") {
            runtime = std::make_unique<baselines::HtmTsxSim>();
        } else {
            runtime = std::make_unique<baselines::GlobalLockTm>();
        }
        const RunStats stats = run_store(*runtime, threads, ops, keys);
        table.row()
            .cell(runtime->name())
            .num(stats.seconds, 3)
            .num(stats.commits)
            .num(stats.aborts)
            .cell(stats.consistent ? "yes" : "NO");
    }
    table.print();
    return 0;
}
