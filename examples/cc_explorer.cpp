/// Concurrency-control explorer: generate a synthetic transaction
/// trace, replay it under 2PL, TOCC, SI and ROCoCo, check
/// serializability with the oracle, and demonstrate the phantom
/// ordering of §3.1 on a concrete three-transaction history.
///
///   ./build/examples/cc_explorer [--txns=500] [--accesses=12]
///                                [--threads=8] [--skew=0]
#include <cstdio>

#include "cc/replay.h"
#include "cc/rococo_cc.h"
#include "cc/snapshot_isolation.h"
#include "cc/tocc.h"
#include "cc/trace_generator.h"
#include "cc/two_phase_locking.h"
#include "common/cli.h"
#include "common/table.h"

using namespace rococo;

namespace {

void
phantom_ordering_demo()
{
    std::printf("--- Phantom ordering (Fig. 2 (b)) ---\n");
    std::printf("t2 writes x; t3 (snapshot older than t2) reads the old "
                "x and writes w; t1 reads both.\n");

    cc::Trace trace;
    trace.num_locations = 8;
    trace.txns.push_back({{}, {0}});     // t2: W(x)
    trace.txns.push_back({{0, 2}, {3}}); // t3: R(x old) R(z) W(w)
    trace.txns.push_back({{3}, {4}});    // t1: R(w) W(v)
    trace.normalize();

    cc::Tocc tocc;
    const auto tocc_result = cc::replay(tocc, trace, 2);
    cc::RococoCc rococo(64);
    const auto rococo_result = cc::replay(rococo, trace, 2);

    std::printf("TOCC   commits: t2=%d t3=%d t1=%d  (timestamps forbid "
                "ordering t3 before the already-committed t2)\n",
                tocc_result.committed[0], tocc_result.committed[1],
                tocc_result.committed[2]);
    std::printf("ROCoCo commits: t2=%d t3=%d t1=%d\n",
                rococo_result.committed[0], rococo_result.committed[1],
                rococo_result.committed[2]);

    const auto check = cc::check_history(trace, rococo_result.committed, 2);
    std::printf("ROCoCo history serializable: %s; witness serial order:",
                check.serializable ? "yes" : "NO");
    for (size_t v : check.witness_order) {
        if (rococo_result.committed[v]) {
            std::printf(" t%d", v == 0 ? 2 : (v == 1 ? 3 : 1));
        }
    }
    std::printf("  <- t3 is serialized BEFORE t2 although it committed "
                "later: the reordering TOCC's phantom ordering forbids.\n\n");
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"txns", "accesses", "threads", "skew", "seed"});
    cc::Trace trace;
    const int threads = static_cast<int>(cli.get_int("threads", 8));
    const double skew = cli.get_double("skew", 0.0);
    if (skew > 0) {
        cc::SkewedTraceParams params;
        params.txns = static_cast<size_t>(cli.get_int("txns", 500));
        params.accesses = static_cast<unsigned>(cli.get_int("accesses", 12));
        params.theta = skew;
        params.seed = static_cast<uint64_t>(cli.get_int("seed", 1));
        trace = cc::generate_skewed_trace(params);
    } else {
        cc::UniformTraceParams params;
        params.txns = static_cast<size_t>(cli.get_int("txns", 500));
        params.accesses = static_cast<unsigned>(cli.get_int("accesses", 12));
        params.seed = static_cast<uint64_t>(cli.get_int("seed", 1));
        trace = cc::generate_uniform_trace(params);
    }

    phantom_ordering_demo();

    std::printf("--- Replay of %zu transactions, %d-way concurrency ---\n",
                trace.size(), threads);
    Table table({"algorithm", "commits", "aborts", "abort rate",
                 "serializable"});

    cc::TwoPhaseLocking tpl;
    cc::Tocc tocc;
    cc::SnapshotIsolation si;
    cc::RococoCc rococo(64);
    for (cc::CcAlgorithm* algorithm :
         std::initializer_list<cc::CcAlgorithm*>{&tpl, &tocc, &si,
                                                 &rococo}) {
        const auto result = cc::replay(*algorithm, trace, threads);
        const auto check =
            cc::check_history(trace, result.committed, threads);
        table.row()
            .cell(algorithm->name())
            .num(result.commit_count)
            .num(result.abort_count)
            .num(result.abort_rate(), 3)
            .cell(check.serializable ? "yes" : "NO (anomaly admitted)");
    }
    table.print();
    std::printf(
        "\nROCoCo aborts the least (Fig. 9) — often even less than SI, "
        "which needlessly aborts write-write conflicts "
        "(first-committer-wins) yet still admits the write-skew "
        "anomaly the oracle flags above.\n");
    return 0;
}
