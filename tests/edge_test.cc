/// Edge-case battery across modules: boundary sizes, error paths,
/// death tests on contract violations, and behaviours too small to
/// warrant their own file.
#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "common/cli.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/reachability_matrix.h"
#include "core/sliding_window.h"
#include "fpga/detector.h"
#include "fpga/resource_model.h"
#include "fpga/validation_engine.h"
#include "sig/bloom_signature.h"
#include "stamp/containers/node_pool.h"
#include "tm/redo_log.h"
#include "tm/tm.h"

namespace rococo {
namespace {

TEST(BitVectorEdge, SingleBitVector)
{
    BitVector v(1);
    EXPECT_EQ(v.find_first(), 1u);
    v.set(0);
    EXPECT_EQ(v.find_first(), 0u);
    EXPECT_EQ(v.find_next(0), 1u);
    EXPECT_EQ(v.count(), 1u);
}

TEST(BitVectorEdge, ExactWordBoundary)
{
    BitVector v(64);
    v.set(63);
    EXPECT_EQ(v.find_first(), 63u);
    EXPECT_EQ(v.find_next(63), 64u);
    BitVector w(128);
    w.set(64);
    EXPECT_EQ(w.find_first(), 64u);
    EXPECT_EQ(w.find_next(64), 128u);
}

TEST(HistogramEdge, SingleSampleQuantiles)
{
    Histogram h(0, 10, 5);
    h.add(3.0);
    EXPECT_GT(h.quantile(0.99), 0.0);
    EXPECT_LE(h.quantile(0.99), 10.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(HistogramEdge, EmptyQuantileIsLowerBound)
{
    Histogram h(5, 10, 5);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(TableEdge, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.row().cell("only-one");
    const std::string out = t.to_string();
    EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(RngEdge, BelowOneIsAlwaysZero)
{
    Xoshiro256 rng(1);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(ReachabilityMatrixEdge, SingleSlotWindow)
{
    core::ReachabilityMatrix m(1);
    m.insert(0, m.probe(BitVector(1), BitVector(1)));
    EXPECT_TRUE(m.reaches(0, 0));
    BitVector f(1), b(1);
    f.set(0);
    b.set(0);
    EXPECT_TRUE(m.probe(f, b).cyclic);
    m.clear_slot(0);
    EXPECT_TRUE(m.occupied().none());
}

TEST(ReachabilityMatrixEdge, InsertIntoOccupiedSlotDies)
{
    core::ReachabilityMatrix m(2);
    m.insert(0, m.probe(BitVector(2), BitVector(2)));
    const auto probe = m.probe(BitVector(2), BitVector(2));
    EXPECT_DEATH(m.insert(0, probe), "");
}

TEST(SlidingWindowEdge, FullWindowKeepsRolling)
{
    core::SlidingWindowValidator v(2);
    for (int i = 0; i < 50; ++i) {
        core::ValidationRequest req;
        if (v.next_cid() > v.window_start()) {
            req.backward.push_back(v.next_cid() - 1);
        }
        ASSERT_EQ(v.validate_and_commit(req).verdict,
                  core::Verdict::kCommit)
            << "iteration " << i;
    }
    EXPECT_EQ(v.occupancy(), 2u);
    EXPECT_EQ(v.window_start(), 48u);
}

TEST(DetectorEdge, HistoryStartTracksEviction)
{
    auto cfg = std::make_shared<const sig::SignatureConfig>(512, 4);
    fpga::ConflictDetector detector(2, cfg);
    for (uint64_t cid = 0; cid < 5; ++cid) {
        detector.record_commit(cid, {{}, {cid}, cid});
    }
    EXPECT_EQ(detector.history_size(), 2u);
    EXPECT_EQ(detector.history_start(), 3u);
}

TEST(EngineEdge, StrictReadOnlyValidatesReaders)
{
    fpga::EngineConfig config;
    config.strict_read_only = true;
    fpga::ValidationEngine engine(config);
    ASSERT_EQ(engine.process({{}, {1}, 0}).verdict,
              core::Verdict::kCommit);
    // A strict read-only transaction consumes a cid.
    ASSERT_EQ(engine.process({{1}, {}, 1}).verdict,
              core::Verdict::kCommit);
    EXPECT_EQ(engine.next_cid(), 2u);
}

TEST(EngineEdge, VerdictNames)
{
    EXPECT_STREQ(core::to_string(core::Verdict::kCommit), "commit");
    EXPECT_STREQ(core::to_string(core::Verdict::kAbortCycle),
                 "abort-cycle");
    EXPECT_STREQ(core::to_string(core::Verdict::kWindowOverflow),
                 "window-overflow");
}

TEST(ResourceModelEdge, CustomDeviceChangesUtilizationOnly)
{
    fpga::DeviceCapacity big;
    big.alms = 2 * 427200;
    const auto normal = fpga::estimate_resources({});
    const auto scaled = fpga::estimate_resources({}, big);
    EXPECT_EQ(normal.alms, scaled.alms);
    EXPECT_NEAR(scaled.alms_pct, normal.alms_pct / 2, 0.01);
}

TEST(NodePoolEdge, ExhaustionDies)
{
    stamp::NodePool<2> pool(4);
    EXPECT_EQ(pool.alloc(), 1u);
    EXPECT_EQ(pool.alloc(), 2u);
    EXPECT_EQ(pool.alloc(), 3u);
    EXPECT_DEATH(pool.alloc(), "");
}

TEST(NodePoolEdge, FieldsAreIndependent)
{
    stamp::NodePool<3> pool(8);
    const uint64_t a = pool.alloc();
    const uint64_t b = pool.alloc();
    pool.field(a, 0).unsafe_store(1);
    pool.field(a, 2).unsafe_store(3);
    pool.field(b, 0).unsafe_store(100);
    EXPECT_EQ(pool.field(a, 0).unsafe_load(), 1u);
    EXPECT_EQ(pool.field(a, 1).unsafe_load(), 0u);
    EXPECT_EQ(pool.field(a, 2).unsafe_load(), 3u);
    EXPECT_EQ(pool.field(b, 0).unsafe_load(), 100u);
}

TEST(RedoLogEdge, ManyCollidingCells)
{
    // Adjacent cells stress the open-addressing probe chains.
    tm::RedoLog log;
    std::vector<tm::TmCell> cells(1000);
    for (int round = 0; round < 3; ++round) {
        log.clear();
        for (size_t i = 0; i < cells.size(); ++i) {
            log.put(&cells[i], i * 3 + round);
        }
        EXPECT_EQ(log.size(), cells.size());
        tm::Word v = 0;
        ASSERT_TRUE(log.get(&cells[999], v));
        EXPECT_EQ(v, 999 * 3 + static_cast<uint64_t>(round));
    }
}

TEST(BloomEdge, MinimumGeometry)
{
    auto cfg = std::make_shared<const sig::SignatureConfig>(64, 1);
    sig::BloomSignature s(cfg);
    s.insert(42);
    EXPECT_TRUE(s.query(42));
    EXPECT_EQ(s.popcount(), 1u);
}

TEST(BloomEdge, PartitionSmallerThanWord)
{
    // 4 partitions of 32 bits each: the per-partition intersection
    // path that scans bits rather than whole words.
    auto cfg = std::make_shared<const sig::SignatureConfig>(128, 4);
    sig::BloomSignature a(cfg), b(cfg);
    a.insert(7);
    b.insert(7);
    EXPECT_TRUE(a.intersects_all_partitions(b));
    sig::BloomSignature c(cfg);
    c.insert(8);
    // A single differing element rarely matches all four partitions.
    EXPECT_TRUE(!a.intersects_all_partitions(c) || a.intersects(c));
}

} // namespace
} // namespace rococo

namespace rococo {
namespace {

TEST(TmVarTyped, RoundTripsNegativeAndFloating)
{
    tm::TmVar<int64_t> i(-42);
    EXPECT_EQ(i.get_unsafe(), -42);
    tm::TmVar<double> d(3.25);
    EXPECT_DOUBLE_EQ(d.get_unsafe(), 3.25);
    d.set_unsafe(-0.5);
    EXPECT_DOUBLE_EQ(d.get_unsafe(), -0.5);
    tm::TmVar<uint32_t> u(0xdeadbeef);
    EXPECT_EQ(u.get_unsafe(), 0xdeadbeefu);
    tm::TmVar<bool> b(true);
    EXPECT_TRUE(b.get_unsafe());
}

TEST(CliEdge, UnknownFlagExits)
{
    const char* argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT(
        { Cli cli(2, const_cast<char**>(argv), {"known"}); },
        ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(CliEdge, PositionalArgumentExits)
{
    const char* argv[] = {"prog", "stray"};
    EXPECT_EXIT(
        { Cli cli(2, const_cast<char**>(argv), {"known"}); },
        ::testing::ExitedWithCode(2), "positional");
}

} // namespace
} // namespace rococo
