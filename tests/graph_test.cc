/// Unit and property tests for src/graph: transitive closure, cycle
/// detection, topological sort, interval orders and the
/// serializability oracle.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/cycle.h"
#include "graph/dependency_graph.h"
#include "graph/interval_order.h"
#include "graph/serializability.h"
#include "graph/topo_sort.h"
#include "graph/transitive_closure.h"

namespace rococo::graph {
namespace {

/// Reference reachability by BFS, for checking Warshall.
bool
bfs_reaches(const DependencyGraph& g, size_t from, size_t to)
{
    std::vector<char> seen(g.vertex_count(), 0);
    std::vector<size_t> stack{from};
    seen[from] = 1;
    while (!stack.empty()) {
        const size_t v = stack.back();
        stack.pop_back();
        for (size_t s : g.successors(v)) {
            if (s == to) return true;
            if (!seen[s]) {
                seen[s] = 1;
                stack.push_back(s);
            }
        }
    }
    return false;
}

DependencyGraph
random_graph(Xoshiro256& rng, size_t n, size_t edges, bool dag)
{
    DependencyGraph g(n);
    for (size_t e = 0; e < edges; ++e) {
        size_t a = rng.below(n), b = rng.below(n);
        if (a == b) continue;
        if (dag && a > b) std::swap(a, b); // forward edges only: acyclic
        g.add_edge(a, b);
    }
    return g;
}

TEST(DependencyGraph, EdgesAndAdjacency)
{
    DependencyGraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    EXPECT_EQ(g.edge_count(), 2u);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_FALSE(g.has_edge(1, 0));
    EXPECT_EQ(g.predecessors(2).size(), 1u);
    EXPECT_EQ(g.add_vertex(), 3u);
    EXPECT_EQ(g.vertex_count(), 4u);
}

TEST(Warshall, MatchesBfsOnRandomGraphs)
{
    Xoshiro256 rng(7);
    for (int round = 0; round < 20; ++round) {
        const size_t n = 2 + rng.below(15);
        const DependencyGraph g =
            random_graph(rng, n, rng.below(3 * n), /*dag=*/false);
        const BitMatrix closure = warshall_closure(g, /*reflexive=*/false);
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < n; ++j) {
                if (i == j) continue;
                EXPECT_EQ(closure.test(i, j), bfs_reaches(g, i, j))
                    << "round " << round << " " << i << "->" << j;
            }
        }
    }
}

TEST(Warshall, ReflexiveDiagonal)
{
    DependencyGraph g(4);
    g.add_edge(0, 1);
    const BitMatrix r = warshall_closure(g, /*reflexive=*/true);
    for (size_t i = 0; i < 4; ++i) EXPECT_TRUE(r.test(i, i));
}

TEST(Warshall, ExtendVectorsMatchRecomputation)
{
    // Incrementally adding a vertex via closure_extend_vectors must
    // match recomputing the closure from scratch.
    Xoshiro256 rng(13);
    for (int round = 0; round < 20; ++round) {
        const size_t n = 2 + rng.below(10);
        DependencyGraph g = random_graph(rng, n, 2 * n, /*dag=*/true);
        const BitMatrix closure = warshall_closure(g, /*reflexive=*/true);

        // New vertex with random forward/backward direct edges.
        BitVector f(n), b(n);
        for (size_t i = 0; i < n; ++i) {
            if (rng.chance(0.2)) f.set(i);
            if (rng.chance(0.2)) b.set(i);
        }
        BitVector p(n), s(n);
        closure_extend_vectors(closure, f, b, p, s);

        // Oracle: add vertex n with edges n->i (f) and i->n (b).
        DependencyGraph g2(n + 1);
        for (const auto& [from, to] : g.edges()) g2.add_edge(from, to);
        for (size_t i = 0; i < n; ++i) {
            if (f.test(i)) g2.add_edge(n, i);
            if (b.test(i)) g2.add_edge(i, n);
        }
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(p.test(i), bfs_reaches(g2, n, i)) << "p " << i;
            EXPECT_EQ(s.test(i), bfs_reaches(g2, i, n)) << "s " << i;
        }
    }
}

TEST(Cycle, DetectsSimpleCycle)
{
    DependencyGraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    EXPECT_FALSE(has_cycle(g));
    g.add_edge(2, 0);
    EXPECT_TRUE(has_cycle(g));
    const auto cycle = find_cycle(g);
    ASSERT_TRUE(cycle.has_value());
    EXPECT_EQ(cycle->front(), cycle->back());
    EXPECT_GE(cycle->size(), 3u);
}

TEST(Cycle, SelfLoop)
{
    DependencyGraph g(2);
    g.add_edge(1, 1);
    EXPECT_TRUE(has_cycle(g));
}

TEST(Cycle, RandomDagsAreAcyclic)
{
    Xoshiro256 rng(21);
    for (int round = 0; round < 30; ++round) {
        const size_t n = 2 + rng.below(20);
        const DependencyGraph g = random_graph(rng, n, 3 * n, /*dag=*/true);
        EXPECT_FALSE(has_cycle(g));
    }
}

TEST(Cycle, FoundCycleIsRealCycle)
{
    Xoshiro256 rng(22);
    int cyclic_found = 0;
    for (int round = 0; round < 40; ++round) {
        const size_t n = 3 + rng.below(10);
        const DependencyGraph g =
            random_graph(rng, n, 3 * n, /*dag=*/false);
        const auto cycle = find_cycle(g);
        if (!cycle) continue;
        ++cyclic_found;
        ASSERT_GE(cycle->size(), 2u);
        EXPECT_EQ(cycle->front(), cycle->back());
        for (size_t i = 0; i + 1 < cycle->size(); ++i) {
            EXPECT_TRUE(g.has_edge((*cycle)[i], (*cycle)[i + 1]))
                << "edge " << (*cycle)[i] << "->" << (*cycle)[i + 1];
        }
    }
    EXPECT_GT(cyclic_found, 0);
}

TEST(TopoSort, OrdersDag)
{
    DependencyGraph g(4);
    g.add_edge(3, 1);
    g.add_edge(1, 0);
    g.add_edge(3, 2);
    const auto order = topological_sort(g);
    ASSERT_TRUE(order.has_value());
    EXPECT_TRUE(is_topological_order(g, *order));
}

TEST(TopoSort, RejectsCycle)
{
    DependencyGraph g(2);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    EXPECT_FALSE(topological_sort(g).has_value());
}

TEST(TopoSort, PropertyOnRandomDags)
{
    Xoshiro256 rng(5);
    for (int round = 0; round < 30; ++round) {
        const size_t n = 2 + rng.below(25);
        const DependencyGraph g = random_graph(rng, n, 2 * n, /*dag=*/true);
        const auto order = topological_sort(g);
        ASSERT_TRUE(order.has_value());
        EXPECT_TRUE(is_topological_order(g, *order));
    }
}

TEST(TopoSort, ValidatorRejectsBadOrders)
{
    DependencyGraph g(3);
    g.add_edge(0, 1);
    EXPECT_FALSE(is_topological_order(g, {1, 0, 2}));
    EXPECT_FALSE(is_topological_order(g, {0, 1}));     // wrong size
    EXPECT_FALSE(is_topological_order(g, {0, 0, 1}));  // not a permutation
    EXPECT_TRUE(is_topological_order(g, {2, 0, 1}));
}

TEST(IntervalOrder, ChainIsIntervalOrder)
{
    DependencyGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    EXPECT_TRUE(is_interval_order(g));
}

TEST(IntervalOrder, AntichainIsIntervalOrder)
{
    DependencyGraph g(5); // no relations at all
    EXPECT_TRUE(is_interval_order(g));
}

TEST(IntervalOrder, TwoPlusTwoIsNot)
{
    // The Fig. 3 (b) pattern: t1->t2 and t3->t4, nothing across.
    DependencyGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    EXPECT_FALSE(is_interval_order(g));
    const auto witness =
        find_two_plus_two(warshall_closure(g, /*reflexive=*/false));
    ASSERT_TRUE(witness.has_value());
}

TEST(IntervalOrder, RealTimeOrdersAreIntervalOrders)
{
    // Property (the paper's §3.2 argument): precedence of real
    // intervals is always an interval order.
    Xoshiro256 rng(17);
    for (int round = 0; round < 20; ++round) {
        const size_t n = 4 + rng.below(8);
        std::vector<std::pair<uint64_t, uint64_t>> intervals;
        for (size_t i = 0; i < n; ++i) {
            const uint64_t start = rng.below(50);
            intervals.push_back({start, start + 1 + rng.below(20)});
        }
        DependencyGraph g(n);
        for (size_t a = 0; a < n; ++a) {
            for (size_t b = 0; b < n; ++b) {
                if (a != b && intervals[a].second < intervals[b].first) {
                    g.add_edge(a, b);
                }
            }
        }
        EXPECT_TRUE(is_interval_order(g)) << "round " << round;
    }
}

TEST(Serializability, WitnessOrCycle)
{
    DependencyGraph acyclic(3);
    acyclic.add_edge(2, 0);
    acyclic.add_edge(0, 1);
    const auto ok = check_serializability(acyclic);
    EXPECT_TRUE(ok.serializable);
    EXPECT_TRUE(is_topological_order(acyclic, ok.witness_order));

    DependencyGraph cyclic(2);
    cyclic.add_edge(0, 1);
    cyclic.add_edge(1, 0);
    const auto bad = check_serializability(cyclic);
    EXPECT_FALSE(bad.serializable);
    EXPECT_FALSE(bad.cycle.empty());
}

TEST(Serializability, RealTimeRespect)
{
    const std::vector<TxInterval> intervals = {{0, 10}, {20, 30}, {5, 25}};
    // 0 ends before 1 starts: 0 must precede 1 in any strict witness.
    EXPECT_TRUE(respects_real_time({0, 2, 1}, intervals));
    EXPECT_TRUE(respects_real_time({0, 1, 2}, intervals));
    EXPECT_FALSE(respects_real_time({1, 0, 2}, intervals));
}

} // namespace
} // namespace rococo::graph
