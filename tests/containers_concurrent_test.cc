/// Concurrent stress tests for the transactional containers on
/// ROCoCoTM and TinySTM: linearizable effects under real threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baselines/tinystm_lsa.h"
#include "common/rng.h"
#include "stamp/containers/tx_bitmap.h"
#include "stamp/containers/tx_hashtable.h"
#include "stamp/containers/tx_heap.h"
#include "tm/rococo_tm.h"

namespace rococo::stamp {
namespace {

template <typename F>
void
run_threads(tm::TmRuntime& rt, unsigned threads, F&& body)
{
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            rt.thread_init(t);
            body(t);
            rt.thread_fini();
        });
    }
    for (auto& w : workers) w.join();
}

TEST(TxHeapConcurrent, PushPopConservesMultiset)
{
    TxHeap heap(2048);
    tm::RococoTm rt;
    constexpr unsigned kThreads = 4;
    constexpr int kPerThread = 100;
    std::atomic<uint64_t> pushed_sum{0}, popped_sum{0};
    std::atomic<int> popped_count{0};
    run_threads(rt, kThreads, [&](unsigned tid) {
        Xoshiro256 rng(tid);
        for (int i = 0; i < kPerThread; ++i) {
            const uint64_t key = 1 + rng.below(1000);
            rt.execute([&](tm::Tx& tx) { heap.push(tx, key); });
            pushed_sum.fetch_add(key);
            if (i % 2 == 1) {
                std::optional<uint64_t> top;
                rt.execute([&](tm::Tx& tx) { top = heap.pop(tx); });
                if (top) {
                    popped_sum.fetch_add(*top);
                    popped_count.fetch_add(1);
                }
            }
        }
    });
    // Drain the rest single-threaded and check conservation.
    rt.thread_init(0);
    for (;;) {
        std::optional<uint64_t> top;
        rt.execute([&](tm::Tx& tx) { top = heap.pop(tx); });
        if (!top) break;
        popped_sum.fetch_add(*top);
        popped_count.fetch_add(1);
    }
    rt.thread_fini();
    EXPECT_EQ(popped_count.load(), int(kThreads) * kPerThread);
    EXPECT_EQ(popped_sum.load(), pushed_sum.load());
}

TEST(TxBitmapConcurrent, EachBitClaimedOnce)
{
    TxBitmap bitmap(512);
    tm::RococoTm rt;
    std::atomic<int> claims{0};
    run_threads(rt, 4, [&](unsigned tid) {
        Xoshiro256 rng(50 + tid);
        for (int i = 0; i < 300; ++i) {
            const uint64_t bit = rng.below(512);
            bool claimed = false;
            rt.execute([&](tm::Tx& tx) { claimed = bitmap.set(tx, bit); });
            if (claimed) claims.fetch_add(1);
        }
    });
    EXPECT_EQ(bitmap.unsafe_count(), static_cast<uint64_t>(claims.load()))
        << "a bit was claimed twice or lost";
}

TEST(TxHashTableConcurrent, DisjointInsertsOnTinyStm)
{
    TxHashTable table(64, 4096);
    baselines::TinyStmLsa rt;
    constexpr unsigned kThreads = 4;
    constexpr uint64_t kPerThread = 150;
    run_threads(rt, kThreads, [&](unsigned tid) {
        for (uint64_t i = 0; i < kPerThread; ++i) {
            const uint64_t key = tid * 10000 + i;
            rt.execute([&](tm::Tx& tx) { table.insert(tx, key, key); });
        }
    });
    EXPECT_EQ(table.unsafe_size(), kThreads * kPerThread);
}

TEST(TxHashTableConcurrent, InsertRemoveChurn)
{
    TxHashTable table(32, 1 << 14);
    tm::RococoTm rt;
    std::atomic<int64_t> net{0};
    run_threads(rt, 4, [&](unsigned tid) {
        Xoshiro256 rng(99 + tid);
        for (int i = 0; i < 200; ++i) {
            const uint64_t key = rng.below(128);
            if (rng.chance(0.6)) {
                bool inserted = false;
                rt.execute([&](tm::Tx& tx) {
                    inserted = table.insert(tx, key, key);
                });
                if (inserted) net.fetch_add(1);
            } else {
                bool removed = false;
                rt.execute([&](tm::Tx& tx) {
                    removed = table.remove(tx, key);
                });
                if (removed) net.fetch_sub(1);
            }
        }
    });
    EXPECT_EQ(table.unsafe_size(),
              static_cast<uint64_t>(net.load()));
}

} // namespace
} // namespace rococo::stamp
