#!/bin/sh
# KV conflict forensics end-to-end: ycsb_run in --service mode — one
# sharded server, 4 forked client processes pumping KV-shaped
# validation RPCs with stale snapshots (a planted conflict storm) —
# while `svcctl top --json` snapshots the hot-address table, which
# scripts/resolve_topk.py must join back to string keys via the
# --key-map-out dictionary. The driver's own exit status proves the
# server-side accounting ledger balanced.
#
#   $1 = path to ycsb_run   $2 = path to svcctl
#   $3 = output directory for keymap/topk files
#   $4 = python3 (optional)  $5 = resolve_topk.py (with $4)
set -u

YCSB="$1"
SVCCTL="$2"
OUT="$3"
shift 3

SOCK="/tmp/ycsb_e2e_$$.sock"
mkdir -p "$OUT"
rm -f "$OUT"/keymap.json "$OUT"/topk.json

# Few keys + heavy zipf + stale snapshots + all-RMW ops: RMW reads the
# value cell other RMWs write, so every window overlap is a
# forward/backward pair — a cycle abort with provenance — and the
# per-shard top-K sketch fills with the hot keys' slot addresses
# quickly. (Pure put shapes read only meta and write only value, which
# cannot cycle; an all-update storm would leave the sketch empty.)
"$YCSB" --service --clients=4 --shards=2 --requests=200000 \
    --workload=a --rmw-pct=100 --keys=64 --zipf=1.2 --stale-snapshots=1 \
    --key-map-out="$OUT"/keymap.json --socket="$SOCK" \
    > "$OUT"/ycsb_service.log 2>&1 &
YCSB_PID=$!
trap 'kill "$YCSB_PID" 2>/dev/null; rm -f "$SOCK"' EXIT

tries=0
while [ ! -S "$SOCK" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "ycsb_e2e: server socket never appeared" >&2
        exit 1
    fi
    sleep 0.05
done

# The key map is written before the clients fork, so it must already
# be there.
[ -s "$OUT"/keymap.json ] || {
    echo "ycsb_e2e: --key-map-out produced no key map" >&2
    exit 1
}

# Poll until the sketch surfaces conflicting addresses.
tries=0
until "$SVCCTL" --socket="$SOCK" top --json > "$OUT"/topk.json \
        && grep -q '"key":' "$OUT"/topk.json; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "ycsb_e2e: top never surfaced conflict addresses" >&2
        exit 1
    fi
    sleep 0.05
done

# Driver exit: clients done, server accounting ledger balanced.
wait "$YCSB_PID"
status=$?
trap - EXIT
rm -f "$SOCK"
if [ "$status" -ne 0 ]; then
    echo "ycsb_e2e: ycsb_run --service failed (accounting?)" >&2
    cat "$OUT"/ycsb_service.log >&2
    exit 1
fi

# Join the hot addresses back to string keys: at least one must
# resolve to a "user<N>" key, or the dictionary is broken.
if [ "$#" -ge 2 ]; then
    PYTHON="$1"
    RESOLVE="$2"
    "$PYTHON" "$RESOLVE" --keymap "$OUT"/keymap.json \
        --topk "$OUT"/topk.json > "$OUT"/resolved.txt || {
        echo "ycsb_e2e: resolve_topk.py failed" >&2
        cat "$OUT"/resolved.txt >&2
        exit 1
    }
    grep -q 'user' "$OUT"/resolved.txt || {
        echo "ycsb_e2e: no top-K address resolved to a user key" >&2
        cat "$OUT"/resolved.txt >&2
        exit 1
    }
fi
echo "ycsb_e2e: OK"
