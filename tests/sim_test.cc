/// Tests for the discrete-event trace simulator and its TM backend
/// models — timing math, CC decisions on crafted traces, and the
/// paper-shaped orderings the Fig. 10 bench depends on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/event_sim.h"
#include "sim/sim_htm.h"
#include "sim/sim_lock.h"
#include "sim/sim_lsa.h"
#include "sim/sim_rococo.h"
#include "sim/stamp_sim.h"

namespace rococo::sim {
namespace {

stamp::SimTxn
txn(std::vector<uint64_t> reads, std::vector<uint64_t> writes)
{
    stamp::SimTxn t;
    t.ops = reads.size() + writes.size();
    t.reads = std::move(reads);
    t.writes = std::move(writes);
    return t;
}

stamp::SimTrace
uniform_sim_trace(size_t txns, uint64_t locations, unsigned reads,
                  unsigned writes, uint64_t seed)
{
    Xoshiro256 rng(seed);
    stamp::SimTrace trace;
    for (size_t i = 0; i < txns; ++i) {
        std::vector<uint64_t> r, w;
        for (unsigned j = 0; j < reads; ++j) r.push_back(rng.below(locations));
        for (unsigned j = 0; j < writes; ++j) {
            w.push_back(rng.below(locations));
        }
        std::sort(r.begin(), r.end());
        r.erase(std::unique(r.begin(), r.end()), r.end());
        std::sort(w.begin(), w.end());
        w.erase(std::unique(w.begin(), w.end()), w.end());
        trace.txns.push_back(txn(std::move(r), std::move(w)));
    }
    return trace;
}

TEST(EventSim, SequentialTimingIsSumOfCosts)
{
    stamp::SimTrace trace;
    trace.txns.push_back(txn({1, 2}, {3}));
    trace.txns.push_back(txn({4}, {5}));
    SequentialSimBackend backend;
    SimConfig config;
    config.threads = 1;
    const SimResult result = simulate(trace, backend, config);
    EXPECT_EQ(result.commits, 2u);
    EXPECT_EQ(result.aborts, 0u);

    const BackendCosts c = backend.costs();
    const double expected =
        2 * c.begin_ns + 3 * c.read_ns + 2 * c.write_ns +
        c.work_per_op_ns * (3 + 2) + 2 * c.commit_fixed_ns +
        2 * c.commit_per_write_ns;
    EXPECT_NEAR(result.seconds * 1e9, expected, 1e-6);
}

TEST(EventSim, GlobalLockSerializesExecution)
{
    // 100 disjoint transactions on 4 threads: the lock forces the
    // makespan to (almost) the 1-thread makespan.
    const auto trace = uniform_sim_trace(100, 1 << 20, 4, 2, 1);
    GlobalLockSimBackend lock1, lock4;
    SimConfig one, four;
    one.threads = 1;
    four.threads = 4;
    const double t1 = simulate(trace, lock1, one).seconds;
    const double t4 = simulate(trace, lock4, four).seconds;
    EXPECT_NEAR(t4, t1, t1 * 0.05);
}

TEST(EventSim, ParallelismShrinksMakespan)
{
    const auto trace = uniform_sim_trace(400, 1 << 20, 6, 2, 2);
    LsaSimBackend b1, b8;
    SimConfig one, eight;
    one.threads = 1;
    eight.threads = 8;
    const double t1 = simulate(trace, b1, one).seconds;
    const double t8 = simulate(trace, b8, eight).seconds;
    EXPECT_LT(t8, t1 / 4) << "8 threads on disjoint data must scale";
}

TEST(LsaBackend, AbortsOnReadInvalidation)
{
    // Two threads, same hot location: writer invalidates reader.
    stamp::SimTrace trace;
    for (int i = 0; i < 50; ++i) trace.txns.push_back(txn({7}, {7}));
    LsaSimBackend backend;
    SimConfig config;
    config.threads = 4;
    const SimResult result = simulate(trace, backend, config);
    EXPECT_EQ(result.commits, 50u);
    EXPECT_GT(result.aborts, 0u);
}

TEST(LsaBackend, NoAbortsWithoutConflicts)
{
    stamp::SimTrace trace;
    for (uint64_t i = 0; i < 50; ++i) {
        trace.txns.push_back(txn({i * 2}, {i * 2 + 1}));
    }
    LsaSimBackend backend;
    SimConfig config;
    config.threads = 8;
    const SimResult result = simulate(trace, backend, config);
    EXPECT_EQ(result.aborts, 0u);
}

TEST(HtmBackend, CapacityAbortsForceFallback)
{
    stamp::SimTrace trace;
    std::vector<uint64_t> big_reads;
    for (uint64_t i = 0; i < 5000; ++i) big_reads.push_back(i);
    trace.txns.push_back(txn(std::move(big_reads), {99999}));
    HtmSimBackend backend(/*retries=*/4, /*capacity=*/2048);
    SimConfig config;
    config.threads = 2;
    const SimResult result = simulate(trace, backend, config);
    EXPECT_EQ(result.commits, 1u);
    EXPECT_EQ(result.aborts, 5u); // 1 + 4 retries, then fallback
    // Every speculative attempt died of capacity or of a spurious
    // (footprint-proportional) micro-architectural abort.
    EXPECT_EQ(result.detail.get("capacity") +
                  result.detail.get("spurious"),
              5u);
    EXPECT_GT(result.detail.get("capacity"), 0u);
    EXPECT_EQ(result.detail.get("fallback_commits"), 1u);
}

TEST(HtmBackend, AbortRateCeilingUnderPathologicalContention)
{
    // Everyone hammers one location: the abort rate approaches but
    // cannot exceed 5/6 (4 retries + initial attempt per fallback
    // commit, footnote 10).
    stamp::SimTrace trace;
    for (int i = 0; i < 400; ++i) trace.txns.push_back(txn({1}, {1}));
    HtmSimBackend backend;
    SimConfig config;
    config.threads = 16;
    const SimResult result = simulate(trace, backend, config);
    EXPECT_EQ(result.commits, 400u);
    EXPECT_LE(result.abort_rate(), 5.0 / 6.0 + 1e-9);
    EXPECT_GT(result.abort_rate(), 0.3);
}

TEST(RococoBackend, CommitsDisjointWork)
{
    const auto trace = uniform_sim_trace(200, 1 << 20, 4, 2, 3);
    RococoSimBackend backend;
    SimConfig config;
    config.threads = 8;
    const SimResult result = simulate(trace, backend, config);
    EXPECT_EQ(result.commits, 200u);
    EXPECT_EQ(result.aborts, 0u);
}

TEST(RococoBackend, OffloadLatencyChargedOnWriters)
{
    // Writers go through the offload engine (>= the 600ns CCI round
    // trip per request); read-only transactions commit on the CPU and
    // never touch it. A back-to-back writer pair exposes the
    // meta-pipeline: the second submit stalls until the first verdict.
    stamp::SimTrace writers, readers;
    writers.txns.push_back(txn({}, {1}));
    writers.txns.push_back(txn({}, {2}));
    readers.txns.push_back(txn({1}, {}));
    readers.txns.push_back(txn({2}, {}));
    RococoSimBackend b1, b2;
    SimConfig config;
    config.threads = 1;
    const double t_writers = simulate(writers, b1, config).seconds;
    const double t_readers = simulate(readers, b2, config).seconds;
    EXPECT_GT(b1.mean_offload_latency_ns(), 600.0);
    EXPECT_DOUBLE_EQ(b2.mean_offload_latency_ns(), 0.0);
    EXPECT_GT(t_writers, t_readers + 500e-9);
}

TEST(RococoBackend, SurvivesHotSpotWithFewerAbortsThanHtm)
{
    stamp::SimTrace trace;
    Xoshiro256 rng(5);
    for (int i = 0; i < 300; ++i) {
        trace.txns.push_back(
            txn({rng.below(8)}, {rng.below(8)})); // hot 8 slots
    }
    RococoSimBackend rococo;
    HtmSimBackend htm;
    SimConfig config;
    config.threads = 8;
    const SimResult r = simulate(trace, rococo, config);
    SimResult h = simulate(trace, htm, config);
    EXPECT_EQ(r.commits, 300u);
    EXPECT_LT(r.abort_rate(), h.abort_rate());
}

TEST(RococoBackend, ReportsOffloadAbortsSeparately)
{
    // Lost-update pattern: read-modify-write on one hot cell; some
    // attempts must reach the FPGA and be aborted there (cycle), others
    // fail fast on the CPU.
    stamp::SimTrace trace;
    for (int i = 0; i < 200; ++i) trace.txns.push_back(txn({3}, {3}));
    RococoSimBackend backend;
    SimConfig config;
    config.threads = 8;
    const SimResult result = simulate(trace, backend, config);
    EXPECT_EQ(result.commits, 200u);
    EXPECT_GT(result.aborts, 0u);
    EXPECT_LE(result.offload_aborts, result.aborts);
}

TEST(StampSim, CaptureAndGrid)
{
    stamp::WorkloadParams params;
    params.scale = 1;
    params.seed = 13;
    const auto trace = capture_workload_trace("ssca2", params);
    ASSERT_GT(trace.txns.size(), 1000u);

    const auto rows = simulate_grid("ssca2", trace, {"tinystm", "rococo"},
                                    {1, 4});
    ASSERT_EQ(rows.size(), 4u);
    for (const auto& row : rows) {
        EXPECT_GT(row.speedup, 0.0);
        EXPECT_FALSE(row.livelocked);
    }
    // 1-thread: ROCoCoTM pays the offload latency on every writer and
    // must trail TinySTM (the paper's 1.32x observation).
    EXPECT_LT(rows[2].speedup, rows[0].speedup);
}

TEST(StampSim, BackendFactoryKnowsAllNames)
{
    for (const char* name : {"seq", "lock", "tinystm", "tsx", "rococo"}) {
        EXPECT_NE(make_backend(name), nullptr) << name;
    }
}

} // namespace
} // namespace rococo::sim

namespace rococo::sim {
namespace {

TEST(MachineModel, InflationShape)
{
    MachineModel m;
    // 1 thread: no coherence cost regardless of sensitivity.
    EXPECT_DOUBLE_EQ(m.inflation(1, 2.0), 1.0);
    // Below the core count, metadata-heavy backends pay coherence.
    EXPECT_GT(m.inflation(14, 2.0), m.inflation(14, 1.0));
    EXPECT_DOUBLE_EQ(m.inflation(14, 1.0), 1.0);
    // Hyper-threading multiplies on top.
    EXPECT_GT(m.inflation(28, 1.0), m.inflation(14, 1.0));
    EXPECT_GT(m.inflation(28, 2.0), m.inflation(28, 1.0));
}

TEST(MachineModel, EffectiveCores)
{
    MachineModel m;
    EXPECT_DOUBLE_EQ(m.effective_cores(8), 8.0);
    EXPECT_DOUBLE_EQ(m.effective_cores(14), 14.0);
    EXPECT_LT(m.effective_cores(28), 28.0);
    EXPECT_GT(m.effective_cores(28), 14.0);
}

TEST(EventSim, EmptyTraceIsNoOp)
{
    stamp::SimTrace trace;
    LsaSimBackend backend;
    SimConfig config;
    config.threads = 4;
    const SimResult result = simulate(trace, backend, config);
    EXPECT_EQ(result.commits, 0u);
    EXPECT_DOUBLE_EQ(result.seconds, 0.0);
}

TEST(EventSim, LivelockGuardTrips)
{
    // Pathological: every transaction conflicts with everything and the
    // budget is one attempt per transaction — the guard must trip
    // rather than loop forever.
    stamp::SimTrace trace;
    for (int i = 0; i < 20; ++i) trace.txns.push_back([] {
        stamp::SimTxn t;
        t.reads = {1};
        t.writes = {1};
        t.ops = 2;
        return t;
    }());
    HtmSimBackend backend(/*retries=*/1000000, /*capacity=*/10000);
    SimConfig config;
    config.threads = 16;
    config.max_attempt_factor = 1.5;
    const SimResult result = simulate(trace, backend, config);
    EXPECT_TRUE(result.livelocked || result.commits == 20u);
}

TEST(StampSim, HtmRococoBackendExists)
{
    auto backend = make_backend("htm-rococo");
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), "HTM+ROCoCo");

    // Hot-RMW trace: directory-attached ROCoCo aborts less than TSX.
    stamp::SimTrace trace;
    Xoshiro256 rng(6);
    for (int i = 0; i < 300; ++i) {
        stamp::SimTxn t;
        t.reads = {rng.below(8)};
        t.writes = {rng.below(8)};
        t.ops = 2;
        trace.txns.push_back(std::move(t));
    }
    SimConfig config;
    config.threads = 8;
    const SimResult ours = simulate(trace, *backend, config);
    auto tsx = make_backend("tsx");
    const SimResult theirs = simulate(trace, *tsx, config);
    EXPECT_EQ(ours.commits, 300u);
    EXPECT_LT(ours.abort_rate(), theirs.abort_rate());
}

TEST(StampSim, DirectoryLatencyBelowCciLatency)
{
    stamp::SimTrace trace;
    stamp::SimTxn t;
    t.reads = {1};
    t.writes = {2};
    t.ops = 2;
    trace.txns.push_back(t);
    trace.txns.push_back(t);

    auto fpga = make_backend("rococo");
    auto directory = make_backend("htm-rococo");
    SimConfig config;
    config.threads = 1;
    const double t_fpga = simulate(trace, *fpga, config).seconds;
    const double t_dir = simulate(trace, *directory, config).seconds;
    EXPECT_LT(t_dir, t_fpga);
}

} // namespace
} // namespace rococo::sim

#include "sim/trace_stats.h"

namespace rococo::sim {
namespace {

TEST(TraceStats, CharacterizesCraftedTrace)
{
    stamp::SimTrace trace;
    // 3 read-only short txns + 1 long writer.
    for (int i = 0; i < 3; ++i) {
        stamp::SimTxn t;
        t.reads = {uint64_t(i)};
        t.ops = 1;
        trace.txns.push_back(t);
    }
    stamp::SimTxn big;
    for (uint64_t a = 0; a < 40; ++a) big.reads.push_back(100 + a);
    big.writes = {0, 1, 2};
    big.ops = 43;
    trace.txns.push_back(big);

    const TraceCharacterization c = characterize(trace, 5000, 1);
    EXPECT_EQ(c.txns, 4u);
    EXPECT_NEAR(c.read_only_fraction, 0.75, 1e-9);
    EXPECT_EQ(c.reads.max, 40u);
    EXPECT_EQ(c.writes.max, 3u);
    // Half the sampled pairs involve the writer vs a reader it
    // overwrites: conflict estimate must be well above zero.
    EXPECT_GT(c.pairwise_conflict, 0.2);
}

TEST(TraceStats, EmptyTrace)
{
    const TraceCharacterization c = characterize({}, 100, 1);
    EXPECT_EQ(c.txns, 0u);
    EXPECT_DOUBLE_EQ(c.pairwise_conflict, 0.0);
}

TEST(TraceStats, ClassesMatchKnownWorkloads)
{
    stamp::WorkloadParams params;
    params.scale = 1;
    const auto ssca2 =
        characterize(capture_workload_trace("ssca2", params));
    EXPECT_EQ(ssca2.length_class, "short");
    EXPECT_EQ(ssca2.contention_class, "low");

    const auto labyrinth =
        characterize(capture_workload_trace("labyrinth", params));
    EXPECT_NE(labyrinth.length_class, "short");
    EXPECT_GT(labyrinth.pairwise_conflict, ssca2.pairwise_conflict);
}

} // namespace
} // namespace rococo::sim
