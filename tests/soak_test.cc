/// Longer randomized soak of the full ROCoCoTM runtime: mixed
/// read-only / writer / multi-object transactions over a map and an
/// array, 8 oversubscribed threads, with conservation and consistency
/// invariants checked during and after the run. This is the "leave it
/// running" test that catches rare interleavings the targeted tests
/// miss.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "stamp/containers/tx_map.h"
#include "tm/rococo_tm.h"

namespace rococo {
namespace {

TEST(Soak, MixedWorkloadEightThreads)
{
    tm::RococoTmConfig config;
    config.irrevocable_after = 128;
    tm::RococoTm rt(config);

    constexpr size_t kCells = 64;
    constexpr int64_t kInitial = 1000;
    tm::TmArray<int64_t> ledger(kCells);
    for (size_t i = 0; i < kCells; ++i) ledger.set_unsafe(i, kInitial);
    stamp::TxMap registry(1 << 15);

    std::atomic<int> violations{0};
    std::atomic<uint64_t> registered{0};
    constexpr unsigned kThreads = 8;
    constexpr int kOpsPerThread = 2000;

    std::vector<std::thread> workers;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
        workers.emplace_back([&, tid] {
            rt.thread_init(tid);
            Xoshiro256 rng(2026 + tid);
            for (int op = 0; op < kOpsPerThread; ++op) {
                const double dice = rng.uniform();
                if (dice < 0.4) {
                    // Transfer between ledger cells.
                    const size_t from = rng.below(kCells);
                    const size_t to = rng.below(kCells);
                    if (from == to) continue;
                    rt.execute([&](tm::Tx& tx) {
                        const auto amount =
                            static_cast<int64_t>(rng.below(50));
                        ledger.set(tx, from,
                                   ledger.get(tx, from) - amount);
                        ledger.set(tx, to, ledger.get(tx, to) + amount);
                    });
                } else if (dice < 0.6) {
                    // Register a receipt: map insert + ledger touch in
                    // one transaction.
                    const uint64_t key = (uint64_t(tid) << 32) |
                                         static_cast<uint64_t>(op);
                    const size_t cell = rng.below(kCells);
                    rt.execute([&](tm::Tx& tx) {
                        registry.insert(tx, key,
                                        static_cast<uint64_t>(
                                            ledger.get(tx, cell)));
                    });
                    registered.fetch_add(1);
                } else if (dice < 0.9) {
                    // Read-only audit of a random slice.
                    const size_t begin = rng.below(kCells / 2);
                    rt.execute([&](tm::Tx& tx) {
                        int64_t sum = 0;
                        for (size_t i = begin; i < begin + kCells / 2;
                             ++i) {
                            sum += ledger.get(tx, i);
                        }
                        // A slice sum can be anything; only the global
                        // sum is invariant — checked below via a full
                        // scan.
                        (void)sum;
                    });
                } else {
                    // Full-scan invariant check inside a transaction.
                    rt.execute([&](tm::Tx& tx) {
                        int64_t total = 0;
                        for (size_t i = 0; i < kCells; ++i) {
                            total += ledger.get(tx, i);
                        }
                        if (total !=
                            static_cast<int64_t>(kCells) * kInitial) {
                            violations.fetch_add(1);
                        }
                    });
                }
            }
            rt.thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();

    EXPECT_EQ(violations.load(), 0);
    int64_t total = 0;
    for (size_t i = 0; i < kCells; ++i) total += ledger.get_unsafe(i);
    EXPECT_EQ(total, static_cast<int64_t>(kCells) * kInitial);
    EXPECT_EQ(registry.unsafe_size(), registered.load());
    // Every scheduled operation either committed or was skipped by the
    // from==to guard; commits must be close to the op count and aborts
    // all accounted for by retries (commits <= attempts).
    const auto stats = rt.stats();
    EXPECT_GE(stats.get(tm::stat::kCommits),
              uint64_t(kThreads) * kOpsPerThread * 9 / 10);
}

} // namespace
} // namespace rococo
