/// Transactional KV store tests (src/kv, docs/KV.md).
///
/// The centrepiece is the serializability oracle: concurrent threads
/// run multi-key read-modify-write and scan transactions with
/// globally unique written values, so every read names the exact
/// write it observed. The recorded history is turned into a
/// dependency graph (wr / ww / rw edges via the per-key version
/// chains that RMW-reads-its-predecessor uniquely determines, plus
/// real-time edges from the op intervals) and handed to the graph
/// layer's oracle; the returned witness order is then replayed
/// against a single-threaded std::map reference. Both engines — OCC
/// over RococoTm and the conservative 2PL baseline — face the same
/// oracle, under uniform and zipf key choice.
///
/// The 2PL sections pin the deadlock story: a canonical global lock
/// order (sorted, deduplicated stripes) and forced cyclic multi-key
/// transactions that complete without hanging or retrying.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/barrier.h"
#include "common/rng.h"
#include "common/small_vector.h"
#include "common/zipf.h"
#include "graph/serializability.h"
#include "kv/kv_2pl.h"
#include "kv/kv_store.h"
#include "obs/clock.h"

namespace rococo::kv {
namespace {

std::unique_ptr<KvInterface>
make_store(const std::string& engine, size_t capacity)
{
    if (engine == "occ") {
        KvStoreConfig config;
        config.capacity = capacity;
        return std::make_unique<KvStore>(config);
    }
    Kv2plConfig config;
    config.capacity = capacity;
    return std::make_unique<KvStore2pl>(config);
}

class KvSemanticsTest : public ::testing::TestWithParam<const char*>
{
};

TEST_P(KvSemanticsTest, PointOperations)
{
    auto store = make_store(GetParam(), 1 << 10);
    store->thread_init(0);

    uint64_t value = 0;
    EXPECT_EQ(store->get("alpha", value), KvStatus::kNotFound);
    EXPECT_EQ(store->put("alpha", 1), KvStatus::kOk);
    EXPECT_EQ(store->put("beta", 2), KvStatus::kOk);
    EXPECT_EQ(store->get("alpha", value), KvStatus::kOk);
    EXPECT_EQ(value, 1u);
    EXPECT_EQ(store->put("alpha", 10), KvStatus::kOk);
    EXPECT_EQ(store->get("alpha", value), KvStatus::kOk);
    EXPECT_EQ(value, 10u);

    EXPECT_EQ(store->erase("alpha"), KvStatus::kOk);
    EXPECT_EQ(store->get("alpha", value), KvStatus::kNotFound);
    EXPECT_EQ(store->erase("alpha"), KvStatus::kNotFound);
    // Tombstone reuse: re-inserting a deleted key works and the other
    // key is untouched.
    EXPECT_EQ(store->put("alpha", 11), KvStatus::kOk);
    EXPECT_EQ(store->get("alpha", value), KvStatus::kOk);
    EXPECT_EQ(value, 11u);
    EXPECT_EQ(store->get("beta", value), KvStatus::kOk);
    EXPECT_EQ(value, 2u);
    store->thread_fini();
}

TEST_P(KvSemanticsTest, ScanAndRmw)
{
    auto store = make_store(GetParam(), 1 << 10);
    store->thread_init(0);
    ASSERT_EQ(store->put("a", 5), KvStatus::kOk);
    ASSERT_EQ(store->put("b", 7), KvStatus::kOk);

    const std::string_view keys[] = {"a", "missing", "b"};
    RmwEntry entries[3];
    ASSERT_EQ(store->scan(keys, entries), KvStatus::kOk);
    EXPECT_TRUE(entries[0].found);
    EXPECT_EQ(entries[0].value, 5u);
    EXPECT_FALSE(entries[1].found);
    EXPECT_TRUE(entries[2].found);
    EXPECT_EQ(entries[2].value, 7u);

    // rmw: transfer 2 from a to b, insert c = a+b.
    const std::string_view rmw_keys[] = {"a", "b", "c"};
    auto body = [](std::span<RmwEntry> e) {
        EXPECT_TRUE(e[0].found);
        EXPECT_TRUE(e[1].found);
        EXPECT_FALSE(e[2].found);
        e[2].value = e[0].value + e[1].value;
        e[2].write = true;
        e[0].value -= 2;
        e[0].write = true;
        e[1].value += 2;
        e[1].write = true;
    };
    ASSERT_EQ(store->rmw(rmw_keys, body), KvStatus::kOk);
    uint64_t value = 0;
    EXPECT_EQ(store->get("a", value), KvStatus::kOk);
    EXPECT_EQ(value, 3u);
    EXPECT_EQ(store->get("b", value), KvStatus::kOk);
    EXPECT_EQ(value, 9u);
    EXPECT_EQ(store->get("c", value), KvStatus::kOk);
    EXPECT_EQ(value, 12u);

    // Metric invariant: every operation is one committed transaction.
    const obs::Registry& metrics = store->metrics();
    uint64_t ops = 0;
    for (const char* op : kOpNames) {
        ops += metrics.get(std::string("kv.ops.") + op);
    }
    EXPECT_EQ(ops, metrics.get("kv.txn.commits"));
    store->thread_fini();
}

TEST_P(KvSemanticsTest, CollisionAccountingAndNoSpace)
{
    // A 64-slot table loaded far past sane occupancy: probes must
    // traverse foreign slots (collisions) and eventually a probe
    // window fills (kNoSpace).
    auto store = make_store(GetParam(), 64);
    store->thread_init(0);
    bool saw_no_space = false;
    for (int i = 0; i < 200 && !saw_no_space; ++i) {
        const KvStatus status =
            store->put("key" + std::to_string(i), uint64_t(i));
        ASSERT_TRUE(status == KvStatus::kOk ||
                    status == KvStatus::kNoSpace);
        saw_no_space = status == KvStatus::kNoSpace;
    }
    EXPECT_TRUE(saw_no_space);
    EXPECT_GT(store->metrics().get("kv.key_collisions"), 0u);
    // Everything successfully inserted is still readable.
    uint64_t readable = 0;
    for (int i = 0; i < 200; ++i) {
        uint64_t value = 0;
        if (store->get("key" + std::to_string(i), value) ==
            KvStatus::kOk) {
            EXPECT_EQ(value, uint64_t(i));
            ++readable;
        }
    }
    EXPECT_GT(readable, 32u);
    store->thread_fini();
}

INSTANTIATE_TEST_SUITE_P(Engines, KvSemanticsTest,
                         ::testing::Values("occ", "2pl"));

// ---------------------------------------------------------------------
// Serializability oracle.

/// One key's slice of one recorded transaction.
struct AccessRec
{
    size_t key;
    uint64_t read_value;
    bool wrote;
    uint64_t written_value;
};

struct OpRec
{
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    SmallVector<AccessRec, kMaxTxnKeys> accesses;
};

struct OracleConfig
{
    unsigned threads = 4;
    unsigned ops_per_thread = 250;
    size_t keys = 64;
    double zipf = 0; ///< 0 = uniform key choice
};

std::string
oracle_key(size_t i)
{
    return "user" + std::to_string(i);
}

/// Initial (pre-populated) value of key @p i; disjoint from every
/// written value below.
uint64_t
initial_value(size_t i)
{
    return uint64_t{1} << 62 | i;
}

/// Run the concurrent history and return per-thread op records.
std::vector<std::vector<OpRec>>
run_history(KvInterface& store, const OracleConfig& config)
{
    store.thread_init(0);
    for (size_t i = 0; i < config.keys; ++i) {
        EXPECT_EQ(store.put(oracle_key(i), initial_value(i)),
                  KvStatus::kOk);
    }
    store.thread_fini();

    std::vector<std::vector<OpRec>> history(config.threads);
    Barrier barrier(config.threads);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < config.threads; ++t) {
        workers.emplace_back([&, t] {
            store.thread_init(t);
            Xoshiro256 rng(7'000 + t);
            const std::unique_ptr<ZipfSampler> zipf =
                config.zipf > 0 ? std::make_unique<ZipfSampler>(
                                      config.keys, config.zipf)
                                : nullptr;
            auto draw_key = [&] {
                return zipf ? zipf->draw(rng)
                            : rng.below(config.keys);
            };
            std::vector<OpRec>& ops = history[t];
            ops.reserve(config.ops_per_thread);
            barrier.arrive_and_wait();
            for (unsigned seq = 0; seq < config.ops_per_thread;
                 ++seq) {
                // 2-4 distinct keys per transaction.
                size_t key_idx[4];
                const size_t n = 2 + rng.below(3);
                size_t picked = 0;
                while (picked < n) {
                    const size_t k = draw_key();
                    bool dup = false;
                    for (size_t j = 0; j < picked && !dup; ++j) {
                        dup = key_idx[j] == k;
                    }
                    if (!dup) key_idx[picked++] = k;
                }
                std::string key_strings[4];
                std::string_view keys[4];
                for (size_t j = 0; j < n; ++j) {
                    key_strings[j] = oracle_key(key_idx[j]);
                    keys[j] = key_strings[j];
                }
                OpRec rec;
                rec.start_ns = obs::now_ns();
                const bool is_rmw = rng.below(2) == 0;
                RmwEntry entries[4];
                if (is_rmw) {
                    // Unique written value per (thread, seq, slot).
                    const uint64_t base =
                        (uint64_t(t + 1) << 40) |
                        (uint64_t(seq) << 8);
                    auto body = [&](std::span<RmwEntry> e) {
                        for (size_t j = 0; j < e.size(); ++j) {
                            e[j].value = base | j;
                            e[j].write = true;
                        }
                    };
                    // The body overwrites e[j].value, so capture the
                    // read values through a wrapper that snapshots
                    // first.
                    uint64_t reads[4];
                    auto wrapper = [&](std::span<RmwEntry> e) {
                        for (size_t j = 0; j < e.size(); ++j) {
                            EXPECT_TRUE(e[j].found);
                            reads[j] = e[j].value;
                        }
                        body(e);
                    };
                    ASSERT_EQ(store.rmw({keys, n}, wrapper),
                              KvStatus::kOk);
                    rec.end_ns = obs::now_ns();
                    for (size_t j = 0; j < n; ++j) {
                        rec.accesses.push_back(
                            {key_idx[j], reads[j], true, base | j});
                    }
                } else {
                    ASSERT_EQ(store.scan({keys, n}, {entries, n}),
                              KvStatus::kOk);
                    rec.end_ns = obs::now_ns();
                    for (size_t j = 0; j < n; ++j) {
                        EXPECT_TRUE(entries[j].found);
                        rec.accesses.push_back(
                            {key_idx[j], entries[j].value, false, 0});
                    }
                }
                ops.push_back(std::move(rec));
            }
            store.thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();
    return history;
}

/// Build the dependency graph (wr/ww/rw + real-time edges) and check
/// the history against the graph oracle plus a std::map replay of the
/// witness order.
void
check_history(KvInterface& store, const OracleConfig& config,
              const std::vector<std::vector<OpRec>>& history)
{
    // Flatten; vertex index = position in `flat`.
    std::vector<const OpRec*> flat;
    for (const auto& thread_ops : history) {
        for (const OpRec& rec : thread_ops) flat.push_back(&rec);
    }
    const size_t n = flat.size();
    constexpr size_t kInitialTxn = ~size_t{0};

    // Written values are globally unique, so value -> (writer, key)
    // and value -> readers resolve without per-key scoping.
    std::unordered_map<uint64_t, size_t> writer_of;
    std::unordered_map<uint64_t, std::vector<size_t>> readers_of;
    for (size_t v = 0; v < n; ++v) {
        for (const AccessRec& a : flat[v]->accesses) {
            readers_of[a.read_value].push_back(v);
            if (a.wrote) {
                ASSERT_TRUE(
                    writer_of.emplace(a.written_value, v).second)
                    << "duplicate written value";
            }
        }
    }
    auto writer = [&](uint64_t value) -> size_t {
        const auto it = writer_of.find(value);
        return it == writer_of.end() ? kInitialTxn : it->second;
    };

    graph::DependencyGraph graph(n);
    for (size_t v = 0; v < n; ++v) {
        for (const AccessRec& a : flat[v]->accesses) {
            const size_t w = writer(a.read_value);
            if (w == kInitialTxn) {
                // Reads of a never-written value must be the key's
                // initial value.
                ASSERT_EQ(a.read_value, initial_value(a.key));
            } else {
                ASSERT_NE(w, v) << "transaction read its own write";
                graph.add_edge(w, v); // wr (and ww when v overwrote)
            }
            if (a.wrote) {
                // rw: everyone else who read the overwritten version
                // must precede the overwriter.
                for (const size_t r : readers_of[a.read_value]) {
                    if (r != v) graph.add_edge(r, v);
                }
            }
        }
    }
    // Real-time edges: strict serializability, not just
    // serializability — an op that finished before another started
    // must precede it in the witness.
    for (size_t a = 0; a < n; ++a) {
        for (size_t b = 0; b < n; ++b) {
            if (a != b && flat[a]->end_ns <= flat[b]->start_ns) {
                graph.add_edge(a, b);
            }
        }
    }

    const graph::SerializabilityResult result =
        graph::check_serializability(graph);
    ASSERT_TRUE(result.serializable)
        << "dependency cycle of " << result.cycle.size() << " ops";
    ASSERT_EQ(result.witness_order.size(), n);

    // Replay the witness serially against a std::map reference; every
    // recorded read must see the reference state.
    std::map<size_t, uint64_t> reference;
    for (size_t i = 0; i < config.keys; ++i) {
        reference[i] = initial_value(i);
    }
    for (const size_t v : result.witness_order) {
        for (const AccessRec& a : flat[v]->accesses) {
            ASSERT_EQ(reference[a.key], a.read_value);
            if (a.wrote) reference[a.key] = a.written_value;
        }
    }
    // And the store's final state must equal the replayed state.
    store.thread_init(0);
    for (size_t i = 0; i < config.keys; ++i) {
        uint64_t value = 0;
        ASSERT_EQ(store.get(oracle_key(i), value), KvStatus::kOk);
        EXPECT_EQ(value, reference[i]) << "key " << i;
    }
    store.thread_fini();

    // Commit accounting covers the whole history.
    const obs::Registry& metrics = store.metrics();
    uint64_t ops_total = 0;
    for (const char* op : kOpNames) {
        ops_total += metrics.get(std::string("kv.ops.") + op);
    }
    EXPECT_EQ(ops_total, metrics.get("kv.txn.commits"));
}

class KvOracleTest
    : public ::testing::TestWithParam<std::tuple<const char*, double>>
{
};

TEST_P(KvOracleTest, ConcurrentRmwAndScanHistoriesAreSerializable)
{
    const auto& [engine, zipf] = GetParam();
    OracleConfig config;
    config.zipf = zipf;
    auto store = make_store(engine, 1 << 10);
    const auto history = run_history(*store, config);
    check_history(*store, config, history);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, KvOracleTest,
    ::testing::Combine(::testing::Values("occ", "2pl"),
                       ::testing::Values(0.0, 0.99)));

// ---------------------------------------------------------------------
// OCC-specific concurrency: inserts racing for slots.

TEST(KvOcc, ConcurrentInsertsIntoSmallTableAllSurvive)
{
    KvStoreConfig config;
    config.capacity = 1 << 9;
    KvStore store(config);
    constexpr unsigned kThreads = 4;
    constexpr size_t kPerThread = 64;
    Barrier barrier(kThreads);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            store.thread_init(t);
            barrier.arrive_and_wait();
            for (size_t i = 0; i < kPerThread; ++i) {
                const std::string key =
                    "t" + std::to_string(t) + "k" + std::to_string(i);
                ASSERT_EQ(store.put(key, (uint64_t(t) << 32) | i),
                          KvStatus::kOk);
            }
            store.thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();
    store.thread_init(0);
    for (unsigned t = 0; t < kThreads; ++t) {
        for (size_t i = 0; i < kPerThread; ++i) {
            const std::string key =
                "t" + std::to_string(t) + "k" + std::to_string(i);
            uint64_t value = 0;
            ASSERT_EQ(store.get(key, value), KvStatus::kOk) << key;
            EXPECT_EQ(value, (uint64_t(t) << 32) | i);
        }
    }
    store.thread_fini();
}

TEST(KvOcc, RmwInsertsSeveralAbsentKeysAtomically)
{
    KvStore store;
    store.thread_init(0);
    const std::string_view keys[] = {"w", "x", "y", "z"};
    auto body = [](std::span<RmwEntry> e) {
        for (size_t j = 0; j < e.size(); ++j) {
            EXPECT_FALSE(e[j].found);
            e[j].value = 100 + j;
            e[j].write = true;
        }
    };
    ASSERT_EQ(store.rmw(keys, body), KvStatus::kOk);
    for (size_t j = 0; j < 4; ++j) {
        uint64_t value = 0;
        ASSERT_EQ(store.get(keys[j], value), KvStatus::kOk);
        EXPECT_EQ(value, 100 + j);
    }
    store.thread_fini();
}

// ---------------------------------------------------------------------
// 2PL deadlock handling.

TEST(Kv2pl, LockOrderIsGlobalSortedAndDeduplicated)
{
    KvStore2pl store;
    const std::string_view forward[] = {"a", "b", "c", "d"};
    const std::string_view backward[] = {"d", "c", "b", "a"};
    const auto order_fwd = store.lock_order(forward);
    const auto order_bwd = store.lock_order(backward);
    // Same stripes in the same (ascending) order regardless of how
    // the caller listed the keys — the global order that rules out
    // waits-for cycles.
    EXPECT_EQ(order_fwd, order_bwd);
    for (size_t i = 1; i < order_fwd.size(); ++i) {
        EXPECT_LT(order_fwd[i - 1], order_fwd[i]);
    }
    for (const uint32_t stripe : order_fwd) {
        EXPECT_LT(stripe, store.lock_stripes());
    }
}

TEST(Kv2pl, ForcedCyclicRmwTransactionsDoNotDeadlock)
{
    // Threads repeatedly transfer around a small ring of keys, each
    // thread listing its two keys in the opposite rotational order of
    // its neighbour — the classic deadlock shape for naive 2PL.
    Kv2plConfig config;
    config.capacity = 1 << 10;
    KvStore2pl store(config);
    constexpr size_t kRing = 8;
    constexpr unsigned kThreads = 8;
    constexpr unsigned kRounds = 2'000;
    store.thread_init(0);
    for (size_t i = 0; i < kRing; ++i) {
        ASSERT_EQ(store.put("ring" + std::to_string(i), 1'000),
                  KvStatus::kOk);
    }
    store.thread_fini();

    Barrier barrier(kThreads);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            store.thread_init(t);
            barrier.arrive_and_wait();
            for (unsigned round = 0; round < kRounds; ++round) {
                const size_t from = (t + round) % kRing;
                const size_t to = (from + 1) % kRing;
                // Odd threads name their keys in reverse, so lock
                // requests arrive in conflicting key orders.
                std::string first = "ring" + std::to_string(from);
                std::string second = "ring" + std::to_string(to);
                if (t % 2 == 1) std::swap(first, second);
                const std::string_view keys[] = {first, second};
                auto body = [&](std::span<RmwEntry> e) {
                    e[0].value -= 1;
                    e[0].write = true;
                    e[1].value += 1;
                    e[1].write = true;
                };
                ASSERT_EQ(store.rmw(keys, body), KvStatus::kOk);
            }
            store.thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();

    // Conservation: transfers moved value around the ring but the sum
    // is untouched.
    store.thread_init(0);
    uint64_t sum = 0;
    for (size_t i = 0; i < kRing; ++i) {
        uint64_t value = 0;
        ASSERT_EQ(store.get("ring" + std::to_string(i), value),
                  KvStatus::kOk);
        sum += value;
    }
    store.thread_fini();
    EXPECT_EQ(sum, 1'000u * kRing);

    // Conservative 2PL never retries: bounded retries means zero.
    EXPECT_EQ(store.metrics().get("kv.txn.retries"), 0u);
    EXPECT_EQ(store.metrics().get("kv.txn.aborts"), 0u);
}

} // namespace
} // namespace rococo::kv
