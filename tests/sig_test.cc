/// Unit and statistical tests for src/sig: multiply-shift hashing,
/// parallel bloom signatures and the analytic false-positive model
/// (validated by Monte-Carlo, the basis of Fig. 7).
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"
#include "sig/bloom_signature.h"
#include "sig/hash.h"
#include "sig/signature_model.h"

namespace rococo::sig {
namespace {

std::shared_ptr<const SignatureConfig>
config(unsigned m, unsigned k, uint64_t seed = 42)
{
    return std::make_shared<const SignatureConfig>(m, k, seed);
}

TEST(Hash, InRangeAndDeterministic)
{
    MultiplyShiftHasher h(4, 128, 7);
    MultiplyShiftHasher h2(4, 128, 7);
    Xoshiro256 rng(3);
    for (int i = 0; i < 1000; ++i) {
        const uint64_t key = rng();
        for (unsigned f = 0; f < 4; ++f) {
            const uint64_t bucket = h.hash(key, f);
            EXPECT_LT(bucket, 128u);
            EXPECT_EQ(bucket, h2.hash(key, f));
        }
    }
}

TEST(Hash, FunctionsDiffer)
{
    MultiplyShiftHasher h(2, 1 << 16, 9);
    int differ = 0;
    Xoshiro256 rng(4);
    for (int i = 0; i < 100; ++i) {
        const uint64_t key = rng();
        if (h.hash(key, 0) != h.hash(key, 1)) ++differ;
    }
    EXPECT_GT(differ, 90);
}

TEST(Hash, RoughlyUniform)
{
    MultiplyShiftHasher h(1, 16, 11);
    std::vector<int> counts(16, 0);
    Xoshiro256 rng(5);
    const int n = 16000;
    for (int i = 0; i < n; ++i) ++counts[h.hash(rng(), 0)];
    for (int c : counts) {
        EXPECT_GT(c, n / 16 / 2);
        EXPECT_LT(c, n / 16 * 2);
    }
}

TEST(Bloom, NoFalseNegatives)
{
    BloomSignature sig(config(512, 4));
    Xoshiro256 rng(6);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 64; ++i) keys.push_back(rng());
    for (uint64_t key : keys) sig.insert(key);
    for (uint64_t key : keys) EXPECT_TRUE(sig.query(key));
}

TEST(Bloom, EmptyAndClear)
{
    BloomSignature sig(config(256, 2));
    EXPECT_TRUE(sig.empty());
    EXPECT_FALSE(sig.query(123));
    sig.insert(123);
    EXPECT_FALSE(sig.empty());
    sig.clear();
    EXPECT_TRUE(sig.empty());
}

TEST(Bloom, UnionIsSuperset)
{
    auto cfg = config(512, 4);
    BloomSignature a(cfg), b(cfg);
    a.insert(1);
    a.insert(2);
    b.insert(3);
    a.unite(b);
    EXPECT_TRUE(a.query(1));
    EXPECT_TRUE(a.query(2));
    EXPECT_TRUE(a.query(3));
}

TEST(Bloom, UniteRawMatchesUnite)
{
    auto cfg = config(512, 4);
    BloomSignature a(cfg), b(cfg), c(cfg);
    a.insert(10);
    b.insert(20);
    c = a;
    c.unite(b);
    BloomSignature d = a;
    d.unite_raw(b.words().data(), b.words().size());
    EXPECT_EQ(c, d);
}

TEST(Bloom, IntersectionDetectsCommonElement)
{
    auto cfg = config(512, 4);
    Xoshiro256 rng(8);
    for (int round = 0; round < 50; ++round) {
        BloomSignature a(cfg), b(cfg);
        const uint64_t shared = rng();
        a.insert(shared);
        b.insert(shared);
        for (int i = 0; i < 4; ++i) {
            a.insert(rng());
            b.insert(rng());
        }
        EXPECT_TRUE(a.intersects(b));
        EXPECT_TRUE(a.intersects_all_partitions(b));
    }
}

TEST(Bloom, DisjointSmallSetsRarelyIntersect)
{
    // With m=512 and 4 elements per side the model predicts a tiny
    // false-overlap rate; measure it.
    auto cfg = config(512, 4);
    Xoshiro256 rng(9);
    int overlaps = 0;
    const int rounds = 2000;
    for (int round = 0; round < rounds; ++round) {
        BloomSignature a(cfg), b(cfg);
        for (int i = 0; i < 4; ++i) {
            a.insert(rng() * 2);     // evens
            b.insert(rng() * 2 + 1); // odds: disjoint by construction
        }
        if (a.intersects(b)) ++overlaps;
    }
    const double measured = double(overlaps) / rounds;
    const double predicted =
        intersection_false_overlap({512, 4}, 4, 4);
    EXPECT_NEAR(measured, predicted, 0.05);
}

TEST(Bloom, AllPartitionsTestIsTighter)
{
    auto cfg = config(512, 4);
    Xoshiro256 rng(10);
    int any = 0, all = 0;
    for (int round = 0; round < 3000; ++round) {
        BloomSignature a(cfg), b(cfg);
        for (int i = 0; i < 8; ++i) {
            a.insert(rng() * 2);
            b.insert(rng() * 2 + 1);
        }
        if (a.intersects(b)) ++any;
        if (a.intersects_all_partitions(b)) ++all;
    }
    EXPECT_LE(all, any);
}

TEST(Model, QueryFprMatchesMonteCarlo)
{
    const SignatureGeometry g{512, 4};
    auto cfg = config(512, 4);
    Xoshiro256 rng(12);
    for (unsigned n : {8u, 32u, 64u}) {
        int fp = 0;
        const int probes = 4000;
        BloomSignature sig(cfg);
        std::unordered_set<uint64_t> members;
        for (unsigned i = 0; i < n; ++i) {
            const uint64_t key = rng();
            sig.insert(key);
            members.insert(key);
        }
        for (int p = 0; p < probes; ++p) {
            uint64_t key = rng();
            if (members.count(key)) continue;
            if (sig.query(key)) ++fp;
        }
        const double measured = double(fp) / probes;
        const double predicted = query_false_positive(g, n);
        EXPECT_NEAR(measured, predicted, 0.05) << "n=" << n;
    }
}

TEST(Model, MonotoneInElementsAndBits)
{
    const SignatureGeometry small{256, 4};
    const SignatureGeometry big{1024, 4};
    EXPECT_LT(query_false_positive(small, 4),
              query_false_positive(small, 32));
    EXPECT_LT(query_false_positive(big, 32),
              query_false_positive(small, 32));
    EXPECT_LT(intersection_false_overlap(big, 8, 8),
              intersection_false_overlap(small, 8, 8));
}

TEST(Model, IntersectionFprIsHigherThanQueryFpr)
{
    // The Fig. 7 observation: false set-overlap rises much faster than
    // query false positives, which motivates 8-element sub-signatures.
    const SignatureGeometry g{512, 4};
    EXPECT_GT(intersection_false_overlap(g, 16, 16),
              query_false_positive(g, 16));
}

TEST(Model, AllPartitionsBelowAnyBit)
{
    const SignatureGeometry g{512, 4};
    for (unsigned n : {4u, 8u, 16u, 32u}) {
        EXPECT_LE(intersection_false_overlap_all_partitions(g, n, n),
                  intersection_false_overlap(g, n, n) + 1e-12);
    }
}

TEST(Config, RejectsBadGeometry)
{
    EXPECT_DEATH(SignatureConfig(100, 4), "");  // not a power of two
    EXPECT_DEATH(SignatureConfig(512, 3), "");  // k does not divide m
}

} // namespace
} // namespace rococo::sig
