/// @file
/// Randomized decision-equivalence proof for the bit-sliced detector:
/// classify() (column-major kernel), classify_scalar() (row-major
/// shadow walk) and an *independent* reference built from plain
/// BloomSignature pairs must agree bit for bit — same cids, same
/// forward/backward split, same order — across geometries, key
/// distributions (uniform and zipf), snapshot positions and forced
/// window evictions. Every runtime-available SIMD match kernel
/// (sig/sliced_kernels.h) is forced in turn and held to the same
/// bit-for-bit standard, so the AVX2/AVX-512 gather-and-AND paths are
/// proven against the scalar oracle on every fuzz input. Runs under
/// ASan/TSan/UBSan with the rest of the suite, so the kernels' index
/// arithmetic is sanitizer-proven on the same inputs that prove their
/// decisions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <vector>

#include "fpga/detector.h"
#include "fpga/validation_engine.h"
#include "sig/bloom_signature.h"

namespace rococo {
namespace {

/// Reference history: one BloomSignature pair per in-window commit,
/// classified with the seed implementation's per-entry loop. Shares
/// nothing with SlicedSignatureHistory but the SignatureConfig, so a
/// layout bug in either the columns or the row shadow cannot hide.
class ReferenceHistory
{
  public:
    ReferenceHistory(size_t window,
                     std::shared_ptr<const sig::SignatureConfig> config)
        : window_(window), config_(std::move(config))
    {
    }

    void
    record(uint64_t cid, const fpga::OffloadRequest& request)
    {
        Entry entry{cid, sig::BloomSignature(config_),
                    sig::BloomSignature(config_)};
        for (uint64_t addr : request.reads) entry.reads.insert(addr);
        for (uint64_t addr : request.writes) entry.writes.insert(addr);
        entries_.push_back(std::move(entry));
        if (entries_.size() > window_) entries_.pop_front();
    }

    core::ValidationRequest
    classify(const fpga::OffloadRequest& request) const
    {
        auto any = [](const sig::BloomSignature& sig,
                      const auto& addrs) {
            for (uint64_t addr : addrs) {
                if (sig.query(addr)) return true;
            }
            return false;
        };
        core::ValidationRequest out;
        for (const Entry& entry : entries_) {
            const bool read_overlap = any(entry.writes, request.reads);
            const bool waw = any(entry.writes, request.writes);
            const bool war = any(entry.reads, request.writes);
            if (entry.cid >= request.snapshot_cid && read_overlap) {
                out.forward.push_back(entry.cid);
            }
            if (waw || war ||
                (entry.cid < request.snapshot_cid && read_overlap)) {
                out.backward.push_back(entry.cid);
            }
        }
        return out;
    }

  private:
    struct Entry
    {
        uint64_t cid;
        sig::BloomSignature reads;
        sig::BloomSignature writes;
    };

    size_t window_;
    std::shared_ptr<const sig::SignatureConfig> config_;
    std::deque<Entry> entries_;
};

/// Bounded zipf(s) sampler over [0, n) via the precomputed CDF — the
/// skewed-contention distribution of the STAMP-style workloads.
class ZipfSampler
{
  public:
    ZipfSampler(size_t n, double s)
    {
        cdf_.reserve(n);
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
            cdf_.push_back(sum);
        }
        for (double& c : cdf_) c /= sum;
    }

    template <typename Rng>
    uint64_t
    operator()(Rng& rng)
    {
        const double u =
            std::uniform_real_distribution<double>(0.0, 1.0)(rng);
        return static_cast<uint64_t>(
            std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    }

  private:
    std::vector<double> cdf_;
};

struct FuzzParams
{
    size_t window;
    unsigned m;
    unsigned k;
    uint64_t key_space; ///< smaller = more (false) overlap
    bool zipf;
    uint64_t seed;
};

fpga::OffloadRequest
random_request(std::mt19937_64& rng, ZipfSampler& zipf,
               const FuzzParams& params)
{
    auto draw_key = [&]() -> uint64_t {
        if (params.zipf) return zipf(rng);
        return rng() % params.key_space;
    };
    fpga::OffloadRequest request;
    const size_t reads = rng() % 13;  // 0..12: crosses the inline cap
    const size_t writes = rng() % 9;  // 0..8 on a combined request
    for (size_t i = 0; i < reads; ++i) request.reads.push_back(draw_key());
    for (size_t i = 0; i < writes; ++i) request.writes.push_back(draw_key());
    return request;
}

void
expect_identical(const core::ValidationRequest& sliced,
                 const core::ValidationRequest& scalar,
                 const core::ValidationRequest& reference, size_t iter,
                 const char* kernel = "default")
{
    EXPECT_EQ(sliced.forward, scalar.forward)
        << "iter " << iter << " kernel " << kernel;
    EXPECT_EQ(sliced.backward, scalar.backward)
        << "iter " << iter << " kernel " << kernel;
    EXPECT_EQ(sliced.forward, reference.forward)
        << "iter " << iter << " kernel " << kernel;
    EXPECT_EQ(sliced.backward, reference.backward)
        << "iter " << iter << " kernel " << kernel;
}

/// Drive a bare detector: every iteration classifies three ways and
/// compares exactly; committed requests use striding cids (monotonic
/// but *not* consecutive — the ring must track real cids, not indices)
/// and overrun the window several times over to force evictions.
void
fuzz_detector(const FuzzParams& params)
{
    auto config = std::make_shared<const sig::SignatureConfig>(
        params.m, params.k, params.seed);
    fpga::ConflictDetector detector(params.window, config);
    ReferenceHistory reference(params.window, config);

    std::mt19937_64 rng(params.seed * 7919 + 17);
    // The CDF table is only materialized for zipf runs (uniform runs
    // may use a key space far too large to tabulate).
    ZipfSampler zipf(params.zipf ? params.key_space : 1, 1.1);
    uint64_t next_cid = 0;
    const size_t iterations = params.window * 8;

    for (size_t iter = 0; iter < iterations; ++iter) {
        fpga::OffloadRequest request = random_request(rng, zipf, params);
        // Snapshots across the whole interesting range: behind the
        // window, inside it, and at/after the newest commit.
        const uint64_t lo =
            detector.history_start() > 4 ? detector.history_start() - 4 : 0;
        request.snapshot_cid = lo + rng() % (next_cid - lo + 3);

        // Every runtime-available kernel classifies the same request
        // against the same history and must agree with the row-major
        // oracle and the independent reference bit for bit.
        const core::ValidationRequest scalar =
            detector.classify_scalar(request);
        const core::ValidationRequest ref = reference.classify(request);
        for (sig::MatchKernel kernel : sig::runtime_kernels()) {
            detector.set_match_kernel(kernel);
            expect_identical(detector.classify(request), scalar, ref, iter,
                             sig::to_string(kernel));
        }

        if (rng() % 4 != 0) { // commit 3 of 4 — overruns W repeatedly
            next_cid += 1 + rng() % 3;
            detector.record_commit(next_cid, request);
            reference.record(next_cid, request);
            ++next_cid;
        }
    }
    ASSERT_GT(next_cid, params.window); // evictions actually happened
}

TEST(DetectorEquivalence, UniformSparseKeys)
{
    fuzz_detector({64, 512, 4, uint64_t{1} << 40, false, 1});
}

TEST(DetectorEquivalence, UniformDenseKeysCollide)
{
    // 256 keys under 512 signature bits: heavy real and false overlap.
    fuzz_detector({64, 512, 4, 256, false, 2});
}

TEST(DetectorEquivalence, ZipfContention)
{
    fuzz_detector({64, 512, 4, 4096, true, 3});
}

TEST(DetectorEquivalence, MultiWordColumnsWindow100)
{
    // W=100: two-word occupancy columns, ring wrap not at a word edge.
    fuzz_detector({100, 256, 4, 1024, true, 4});
}

TEST(DetectorEquivalence, TinyWindowTinySignature)
{
    // W=16, m=64, k=2: saturated signatures, constant eviction churn.
    fuzz_detector({16, 64, 2, 128, false, 5});
}

TEST(DetectorEquivalence, WideColumnsWindow300)
{
    // W=300: five-word occupancy columns — exercises the SIMD wide
    // paths (full vector words plus a masked/scalar word tail) instead
    // of the one-register batched path.
    fuzz_detector({300, 256, 4, 2048, true, 6});
}

/// End-to-end: a live engine (bit-sliced classification inside
/// process()) against the reference, with the read-only fast path both
/// on and off. Classified-vector equality implies verdict equality —
/// the Manager's decision is a deterministic function of the vectors —
/// and the reference mirrors the engine's actual commit/evict sequence.
TEST(DetectorEquivalence, EngineFuzzReadOnlyFastPathOnAndOff)
{
    for (const bool strict : {false, true}) {
        fpga::EngineConfig config;
        config.window = 32;
        config.strict_read_only = strict;
        fpga::ValidationEngine engine(config);
        ReferenceHistory reference(config.window,
                                   engine.signature_config());

        FuzzParams params{config.window, config.signature_bits,
                          config.signature_hashes, 2048, true, 11};
        std::mt19937_64 rng(params.seed);
        ZipfSampler zipf(params.zipf ? params.key_space : 1, 1.1);

        for (size_t iter = 0; iter < 512; ++iter) {
            fpga::OffloadRequest request =
                random_request(rng, zipf, params);
            const uint64_t lo = engine.window_start();
            request.snapshot_cid =
                lo + rng() % (engine.next_cid() - lo + 2);

            expect_identical(engine.classify(request),
                             engine.detector().classify_scalar(request),
                             reference.classify(request), iter);

            const core::ValidationResult result = engine.process(request);
            // Mirror exactly what the engine recorded: fast-path
            // read-only commits (non-strict) never enter the window.
            if (result.verdict == core::Verdict::kCommit &&
                (strict || !request.writes.empty())) {
                reference.record(result.cid, request);
            }
        }
        EXPECT_GT(engine.next_cid(), config.window)
            << "strict=" << strict; // window wrapped: evictions covered
    }
}

} // namespace
} // namespace rococo
