/// Stress tests for the multi-threaded validation server (worker_threads
/// > 0): concurrent clients against the WorkerPool with overlapping
/// single- and cross-shard footprints, introspection floods (kStats /
/// kSeries) racing live worker traffic, and restart cycles. Each test
/// re-proves the service accounting invariant
///   svc.requests == sum(svc.verdict.*) + svc.timeout + svc.rejected
/// with workers engaged, plus the per-worker validation ledger
///   sum(svc.worker.<i>.validations) == engine passes.
/// These are the tests the TSan preset leans on: every IO-thread /
/// worker handoff (job slab, per-worker feeds, completion vector,
/// self-pipe wake) gets exercised under real contention.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/wire.h"

namespace rococo::svc {
namespace {

std::string
test_socket_path(const char* tag)
{
    return "/tmp/rococo_svc_threads_" + std::string(tag) + "_" +
           std::to_string(getpid()) + ".sock";
}

/// Raw connected socket for the introspection flood; -1 on failure.
int
connect_raw(const std::string& path)
{
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    return fd;
}

/// Blocking-read frames from @p fd until one of type @p want arrives
/// (other types are skipped); nullopt on EOF/error.
std::optional<std::vector<uint8_t>>
read_frame_of_type(int fd, MsgType want)
{
    FrameReader reader;
    uint8_t buf[64 * 1024];
    for (;;) {
        while (auto frame = reader.next()) {
            if (frame->type == want) {
                return std::vector<uint8_t>(frame->payload,
                                            frame->payload + frame->size);
            }
        }
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) return std::nullopt;
        reader.append(buf, static_cast<size_t>(n));
    }
}

/// Sum of the server-side accounting sinks that must equal
/// svc.requests once the server has stopped (every accepted request is
/// answered exactly once: verdict, timeout or rejection).
uint64_t
accounted(const CounterBag& stats)
{
    return stats.get("svc.verdict.commit") +
           stats.get("svc.verdict.abort-cycle") +
           stats.get("svc.verdict.window-overflow") +
           stats.get("svc.timeout") + stats.get("svc.rejected");
}

/// Pump @p per_client requests through one ValidationClient with
/// footprints that exercise both router paths: most requests touch a
/// narrow key range (lands on one shard — the affinity fast path) and
/// every fourth spans the whole address space (cross-shard two-phase).
/// Returns the number of resolved futures.
uint64_t
pump_traffic(const std::string& socket_path, uint64_t per_client,
             uint64_t seed)
{
    ClientConfig client_config;
    client_config.socket_path = socket_path;
    ValidationClient client(client_config);
    if (!client.connected()) return 0;
    Xoshiro256 rng(seed);
    uint64_t answered = 0;
    std::vector<std::future<core::ValidationResult>> inflight;
    for (uint64_t i = 0; i < per_client; ++i) {
        fpga::OffloadRequest request;
        if (i % 4 == 3) {
            // Wide footprint: reads spread over the full key space so
            // the split hits several shards and the router's ascending
            // cross-shard lock path runs under worker concurrency.
            for (int r = 0; r < 8; ++r) {
                request.reads.push_back(rng.below(4096));
            }
            request.writes.push_back(rng.below(4096));
        } else {
            // Narrow footprint: a 64-key hot set, overlapping across
            // clients so all three verdicts occur; usually one shard.
            for (int r = 0; r < 4; ++r) {
                request.reads.push_back(rng.below(64));
            }
            request.writes.push_back(rng.below(64));
        }
        request.snapshot_cid = rng.below(2) == 0 ? uint64_t{0} : per_client;
        inflight.push_back(client.submit(std::move(request)));
        if (inflight.size() >= 16) {
            for (auto& f : inflight) {
                f.get();
                ++answered;
            }
            inflight.clear();
        }
    }
    for (auto& f : inflight) {
        f.get();
        ++answered;
    }
    client.stop();
    return answered;
}

// ---------------------------------------------------------------------
// Concurrent clients vs. the worker pool

TEST(SvcThreads, ConcurrentClientsAccountingSumsWithWorkers)
{
    ServerConfig config;
    config.socket_path = test_socket_path("mt_smoke");
    config.shards = 4;
    config.worker_threads = 4;
    config.max_pending = 64;
    Server server(config);
    ASSERT_TRUE(server.start());

    constexpr int kClients = 4;
    constexpr uint64_t kPerClient = 400;
    std::atomic<uint64_t> answered{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            answered.fetch_add(
                pump_traffic(config.socket_path, kPerClient, 7 + c));
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(answered.load(), kClients * kPerClient);

    server.stop();
    const CounterBag stats = server.stats();
    const uint64_t requests = stats.get("svc.requests");
    EXPECT_EQ(requests, kClients * kPerClient);
    EXPECT_EQ(accounted(stats), requests);

    // Per-worker ledger: each engine pass incremented exactly one
    // worker's validation counter, so the sum equals the non-timed-out
    // accepted requests. With the hot 64-key set concentrated on a few
    // shards, affinity still has to spread work: at least two of the
    // four workers validated something.
    uint64_t worker_sum = 0;
    int busy_workers = 0;
    for (uint32_t i = 0; i < config.worker_threads; ++i) {
        const uint64_t v =
            stats.get("svc.worker." + std::to_string(i) + ".validations");
        worker_sum += v;
        busy_workers += v > 0 ? 1 : 0;
    }
    EXPECT_EQ(worker_sum,
              requests - stats.get("svc.timeout") -
                  stats.get("svc.rejected"));
    EXPECT_GE(busy_workers, 2);
}

// ---------------------------------------------------------------------
// Introspection racing worker traffic

TEST(SvcThreads, StatsAndSeriesFloodDuringWorkerTraffic)
{
    ServerConfig config;
    config.socket_path = test_socket_path("mt_stats");
    config.shards = 2;
    config.worker_threads = 2;
    config.max_pending = 32;
    Server server(config);
    ASSERT_TRUE(server.start());

    // Background validation traffic for the whole introspection
    // exchange, so stats snapshots race live completion drains.
    std::atomic<bool> stop_traffic{false};
    std::atomic<uint64_t> pumped{0};
    std::thread traffic([&] {
        while (!stop_traffic.load(std::memory_order_relaxed)) {
            pumped.fetch_add(
                pump_traffic(config.socket_path, 64, pumped.load() + 1),
                std::memory_order_relaxed);
        }
    });

    const int fd = connect_raw(config.socket_path);
    ASSERT_GE(fd, 0);
    for (int round = 0; round < 50; ++round) {
        std::vector<uint8_t> frame;
        if (round % 2 == 0) {
            encode_stats_request(frame);
        } else {
            encode_series_request(frame);
        }
        ASSERT_EQ(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(frame.size()));
        const MsgType want = round % 2 == 0 ? MsgType::kStatsReply
                                            : MsgType::kSeriesReply;
        auto payload = read_frame_of_type(fd, want);
        ASSERT_TRUE(payload.has_value())
            << "no introspection reply in round " << round;
        if (round % 2 == 0) {
            const std::string json(payload->begin(), payload->end());
            // Worker gauges are exported live (refreshed from the pool
            // atomics on the IO thread right before the snapshot).
            // Gauges always merge into the snapshot; the validation
            // *counters* only appear once non-zero, which test 1 pins
            // down deterministically after stop().
            EXPECT_NE(json.find("\"svc.worker.0.queue_depth\""),
                      std::string::npos);
            EXPECT_NE(json.find("\"svc.worker.1.queue_depth\""),
                      std::string::npos);
        }
    }
    close(fd);

    stop_traffic.store(true, std::memory_order_relaxed);
    traffic.join();
    EXPECT_GT(pumped.load(), 0u);

    server.stop();
    const CounterBag stats = server.stats();
    EXPECT_EQ(accounted(stats), stats.get("svc.requests"));
}

// ---------------------------------------------------------------------
// Restart cycles

TEST(SvcThreads, RestartCyclesDrainWorkersAndRebind)
{
    ServerConfig config;
    config.socket_path = test_socket_path("mt_restart");
    config.shards = 2;
    config.worker_threads = 3; // more workers than shards: sharing path
    config.max_pending = 16;
    Server server(config);

    uint64_t total_requests = 0;
    for (int cycle = 0; cycle < 3; ++cycle) {
        ASSERT_TRUE(server.start()) << "cycle " << cycle;
        std::vector<std::thread> threads;
        std::atomic<uint64_t> answered{0};
        for (int c = 0; c < 2; ++c) {
            threads.emplace_back([&, c, cycle] {
                answered.fetch_add(pump_traffic(config.socket_path, 100,
                                                cycle * 10 + c));
            });
        }
        for (auto& thread : threads) thread.join();
        EXPECT_EQ(answered.load(), 200u);
        total_requests += answered.load();
        server.stop();
        // stop() joined the workers and drained the final completions,
        // so the ledger balances at every cycle boundary, not just at
        // process exit.
        const CounterBag stats = server.stats();
        EXPECT_EQ(stats.get("svc.requests"), total_requests);
        EXPECT_EQ(accounted(stats), total_requests);
    }
}

} // namespace
} // namespace rococo::svc
