/// Tests for the sharded validation tier (src/shard): partitioner
/// coverage and ordering, exact S=1 equivalence with the single
/// engine, serializability of replayed histories across shard counts
/// (against the src/graph oracle, with forced cross-shard conflicts),
/// the cross-shard coordinator's abort/release and fence rules, the
/// concurrent-caller accounting invariant (and absence of deadlock),
/// metric export, and the RococoTm / svc::Server adoptions.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "cc/engine_cc.h"
#include "cc/replay.h"
#include "cc/rococo_cc.h"
#include "cc/trace_generator.h"
#include "common/rng.h"
#include "graph/serializability.h"
#include "obs/registry.h"
#include "shard/partition.h"
#include "shard/router.h"
#include "shard/shard_cc.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/worker_pool.h"
#include "tm/rococo_tm.h"

namespace rococo::shard {
namespace {

/// Smallest address >= @p start owned by @p shard.
uint64_t
address_on_shard(const Partitioner& partitioner, uint32_t shard,
                 uint64_t start = 0)
{
    for (uint64_t address = start;; ++address) {
        if (partitioner.shard_of(address) == shard) return address;
    }
}

TEST(Partitioner, SplitCoversEveryAddressInItsOwnerShard)
{
    const Partitioner partitioner(4);
    fpga::OffloadRequest request;
    Xoshiro256 rng(7);
    for (int i = 0; i < 64; ++i) request.reads.push_back(rng());
    for (int i = 0; i < 64; ++i) request.writes.push_back(rng());

    const auto subs = partitioner.split(request);
    size_t reads = 0, writes = 0;
    for (const SubRequest& sub : subs) {
        for (uint64_t address : sub.offload.reads) {
            EXPECT_EQ(partitioner.shard_of(address), sub.shard);
        }
        for (uint64_t address : sub.offload.writes) {
            EXPECT_EQ(partitioner.shard_of(address), sub.shard);
        }
        reads += sub.offload.reads.size();
        writes += sub.offload.writes.size();
    }
    EXPECT_EQ(reads, request.reads.size());
    EXPECT_EQ(writes, request.writes.size());
}

TEST(Partitioner, SubRequestsAscendByShardAndTouchedAgrees)
{
    for (uint32_t shards : {1u, 2u, 4u, 8u, 16u}) {
        const Partitioner partitioner(shards);
        Xoshiro256 rng(shards);
        for (int trial = 0; trial < 50; ++trial) {
            fpga::OffloadRequest request;
            const unsigned n = 1 + unsigned(rng.below(12));
            for (unsigned i = 0; i < n; ++i) {
                (rng.below(2) ? request.reads : request.writes)
                    .push_back(rng.below(1024));
            }
            const auto subs = partitioner.split(request);
            for (size_t i = 1; i < subs.size(); ++i) {
                EXPECT_LT(subs[i - 1].shard, subs[i].shard);
            }
            EXPECT_EQ(partitioner.touched(request.reads, request.writes),
                      subs.size());
        }
    }
}

TEST(ShardCc, SingleShardMatchesSingleEngineDecisions)
{
    // S = 1 must be *exactly* the single-engine deployment: same
    // decisions, transaction by transaction, on whole replays.
    cc::UniformTraceParams params;
    params.locations = 256;
    params.accesses = 10;
    params.txns = 400;
    for (uint64_t seed : {1u, 2u, 3u}) {
        params.seed = seed;
        const cc::Trace trace = cc::generate_uniform_trace(params);
        cc::EngineCc engine;
        ShardConfig config;
        config.shards = 1;
        ShardCc sharded(config);
        const auto engine_result = cc::replay(engine, trace, 8);
        const auto shard_result = cc::replay(sharded, trace, 8);
        EXPECT_EQ(shard_result.committed, engine_result.committed)
            << "seed " << seed;
    }
}

TEST(ShardCc, ReplaysStaySerializableAcrossShardCounts)
{
    // The acceptance property: histories admitted through the
    // cross-shard coordinator pass the exact serializability oracle.
    // Few locations + many accesses force plenty of genuinely
    // cross-shard transactions and conflicts.
    cc::UniformTraceParams params;
    params.locations = 96;
    params.accesses = 8;
    params.txns = 500;
    for (uint32_t shards : {2u, 4u, 8u}) {
        for (uint64_t seed : {1u, 2u, 3u}) {
            params.seed = seed;
            const cc::Trace trace = cc::generate_uniform_trace(params);
            ShardConfig config;
            config.shards = shards;
            ShardCc algorithm(config);
            const auto result = cc::replay(algorithm, trace, 8);
            EXPECT_TRUE(
                cc::check_history(trace, result.committed, 8).serializable)
                << "shards " << shards << " seed " << seed;
            EXPECT_GT(result.commit_count, 0u);
            // The sweep only means something if the coordinator path
            // actually ran.
            EXPECT_GT(algorithm.router().stats().get("shard.cross"), 0u)
                << "shards " << shards << " seed " << seed;
        }
    }
}

TEST(ShardCc, SkewedTracesStaySerializable)
{
    cc::SkewedTraceParams params;
    params.locations = 128;
    params.accesses = 8;
    params.theta = 0.9;
    params.txns = 400;
    for (uint32_t shards : {2u, 4u}) {
        ShardConfig config;
        config.shards = shards;
        ShardCc algorithm(config);
        const cc::Trace trace = cc::generate_skewed_trace(params);
        const auto result = cc::replay(algorithm, trace, 8);
        EXPECT_TRUE(
            cc::check_history(trace, result.committed, 8).serializable);
    }
}

TEST(ShardRouter, CrossShardForwardDependencyAbortsAndReleases)
{
    ShardConfig config;
    config.shards = 2;
    ShardRouter router(config);
    const Partitioner& partitioner = router.partitioner();
    const uint64_t a0 = address_on_shard(partitioner, 0);
    const uint64_t a1 = address_on_shard(partitioner, 1);

    // t1: single-shard write to a0, commits as global 0.
    auto r1 = router.process({{}, {a0}, 0});
    ASSERT_EQ(r1.verdict, core::Verdict::kCommit);
    EXPECT_EQ(r1.cid, 0u);

    // t2: cross-shard, but its snapshot predates t1's commit and it
    // read a0 — a forward dependency (t2 ->rw t1), which rule CS1
    // forbids for cross-shard transactions.
    RouteInfo info;
    auto r2 = router.process({{a0}, {a1}, 0}, &info);
    EXPECT_EQ(r2.verdict, core::Verdict::kAbortCycle);
    EXPECT_EQ(r2.reason, obs::AbortReason::kCrossShardFence);
    EXPECT_EQ(info.shards_touched, 2u);

    // Release must leave both shards untouched: no commit happened
    // anywhere, global order unchanged, shard 1 still empty.
    EXPECT_EQ(router.global_commits(), 1u);
    EXPECT_EQ(router.engine(1).manager().validator().occupancy(), 0u);

    // The same transaction with a current snapshot has only backward
    // dependencies and goes through both shards atomically.
    auto r3 = router.process({{a0}, {a1}, router.global_commits()}, &info);
    EXPECT_EQ(r3.verdict, core::Verdict::kCommit);
    EXPECT_EQ(r3.cid, 1u);
    EXPECT_EQ(info.shards_touched, 2u);
    EXPECT_EQ(router.engine(1).manager().validator().occupancy(), 1u);
}

TEST(ShardRouter, FenceBlocksSingleShardForwardPastCrossCommit)
{
    ShardConfig config;
    config.shards = 2;
    ShardRouter router(config);
    const Partitioner& partitioner = router.partitioner();
    const uint64_t a0 = address_on_shard(partitioner, 0);
    const uint64_t a1 = address_on_shard(partitioner, 1);
    const uint64_t b0 = address_on_shard(partitioner, 0, a0 + 1);

    // Cross-shard commit x writes {a0, a1}: shard 0's fence advances
    // past x's per-shard cid.
    auto x = router.process({{}, {a0, a1}, 0});
    ASSERT_EQ(x.verdict, core::Verdict::kCommit);

    // Single-shard t read a0 before x wrote it (old snapshot): its
    // forward dependency on x sits behind the fence — rule CS2 aborts
    // it even though a plain single-engine window would allow
    // committing "into the past".
    auto t = router.process({{a0}, {b0}, 0});
    EXPECT_EQ(t.verdict, core::Verdict::kAbortCycle);
    EXPECT_EQ(t.reason, obs::AbortReason::kCrossShardFence);

    // With a current snapshot the same access pattern has no forward
    // edge and commits; single-shard flexibility above the fence stays.
    auto u = router.process({{a0}, {b0}, router.global_commits()});
    EXPECT_EQ(u.verdict, core::Verdict::kCommit);
}

TEST(ShardRouter, SingleShardForwardBeforeFenceStillAllowed)
{
    // Forward dependencies to *single-shard* commits above the fence
    // keep working: the full ROCoCo "commit into the past" flexibility
    // is only restricted at cross-shard commits.
    ShardConfig config;
    config.shards = 2;
    ShardRouter router(config);
    const Partitioner& partitioner = router.partitioner();
    const uint64_t a0 = address_on_shard(partitioner, 0);
    const uint64_t b0 = address_on_shard(partitioner, 0, a0 + 1);
    const uint64_t c0 = address_on_shard(partitioner, 0, b0 + 1);

    // Single-shard commit w writes a0 (global 0, fence stays 0).
    ASSERT_EQ(router.process({{}, {a0}, 0}).verdict,
              core::Verdict::kCommit);
    // t read a0 before w committed: forward edge t ->rw w, no fence in
    // the way, no cycle — ROCoCo serializes t before w and commits.
    auto t = router.process({{a0}, {b0, c0}, 0});
    EXPECT_EQ(t.verdict, core::Verdict::kCommit);
}

TEST(ShardRouter, StaleSnapshotOverflowsPerShardWindow)
{
    ShardConfig config;
    config.shards = 2;
    config.engine.window = 4;
    ShardRouter router(config);
    const Partitioner& partitioner = router.partitioner();
    const uint64_t a0 = address_on_shard(partitioner, 0);

    // Fill shard 0's window past capacity so its oldest commits evict.
    uint64_t address = 0;
    for (int i = 0; i < 8; ++i) {
        address = address_on_shard(partitioner, 0, address + 1);
        ASSERT_EQ(router
                      .process({{}, {address}, router.global_commits()})
                      .verdict,
                  core::Verdict::kCommit);
    }
    // A reader whose snapshot predates the evicted commits cannot be
    // checked against them ("neglects updates of t_{k-W}").
    auto stale = router.process({{a0}, {address}, 0});
    EXPECT_EQ(stale.verdict, core::Verdict::kWindowOverflow);
    EXPECT_EQ(stale.reason, obs::AbortReason::kWindowEviction);

    // A write-only transaction with the same ancient snapshot is
    // unaffected — the snapshot only splits read edges (single-engine
    // parity).
    auto write_only = router.process({{}, {address}, 0});
    EXPECT_EQ(write_only.verdict, core::Verdict::kCommit);
}

TEST(ShardRouter, ConcurrentCallersKeepAccountingAndFinish)
{
    // The deadlock hammer and the accounting invariant in one: many
    // threads mixing single- and cross-shard transactions, with a
    // metrics reader polling concurrently. Completion proves the
    // ascending lock order is deadlock-free; the counters must balance
    // exactly afterwards.
    ShardConfig config;
    config.shards = 4;
    ShardRouter router(config);
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kPerThread = 1500;
    std::atomic<bool> done{false};
    std::thread poller([&] {
        while (!done.load(std::memory_order_acquire)) {
            obs::Registry scratch;
            router.export_metrics(scratch);
            (void)router.occupancy();
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            Xoshiro256 rng(100 + t);
            for (uint64_t i = 0; i < kPerThread; ++i) {
                fpga::OffloadRequest request;
                const unsigned reads = unsigned(rng.below(3));
                for (unsigned r = 0; r < reads; ++r) {
                    request.reads.push_back(rng.below(512));
                }
                const unsigned writes = 1 + unsigned(rng.below(2));
                for (unsigned w = 0; w < writes; ++w) {
                    request.writes.push_back(rng.below(512));
                }
                request.snapshot_cid = router.global_commits();
                (void)router.validate(std::move(request));
            }
        });
    }
    for (auto& worker : workers) worker.join();
    done.store(true, std::memory_order_release);
    poller.join();

    const CounterBag stats = router.stats();
    const uint64_t total = kThreads * kPerThread;
    EXPECT_EQ(stats.get("submitted"), total);
    EXPECT_EQ(stats.get("commit") + stats.get("abort-cycle") +
                  stats.get("window-overflow") + stats.get("timeout") +
                  stats.get("rejected"),
              total);
    // Every request had a write, so the global commit order and the
    // commit verdicts must agree one-to-one.
    EXPECT_EQ(router.global_commits(), stats.get("commit"));
    // Work was spread: every shard validated something, and the
    // coordinator path ran.
    uint64_t per_shard = 0;
    for (uint32_t s = 0; s < config.shards; ++s) {
        const uint64_t v =
            stats.get("shard." + std::to_string(s) + ".validations");
        EXPECT_GT(v, 0u) << "shard " << s;
        per_shard += v;
    }
    EXPECT_GE(per_shard, stats.get("shard.validations"));
    EXPECT_GT(stats.get("shard.cross"), 0u);
}

TEST(ShardRouter, WorkerPoolHistoryPassesSerializabilityOracle)
{
    // The oracle re-proof under the *real* multi-threaded deployment:
    // requests flow through a svc::WorkerPool (affinity routing, four
    // engine workers racing on four shards) instead of the sequential
    // replay driver. Each request's snapshot is captured at submit
    // time, so by the time a worker validates it, later commits have
    // landed and genuine forward dependencies arise. Afterwards the
    // exact multiversion dependency graph of the committed history —
    // version order per address is global-cid order, a reader observes
    // the newest version with cid < its snapshot — must be acyclic:
    // the same src/graph oracle the sequential replays pass, rebuilt
    // for the out-of-replay-order commit sequence the workers produce.
    ShardConfig config;
    config.shards = 4;
    ShardRouter router(config);
    svc::WorkerPool pool(router, /*threads=*/4, /*capacity=*/32);
    ASSERT_TRUE(pool.start());

    struct Rec
    {
        std::vector<uint64_t> reads;
        std::vector<uint64_t> writes;
        uint64_t snapshot = 0;
        bool committed = false;
        bool resolved = false;
        uint64_t cid = 0;
    };
    constexpr size_t kTxns = 6000;
    constexpr uint64_t kLocations = 96; // few: force real conflicts
    std::vector<Rec> recs(kTxns);
    std::vector<svc::WorkerJob*> done;
    done.reserve(32);
    Xoshiro256 rng(2026);

    const auto harvest = [&] {
        for (svc::WorkerJob* job : done) {
            Rec& rec = recs[job->request_id];
            rec.resolved = true;
            rec.committed = job->result.verdict == core::Verdict::kCommit;
            rec.cid = job->result.cid;
            pool.release(job);
        }
        done.clear();
    };

    for (size_t i = 0; i < kTxns; ++i) {
        svc::WorkerJob* job = pool.acquire();
        while (job == nullptr) { // slab full: reap like Server::loop
            pool.drain_completions(done);
            harvest();
            job = pool.acquire();
        }
        Rec& rec = recs[i];
        for (unsigned r = unsigned(rng.below(3)); r > 0; --r) {
            rec.reads.push_back(rng.below(kLocations));
        }
        for (unsigned w = 1 + unsigned(rng.below(2)); w > 0; --w) {
            rec.writes.push_back(rng.below(kLocations));
        }
        // The graph below indexes writers per address; a duplicate in
        // one transaction would self-chain, so dedupe the footprint.
        for (auto* set : {&rec.reads, &rec.writes}) {
            std::sort(set->begin(), set->end());
            set->erase(std::unique(set->begin(), set->end()), set->end());
        }
        rec.snapshot = router.global_commits();
        job->request_id = i;
        job->arrival_ns = 1;
        job->deadline_ns = 0;
        for (uint64_t a : rec.reads) job->offload.reads.push_back(a);
        for (uint64_t a : rec.writes) job->offload.writes.push_back(a);
        job->offload.snapshot_cid = rec.snapshot;
        pool.submit(job);
    }
    pool.stop();
    pool.drain_completions(done);
    harvest();

    uint64_t commits = 0;
    for (const Rec& rec : recs) {
        ASSERT_TRUE(rec.resolved);
        commits += rec.committed ? 1 : 0;
    }
    EXPECT_GT(commits, 0u);
    // The run only re-proves something if the interesting paths ran.
    const CounterBag stats = router.stats();
    EXPECT_GT(stats.get("abort-cycle"), 0u);
    EXPECT_GT(stats.get("shard.cross"), 0u);

    // Committed writers per address in version (global-cid) order.
    std::map<uint64_t, std::vector<size_t>> writers;
    for (size_t i = 0; i < kTxns; ++i) {
        if (!recs[i].committed) continue;
        for (uint64_t addr : recs[i].writes) writers[addr].push_back(i);
    }
    graph::DependencyGraph g(kTxns);
    for (auto& [addr, list] : writers) {
        std::sort(list.begin(), list.end(), [&](size_t a, size_t b) {
            return recs[a].cid < recs[b].cid;
        });
        for (size_t v = 1; v < list.size(); ++v) {
            g.add_edge(list[v - 1], list[v]); // WAW: version chain
        }
    }
    for (size_t i = 0; i < kTxns; ++i) {
        const Rec& rec = recs[i];
        if (!rec.committed) continue;
        for (uint64_t addr : rec.reads) {
            const auto it = writers.find(addr);
            if (it == writers.end()) continue;
            // Observed version: newest committed writer the snapshot
            // contains (cid < snapshot). The list is cid-sorted.
            size_t observed = SIZE_MAX;
            for (size_t w : it->second) {
                if (recs[w].cid >= rec.snapshot) break;
                if (w != i) observed = w;
            }
            if (observed != SIZE_MAX) g.add_edge(observed, i); // RAW
            for (size_t w : it->second) {
                if (w == i || w == observed) continue;
                const bool later = observed == SIZE_MAX ||
                                   recs[w].cid > recs[observed].cid;
                if (later) g.add_edge(i, w); // RW anti-dependency
            }
        }
    }
    const auto verdict = graph::check_serializability(g);
    EXPECT_TRUE(verdict.serializable)
        << "worker-pool history admitted a dependency cycle of length "
        << (verdict.cycle.empty() ? 0 : verdict.cycle.size() - 1);
}

TEST(ShardRouter, ExportsPerShardMetrics)
{
    ShardConfig config;
    config.shards = 2;
    ShardRouter router(config);
    const Partitioner& partitioner = router.partitioner();
    const uint64_t a0 = address_on_shard(partitioner, 0);
    const uint64_t a1 = address_on_shard(partitioner, 1);
    ASSERT_EQ(router.process({{}, {a0}, 0}).verdict,
              core::Verdict::kCommit);
    ASSERT_EQ(router.process({{}, {a0, a1}, 1}).verdict,
              core::Verdict::kCommit);

    obs::Registry registry;
    router.export_metrics(registry);
    EXPECT_EQ(registry.get("shard.validations"), 2u);
    EXPECT_EQ(registry.get("shard.cross"), 1u);
    EXPECT_GT(registry.get("shard.0.validations"), 0u);
    EXPECT_GT(registry.get("shard.1.validations"), 0u);
    EXPECT_DOUBLE_EQ(registry.gauge("shard.cross_fraction").value(), 0.5);
    EXPECT_GT(registry.gauge("shard.imbalance").value(), 0.0);
    EXPECT_DOUBLE_EQ(registry.gauge("shard.0.occupancy").value(), 2.0);
    EXPECT_DOUBLE_EQ(registry.gauge("shard.1.occupancy").value(), 1.0);
    EXPECT_GT(registry.histogram("shard.route_ns").count(), 0u);
    EXPECT_GT(registry.histogram("shard.coord_ns").count(), 0u);
}

TEST(ShardRouter, StopRejectsFurtherWork)
{
    ShardConfig config;
    config.shards = 2;
    ShardRouter router(config);
    router.stop();
    router.stop(); // idempotent
    auto result = router.validate({{}, {1}, 0});
    EXPECT_EQ(result.verdict, core::Verdict::kRejected);
    EXPECT_EQ(result.reason, obs::AbortReason::kBackpressure);
    auto future = router.submit({{}, {2}, 0});
    EXPECT_EQ(future.get().verdict, core::Verdict::kRejected);
}

TEST(ShardRouter, ExpiredDeadlineIsHonored)
{
    ShardConfig config;
    config.shards = 2;
    ShardRouter router(config);
    auto result =
        router.validate({{}, {1}, 0}, std::chrono::nanoseconds(0));
    EXPECT_EQ(result.verdict, core::Verdict::kTimeout);
    EXPECT_EQ(result.reason, obs::AbortReason::kTimeout);
    EXPECT_EQ(router.stats().get("timeout"), 1u);
}

TEST(RococoTmSharded, TransfersConserveAcrossShards)
{
    tm::RococoTmConfig config;
    config.validation_shards = 4;
    tm::RococoTm runtime(config);
    constexpr size_t kCells = 64;
    tm::TmArray<int64_t> cells(kCells);
    constexpr unsigned kThreads = 4;
    constexpr int kPerThread = 200;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            runtime.thread_init(t);
            Xoshiro256 rng(t);
            for (int i = 0; i < kPerThread; ++i) {
                const size_t a = rng.below(kCells);
                const size_t b = (a + 1 + rng.below(kCells - 1)) % kCells;
                runtime.execute([&](tm::Tx& tx) {
                    cells.set(tx, a, cells.get(tx, a) - 1);
                    cells.set(tx, b, cells.get(tx, b) + 1);
                });
            }
            runtime.thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();

    int64_t total = 0;
    for (size_t i = 0; i < kCells; ++i) total += cells.get_unsafe(i);
    EXPECT_EQ(total, 0);
    EXPECT_EQ(runtime.stats().get(tm::stat::kCommits),
              uint64_t(kThreads) * kPerThread);
    // The backend really was the sharded tier.
    EXPECT_GT(runtime.fpga_stats().get("shard.validations"), 0u);
}

TEST(SvcServerSharded, AccountingInvariantHoldsWithShards)
{
    svc::ServerConfig config;
    config.socket_path = "/tmp/rococo_shard_test_" +
                         std::to_string(getpid()) + ".sock";
    config.shards = 4;
    config.max_batch = 8;
    svc::Server server(config);
    ASSERT_TRUE(server.start());

    const Partitioner partitioner(4); // same default seed as the server
    constexpr unsigned kClients = 2;
    std::vector<std::thread> clients;
    std::atomic<uint64_t> commits{0};
    for (unsigned c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            svc::ClientConfig client_config;
            client_config.socket_path = config.socket_path;
            svc::ValidationClient client(client_config);
            ASSERT_TRUE(client.connected());
            Xoshiro256 rng(10 + c);
            for (int i = 0; i < 300; ++i) {
                fpga::OffloadRequest request;
                // Every third request is deliberately cross-shard.
                if (i % 3 == 0) {
                    request.writes.push_back(
                        address_on_shard(partitioner, 0, rng.below(256)));
                    request.writes.push_back(
                        address_on_shard(partitioner, 1, rng.below(256)));
                } else {
                    request.writes.push_back(rng.below(1024));
                    request.reads.push_back(rng.below(1024));
                }
                request.snapshot_cid = ~uint64_t{0} >> 1;
                const auto result = client.validate(std::move(request));
                if (result.verdict == core::Verdict::kCommit) {
                    commits.fetch_add(1, std::memory_order_relaxed);
                }
            }
            client.stop();
        });
    }
    for (auto& client : clients) client.join();
    server.stop();

    const CounterBag stats = server.stats();
    const uint64_t answered = stats.get("svc.verdict.commit") +
                              stats.get("svc.verdict.abort-cycle") +
                              stats.get("svc.verdict.window-overflow") +
                              stats.get("svc.timeout") +
                              stats.get("svc.rejected");
    EXPECT_EQ(stats.get("svc.requests"), uint64_t(kClients) * 300);
    EXPECT_EQ(answered, stats.get("svc.requests"));
    EXPECT_EQ(stats.get("svc.verdict.commit"), commits.load());
    // The shard tier's own accounting rides along in the same bag.
    EXPECT_GT(stats.get("shard.cross"), 0u);
    EXPECT_EQ(stats.get("shard.validations"), stats.get("svc.requests") -
                                                  stats.get("svc.timeout") -
                                                  stats.get("svc.rejected"));
}

} // namespace
} // namespace rococo::shard
