#!/bin/sh
# svcctl watch must survive a server restart: it reconnects with
# bounded backoff and keeps sampling instead of dying on the first
# failed round trip.
#
#   $1 = path to svc_loadgen   $2 = path to svcctl
#
# Sequence: server A comes up (a background svc_loadgen run) -> watch
# starts sampling -> A is killed mid-watch -> server B comes up on the
# same socket path (sharded, so the shards command can be checked on
# the survivor) -> watch must log a reconnect and still exit 0 with
# all requested samples delivered.
set -u

LOADGEN="$1"
SVCCTL="$2"
SOCK="/tmp/svcctl_watch_reconnect_$$.sock"
OUT="/tmp/svcctl_watch_out_$$"
ERR="/tmp/svcctl_watch_err_$$"

cleanup() {
    kill "$LOADGEN_A_PID" "$LOADGEN_B_PID" "$WATCH_PID" 2>/dev/null
    rm -f "$SOCK" "$OUT" "$ERR"
}
LOADGEN_A_PID=""
LOADGEN_B_PID=""
WATCH_PID=""
trap cleanup EXIT

wait_for_socket() {
    tries=0
    while [ ! -S "$SOCK" ]; do
        tries=$((tries + 1))
        if [ "$tries" -gt 200 ]; then
            echo "watch_reconnect: server socket never appeared" >&2
            exit 1
        fi
        sleep 0.05
    done
}

# Server A.
"$LOADGEN" --clients=1 --batch=8 --requests=500000 --socket="$SOCK" \
    > /dev/null 2>&1 &
LOADGEN_A_PID=$!
wait_for_socket

# Watch for 8 samples at 50 ms; capture stderr for the reconnect log.
"$SVCCTL" --socket="$SOCK" watch --interval-ms=50 --count=8 \
    > "$OUT" 2> "$ERR" &
WATCH_PID=$!

# Let it deliver at least one sample (header + 1 data line) before the
# restart, so the reconnect happens mid-stream.
tries=0
while [ "$(wc -l < "$OUT")" -lt 2 ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 200 ]; then
        echo "watch_reconnect: watch produced no samples" >&2
        exit 1
    fi
    sleep 0.05
done

# Kill server A; the socket path goes stale until B rebinds it.
kill "$LOADGEN_A_PID" 2>/dev/null
wait "$LOADGEN_A_PID" 2>/dev/null
rm -f "$SOCK"

# Server B — sharded, so the shards command is checked on the survivor.
"$LOADGEN" --clients=1 --batch=8 --shards=2 --requests=500000 \
    --socket="$SOCK" > /dev/null 2>&1 &
LOADGEN_B_PID=$!
wait_for_socket

# The watch must come back on its own and finish all 8 samples.
wait "$WATCH_PID"
watch_status=$?
WATCH_PID=""
if [ "$watch_status" -ne 0 ]; then
    echo "watch_reconnect: watch exited $watch_status" >&2
    cat "$ERR" >&2
    exit 1
fi
if ! grep -q 'reconnecting' "$ERR"; then
    echo "watch_reconnect: no reconnect was logged" >&2
    cat "$ERR" >&2
    exit 1
fi
samples=$(grep -c '[0-9]' "$OUT")
if [ "$samples" -lt 8 ]; then
    echo "watch_reconnect: only $samples of 8 samples delivered" >&2
    cat "$OUT" >&2
    exit 1
fi

# Per-shard introspection against the sharded survivor.
"$SVCCTL" --socket="$SOCK" shards | grep -q 'cross-shard:' || {
    echo "watch_reconnect: shards command failed on sharded server" >&2
    exit 1
}

echo "watch_reconnect: OK"
