/// End-to-end tests of the STAMP-like workloads: every workload must
/// run to completion and pass its own invariant verification under
/// real threads on each runtime class.
#include <gtest/gtest.h>

#include "baselines/global_lock_tm.h"
#include "baselines/tinystm_lsa.h"
#include "stamp/harness.h"
#include "stamp/trace_capture.h"
#include "sim/event_sim.h"
#include "sim/sim_lsa.h"
#include "tm/rococo_tm.h"

namespace rococo::stamp {
namespace {

WorkloadParams
small_params()
{
    WorkloadParams params;
    params.scale = 1;
    params.seed = 11;
    return params;
}

class WorkloadOnLock : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadOnLock, RunsAndVerifies)
{
    auto workload = make_workload(GetParam(), small_params());
    baselines::GlobalLockTm rt;
    const RunResult result = run_workload(*workload, rt, 2);
    EXPECT_TRUE(result.verified) << GetParam();
    EXPECT_GT(result.tm_stats.get("commits"), 0u);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadOnLock,
                         ::testing::ValuesIn(workload_names()));

class WorkloadOnRococo : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadOnRococo, RunsAndVerifies)
{
    auto workload = make_workload(GetParam(), small_params());
    tm::RococoTm rt;
    const RunResult result = run_workload(*workload, rt, 2);
    EXPECT_TRUE(result.verified) << GetParam();
    EXPECT_GT(result.tm_stats.get("commits"), 0u);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadOnRococo,
                         ::testing::ValuesIn(workload_names()));

class WorkloadOnTinyStm : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadOnTinyStm, RunsAndVerifies)
{
    auto workload = make_workload(GetParam(), small_params());
    baselines::TinyStmConfig config;
    config.stripes = 1 << 18;
    baselines::TinyStmLsa rt(config);
    const RunResult result = run_workload(*workload, rt, 2);
    EXPECT_TRUE(result.verified) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadOnTinyStm,
                         ::testing::ValuesIn(workload_names()));

TEST(WorkloadRegistry, KnowsAllSevenBenchmarks)
{
    const auto names = workload_names();
    EXPECT_EQ(names.size(), 7u);
    for (const auto& name : names) {
        EXPECT_NE(make_workload(name, small_params()), nullptr);
    }
}

TEST(TraceCapture, ProducesPlausibleTraces)
{
    auto workload = make_workload("vacation", small_params());
    TraceCaptureTm recorder;
    const RunResult result = run_workload(*workload, recorder, 1);
    EXPECT_TRUE(result.verified);
    const SimTrace& trace = recorder.trace();
    EXPECT_GT(trace.txns.size(), 1000u);
    EXPECT_GT(trace.mean_read_set(), 1.0);
    EXPECT_GT(trace.total_ops(), trace.txns.size());
    for (const auto& txn : trace.txns) {
        EXPECT_TRUE(std::is_sorted(txn.reads.begin(), txn.reads.end()));
        EXPECT_TRUE(
            std::is_sorted(txn.writes.begin(), txn.writes.end()));
    }
}

TEST(TraceCapture, GenomeHasReadOnlyTransactions)
{
    // The paper relies on genome's large fraction of empty-write-set
    // transactions (§6.3); the captured trace must show them.
    auto workload = make_workload("genome", small_params());
    TraceCaptureTm recorder;
    run_workload(*workload, recorder, 1);
    EXPECT_GT(recorder.trace().read_only_fraction(), 0.3);
}

TEST(TraceCapture, LabyrinthHasLongTransactions)
{
    auto workload = make_workload("labyrinth", small_params());
    TraceCaptureTm recorder;
    run_workload(*workload, recorder, 1);
    const SimTrace& trace = recorder.trace();
    // Route transactions read tens of grid cells.
    double max_reads = 0;
    for (const auto& txn : trace.txns) {
        max_reads = std::max(max_reads, double(txn.reads.size()));
    }
    EXPECT_GT(max_reads, 30.0);
}

TEST(TraceCapture, Ssca2HasTinyTransactions)
{
    auto workload = make_workload("ssca2", small_params());
    TraceCaptureTm recorder;
    run_workload(*workload, recorder, 1);
    EXPECT_LT(recorder.trace().mean_read_set(), 4.0);
    EXPECT_GT(recorder.trace().txns.size(), 4000u);
}

} // namespace
} // namespace rococo::stamp

namespace rococo::stamp {
namespace {

TEST(ContentionVariants, AllWorkloadsVerifyOnLowContention)
{
    WorkloadParams params = small_params();
    params.high_contention = false;
    for (const auto& name : workload_names()) {
        auto workload = make_workload(name, params);
        baselines::GlobalLockTm rt;
        EXPECT_TRUE(run_workload(*workload, rt, 2).verified) << name;
    }
}

TEST(ContentionVariants, LowContentionAbortsLess)
{
    // Captured traces replayed under the LSA model: the low-contention
    // variant must produce fewer aborts for contended workloads.
    // (Checked on kmeans, whose knob is the cluster count.)
    WorkloadParams high = small_params();
    WorkloadParams low = small_params();
    low.high_contention = false;

    auto capture = [](const WorkloadParams& p) {
        auto workload = make_workload("kmeans", p);
        TraceCaptureTm recorder;
        run_workload(*workload, recorder, 1);
        return recorder.take_trace();
    };
    const SimTrace t_high = capture(high);
    const SimTrace t_low = capture(low);

    sim::LsaSimBackend backend;
    sim::SimConfig config;
    config.threads = 8;
    const double high_rate =
        sim::simulate(t_high, backend, config).abort_rate();
    const double low_rate =
        sim::simulate(t_low, backend, config).abort_rate();
    EXPECT_LT(low_rate, high_rate);
}

} // namespace
} // namespace rococo::stamp

namespace rococo::stamp {
namespace {

TEST(Bayes, ImplementedButExcludedFromSuite)
{
    // The paper excludes bayes from Fig. 10 "due [to] its high
    // variability" (§6.3); the analogue exists, runs and verifies, but
    // stays out of the default suite.
    const auto names = workload_names();
    EXPECT_EQ(std::count(names.begin(), names.end(), "bayes"), 0);

    auto workload = make_workload("bayes", small_params());
    baselines::GlobalLockTm rt;
    const RunResult result = run_workload(*workload, rt, 2);
    EXPECT_TRUE(result.verified);
    EXPECT_GT(result.workload_stats.get("edges_learned"), 0u);
}

TEST(Bayes, RunsOnRococoTm)
{
    auto workload = make_workload("bayes", small_params());
    tm::RococoTm rt;
    const RunResult result = run_workload(*workload, rt, 2);
    EXPECT_TRUE(result.verified);
}

TEST(Bayes, TracesShowHighVariability)
{
    // The justification for the exclusion: transaction lengths vary
    // wildly (read sets depend on the evolving structure).
    auto workload = make_workload("bayes", small_params());
    TraceCaptureTm recorder;
    run_workload(*workload, recorder, 1);
    const SimTrace& trace = recorder.trace();
    ASSERT_GT(trace.txns.size(), 50u);
    size_t min_reads = SIZE_MAX, max_reads = 0;
    for (const auto& txn : trace.txns) {
        min_reads = std::min(min_reads, txn.reads.size());
        max_reads = std::max(max_reads, txn.reads.size());
    }
    EXPECT_GT(max_reads, 4 * std::max<size_t>(min_reads, 1));
}

} // namespace
} // namespace rococo::stamp
