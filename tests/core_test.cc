/// Property and unit tests for the ROCoCo core: reachability matrix,
/// sliding-window validator and the exact (set-based) validator.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/reachability_matrix.h"
#include "core/rococo_validator.h"
#include "core/sliding_window.h"
#include "graph/cycle.h"
#include "graph/dependency_graph.h"
#include "graph/transitive_closure.h"

namespace rococo::core {
namespace {

using graph::DependencyGraph;

/// Oracle mirroring a validator run: the full ->rw graph over ALL
/// committed transactions (evicted ones included).
class GraphOracle
{
  public:
    /// Would committing a transaction with these direct edges create a
    /// cycle among committed transactions?
    bool
    would_cycle(const std::vector<uint64_t>& forward,
                const std::vector<uint64_t>& backward) const
    {
        DependencyGraph g = graph_;
        const size_t v = g.add_vertex();
        for (uint64_t c : forward) g.add_edge(v, c);
        for (uint64_t c : backward) g.add_edge(c, v);
        return graph::has_cycle(g);
    }

    /// Record the commit (cid must equal the number of prior commits).
    void
    commit(uint64_t cid, const std::vector<uint64_t>& forward,
           const std::vector<uint64_t>& backward)
    {
        const size_t v = graph_.add_vertex();
        EXPECT_EQ(v, cid);
        for (uint64_t c : forward) graph_.add_edge(v, c);
        for (uint64_t c : backward) graph_.add_edge(c, v);
    }

    const DependencyGraph& graph() const { return graph_; }

  private:
    DependencyGraph graph_;
};

TEST(ReachabilityMatrix, EmptyProbeNeverCyclic)
{
    ReachabilityMatrix m(8);
    const ProbeResult probe = m.probe(BitVector(8), BitVector(8));
    EXPECT_FALSE(probe.cyclic);
    EXPECT_TRUE(probe.proceeding.none());
    EXPECT_TRUE(probe.succeeding.none());
}

TEST(ReachabilityMatrix, ChainReachability)
{
    // Commit t0, then t1 with b-edge to t0 (t0 -> t1), then t2 with
    // b-edge to t1: t0 must reach t2 transitively.
    ReachabilityMatrix m(8);
    m.insert(0, m.probe(BitVector(8), BitVector(8)));

    BitVector b1(8);
    b1.set(0);
    m.insert(1, m.probe(BitVector(8), b1));
    EXPECT_TRUE(m.reaches(0, 1));

    BitVector b2(8);
    b2.set(1);
    m.insert(2, m.probe(BitVector(8), b2));
    EXPECT_TRUE(m.reaches(1, 2));
    EXPECT_TRUE(m.reaches(0, 2)) << "transitive closure missing";
    EXPECT_FALSE(m.reaches(2, 0));
    EXPECT_TRUE(m.check_invariants());
}

TEST(ReachabilityMatrix, DirectTwoCycleDetected)
{
    ReachabilityMatrix m(4);
    m.insert(0, m.probe(BitVector(4), BitVector(4)));
    BitVector f(4), b(4);
    f.set(0);
    b.set(0);
    EXPECT_TRUE(m.probe(f, b).cyclic);
}

TEST(ReachabilityMatrix, CommitIntoThePast)
{
    // t0 commits; t1 commits with a forward edge to t0 (t1 precedes t0
    // in serial order even though it commits later) — the phantom
    // ordering TOCC forbids and ROCoCo allows.
    ReachabilityMatrix m(4);
    m.insert(0, m.probe(BitVector(4), BitVector(4)));
    BitVector f(4);
    f.set(0);
    const ProbeResult probe = m.probe(f, BitVector(4));
    EXPECT_FALSE(probe.cyclic);
    m.insert(1, probe);
    EXPECT_TRUE(m.reaches(1, 0));
    EXPECT_FALSE(m.reaches(0, 1));
    EXPECT_TRUE(m.check_invariants());
}

TEST(ReachabilityMatrix, IndirectCycleThroughClosure)
{
    // t1 |> t0 (committed into the past). A new transaction with
    // b-edge from t1 and f-edge to... t0 -> new -> t0? Build:
    // new has f-edge to t1 and b-edge from t0: new |> t1 |> t0 |> new?
    // t0 |> new requires b-edge from t0. Cycle: new -> t1 -> t0 -> new.
    ReachabilityMatrix m(4);
    m.insert(0, m.probe(BitVector(4), BitVector(4)));
    BitVector f1(4);
    f1.set(0);
    m.insert(1, m.probe(f1, BitVector(4))); // t1 |> t0

    BitVector f(4), b(4);
    f.set(1); // new |> t1 (and transitively |> t0)
    b.set(0); // t0 |> new
    EXPECT_TRUE(m.probe(f, b).cyclic);
}

TEST(ReachabilityMatrix, EvictionKeepsClosureAmongSurvivors)
{
    // 0 -> 1 -> 2; evicting 1 must keep 0 |> 2.
    ReachabilityMatrix m(8);
    m.insert(0, m.probe(BitVector(8), BitVector(8)));
    BitVector b1(8);
    b1.set(0);
    m.insert(1, m.probe(BitVector(8), b1));
    BitVector b2(8);
    b2.set(1);
    m.insert(2, m.probe(BitVector(8), b2));

    m.clear_slot(1);
    EXPECT_TRUE(m.reaches(0, 2));
    EXPECT_FALSE(m.occupied().test(1));
    EXPECT_TRUE(m.check_invariants());
}

TEST(ReachabilityMatrix, ReachesEvictedBlocksInvisibleCycle)
{
    // t1 |> t0 ("into the past"); evict t0. A future transaction that
    // reaches t1 would transitively precede the evicted t0, closing a
    // cycle with the invariant "evicted precedes all future commits" —
    // the probe must treat it as cyclic.
    ReachabilityMatrix m(4);
    m.insert(0, m.probe(BitVector(4), BitVector(4)));
    BitVector f1(4);
    f1.set(0);
    m.insert(1, m.probe(f1, BitVector(4))); // t1 |> t0
    m.clear_slot(0);
    EXPECT_TRUE(m.reaches_evicted().test(1));

    BitVector f(4);
    f.set(1); // new |> t1 |> (evicted t0)
    EXPECT_TRUE(m.probe(f, BitVector(4)).cyclic);
}

TEST(SlidingWindowValidator, AssignsSequentialCids)
{
    SlidingWindowValidator v(16);
    for (uint64_t i = 0; i < 5; ++i) {
        const auto r = v.validate_and_commit({});
        EXPECT_EQ(r.verdict, Verdict::kCommit);
        EXPECT_EQ(r.cid, i);
    }
    EXPECT_EQ(v.occupancy(), 5u);
    EXPECT_EQ(v.window_start(), 0u);
}

TEST(SlidingWindowValidator, WindowOverflowAbortsStaleDependency)
{
    SlidingWindowValidator v(4);
    for (int i = 0; i < 6; ++i) {
        ASSERT_EQ(v.validate_and_commit({}).verdict, Verdict::kCommit);
    }
    // cids 0 and 1 are evicted (window holds 2..5).
    EXPECT_EQ(v.window_start(), 2u);
    ValidationRequest stale;
    stale.backward = {1};
    EXPECT_EQ(v.validate_and_commit(stale).verdict,
              Verdict::kWindowOverflow);
    ValidationRequest fresh;
    fresh.backward = {2};
    EXPECT_EQ(v.validate_and_commit(fresh).verdict, Verdict::kCommit);
}

TEST(SlidingWindowValidator, AttributesTheConflictingCommit)
{
    SlidingWindowValidator v(8);
    for (uint64_t i = 0; i < 3; ++i) {
        const auto r = v.validate_and_commit({});
        ASSERT_EQ(r.verdict, Verdict::kCommit);
        // Commits never name a conflict.
        EXPECT_EQ(r.conflict_cid, kNoConflictCid);
    }
    // t both precedes and follows cid 1: a direct cycle whose witness
    // is exactly that commit.
    ValidationRequest cyc;
    cyc.forward = {1};
    cyc.backward = {1};
    const ValidationResult r = v.validate_and_commit(cyc);
    ASSERT_EQ(r.verdict, Verdict::kAbortCycle);
    EXPECT_EQ(r.conflict_cid, 1u);
    // The abort committed nothing; the window is unchanged.
    EXPECT_EQ(v.next_cid(), 3u);
}

TEST(SlidingWindowValidator, AttributesTransitiveCycles)
{
    // Chain 0 -> 1 -> 2 inside the window, then close the loop
    // transitively: t -> 0 and 2 -> t. The witness must be one of the
    // commits on the cycle (the exact pick is the probe's first hit).
    SlidingWindowValidator v(8);
    ASSERT_EQ(v.validate_and_commit({}).verdict, Verdict::kCommit);
    ValidationRequest after0;
    after0.backward = {0};
    ASSERT_EQ(v.validate_and_commit(after0).verdict, Verdict::kCommit);
    ValidationRequest after1;
    after1.backward = {1};
    ASSERT_EQ(v.validate_and_commit(after1).verdict, Verdict::kCommit);

    ValidationRequest loop;
    loop.forward = {0};
    loop.backward = {2};
    const ValidationResult r = v.validate_and_commit(loop);
    ASSERT_EQ(r.verdict, Verdict::kAbortCycle);
    EXPECT_NE(r.conflict_cid, kNoConflictCid);
    EXPECT_LT(r.conflict_cid, 3u);
}

TEST(SlidingWindowValidator, OverflowLeavesTheConflictSentinel)
{
    SlidingWindowValidator v(4);
    for (int i = 0; i < 6; ++i) {
        ASSERT_EQ(v.validate_and_commit({}).verdict, Verdict::kCommit);
    }
    ValidationRequest stale;
    stale.backward = {1}; // evicted
    const ValidationResult r = v.validate_and_commit(stale);
    ASSERT_EQ(r.verdict, Verdict::kWindowOverflow);
    // Overflow cannot name the evicted commit it depends on — the
    // window no longer knows it; provenance stays unattributed.
    EXPECT_EQ(r.conflict_cid, kNoConflictCid);
}

TEST(SlidingWindowValidator, ValidateOnlyDoesNotCommit)
{
    SlidingWindowValidator v(8);
    EXPECT_EQ(v.validate_only({}), Verdict::kCommit);
    EXPECT_EQ(v.next_cid(), 0u);
}

TEST(SlidingWindowValidator, MatchesOracleWithoutEviction)
{
    // Strict equivalence while nothing is evicted: verdicts must equal
    // the full-graph cycle oracle.
    Xoshiro256 rng(33);
    for (int round = 0; round < 20; ++round) {
        const size_t window = 64;
        SlidingWindowValidator v(window);
        GraphOracle oracle;
        int committed = 0;
        for (int t = 0; t < 60; ++t) {
            ValidationRequest req;
            for (uint64_t c = v.window_start(); c < v.next_cid(); ++c) {
                if (rng.chance(0.08)) req.forward.push_back(c);
                if (rng.chance(0.08)) req.backward.push_back(c);
            }
            const bool oracle_cyclic =
                oracle.would_cycle(req.forward, req.backward);
            const auto result = v.validate_and_commit(req);
            ASSERT_NE(result.verdict, Verdict::kWindowOverflow);
            EXPECT_EQ(result.verdict == Verdict::kAbortCycle, oracle_cyclic)
                << "round " << round << " txn " << t;
            if (result.verdict == Verdict::kCommit) {
                oracle.commit(result.cid, req.forward, req.backward);
                ++committed;
            }
        }
        EXPECT_GT(committed, 0);
    }
}

TEST(SlidingWindowValidator, SoundUnderEviction)
{
    // With a small window the validator may abort more than the oracle
    // (overflow, reaches-evicted) but must never commit a transaction
    // the full-history oracle says is cyclic, and the final committed
    // graph must be acyclic.
    Xoshiro256 rng(77);
    for (int round = 0; round < 15; ++round) {
        SlidingWindowValidator v(8);
        GraphOracle oracle;
        for (int t = 0; t < 120; ++t) {
            ValidationRequest req;
            for (uint64_t c = v.window_start(); c < v.next_cid(); ++c) {
                if (rng.chance(0.1)) req.forward.push_back(c);
                if (rng.chance(0.1)) req.backward.push_back(c);
            }
            const bool oracle_cyclic =
                oracle.would_cycle(req.forward, req.backward);
            const auto result = v.validate_and_commit(req);
            if (result.verdict == Verdict::kCommit) {
                EXPECT_FALSE(oracle_cyclic)
                    << "committed a cyclic transaction, round " << round
                    << " txn " << t;
                oracle.commit(result.cid, req.forward, req.backward);
            }
        }
        EXPECT_FALSE(graph::has_cycle(oracle.graph()));
    }
}

TEST(ExactValidator, SimpleCommitAndRaw)
{
    ExactRococoValidator v(16);
    const std::vector<uint64_t> w1 = {10, 11};
    EXPECT_EQ(v.validate({}, w1, 0).verdict, Verdict::kCommit);

    // Reader of 10 with a snapshot including cid 0: RAW backward edge,
    // commits.
    const std::vector<uint64_t> r2 = {10};
    const std::vector<uint64_t> w2 = {12};
    EXPECT_EQ(v.validate(r2, w2, 1).verdict, Verdict::kCommit);
}

TEST(ExactValidator, PhantomOrderingCommitsIntoThePast)
{
    // Fig. 2 (a): t2 updates x, then t1 — which read the OLD x (its
    // snapshot predates t2) — validates. TOCC aborts t1; ROCoCo
    // serializes t1 before t2 and commits.
    ExactRococoValidator v(16);
    const std::vector<uint64_t> x = {1};
    const std::vector<uint64_t> y = {2};
    EXPECT_EQ(v.validate({}, x, 0).verdict, Verdict::kCommit); // t2: W(x)

    // t1: R(x) old version (snapshot 0), W(y).
    EXPECT_EQ(v.validate(x, y, 0).verdict, Verdict::kCommit);
}

TEST(ExactValidator, LostUpdateAborts)
{
    // t read x before t2's write and also writes x: forward edge
    // (read old x) + backward WAW edge to the same commit = 2-cycle.
    ExactRococoValidator v(16);
    const std::vector<uint64_t> x = {1};
    EXPECT_EQ(v.validate({}, x, 0).verdict, Verdict::kCommit); // t2: W(x)
    EXPECT_EQ(v.validate(x, x, 0).verdict, Verdict::kAbortCycle);
}

TEST(ExactValidator, WindowOverflowOnAncientSnapshot)
{
    ExactRococoValidator v(4);
    const std::vector<uint64_t> w = {5};
    for (int i = 0; i < 6; ++i) {
        ASSERT_EQ(v.validate({}, w, v.next_cid()).verdict,
                  Verdict::kCommit);
    }
    const std::vector<uint64_t> r = {5};
    EXPECT_EQ(v.validate(r, {}, 0).verdict, Verdict::kWindowOverflow);
}

TEST(ExactValidator, ReadOnlyFastPathSkipsValidation)
{
    ExactRococoValidator strict(8, /*strict_read_only=*/true);
    ExactRococoValidator fast(8, /*strict_read_only=*/false);
    const std::vector<uint64_t> r = {7};
    EXPECT_EQ(fast.validate(r, {}, 0).verdict, Verdict::kCommit);
    EXPECT_EQ(fast.next_cid(), 0u); // no cid consumed
    EXPECT_EQ(strict.validate(r, {}, 0).verdict, Verdict::kCommit);
    EXPECT_EQ(strict.next_cid(), 1u); // enters the window
}

TEST(ExactValidator, StrictReadOnlyCatchesReadOnlyCycle)
{
    // Writer commits into the past around a read-only transaction:
    //   t_a writes x (cid 0).
    //   r reads x (sees cid 0) and reads y (old) — snapshot 1.
    //   t_b writes y with a snapshot predating r's y-read... t_b reads
    //   nothing, writes y with snapshot 0: WAR edge r -> t_b and also
    //   t_b must precede ... craft: r: R{x,y} snapshot 1 (saw t_a).
    //   t_b: R{x} old (snapshot 0 — before t_a), W{y}.
    // Serial constraints: t_a -> r (RAW x), r -> t_b (WAR y),
    // t_b -> t_a (read old x, forward edge). Cycle through r.
    ExactRococoValidator strict(16, /*strict_read_only=*/true);
    const std::vector<uint64_t> x = {1}, y = {2};
    std::vector<uint64_t> xy = {1, 2};

    ASSERT_EQ(strict.validate({}, x, 0).verdict, Verdict::kCommit); // t_a
    ASSERT_EQ(strict.validate(xy, {}, 1).verdict, Verdict::kCommit); // r
    // t_b: reads old x (snapshot 0), writes y.
    EXPECT_EQ(strict.validate(x, y, 0).verdict, Verdict::kAbortCycle);

    // The fast path misses it (documented restriction of the paper's
    // read-only direct commit).
    ExactRococoValidator fast(16, /*strict_read_only=*/false);
    ASSERT_EQ(fast.validate({}, x, 0).verdict, Verdict::kCommit);
    ASSERT_EQ(fast.validate(xy, {}, 1).verdict, Verdict::kCommit);
    EXPECT_EQ(fast.validate(x, y, 0).verdict, Verdict::kCommit);
}

TEST(ExactValidator, ClassifyEdges)
{
    ExactRococoValidator v(16);
    const std::vector<uint64_t> w0 = {1, 2};
    ASSERT_EQ(v.validate({}, w0, 0).verdict, Verdict::kCommit); // cid 0

    // Reader of 1 with snapshot 0 (did not see cid 0): forward edge.
    std::vector<uint64_t> r = {1};
    std::vector<uint64_t> w = {3};
    auto req = v.classify(r, w, 0);
    EXPECT_EQ(req.forward, (std::vector<uint64_t>{0}));
    EXPECT_TRUE(req.backward.empty());

    // Same reader with snapshot 1 (saw cid 0): backward RAW edge.
    req = v.classify(r, w, 1);
    EXPECT_TRUE(req.forward.empty());
    EXPECT_EQ(req.backward, (std::vector<uint64_t>{0}));

    // WAW: writing 2 adds a backward edge regardless of snapshot.
    std::vector<uint64_t> w2 = {2};
    req = v.classify({}, w2, 0);
    EXPECT_EQ(req.backward, (std::vector<uint64_t>{0}));
}

} // namespace
} // namespace rococo::core

namespace rococo::core {
namespace {

TEST(ReachabilityMatrix, FuzzClosureSupersetUnderEviction)
{
    // Differential fuzz: random insert/evict/probe sequences. The
    // matrix restricted to survivors must contain (as a superset) the
    // Warshall closure of the surviving direct edges — paths through
    // evicted vertices are legitimately remembered — and must satisfy
    // its structural invariants throughout.
    Xoshiro256 rng(123);
    for (int round = 0; round < 10; ++round) {
        const size_t window = 10;
        ReachabilityMatrix matrix(window);
        // Track surviving direct edges for the oracle.
        std::vector<std::pair<size_t, size_t>> direct_edges;
        std::vector<char> occupied(window, 0);

        for (int step = 0; step < 120; ++step) {
            const double dice = rng.uniform();
            if (dice < 0.55) {
                // Insert into a random free slot with random edges.
                std::vector<size_t> free_slots;
                for (size_t s = 0; s < window; ++s) {
                    if (!occupied[s]) free_slots.push_back(s);
                }
                if (free_slots.empty()) continue;
                const size_t slot =
                    free_slots[rng.below(free_slots.size())];
                BitVector f(window), b(window);
                for (size_t s = 0; s < window; ++s) {
                    if (!occupied[s]) continue;
                    if (rng.chance(0.15)) f.set(s);
                    if (rng.chance(0.15)) b.set(s);
                }
                const ProbeResult probe = matrix.probe(f, b);
                if (probe.cyclic) continue;
                matrix.insert(slot, probe);
                occupied[slot] = 1;
                for (size_t s = f.find_first(); s < window;
                     s = f.find_next(s)) {
                    direct_edges.push_back({slot, s});
                }
                for (size_t s = b.find_first(); s < window;
                     s = b.find_next(s)) {
                    direct_edges.push_back({s, slot});
                }
            } else if (dice < 0.75) {
                // Evict a random occupied slot.
                std::vector<size_t> used;
                for (size_t s = 0; s < window; ++s) {
                    if (occupied[s]) used.push_back(s);
                }
                if (used.empty()) continue;
                const size_t slot = used[rng.below(used.size())];
                matrix.clear_slot(slot);
                occupied[slot] = 0;
                std::erase_if(direct_edges, [&](const auto& e) {
                    return e.first == slot || e.second == slot;
                });
            } else {
                // Check: invariants + superset of survivors' closure.
                ASSERT_TRUE(matrix.check_invariants());
                DependencyGraph g(window);
                for (const auto& [from, to] : direct_edges) {
                    g.add_edge(from, to);
                }
                const BitMatrix closure =
                    graph::warshall_closure(g, /*reflexive=*/false);
                for (size_t i = 0; i < window; ++i) {
                    for (size_t j = 0; j < window; ++j) {
                        if (i == j || !closure.test(i, j)) continue;
                        EXPECT_TRUE(matrix.reaches(i, j))
                            << "missing " << i << "->" << j
                            << " at step " << step;
                    }
                }
            }
        }
    }
}

} // namespace
} // namespace rococo::core

namespace rococo::core {
namespace {

TEST(ReachabilityMatrix, DebugDumpShowsState)
{
    ReachabilityMatrix m(4);
    m.insert(0, m.probe(BitVector(4), BitVector(4)));
    BitVector b(4);
    b.set(0);
    m.insert(2, m.probe(BitVector(4), b));
    const std::string dump = m.debug_dump();
    EXPECT_NE(dump.find("W=4"), std::string::npos);
    EXPECT_NE(dump.find("slot 0"), std::string::npos);
    EXPECT_NE(dump.find("slot 2"), std::string::npos);
}

} // namespace
} // namespace rococo::core
