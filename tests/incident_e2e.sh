#!/bin/sh
# Conflict-forensics end-to-end: a loadgen-hosted server with the
# flight recorder armed, pumping a planted hot-key workload whose
# near-total abort rate must fire the abort-rate trigger.
#
#   $1 = path to svc_loadgen   $2 = path to svcctl
#   $3 = incident file prefix (files written as "$3-<seq>.json")
#   $4... = optional checker command (python3 check_trace_json.py);
#           when given, every incident file must validate --incident.
#
# While the sweep runs: `svcctl top` must surface the planted hot set,
# `svcctl dump` must write a manual incident and report its path, and
# the abort-rate burn-rate SLO must walk the storm to critical —
# observable as `svcctl monitor --once` turning its exit status
# non-zero. The loadgen's own exit status then proves two more things:
# the accounting ledger balanced AND the threshold trigger actually
# fired (it fails when "<prefix>-1.json" never appeared).
set -u

LOADGEN="$1"
SVCCTL="$2"
PREFIX="$3"
shift 3

SOCK="/tmp/incident_e2e_$$.sock"
rm -f "$PREFIX"-*.json

# The SLO windows are shrunk (200 ms fast / 1 s slow) so the burn-rate
# ladder walks ok -> warn -> critical within the sweep, not in minutes.
"$LOADGEN" --clients=2 --batch=8 --requests=400000 --hot-keys=8 \
    --socket="$SOCK" --recorder-out="$PREFIX" --abort-rate-trigger=0.5 \
    --slo-abort-rate=0.5 --slo-fast-ms=200 --slo-slow-ms=1000 \
    > /dev/null 2>&1 &
LOADGEN_PID=$!
trap 'kill "$LOADGEN_PID" 2>/dev/null; rm -f "$SOCK"' EXIT

tries=0
while [ ! -S "$SOCK" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "incident_e2e: server socket never appeared" >&2
        exit 1
    fi
    sleep 0.05
done

# The hot set is the 8 keys [0,8): the top-K sketch must surface them
# once the first conflicts land (poll — the sweep just started).
tries=0
until "$SVCCTL" --socket="$SOCK" top --json | grep -q '"key": [0-7]'; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "incident_e2e: top never surfaced the planted hot keys" >&2
        exit 1
    fi
    sleep 0.05
done
"$SVCCTL" --socket="$SOCK" top | grep -q 'key' || {
    echo "incident_e2e: top table form failed" >&2
    exit 1
}

# The storm must drive the abort-rate SLO to critical: poll the
# dashboard's scriptable form until its exit status goes non-zero.
tries=0
while "$SVCCTL" --socket="$SOCK" monitor --once > /dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -gt 200 ]; then
        echo "incident_e2e: monitor --once never reported critical" >&2
        exit 1
    fi
    sleep 0.05
done

# Manual dump against the armed recorder: ok + a real file.
DUMP_REPLY=$("$SVCCTL" --socket="$SOCK" dump) || {
    echo "incident_e2e: dump exited nonzero against an armed recorder" >&2
    exit 1
}
echo "$DUMP_REPLY" | grep -q '"ok": true' || {
    echo "incident_e2e: dump reply was not ok: $DUMP_REPLY" >&2
    exit 1
}

# Sweep end: accounting balanced and the abort-rate trigger fired.
wait "$LOADGEN_PID"
status=$?
trap - EXIT
rm -f "$SOCK"
if [ "$status" -ne 0 ]; then
    echo "incident_e2e: loadgen failed (accounting or missing trigger dump)" >&2
    exit 1
fi

# Both provenances must exist on disk: the threshold-triggered dump and
# the manual one.
TRIGGERED=$(grep -l '"trigger": "abort-rate"' "$PREFIX"-*.json | head -n 1)
if [ -z "$TRIGGERED" ]; then
    echo "incident_e2e: no abort-rate-triggered incident file" >&2
    exit 1
fi
MANUAL=$(grep -l '"trigger": "manual"' "$PREFIX"-*.json | head -n 1)
if [ -z "$MANUAL" ]; then
    echo "incident_e2e: no manual incident file" >&2
    exit 1
fi

# Third provenance: the burn-rate SLO's own critical transition dumps
# an incident that embeds the health verdicts and the breaching series
# rings — the storm's full story in one file.
SLO=$(grep -l '"trigger": "slo:abort-rate"' "$PREFIX"-*.json | head -n 1)
if [ -z "$SLO" ]; then
    echo "incident_e2e: no slo:abort-rate incident file" >&2
    exit 1
fi
grep -q '"svc.abort_rate"' "$SLO" || {
    echo "incident_e2e: SLO incident lacks the breaching series ring" >&2
    exit 1
}
grep -q '"to": "warn"' "$SLO" || {
    echo "incident_e2e: SLO incident records no ok->warn transition" >&2
    exit 1
}
grep -q '"to": "critical"' "$SLO" || {
    echo "incident_e2e: SLO incident records no warn->critical transition" >&2
    exit 1
}

# Schema-validate every incident the run produced.
if [ "$#" -gt 0 ]; then
    for file in "$PREFIX"-*.json; do
        "$@" "$file" --incident || {
            echo "incident_e2e: $file failed incident validation" >&2
            exit 1
        }
    done
fi
echo "incident_e2e: OK ($TRIGGERED, $MANUAL, $SLO)"
