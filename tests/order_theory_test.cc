/// Tests for the order-theory utilities and the compositionality
/// analysis of §2.2: SI composes per object, serializability does not
/// (Fig. 1 (b)).
#include <gtest/gtest.h>

#include "cc/replay.h"
#include "cc/semantics.h"
#include "cc/trace_generator.h"
#include "cc/snapshot_isolation.h"
#include "common/rng.h"
#include "graph/order_theory.h"
#include "graph/topo_sort.h"

namespace rococo {
namespace {

TEST(LinearExtensions, AntichainHasFactorialMany)
{
    graph::DependencyGraph g(4); // no edges
    EXPECT_EQ(graph::count_linear_extensions(g), 24u);
    const auto all = graph::linear_extensions(g);
    EXPECT_EQ(all.size(), 24u);
}

TEST(LinearExtensions, ChainHasExactlyOne)
{
    graph::DependencyGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    const auto all = graph::linear_extensions(g);
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0], (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(LinearExtensions, EveryExtensionIsTopological)
{
    Xoshiro256 rng(9);
    graph::DependencyGraph g(6);
    for (int e = 0; e < 7; ++e) {
        size_t a = rng.below(6), b = rng.below(6);
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        g.add_edge(a, b);
    }
    const auto all = graph::linear_extensions(g, 10000);
    ASSERT_FALSE(all.empty());
    for (const auto& order : all) {
        EXPECT_TRUE(graph::is_topological_order(g, order));
    }
    EXPECT_EQ(graph::count_linear_extensions(g, 10000), all.size());
}

TEST(LinearExtensions, CyclicHasNone)
{
    graph::DependencyGraph g(2);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    EXPECT_TRUE(graph::linear_extensions(g).empty());
    EXPECT_EQ(graph::count_linear_extensions(g), 0u);
    EXPECT_FALSE(graph::order_extension(g).has_value());
}

TEST(LinearExtensions, LimitCapsEnumeration)
{
    graph::DependencyGraph g(6); // 720 extensions
    EXPECT_EQ(graph::count_linear_extensions(g, 100), 100u);
    EXPECT_EQ(graph::linear_extensions(g, 5).size(), 5u);
}

TEST(LinearExtensions, MoreConstraintsFewerExtensions)
{
    // The §3.2 intuition made countable: every edge TOCC's timestamp
    // order adds beyond ->rw removes serialization freedom.
    graph::DependencyGraph loose(4);
    loose.add_edge(0, 1);
    graph::DependencyGraph tight(4);
    tight.add_edge(0, 1);
    tight.add_edge(1, 2);
    tight.add_edge(2, 3);
    EXPECT_GT(graph::count_linear_extensions(loose),
              graph::count_linear_extensions(tight));
}

TEST(Compositionality, WriteSkewIsPerObjectSerializable)
{
    // Fig. 1 (b): each object's projection is acyclic (x: t2 reads old,
    // t1 writes — a single WAR edge; y symmetric) but the composition
    // is a cycle: serializability is not compositional.
    cc::Trace trace;
    trace.num_locations = 2;
    trace.txns.push_back({{1}, {0}}); // t1: R(y) W(x)
    trace.txns.push_back({{0}, {1}}); // t2: R(x) W(y)
    trace.normalize();
    const std::vector<char> both = {1, 1};

    EXPECT_TRUE(cc::per_object_serializable(trace, both, 2));
    EXPECT_FALSE(cc::check_history(trace, both, 2).serializable)
        << "composition must be cyclic (Fig. 1 (b))";
}

TEST(Compositionality, SiHistoriesComposePerObject)
{
    // SI is compositional (§2.2): its committed histories are
    // per-object serializable by construction.
    cc::UniformTraceParams params;
    params.locations = 32;
    params.accesses = 6;
    params.txns = 200;
    for (uint64_t seed : {1u, 2u}) {
        params.seed = seed;
        const cc::Trace trace = cc::generate_uniform_trace(params);
        cc::SnapshotIsolation si;
        const auto result = cc::replay(si, trace, 8);
        EXPECT_TRUE(
            cc::per_object_serializable(trace, result.committed, 8))
            << "seed " << seed;
    }
}

TEST(Compositionality, FullSerializabilityImpliesPerObject)
{
    // The easy direction: a serializable history restricted to one
    // object stays serializable (sub-relations of acyclic relations
    // are acyclic).
    cc::Trace trace;
    trace.num_locations = 4;
    trace.txns.push_back({{}, {0, 1}});
    trace.txns.push_back({{0}, {2}});
    trace.txns.push_back({{1, 2}, {3}});
    trace.normalize();
    const std::vector<char> all = {1, 1, 1};
    ASSERT_TRUE(cc::check_history(trace, all, 2).serializable);
    EXPECT_TRUE(cc::per_object_serializable(trace, all, 2));
}

} // namespace
} // namespace rococo
