/// @file
/// Allocation canary for the zero-allocation request path: after
/// warmup (window filled, slot slab and ring grown to their high-water,
/// counter names interned), a steady-state validation must perform
/// ZERO heap allocations end to end — classification scratch, the
/// validator's closure scratch, the pipeline's slot recycling and the
/// per-verdict counter arrays all reuse what warmup built. The test
/// binary replaces global operator new/delete with counting versions,
/// so any regression — a stray std::string, a vector that lost its
/// reserve, a promise on the sync path — fails deterministically
/// rather than showing up as a profile blip.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fpga/validation_engine.h"
#include "fpga/validation_pipeline.h"
#include "kv/kv_2pl.h"
#include "kv/kv_store.h"
#include "obs/health.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "shard/router.h"
#include "svc/worker_pool.h"

namespace {
std::atomic<uint64_t> g_allocations{0};

uint64_t
allocations()
{
    return g_allocations.load(std::memory_order_relaxed);
}
} // namespace

// Counting global allocator. Deletes are deliberately not counted: the
// canary is "no allocation on the hot path", and every new implies a
// matching delete somewhere.
void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return operator new(size);
}

void*
operator new(std::size_t size, std::align_val_t align)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(align),
                       size ? size : 1) == 0) {
        return p;
    }
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}
void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void* p) noexcept
{
    std::free(p);
}
void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void* p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void* p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace rococo {
namespace {

/// Deterministic always-commit workload: every request writes one
/// fresh key (never seen again — no cycles possible) plus one key from
/// a small rotating pool (real WAW edges, so the classify emit loop
/// and the backward-edge path run every iteration, not just on bloom
/// coincidences). No reads, so no forward edges and a guaranteed
/// kCommit — the steady state repeats one verdict, one code path.
fpga::OffloadRequest
workload_request(uint64_t i)
{
    fpga::OffloadRequest request;
    request.writes.push_back(uint64_t{1} << 32 | i); // unique
    request.writes.push_back(i % 32);                // contended pool
    request.snapshot_cid = 0;
    return request;
}

TEST(HotPathAllocation, EngineProcessSteadyStateIsAllocationFree)
{
    fpga::ValidationEngine engine; // W=64, 512-bit, 4 hashes
    uint64_t i = 0;
    // Warmup: fill the window twice over (evictions underway), reach
    // the classify scratch's high-water, intern the verdict counter.
    for (; i < 256; ++i) {
        ASSERT_EQ(engine.process(workload_request(i)).verdict,
                  core::Verdict::kCommit);
    }

    const uint64_t before = allocations();
    for (const uint64_t end = i + 1000; i < end; ++i) {
        ASSERT_EQ(engine.process(workload_request(i)).verdict,
                  core::Verdict::kCommit);
    }
    EXPECT_EQ(allocations() - before, 0u)
        << "engine.process() allocated on the steady-state path";
}

TEST(HotPathAllocation, PipelineValidateSteadyStateIsAllocationFree)
{
    fpga::ValidationPipeline pipeline;
    uint64_t i = 0;
    // Warmup: window filled, slot slab and pointer ring at their
    // high-water, every counter this workload touches interned. The
    // sync validate() path is sequential, so the slab never grows past
    // a handful of slots — but give the worker a head start anyway.
    for (; i < 256; ++i) {
        ASSERT_EQ(pipeline.validate(workload_request(i)).verdict,
                  core::Verdict::kCommit);
    }

    const uint64_t before = allocations();
    for (const uint64_t end = i + 1000; i < end; ++i) {
        ASSERT_EQ(pipeline.validate(workload_request(i)).verdict,
                  core::Verdict::kCommit);
    }
    EXPECT_EQ(allocations() - before, 0u)
        << "pipeline.validate() allocated on the steady-state path";
}

/// Conflicting workload: each round a writer commits a hot key, then a
/// victim re-reads and re-writes the same key behind a snapshot that
/// does not see that commit — a guaranteed cycle abort, every round,
/// that stays inside the sliding window forever. The abort path —
/// conflict-cid attribution walking window slots plus the top-K
/// forensics feed (at its default sample-every-abort rate, sketch
/// saturated on the 8-key hot set) — must be as allocation-free as the
/// commit path.
TEST(HotPathAllocation, AbortPathWithForensicsIsAllocationFree)
{
    fpga::ValidationEngine engine;

    // One writer-commit + victim-abort round on hot key (i % 8).
    // Returns the abort's conflict_cid for provenance checks.
    const auto round = [&engine](uint64_t i) -> uint64_t {
        fpga::OffloadRequest writer;
        writer.writes.push_back(i % 8);
        writer.snapshot_cid = ~uint64_t{0} >> 1; // current: commits
        const auto committed = engine.process(writer);
        EXPECT_EQ(committed.verdict, core::Verdict::kCommit);

        fpga::OffloadRequest victim;
        victim.reads.push_back(i % 8);
        victim.writes.push_back(i % 8);
        victim.snapshot_cid = committed.cid; // does not see the writer
        const auto aborted = engine.process(victim);
        EXPECT_EQ(aborted.verdict, core::Verdict::kAbortCycle);
        EXPECT_EQ(aborted.conflict_cid, committed.cid)
            << "cycle abort lost its provenance";
        return aborted.conflict_cid;
    };

    uint64_t i = 0;
    // Warmup: window churned past capacity, top-K sketch saturated,
    // abort-reason counters interned.
    for (; i < 128; ++i) {
        round(i);
        if (testing::Test::HasFailure()) return;
    }

    const uint64_t before = allocations();
    for (const uint64_t end = i + 500; i < end; ++i) {
        round(i);
        if (testing::Test::HasFailure()) return;
    }
    EXPECT_EQ(allocations() - before, 0u)
        << "abort attribution or the top-K feed allocated on the "
           "steady-state path";
#ifndef ROCOCO_FORENSICS_OFF
    EXPECT_GT(engine.conflict_topk().offered(), 0u)
        << "forensics feed never ran despite aborts";
#endif
}

/// Continuous monitoring armed over the validation loop: an engine
/// processing requests while a MetricSampler + SloEngine (the
/// HealthMonitor pair every monitored server runs) tick on every
/// iteration, sampling a counter, a ratio, a gauge, a histogram
/// quantile and a callback series, with a live burn-rate rule. After
/// the rings have wrapped at least once, the combined loop — engine
/// pass, sampler tick, SLO evaluation — must be exactly
/// allocation-free: the monitoring substrate resolved its sources and
/// sized its rings at construction, and a steady-state sample writes
/// into preallocated storage only.
TEST(HotPathAllocation, MonitoredSteadyStateIsAllocationFree)
{
    fpga::ValidationEngine engine;
    obs::Registry registry;
    obs::Counter& requests = registry.counter("requests");
    obs::Counter& aborts = registry.counter("aborts");
    obs::Gauge& depth = registry.gauge("depth");
    obs::LatencyHistogram& latency = registry.histogram("latency");

    obs::MetricSamplerConfig sampler_config;
    sampler_config.sample_period_ns = 1; // sample on every tick
    sampler_config.ring_capacity = 32;   // wraps fast
    {
        obs::SeriesSpec spec;
        spec.name = "requests";
        spec.kind = obs::SeriesKind::kCounter;
        spec.counters = {&requests};
        sampler_config.series.push_back(spec);
    }
    {
        obs::SeriesSpec spec;
        spec.name = "abort_rate";
        spec.kind = obs::SeriesKind::kRatio;
        spec.counters = {&aborts};
        spec.denominators = {&requests};
        sampler_config.series.push_back(spec);
    }
    {
        obs::SeriesSpec spec;
        spec.name = "depth";
        spec.kind = obs::SeriesKind::kGauge;
        spec.gauge = &depth;
        sampler_config.series.push_back(spec);
    }
    {
        obs::SeriesSpec spec;
        spec.name = "p99";
        spec.kind = obs::SeriesKind::kQuantile;
        spec.histogram = &latency;
        sampler_config.series.push_back(spec);
    }
    {
        obs::SeriesSpec spec;
        spec.name = "occupancy";
        spec.kind = obs::SeriesKind::kCallback;
        spec.callback = [&engine] {
            return double(engine.next_cid() - engine.window_start());
        };
        sampler_config.series.push_back(spec);
    }

    obs::SloEngineConfig slo_config;
    obs::SloRule rule;
    rule.name = "abort-rate";
    rule.series = "abort_rate";
    rule.threshold = 0.9;
    rule.fast_window_ns = 50;
    rule.slow_window_ns = 400;
    rule.min_weight = 1.0;
    slo_config.rules.push_back(rule);

    obs::HealthMonitor monitor(std::move(sampler_config),
                               std::move(slo_config));

    uint64_t now_ns = 1;
    const auto iteration = [&](uint64_t i) {
        const auto result = engine.process(workload_request(i));
        EXPECT_EQ(result.verdict, core::Verdict::kCommit);
        requests.add(1);
        latency.record(100 + i % 700);
        depth.set(double(i % 64));
        monitor.tick(now_ns);
        now_ns += 10;
    };

    uint64_t i = 0;
    // Warmup: engine window churned AND every series ring wrapped
    // (capacity 32, one sample per iteration), so ring pushes overwrite
    // rather than grow and the SLO has full windows to aggregate.
    for (; i < 256; ++i) {
        iteration(i);
        if (testing::Test::HasFailure()) return;
    }
    ASSERT_GT(monitor.sampler().samples_taken(), 64u);

    const uint64_t before = allocations();
    for (const uint64_t end = i + 1000; i < end; ++i) {
        iteration(i);
        if (testing::Test::HasFailure()) return;
    }
    EXPECT_EQ(allocations() - before, 0u)
        << "the armed sampler/SLO tick allocated on the steady-state "
           "path";
    EXPECT_EQ(monitor.slo().overall(), obs::HealthState::kOk);
}

/// The multi-threaded server's worker pool makes the same promise for
/// the full IO-thread half of a request's life: acquire a slab job,
/// fill its offload in place, submit to the home-shard worker, drain
/// the completion back and release. After warmup (slab recycled, feed
/// rings and completion vectors at capacity, the workers'
/// thread_local router scratch grown, per-shard windows churned), a
/// steady-state round trip must allocate ZERO times on the submitting
/// thread — this is exactly what Server::loop runs per request in
/// worker mode. The workload alternates the contended-pool write so
/// both single-shard (affinity handoff) and cross-shard (two-phase)
/// routes stay warm.
TEST(HotPathAllocation, WorkerPoolRoundTripIsAllocationFree)
{
    shard::ShardConfig shard_config;
    shard_config.shards = 2;
    shard::ShardRouter router(shard_config);
    svc::WorkerPool pool(router, /*threads=*/2, /*capacity=*/16);
    ASSERT_TRUE(pool.start());

    std::vector<svc::WorkerJob*> finished;
    finished.reserve(16);

    const auto iteration = [&](uint64_t i) {
        svc::WorkerJob* job = pool.acquire();
        ASSERT_NE(job, nullptr);
        job->request_id = i;
        job->arrival_ns = 1;
        job->deadline_ns = 0;
        // Same always-commit shape as workload_request(), written in
        // place so the job's SmallVector storage is reused.
        job->offload.writes.push_back(uint64_t{1} << 32 | i);
        job->offload.writes.push_back(i % 32);
        job->offload.snapshot_cid = 0;
        pool.submit(job);
        // One job in flight: spin on the drain (read + lock + swap,
        // no allocation) until the worker answers.
        while (pool.drain_completions(finished) == 0) {}
        ASSERT_EQ(finished.size(), 1u);
        EXPECT_EQ(finished.front()->result.verdict, core::Verdict::kCommit);
        pool.release(finished.front());
        finished.clear();
    };

    uint64_t i = 0;
    // Warmup: both workers' thread_local scratch grown (the contended
    // pool spans both shards), per-shard windows evicting, the job's
    // offload vectors at high-water.
    for (; i < 256; ++i) {
        iteration(i);
        if (testing::Test::HasFailure()) return;
    }

    const uint64_t before = allocations();
    for (const uint64_t end = i + 1000; i < end; ++i) {
        iteration(i);
        if (testing::Test::HasFailure()) return;
    }
    EXPECT_EQ(allocations() - before, 0u)
        << "the worker-pool round trip allocated on the steady-state "
           "path";
    pool.stop();
}

/// Steady-state KV operations — get, put, scan and a 4-key rmw, the
/// full transaction machinery under each one — must be
/// allocation-free per committed transaction: key hashing is in
/// place, op contexts live on the stack (the execute closure is two
/// words, inside std::function's inline buffer), the descriptor's
/// sets/signatures and the commit-log scratch reuse their high-water
/// capacity, the offload address sets stay inline, and every kv.*
/// metric handle was resolved at store construction.
TEST(HotPathAllocation, KvOccSteadyStateIsAllocationFree)
{
    kv::KvStoreConfig config;
    config.capacity = 1 << 12; // sparse: probe chains stay short
    kv::KvStore store(config);
    store.thread_init(0);

    // Fixed key set, formatted once — the op path takes string_views.
    constexpr size_t kKeys = 64;
    std::vector<std::string> key_strings;
    std::vector<std::string_view> keys;
    for (size_t i = 0; i < kKeys; ++i) {
        key_strings.push_back("user" + std::to_string(i));
    }
    for (const std::string& k : key_strings) keys.push_back(k);
    for (size_t i = 0; i < kKeys; ++i) {
        ASSERT_EQ(store.put(keys[i], i), kv::KvStatus::kOk);
    }

    const auto iteration = [&](uint64_t i) {
        uint64_t value = 0;
        EXPECT_EQ(store.get(keys[i % kKeys], value), kv::KvStatus::kOk);
        EXPECT_EQ(store.put(keys[(i + 1) % kKeys], i), kv::KvStatus::kOk);
        const std::string_view scan_keys[4] = {
            keys[i % kKeys], keys[(i + 7) % kKeys],
            keys[(i + 13) % kKeys], keys[(i + 21) % kKeys]};
        kv::RmwEntry entries[4];
        EXPECT_EQ(store.scan(scan_keys, entries), kv::KvStatus::kOk);
        auto body = [](std::span<kv::RmwEntry> e) {
            for (kv::RmwEntry& entry : e) {
                entry.value += 1;
                entry.write = true;
            }
        };
        EXPECT_EQ(store.rmw(scan_keys, body), kv::KvStatus::kOk);
    };

    uint64_t i = 0;
    // Warmup: descriptor sets/redo at high-water, commit log warm,
    // every touched metric interned.
    for (; i < 256; ++i) {
        iteration(i);
        if (testing::Test::HasFailure()) return;
    }

    const uint64_t before = allocations();
    for (const uint64_t end = i + 1000; i < end; ++i) {
        iteration(i);
        if (testing::Test::HasFailure()) return;
    }
    EXPECT_EQ(allocations() - before, 0u)
        << "a KV operation allocated on the steady-state path";
    store.thread_fini();
}

/// The 2PL baseline's point ops and bounded multi-key transactions
/// make the same promise (stripe sets live in inline SmallVectors).
TEST(HotPathAllocation, Kv2plSteadyStateIsAllocationFree)
{
    kv::Kv2plConfig config;
    config.capacity = 1 << 12;
    kv::KvStore2pl store(config);
    store.thread_init(0);

    constexpr size_t kKeys = 64;
    std::vector<std::string> key_strings;
    std::vector<std::string_view> keys;
    for (size_t i = 0; i < kKeys; ++i) {
        key_strings.push_back("user" + std::to_string(i));
    }
    for (const std::string& k : key_strings) keys.push_back(k);
    for (size_t i = 0; i < kKeys; ++i) {
        ASSERT_EQ(store.put(keys[i], i), kv::KvStatus::kOk);
    }

    const auto iteration = [&](uint64_t i) {
        uint64_t value = 0;
        EXPECT_EQ(store.get(keys[i % kKeys], value), kv::KvStatus::kOk);
        EXPECT_EQ(store.put(keys[(i + 1) % kKeys], i), kv::KvStatus::kOk);
        const std::string_view txn_keys[4] = {
            keys[i % kKeys], keys[(i + 7) % kKeys],
            keys[(i + 13) % kKeys], keys[(i + 21) % kKeys]};
        kv::RmwEntry entries[4];
        EXPECT_EQ(store.scan(txn_keys, entries), kv::KvStatus::kOk);
        auto body = [](std::span<kv::RmwEntry> e) {
            for (kv::RmwEntry& entry : e) {
                entry.value += 1;
                entry.write = true;
            }
        };
        EXPECT_EQ(store.rmw(txn_keys, body), kv::KvStatus::kOk);
    };

    uint64_t i = 0;
    for (; i < 256; ++i) {
        iteration(i);
        if (testing::Test::HasFailure()) return;
    }

    const uint64_t before = allocations();
    for (const uint64_t end = i + 1000; i < end; ++i) {
        iteration(i);
        if (testing::Test::HasFailure()) return;
    }
    EXPECT_EQ(allocations() - before, 0u)
        << "a 2PL KV operation allocated on the steady-state path";
    store.thread_fini();
}

} // namespace
} // namespace rococo
