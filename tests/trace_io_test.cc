/// Round-trip and malformed-input tests for the trace serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "cc/trace_generator.h"
#include "cc/trace_io.h"

namespace rococo::cc {
namespace {

TEST(TraceIo, RoundTripPreservesTrace)
{
    UniformTraceParams params;
    params.txns = 60;
    params.seed = 3;
    const Trace original = generate_uniform_trace(params);

    std::stringstream buffer;
    ASSERT_TRUE(save_trace(buffer, original));
    const auto loaded = load_trace(buffer);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->size(), original.size());
    EXPECT_EQ(loaded->num_locations, original.num_locations);
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded->txns[i].reads, original.txns[i].reads) << i;
        EXPECT_EQ(loaded->txns[i].writes, original.txns[i].writes) << i;
    }
}

TEST(TraceIo, EmptySectionsAndComments)
{
    std::stringstream in(
        "# a reproducer\n"
        "trace v1 16\n"
        "txn R W 3\n"
        "\n"
        "txn R 1 2 W\n");
    const auto trace = load_trace(in);
    ASSERT_TRUE(trace.has_value());
    ASSERT_EQ(trace->size(), 2u);
    EXPECT_TRUE(trace->txns[0].reads.empty());
    EXPECT_EQ(trace->txns[0].writes, (std::vector<uint64_t>{3}));
    EXPECT_EQ(trace->txns[1].reads, (std::vector<uint64_t>{1, 2}));
    EXPECT_TRUE(trace->txns[1].writes.empty());
}

TEST(TraceIo, RejectsMalformedInput)
{
    const char* bad[] = {
        "",                                  // no header
        "trace v2 16\n",                     // wrong version
        "trace v1 16\nxtn R W\n",            // bad record tag
        "trace v1 16\ntxn R 1 2\n",          // missing W section
        "trace v1 16\ntxn R 1 W 2 W 3\n",    // duplicate W
        "trace v1 16\ntxn R abc W\n",        // non-numeric address
        "trace v1 16\ntxn R 1x W\n",         // trailing junk in number
        "trace v1\n",                        // missing location count
    };
    for (const char* text : bad) {
        std::stringstream in(text);
        EXPECT_FALSE(load_trace(in).has_value()) << "input: " << text;
    }
}

TEST(TraceIo, FileHelpers)
{
    UniformTraceParams params;
    params.txns = 10;
    const Trace original = generate_uniform_trace(params);
    const std::string path = ::testing::TempDir() + "/roundtrip.trace";
    ASSERT_TRUE(save_trace_file(path, original));
    const auto loaded = load_trace_file(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->size(), original.size());
    EXPECT_FALSE(load_trace_file(path + ".missing").has_value());
}

} // namespace
} // namespace rococo::cc
