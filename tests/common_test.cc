/// Unit tests for src/common: bit containers, stats, histogram, table,
/// CLI, RNG, barrier and blocking queue.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <set>
#include <thread>

#include "common/barrier.h"
#include "common/bitmatrix.h"
#include "common/bitvector.h"
#include "common/cli.h"
#include "common/csv.h"
#include "common/histogram.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/zipf.h"

namespace rococo {
namespace {

TEST(BitVector, SetTestReset)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(129));
    EXPECT_FALSE(v.test(1));
    EXPECT_EQ(v.count(), 3u);
    v.reset(64);
    EXPECT_FALSE(v.test(64));
    EXPECT_EQ(v.count(), 2u);
}

TEST(BitVector, FindFirstAndNext)
{
    BitVector v(200);
    EXPECT_EQ(v.find_first(), 200u);
    v.set(3);
    v.set(67);
    v.set(199);
    EXPECT_EQ(v.find_first(), 3u);
    EXPECT_EQ(v.find_next(3), 67u);
    EXPECT_EQ(v.find_next(67), 199u);
    EXPECT_EQ(v.find_next(199), 200u);
}

TEST(BitVector, IterationMatchesTest)
{
    Xoshiro256 rng(11);
    BitVector v(257);
    std::set<size_t> expected;
    for (int i = 0; i < 60; ++i) {
        const size_t bit = rng.below(257);
        v.set(bit);
        expected.insert(bit);
    }
    std::set<size_t> seen;
    for (size_t b = v.find_first(); b < v.size(); b = v.find_next(b)) {
        seen.insert(b);
    }
    EXPECT_EQ(seen, expected);
}

TEST(BitVector, BooleanOps)
{
    BitVector a(100), b(100);
    a.set(5);
    a.set(70);
    b.set(70);
    b.set(99);
    EXPECT_TRUE(a.intersects(b));
    BitVector u = a;
    u |= b;
    EXPECT_EQ(u.count(), 3u);
    BitVector i = a;
    i &= b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(70));
    b.reset(70);
    EXPECT_FALSE(a.intersects(b));
}

TEST(BitVector, ClearAndToString)
{
    BitVector v(4);
    v.set(1);
    v.set(3);
    EXPECT_EQ(v.to_string(), "0101");
    v.clear();
    EXPECT_TRUE(v.none());
}

TEST(BitMatrix, TransposeAndColumn)
{
    BitMatrix m(5);
    m.set(0, 3);
    m.set(2, 3);
    m.set(4, 1);
    const BitMatrix t = m.transposed();
    EXPECT_TRUE(t.test(3, 0));
    EXPECT_TRUE(t.test(3, 2));
    EXPECT_TRUE(t.test(1, 4));
    EXPECT_FALSE(t.test(0, 3));
    const BitVector col3 = m.column(3);
    EXPECT_TRUE(col3.test(0));
    EXPECT_TRUE(col3.test(2));
    EXPECT_FALSE(col3.test(4));
}

TEST(BitMatrix, Diagonal)
{
    BitMatrix m(3);
    m.set_diagonal();
    for (size_t i = 0; i < 3; ++i) EXPECT_TRUE(m.test(i, i));
}

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(CounterBag, BumpMergeRender)
{
    CounterBag a, b;
    a.bump("x");
    a.bump("x", 2);
    b.bump("y", 5);
    a.add(b);
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 5u);
    EXPECT_EQ(a.get("z"), 0u);
    EXPECT_EQ(a.to_string(), "x=3 y=5");
}

TEST(Histogram, QuantileAndMean)
{
    Histogram h(0, 100, 10);
    for (int i = 0; i < 100; ++i) h.add(i + 0.5);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_NEAR(h.mean(), 50.0, 0.01);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 10.0);
}

TEST(Histogram, OverflowBuckets)
{
    Histogram h(0, 10, 5);
    h.add(-5);
    h.add(100);
    EXPECT_EQ(h.total(), 2u);
    EXPECT_FALSE(h.to_string().empty());
}

TEST(Histogram, QuantileUnderflowReportsObservedMin)
{
    // All samples below lo land in the underflow bucket; quantiles must
    // report the observed minimum, not lo itself.
    Histogram h(0, 10, 5);
    h.add(-7);
    h.add(-3);
    EXPECT_DOUBLE_EQ(h.min(), -7.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), -7.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), -7.0);
}

TEST(Histogram, QuantileOverflowReportsObservedMax)
{
    Histogram h(0, 10, 5);
    h.add(5);
    h.add(1000);
    EXPECT_DOUBLE_EQ(h.max(), 1000.0);
    // The upper quantile lands in the overflow bucket: report the true
    // maximum, not the hi boundary.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
    EXPECT_GT(h.quantile(0.99), 10.0);
}

TEST(Histogram, QuantileClampsArgumentAndRange)
{
    Histogram h(0, 10, 5);
    h.add(2.5);
    h.add(7.5);
    // Out-of-range q is clamped instead of walking off the end.
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
    // No sample exceeds 7.5, so no quantile may either.
    EXPECT_LE(h.quantile(1.0), 7.5);
    EXPECT_GE(h.quantile(0.0), 2.5);
}

TEST(Histogram, QuantileEmpty)
{
    Histogram h(5, 10, 5);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Table, Renders)
{
    Table t({"name", "value"});
    t.row().cell("alpha").num(uint64_t{42});
    t.row().cell("beta").num(3.14159, 2);
    const std::string out = t.to_string();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
}

TEST(Cli, ParsesFlags)
{
    const char* argv[] = {"prog", "--threads=4", "--name", "foo",
                          "--flag"};
    Cli cli(5, const_cast<char**>(argv), {"threads", "name", "flag"});
    EXPECT_EQ(cli.get_int("threads", 1), 4);
    EXPECT_EQ(cli.get("name", ""), "foo");
    EXPECT_TRUE(cli.get_bool("flag", false));
    EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, ParsesIntList)
{
    const char* argv[] = {"prog", "--threads=1,4,28"};
    Cli cli(2, const_cast<char**>(argv), {"threads"});
    EXPECT_EQ(cli.get_int_list("threads", {}),
              (std::vector<int>{1, 4, 28}));
}

TEST(Rng, DeterministicAndSplit)
{
    Xoshiro256 a(42), b(42);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
    Xoshiro256 child = a.split();
    EXPECT_NE(a(), child());
}

TEST(Rng, BelowInRangeAndUniform)
{
    Xoshiro256 rng(1);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Zipf, ThetaZeroIsExactlyUniform)
{
    // theta = 0 weights every rank 1, so the CDF is the uniform one and
    // draw frequencies match rng.below to sampling noise.
    const uint64_t n = 16;
    ZipfSampler sampler(n, 0.0);
    for (uint64_t k = 1; k <= n; ++k) {
        EXPECT_DOUBLE_EQ(sampler.head_mass(k), double(k) / double(n));
    }
    Xoshiro256 rng(42);
    std::vector<uint64_t> counts(n, 0);
    const uint64_t draws = 160000;
    for (uint64_t i = 0; i < draws; ++i) ++counts[sampler.draw(rng)];
    for (uint64_t k = 0; k < n; ++k) {
        EXPECT_NEAR(double(counts[k]), double(draws) / double(n),
                    0.05 * double(draws) / double(n))
            << "rank " << k;
    }
}

TEST(Zipf, SkewConcentratesHeadMass)
{
    // YCSB's canonical theta: the hottest 1% of a 10k key space carries
    // far more than 1% of the mass, and empirical draw frequencies
    // track the analytic head mass.
    ZipfSampler sampler(10000, 0.99);
    const double head = sampler.head_mass(100);
    EXPECT_GT(head, 0.3);
    EXPECT_LT(head, 1.0);

    Xoshiro256 rng(7);
    uint64_t in_head = 0;
    const uint64_t draws = 100000;
    for (uint64_t i = 0; i < draws; ++i) {
        if (sampler.draw(rng) < 100) ++in_head;
    }
    EXPECT_NEAR(double(in_head) / double(draws), head, 0.02);
    // Rank 0 strictly hotter than a mid-pack rank, by construction.
    EXPECT_GT(sampler.head_mass(1),
              sampler.head_mass(5001) - sampler.head_mass(5000));
}

TEST(Zipf, DrawsCoverRangeAndAreDeterministic)
{
    ZipfSampler sampler(8, 1.2);
    Xoshiro256 a(123), b(123);
    std::set<uint64_t> seen;
    for (int i = 0; i < 4000; ++i) {
        const uint64_t x = sampler.draw(a);
        EXPECT_EQ(x, sampler.draw(b)); // same seed, same stream
        EXPECT_LT(x, 8u);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 8u) << "4000 draws over 8 ranks missed one";
}

TEST(Zipf, SingleKeySpace)
{
    ZipfSampler sampler(1, 0.99);
    Xoshiro256 rng(1);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.draw(rng), 0u);
    EXPECT_DOUBLE_EQ(sampler.head_mass(1), 1.0);
}

TEST(Barrier, SynchronizesPhases)
{
    constexpr unsigned kThreads = 4;
    Barrier barrier(kThreads);
    std::atomic<int> phase_counter{0};
    std::vector<std::thread> threads;
    std::atomic<bool> ok{true};
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int phase = 0; phase < 3; ++phase) {
                phase_counter.fetch_add(1);
                barrier.arrive_and_wait();
                // After the barrier every participant of this phase has
                // incremented.
                if (phase_counter.load() < (phase + 1) * int(kThreads)) {
                    ok = false;
                }
                barrier.arrive_and_wait();
            }
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_TRUE(ok);
    EXPECT_EQ(phase_counter.load(), 12);
}

TEST(BlockingQueue, FifoAndClose)
{
    BlockingQueue<int> q;
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.try_pop().has_value());
    q.push(3);
    q.close();
    EXPECT_EQ(q.pop().value(), 3); // drains after close
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.push(4));
}

TEST(BlockingQueue, CapacityLimit)
{
    BlockingQueue<int> q(2);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_FALSE(q.try_push(3));
    q.pop();
    EXPECT_TRUE(q.try_push(3));
}

TEST(BlockingQueue, CloseNowHandsBackUndrainedItems)
{
    // Regression for the pipeline shutdown path: items still queued at
    // close_now() must come back to the caller (who resolves their
    // promises) and become invisible to consumers — a pop after
    // close_now returns nullopt immediately instead of draining.
    BlockingQueue<int> q;
    q.push(1);
    q.push(2);
    q.push(3);
    const std::deque<int> pending = q.close_now();
    ASSERT_EQ(pending.size(), 3u);
    EXPECT_EQ(pending[0], 1);
    EXPECT_EQ(pending[2], 3);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.push(4));
    EXPECT_EQ(q.size(), 0u);
    EXPECT_TRUE(q.close_now().empty()); // idempotent
}

TEST(BlockingQueue, CloseNowWakesBlockedConsumer)
{
    BlockingQueue<int> q;
    std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
    // Give the consumer a chance to block, then close underneath it.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(q.close_now().empty());
    consumer.join();
}

TEST(BlockingQueue, PopBatchDrainsWhatAccumulated)
{
    BlockingQueue<int> q;
    for (int i = 0; i < 10; ++i) q.push(i);
    const std::vector<int> batch = q.pop_batch(4);
    ASSERT_EQ(batch.size(), 4u);
    EXPECT_EQ(batch.front(), 0);
    EXPECT_EQ(batch.back(), 3);
    EXPECT_EQ(q.pop_batch(100).size(), 6u);
    q.close();
    EXPECT_TRUE(q.pop_batch(4).empty()); // closed-and-empty
}

TEST(BlockingQueue, CrossThread)
{
    BlockingQueue<int> q(4);
    std::thread producer([&] {
        for (int i = 0; i < 100; ++i) q.push(i);
        q.close();
    });
    int expected = 0;
    while (auto v = q.pop()) {
        EXPECT_EQ(*v, expected++);
    }
    EXPECT_EQ(expected, 100);
    producer.join();
}

} // namespace
} // namespace rococo

namespace rococo {
namespace {

TEST(CsvWriter, WritesEscapedRows)
{
    const std::string path = ::testing::TempDir() + "/out.csv";
    {
        CsvWriter csv(path, {"name", "value"});
        ASSERT_TRUE(csv.ok());
        csv.write_row({"plain", "1"});
        csv.write_row({"has,comma", "with \"quote\""});
        csv.write_row({"wrong-arity"}); // silently dropped
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "name,value");
    std::getline(in, line);
    EXPECT_EQ(line, "plain,1");
    std::getline(in, line);
    EXPECT_EQ(line, "\"has,comma\",\"with \"\"quote\"\"\"");
    EXPECT_FALSE(std::getline(in, line));
}

TEST(CsvWriter, BadPathIsNoOp)
{
    CsvWriter csv("/nonexistent-dir/x.csv", {"a"});
    EXPECT_FALSE(csv.ok());
    csv.write_row({"ignored"});
}

} // namespace
} // namespace rococo
