/// Tests for the continuous-monitoring layer (src/obs/timeseries.h,
/// src/obs/health.h): ring semantics, windowed weighted aggregation,
/// per-kind sampling (counter rate, ratio clamp, first-sample nulls),
/// multi-window burn-rate evaluation with hysteresis, and the
/// HealthMonitor -> FlightRecorder incident wiring. All sampling here
/// drives tick()/sample_now() with synthetic timestamps — the layer
/// never reads a clock itself, which is what makes these tests exact.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "obs/registry.h"
#include "obs/timeseries.h"

namespace rococo::obs {
namespace {

constexpr uint64_t kSecond = 1'000'000'000;

TEST(SeriesRing, PushWrapsKeepingNewestOldestFirst)
{
    SeriesRing ring(4);
    EXPECT_EQ(ring.size(), 0u);
    for (uint64_t i = 1; i <= 6; ++i) {
        SeriesPoint p;
        p.t_ns = i;
        p.raw = double(i);
        ring.push(p);
    }
    ASSERT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.capacity(), 4u);
    // Oldest-first indexing after the wrap: 3, 4, 5, 6.
    EXPECT_EQ(ring.at(0).t_ns, 3u);
    EXPECT_EQ(ring.at(3).t_ns, 6u);
    EXPECT_EQ(ring.back().t_ns, 6u);
}

TEST(SeriesRing, WindowAggregateIsWeightedMeanOverWindowOnly)
{
    SeriesRing ring(8);
    // Three in-window points with weights 1, 3, 1 and one stale point
    // far outside the window that must not contribute.
    auto push = [&](uint64_t t, double value, double weight) {
        SeriesPoint p;
        p.t_ns = t;
        p.value = value;
        p.weight = weight;
        p.has_delta = true;
        ring.push(p);
    };
    push(1 * kSecond, 100.0, 1.0); // stale
    push(8 * kSecond, 10.0, 1.0);
    push(9 * kSecond, 20.0, 3.0);
    push(10 * kSecond, 30.0, 1.0);
    const WindowStat w =
        window_aggregate(ring, 10 * kSecond, 5 * kSecond);
    EXPECT_EQ(w.points, 3u);
    EXPECT_DOUBLE_EQ(w.weight, 5.0);
    // (10*1 + 20*3 + 30*1) / 5 = 20.
    EXPECT_DOUBLE_EQ(w.value, 20.0);
    EXPECT_EQ(w.span_ns, 2 * kSecond);
}

TEST(MetricSampler, CounterSeriesYieldsRatePerSecond)
{
    Registry registry;
    Counter& c = registry.counter("reqs");
    MetricSamplerConfig config;
    config.sample_period_ns = kSecond;
    config.ring_capacity = 8;
    SeriesSpec spec;
    spec.name = "reqs";
    spec.kind = SeriesKind::kCounter;
    spec.counters = {&c};
    config.series.push_back(spec);
    MetricSampler sampler(std::move(config));

    // First sample primes the series: no delta, no rate.
    c.add(100);
    sampler.sample_now(1 * kSecond);
    SeriesPoint p = sampler.last_point(0);
    EXPECT_FALSE(p.has_delta);
    EXPECT_DOUBLE_EQ(p.raw, 100.0);

    // 300 more over 2 s -> 150/s, weight = 2 s.
    c.add(300);
    sampler.sample_now(3 * kSecond);
    p = sampler.last_point(0);
    ASSERT_TRUE(p.has_delta);
    EXPECT_DOUBLE_EQ(p.delta, 300.0);
    EXPECT_DOUBLE_EQ(p.value, 150.0);
    EXPECT_DOUBLE_EQ(p.weight, 2.0);

    // The windowed rate weights by interval length: (300 + 100) over
    // the 3 s the two samples cover.
    c.add(100);
    sampler.sample_now(4 * kSecond);
    const WindowStat w = sampler.window(0, 4 * kSecond, 3 * kSecond);
    EXPECT_DOUBLE_EQ(w.weight, 3.0);
    EXPECT_NEAR(w.value, 400.0 / 3.0, 1e-9);
}

TEST(MetricSampler, TickHonoursPeriodAndReportsSampling)
{
    MetricSamplerConfig config;
    config.sample_period_ns = kSecond;
    SeriesSpec spec;
    spec.name = "x";
    spec.kind = SeriesKind::kCallback;
    spec.callback = [] { return 1.0; };
    config.series.push_back(spec);
    MetricSampler sampler(std::move(config));

    EXPECT_TRUE(sampler.tick(1 * kSecond));
    EXPECT_FALSE(sampler.tick(1 * kSecond + 1)); // not due
    EXPECT_FALSE(sampler.tick(2 * kSecond - 1));
    EXPECT_TRUE(sampler.tick(2 * kSecond));
    EXPECT_EQ(sampler.samples_taken(), 2u);
}

TEST(MetricSampler, RatioSeriesClampsAndGatesOnDenominator)
{
    Registry registry;
    Counter& num = registry.counter("aborts");
    Counter& den = registry.counter("reqs");
    MetricSamplerConfig config;
    config.sample_period_ns = kSecond;
    SeriesSpec spec;
    spec.name = "abort_rate";
    spec.kind = SeriesKind::kRatio;
    spec.counters = {&num};
    spec.denominators = {&den};
    config.series.push_back(spec);
    MetricSampler sampler(std::move(config));

    sampler.sample_now(1 * kSecond);

    // 50 aborts of 100 requests -> 0.5, weighted by the 100 requests.
    num.add(50);
    den.add(100);
    sampler.sample_now(2 * kSecond);
    SeriesPoint p = sampler.last_point(0);
    ASSERT_TRUE(p.has_delta);
    EXPECT_DOUBLE_EQ(p.value, 0.5);
    EXPECT_DOUBLE_EQ(p.weight, 100.0);

    // Numerator outrunning the denominator (reader skew) clamps to 1.
    num.add(500);
    den.add(100);
    sampler.sample_now(3 * kSecond);
    EXPECT_DOUBLE_EQ(sampler.last_point(0).value, 1.0);

    // No denominator traffic: ratio contributes nothing (weight 0).
    num.add(3);
    sampler.sample_now(4 * kSecond);
    p = sampler.last_point(0);
    EXPECT_DOUBLE_EQ(p.weight, 0.0);
    EXPECT_DOUBLE_EQ(p.value, 0.0);
}

TEST(MetricSampler, GaugeQuantileAndCallbackSampleLevels)
{
    Registry registry;
    Gauge& g = registry.gauge("depth");
    LatencyHistogram& h = registry.histogram("lat");
    double level = 7.0;
    MetricSamplerConfig config;
    config.sample_period_ns = kSecond;
    SeriesSpec gauge_spec;
    gauge_spec.name = "depth";
    gauge_spec.kind = SeriesKind::kGauge;
    gauge_spec.gauge = &g;
    config.series.push_back(gauge_spec);
    SeriesSpec q_spec;
    q_spec.name = "p99";
    q_spec.kind = SeriesKind::kQuantile;
    q_spec.histogram = &h;
    q_spec.quantile = 0.99;
    config.series.push_back(q_spec);
    SeriesSpec cb_spec;
    cb_spec.name = "cb";
    cb_spec.kind = SeriesKind::kCallback;
    cb_spec.callback = [&] { return level; };
    config.series.push_back(cb_spec);
    MetricSampler sampler(std::move(config));

    g.set(42.0);
    for (int i = 0; i < 100; ++i) h.record(1000);
    sampler.sample_now(1 * kSecond);

    EXPECT_DOUBLE_EQ(sampler.last_point(0).raw, 42.0);
    const double p99 = sampler.last_point(1).raw;
    EXPECT_GE(p99, 1000.0 * 0.5);
    EXPECT_LE(p99, 4000.0);
    EXPECT_DOUBLE_EQ(sampler.last_point(2).raw, 7.0);
    // Sampled kinds carry weight 1 so windows average them.
    EXPECT_DOUBLE_EQ(sampler.last_point(2).weight, 1.0);
}

TEST(MetricSampler, ToJsonEmitsNullRateUntilPrimed)
{
    Registry registry;
    Counter& c = registry.counter("reqs");
    MetricSamplerConfig config;
    config.sample_period_ns = kSecond;
    SeriesSpec spec;
    spec.name = "reqs";
    spec.kind = SeriesKind::kCounter;
    spec.counters = {&c};
    config.series.push_back(spec);
    MetricSampler sampler(std::move(config));

    std::string json;
    sampler.to_json(&json);
    EXPECT_NE(json.find("\"series\": ["), std::string::npos);
    EXPECT_NE(json.find("\"last\": null"), std::string::npos);

    c.add(10);
    sampler.sample_now(1 * kSecond);
    json.clear();
    sampler.to_json(&json);
    // One sample: a last value exists but the rate is still undefined.
    EXPECT_NE(json.find("\"last\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"rate\": null"), std::string::npos);

    c.add(20);
    sampler.sample_now(2 * kSecond);
    json.clear();
    sampler.to_json(&json);
    EXPECT_NE(json.find("\"rate\": 20"), std::string::npos);
}

/// Drives a counter + ratio sampler through a controlled abort storm:
/// the abort-rate rule must walk ok -> warn (fast breach) ->
/// critical (slow breach with coverage) -> ok (hysteresis) in order.
class SloLadder : public ::testing::Test
{
  protected:
    SloLadder()
    {
        num_ = &registry_.counter("aborts");
        den_ = &registry_.counter("reqs");
        MetricSamplerConfig config;
        config.sample_period_ns = kSecond;
        config.ring_capacity = 64;
        SeriesSpec spec;
        spec.name = "abort_rate";
        spec.kind = SeriesKind::kRatio;
        spec.counters = {num_};
        spec.denominators = {den_};
        config.series.push_back(spec);
        sampler_ = std::make_unique<MetricSampler>(std::move(config));

        SloEngineConfig slo;
        SloRule rule;
        rule.name = "abort-rate";
        rule.series = "abort_rate";
        rule.threshold = 0.5;
        rule.fast_window_ns = 2 * kSecond;
        rule.slow_window_ns = 8 * kSecond;
        rule.min_weight = 10.0;
        rule.recovery_samples = 2;
        slo.rules.push_back(rule);
        engine_ = std::make_unique<SloEngine>(std::move(slo),
                                              sampler_.get());
    }

    /// One second of traffic: @p aborts of @p requests, then sample +
    /// evaluate at @p t seconds.
    void step(uint64_t t, uint64_t requests, uint64_t aborts)
    {
        num_->add(aborts);
        den_->add(requests);
        sampler_->sample_now(t * kSecond);
        engine_->evaluate(t * kSecond);
    }

    Registry registry_;
    Counter* num_ = nullptr;
    Counter* den_ = nullptr;
    std::unique_ptr<MetricSampler> sampler_;
    std::unique_ptr<SloEngine> engine_;
};

TEST_F(SloLadder, WalksWarnThenCriticalThenRecovers)
{
    ASSERT_EQ(engine_->rule_count(), 1u);

    // Healthy traffic primes both windows.
    uint64_t t = 1;
    for (; t <= 4; ++t) step(t, 100, 5);
    EXPECT_EQ(engine_->overall(), HealthState::kOk);

    // Storm. The fast window breaches within two samples -> warn;
    // critical requires the slow window (>= 4 s span at 8 s window)
    // to breach too, which takes sustained burn.
    step(t++, 100, 90);
    step(t++, 100, 90);
    EXPECT_EQ(engine_->overall(), HealthState::kWarn);

    bool saw_critical = false;
    for (; t <= 20 && !saw_critical; ++t) {
        step(t, 100, 90);
        saw_critical = engine_->overall() == HealthState::kCritical;
    }
    EXPECT_TRUE(saw_critical);

    // Recovery: calm traffic, but hysteresis demands recovery_samples
    // (2) consecutive calmer evaluations — recovery on the very first
    // calm step would mean the hysteresis is broken.
    bool recovered = false;
    unsigned calm_steps = 0;
    for (; t <= 60 && !recovered; ++t) {
        step(t, 100, 0);
        ++calm_steps;
        recovered = engine_->overall() == HealthState::kOk;
        if (recovered) EXPECT_GE(calm_steps, 2u);
    }
    EXPECT_TRUE(recovered);

    // The transition history names the whole ladder.
    std::string json;
    engine_->to_json(&json);
    EXPECT_NE(json.find("\"from\": \"ok\", \"to\": \"warn\""),
              std::string::npos);
    EXPECT_NE(json.find("\"from\": \"warn\", \"to\": \"critical\""),
              std::string::npos);
    EXPECT_NE(json.find("\"from\": \"critical\", \"to\": \"ok\""),
              std::string::npos);
}

TEST_F(SloLadder, MinWeightGatesIdleBlips)
{
    // Prime, then a single abort in an idle second: 1/1 = 100% abort
    // rate, but under min_weight (10) of traffic — must stay ok.
    step(1, 100, 5);
    step(2, 100, 5);
    step(3, 1, 1);
    step(4, 1, 1);
    EXPECT_EQ(engine_->overall(), HealthState::kOk);
}

TEST(SloEngine, TransitionHookFiresOutsideTheLock)
{
    Registry registry;
    Counter& num = registry.counter("aborts");
    Counter& den = registry.counter("reqs");
    MetricSamplerConfig config;
    config.sample_period_ns = kSecond;
    SeriesSpec spec;
    spec.name = "r";
    spec.kind = SeriesKind::kRatio;
    spec.counters = {&num};
    spec.denominators = {&den};
    config.series.push_back(spec);
    MetricSampler sampler(std::move(config));

    SloEngineConfig slo;
    SloRule rule;
    rule.name = "r";
    rule.series = "r";
    rule.threshold = 0.5;
    rule.fast_window_ns = 2 * kSecond;
    rule.slow_window_ns = 4 * kSecond;
    rule.min_weight = 1.0;
    slo.rules.push_back(rule);
    SloEngine engine(std::move(slo), &sampler);

    std::vector<std::pair<HealthState, HealthState>> fired;
    engine.set_transition_hook([&](const SloRule& r, HealthState from,
                                   HealthState to) {
        EXPECT_EQ(r.name, "r");
        // Re-entering the engine from the hook must not deadlock —
        // this is the recorder-dump path (dump embeds health JSON).
        std::string json;
        engine.to_json(&json);
        EXPECT_FALSE(json.empty());
        fired.emplace_back(from, to);
    });

    den.add(10);
    sampler.sample_now(1 * kSecond);
    engine.evaluate(1 * kSecond);
    num.add(9);
    den.add(10);
    sampler.sample_now(2 * kSecond);
    engine.evaluate(2 * kSecond);
    ASSERT_FALSE(fired.empty());
    EXPECT_EQ(fired[0].first, HealthState::kOk);
    EXPECT_EQ(fired[0].second, HealthState::kWarn);
}

TEST(SloEngine, DropsDisabledAndUnknownRules)
{
    MetricSamplerConfig config;
    SeriesSpec spec;
    spec.name = "known";
    spec.kind = SeriesKind::kCallback;
    spec.callback = [] { return 0.0; };
    config.series.push_back(spec);
    MetricSampler sampler(std::move(config));

    SloEngineConfig slo;
    SloRule disabled;
    disabled.name = "disabled";
    disabled.series = "known";
    disabled.threshold = 0.0; // 0 disables
    slo.rules.push_back(disabled);
    SloRule typo;
    typo.name = "typo";
    typo.series = "unknwon";
    typo.threshold = 1.0;
    slo.rules.push_back(typo);
    SloRule live;
    live.name = "live";
    live.series = "known";
    live.threshold = 1.0;
    slo.rules.push_back(live);
    SloEngine engine(std::move(slo), &sampler);
    ASSERT_EQ(engine.rule_count(), 1u);
    EXPECT_EQ(engine.rule(0).name, "live");
}

TEST(HealthMonitor, CriticalSloDumpsIncidentWithBreachingSeries)
{
    Registry registry;
    Counter& num = registry.counter("aborts");
    Counter& den = registry.counter("reqs");

    FlightRecorderConfig rec_config;
    rec_config.enabled = true;
    char prefix[64];
    std::snprintf(prefix, sizeof prefix, "/tmp/slo_incident_%d",
                  getpid());
    rec_config.output_prefix = prefix;
    rec_config.abort_rate_threshold = 0.0; // SLO is the only trigger
    FlightRecorder recorder(rec_config, [&](Registry& out) {
        out.merge(registry);
    });

    MetricSamplerConfig sampler_config;
    sampler_config.sample_period_ns = kSecond;
    SeriesSpec spec;
    spec.name = "svc.abort_rate";
    spec.kind = SeriesKind::kRatio;
    spec.counters = {&num};
    spec.denominators = {&den};
    sampler_config.series.push_back(spec);

    SloEngineConfig slo_config;
    SloRule rule;
    rule.name = "abort-rate";
    rule.series = "svc.abort_rate";
    rule.threshold = 0.5;
    rule.fast_window_ns = 2 * kSecond;
    rule.slow_window_ns = 6 * kSecond;
    rule.min_weight = 10.0;
    slo_config.rules.push_back(rule);

    HealthMonitor monitor(std::move(sampler_config),
                          std::move(slo_config));
    monitor.set_incident_recorder(&recorder);

    // tick() at exactly the sample period, with a storm that must
    // escalate to critical once the slow window is covered.
    uint64_t t = 1;
    for (; t <= 2; ++t) {
        den.add(100);
        monitor.tick(t * kSecond);
    }
    for (; t <= 12; ++t) {
        num.add(90);
        den.add(100);
        monitor.tick(t * kSecond);
    }
    ASSERT_EQ(monitor.slo().overall(), HealthState::kCritical);

    const std::string path = std::string(prefix) + "-1.json";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no SLO incident at " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string incident = buffer.str();
    // The SLO breach is the trigger, and the incident embeds the
    // health section with the breaching series' ring.
    EXPECT_NE(incident.find("\"trigger\": \"slo:abort-rate\""),
              std::string::npos);
    EXPECT_NE(incident.find("\"health\":"), std::string::npos);
    EXPECT_NE(incident.find("\"svc.abort_rate\""), std::string::npos);
    EXPECT_NE(incident.find("\"state\": \"critical\""),
              std::string::npos);
    std::remove(path.c_str());

    // De-escalation must NOT dump again: only transitions into
    // critical fire.
    for (; t <= 40 && monitor.slo().overall() != HealthState::kOk; ++t) {
        den.add(100);
        monitor.tick(t * kSecond);
    }
    EXPECT_EQ(monitor.slo().overall(), HealthState::kOk);
    std::ifstream second(std::string(prefix) + "-2.json");
    EXPECT_FALSE(second.good());
}

TEST(HealthMonitor, ConcurrentTicksExportsAndReadersAreSafe)
{
    // TSan-facing stress: four roles hammer one monitor — a ticker, a
    // status_json reader, a registry exporter and a counter writer.
    // The assertions are weak on purpose; the value is the interleaving
    // under -DROCOCO_SANITIZE=thread.
    Registry registry;
    Counter& num = registry.counter("aborts");
    Counter& den = registry.counter("reqs");
    Gauge& depth = registry.gauge("depth");

    MetricSamplerConfig sampler_config;
    sampler_config.sample_period_ns = 1; // sample on every tick
    SeriesSpec ratio;
    ratio.name = "abort_rate";
    ratio.kind = SeriesKind::kRatio;
    ratio.counters = {&num};
    ratio.denominators = {&den};
    sampler_config.series.push_back(ratio);
    SeriesSpec gauge;
    gauge.name = "depth";
    gauge.kind = SeriesKind::kGauge;
    gauge.gauge = &depth;
    sampler_config.series.push_back(gauge);

    SloEngineConfig slo_config;
    SloRule rule;
    rule.name = "abort-rate";
    rule.series = "abort_rate";
    rule.threshold = 0.5;
    rule.fast_window_ns = 1000;
    rule.slow_window_ns = 4000;
    rule.min_weight = 1.0;
    slo_config.rules.push_back(rule);

    HealthMonitor monitor(std::move(sampler_config),
                          std::move(slo_config));

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> now{1};
    std::thread ticker([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            monitor.tick(now.fetch_add(100, std::memory_order_relaxed));
        }
    });
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            std::string json;
            monitor.status_json(&json);
            ASSERT_FALSE(json.empty());
        }
    });
    std::thread exporter([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            std::ostringstream out;
            registry.export_prom(out);
            std::ostringstream json;
            registry.to_json(json);
        }
    });
    std::thread writer([&] {
        uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            num.add(i % 3 == 0 ? 1 : 0);
            den.add(1);
            depth.set(double(i % 64));
            ++i;
        }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true);
    ticker.join();
    reader.join();
    exporter.join();
    writer.join();
    EXPECT_GT(monitor.sampler().samples_taken(), 0u);
}

} // namespace
} // namespace rococo::obs
