/// Tests for the space-saving top-K sketch (src/obs/topk.h) against an
/// exact-count oracle: the classic stream-summary guarantees (never
/// under-counts, error bounds the slack, guaranteed presence of any key
/// above the offered/(K+1) frequency line) on uniform and zipf streams,
/// plus the snapshot/reset mechanics the exporters rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <map>
#include <vector>

#include "common/rng.h"
#include "obs/topk.h"

namespace rococo::obs {
namespace {

/// Feed @p stream into both the sketch and an exact counter.
std::map<uint64_t, uint64_t>
feed(TopK& sketch, const std::vector<uint64_t>& stream)
{
    std::map<uint64_t, uint64_t> exact;
    for (uint64_t key : stream) {
        sketch.offer(key);
        ++exact[key];
    }
    return exact;
}

/// The space-saving invariants, checked entry by entry against the
/// oracle. Works for any stream.
void
check_guarantees(const TopK& sketch,
                 const std::map<uint64_t, uint64_t>& exact,
                 uint64_t stream_length)
{
    ASSERT_EQ(sketch.offered(), stream_length);
    std::vector<uint64_t> tracked;
    for (size_t i = 0; i < sketch.size(); ++i) {
        const TopK::Entry& entry = sketch.entry(i);
        const auto it = exact.find(entry.key);
        const uint64_t truth = it == exact.end() ? 0 : it->second;
        // Estimated count never under-counts...
        EXPECT_GE(entry.count, truth) << "key " << entry.key;
        // ...and the recorded error bounds the over-estimation.
        EXPECT_LE(entry.count - entry.error, truth)
            << "key " << entry.key;
        tracked.push_back(entry.key);
    }
    // Guaranteed presence: every key hotter than offered/(K+1) must be
    // in the sketch (the space-saving frequent-items guarantee).
    const uint64_t line = stream_length / (TopK::kCapacity + 1);
    for (const auto& [key, count] : exact) {
        if (count <= line) continue;
        EXPECT_NE(std::find(tracked.begin(), tracked.end(), key),
                  tracked.end())
            << "hot key " << key << " (true count " << count
            << " > line " << line << ") missing from the sketch";
    }
}

TEST(TopK, FewDistinctKeysAreExact)
{
    // Fewer distinct keys than capacity: the sketch degenerates to an
    // exact counter with zero error.
    TopK sketch;
    Xoshiro256 rng(1);
    std::vector<uint64_t> stream;
    for (int i = 0; i < 5000; ++i) stream.push_back(rng.below(8));
    const auto exact = feed(sketch, stream);
    ASSERT_EQ(sketch.size(), exact.size());
    for (size_t i = 0; i < sketch.size(); ++i) {
        const TopK::Entry& entry = sketch.entry(i);
        EXPECT_EQ(entry.count, exact.at(entry.key));
        EXPECT_EQ(entry.error, 0u);
    }
    check_guarantees(sketch, exact, stream.size());
}

TEST(TopK, UniformStreamKeepsGuarantees)
{
    // Uniform over many more keys than capacity: no key clears the
    // presence line, but the count/error bounds must still hold.
    TopK sketch;
    Xoshiro256 rng(2);
    std::vector<uint64_t> stream;
    for (int i = 0; i < 20000; ++i) stream.push_back(rng.below(1024));
    const auto exact = feed(sketch, stream);
    EXPECT_EQ(sketch.size(), TopK::kCapacity);
    check_guarantees(sketch, exact, stream.size());
}

TEST(TopK, ZipfStreamSurfacesTheHotSet)
{
    // Zipf(1.2) over 4096 keys: the head is hot enough that the true
    // top-4 must be present AND lead the snapshot ordering — the
    // property `svcctl top` depends on.
    TopK sketch;
    Xoshiro256 rng(3);
    std::vector<double> cdf(4096);
    double sum = 0;
    for (size_t i = 0; i < cdf.size(); ++i) {
        sum += 1.0 / std::pow(double(i + 1), 1.2);
        cdf[i] = sum;
    }
    for (double& c : cdf) c /= sum;
    std::vector<uint64_t> stream;
    for (int i = 0; i < 50000; ++i) {
        const double u = rng.uniform();
        stream.push_back(static_cast<uint64_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
    }
    const auto exact = feed(sketch, stream);
    check_guarantees(sketch, exact, stream.size());

    // True top-4 by oracle count.
    std::vector<std::pair<uint64_t, uint64_t>> ranked(exact.begin(),
                                                      exact.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                  return a.second > b.second;
              });
    TopK::Entry top[TopK::kCapacity];
    const size_t n = sketch.snapshot(top, TopK::kCapacity);
    ASSERT_GE(n, 4u);
    for (size_t rank = 0; rank < 4; ++rank) {
        bool found = false;
        for (size_t i = 0; i < 4 && !found; ++i) {
            found = top[i].key == ranked[rank].first;
        }
        EXPECT_TRUE(found) << "true rank-" << rank << " key "
                           << ranked[rank].first
                           << " not in the sketch's top 4";
    }
}

TEST(TopK, SnapshotSortsAndTruncates)
{
    TopK sketch;
    // Distinct counts 1..10 for keys 1..10.
    for (uint64_t key = 1; key <= 10; ++key) {
        sketch.offer(key, key);
    }
    TopK::Entry out[TopK::kCapacity];
    size_t n = sketch.snapshot(out, TopK::kCapacity);
    ASSERT_EQ(n, 10u);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i].key, 10 - i);
        EXPECT_EQ(out[i].count, 10 - i);
        if (i > 0) EXPECT_LE(out[i].count, out[i - 1].count);
    }
    // A smaller destination keeps the hottest entries only.
    n = sketch.snapshot(out, 3);
    ASSERT_EQ(n, 3u);
    EXPECT_EQ(out[0].key, 10u);
    EXPECT_EQ(out[1].key, 9u);
    EXPECT_EQ(out[2].key, 8u);
}

TEST(TopK, ResetClearsEverything)
{
    TopK sketch;
    for (uint64_t i = 0; i < 100; ++i) sketch.offer(i);
    EXPECT_EQ(sketch.offered(), 100u);
    EXPECT_EQ(sketch.size(), TopK::kCapacity);
    sketch.reset();
    EXPECT_EQ(sketch.offered(), 0u);
    EXPECT_EQ(sketch.size(), 0u);
    TopK::Entry out[TopK::kCapacity];
    EXPECT_EQ(sketch.snapshot(out, TopK::kCapacity), 0u);
}

TEST(TopK, EvictionInheritsErrorFromTheVictim)
{
    TopK sketch;
    // Fill capacity with count-2 entries, then insert a fresh key: it
    // evicts a minimum entry and must carry count = victim + 1 with
    // error = victim count (the over-estimation certificate).
    for (uint64_t key = 0; key < TopK::kCapacity; ++key) {
        sketch.offer(key, 2);
    }
    sketch.offer(999);
    bool found = false;
    for (size_t i = 0; i < sketch.size(); ++i) {
        if (sketch.entry(i).key != 999) continue;
        found = true;
        EXPECT_EQ(sketch.entry(i).count, 3u);
        EXPECT_EQ(sketch.entry(i).error, 2u);
    }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace rococo::obs
