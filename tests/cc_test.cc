/// Tests for the trace-level concurrency-control layer: generators,
/// replay, the serializability oracle, and the 2PL / TOCC / SI /
/// ROCoCo algorithms — including the paper's phantom-ordering cases
/// (Fig. 2) and the Fig. 9 abort-rate ordering.
#include <gtest/gtest.h>

#include "cc/replay.h"
#include "cc/rococo_cc.h"
#include "cc/snapshot_isolation.h"
#include "cc/tocc.h"
#include "cc/trace_generator.h"
#include "cc/two_phase_locking.h"

namespace rococo::cc {
namespace {

TEST(TraceGenerator, UniformShape)
{
    UniformTraceParams params;
    params.locations = 1024;
    params.accesses = 8;
    params.txns = 200;
    const Trace trace = generate_uniform_trace(params);
    ASSERT_EQ(trace.size(), 200u);
    for (const auto& txn : trace.txns) {
        EXPECT_EQ(txn.reads.size() + txn.writes.size(), 8u);
        EXPECT_EQ(txn.reads.size(), 4u); // 50% reads
        for (uint64_t a : txn.reads) EXPECT_LT(a, 1024u);
        EXPECT_TRUE(std::is_sorted(txn.reads.begin(), txn.reads.end()));
    }
}

TEST(TraceGenerator, Deterministic)
{
    UniformTraceParams params;
    params.txns = 50;
    params.seed = 99;
    const Trace a = generate_uniform_trace(params);
    const Trace b = generate_uniform_trace(params);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.txns[i].reads, b.txns[i].reads);
        EXPECT_EQ(a.txns[i].writes, b.txns[i].writes);
    }
}

TEST(TraceGenerator, CollisionRateFormula)
{
    EXPECT_NEAR(uniform_collision_rate(1024, 4), 0.0155, 0.001);
    EXPECT_GT(uniform_collision_rate(1024, 32),
              uniform_collision_rate(1024, 8));
}

TEST(TraceGenerator, SkewedConcentratesAccesses)
{
    SkewedTraceParams params;
    params.theta = 1.2;
    params.txns = 500;
    const Trace t = generate_skewed_trace(params);
    // The hottest slot (0) should appear far more often than a uniform
    // slot would.
    uint64_t hot = 0, total = 0;
    for (const auto& txn : t.txns) {
        for (auto a : txn.reads) {
            hot += a == 0;
            ++total;
        }
        for (auto a : txn.writes) {
            hot += a == 0;
            ++total;
        }
    }
    EXPECT_GT(double(hot) / double(total), 5.0 / 1024.0);
}

TEST(TraceGenerator, MixedHasLongTxns)
{
    MixedTraceParams params;
    params.txns = 500;
    params.long_fraction = 0.2;
    const Trace t = generate_mixed_trace(params);
    int longs = 0;
    for (const auto& txn : t.txns) {
        if (txn.reads.size() + txn.writes.size() > 8) ++longs;
    }
    EXPECT_GT(longs, 40);
    EXPECT_LT(longs, 200);
}

TEST(Replay, SnapshotAccounting)
{
    Trace trace;
    trace.num_locations = 4;
    for (int i = 0; i < 6; ++i) trace.txns.push_back({{}, {0}});
    trace.normalize();
    ReplayContext ctx(trace, 2);
    EXPECT_EQ(ctx.first_concurrent(0), 0u);
    EXPECT_EQ(ctx.first_concurrent(5), 3u);
}

/// Hand-built trace of the write-skew anomaly (Fig. 1): t1 reads y,
/// writes x; t2 reads x, writes y; executed concurrently.
Trace
write_skew_trace()
{
    Trace trace;
    trace.num_locations = 2;
    trace.txns.push_back({{1}, {0}}); // t1: R(y) W(x)
    trace.txns.push_back({{0}, {1}}); // t2: R(x) W(y)
    trace.normalize();
    return trace;
}

TEST(SnapshotIsolation, AdmitsWriteSkew)
{
    const Trace trace = write_skew_trace();
    SnapshotIsolation si;
    const ReplayResult result = replay(si, trace, 2);
    // No WW conflict: SI commits both...
    EXPECT_EQ(result.commit_count, 2u);
    // ...and the history is NOT serializable — the oracle must flag it.
    const auto check = check_history(trace, result.committed, 2);
    EXPECT_FALSE(check.serializable);
    EXPECT_FALSE(check.cycle.empty());
}

TEST(SerializableAlgorithms, RejectWriteSkew)
{
    const Trace trace = write_skew_trace();
    TwoPhaseLocking tpl;
    Tocc tocc;
    RococoCc rococo(64);
    for (CcAlgorithm* alg :
         std::initializer_list<CcAlgorithm*>{&tpl, &tocc, &rococo}) {
        const ReplayResult result = replay(*alg, trace, 2);
        EXPECT_LT(result.commit_count, 2u) << alg->name();
        const auto check = check_history(trace, result.committed, 2);
        EXPECT_TRUE(check.serializable) << alg->name();
    }
}

TEST(PhantomOrdering, RococoCommitsWhereToccAborts)
{
    // Fig. 2 (a) analogue: t0 writes x; t1 (concurrent, snapshot
    // predates t0) read x's old version and writes y. TOCC aborts t1
    // (read invalidated); ROCoCo serializes t1 before t0.
    Trace trace;
    trace.num_locations = 2;
    trace.txns.push_back({{}, {0}});  // t0: W(x)
    trace.txns.push_back({{0}, {1}}); // t1: R(x) W(y)
    trace.normalize();

    Tocc tocc;
    const ReplayResult tocc_result = replay(tocc, trace, 2);
    EXPECT_EQ(tocc_result.committed[1], 0) << "TOCC should abort t1";

    RococoCc rococo(64);
    const ReplayResult rococo_result = replay(rococo, trace, 2);
    EXPECT_EQ(rococo_result.committed[1], 1) << "ROCoCo should commit t1";
    EXPECT_TRUE(
        check_history(trace, rococo_result.committed, 2).serializable);
}

TEST(PhantomOrdering, CommitTimestampCaseFig2b)
{
    // Fig. 2 (b) analogue: t2 commits W(x); t3 reads the OLD x and a
    // fresh z, writing w. TOCC cannot order t3 before the
    // already-committed t2 and aborts it; ROCoCo commits t3 "into the
    // past" and every later reader of both versions stays serializable.
    Trace trace;
    trace.num_locations = 8;
    trace.txns.push_back({{}, {0}});     // t2: W(x)
    trace.txns.push_back({{0, 2}, {3}}); // t3: R(x old, z) W(w)
    trace.txns.push_back({{0, 3}, {4}}); // t1: R(x new, w) W(v)
    trace.normalize();

    Tocc tocc;
    const auto tocc_result = replay(tocc, trace, 2);
    EXPECT_EQ(tocc_result.committed[1], 0);

    RococoCc rococo(64);
    const auto rococo_result = replay(rococo, trace, 2);
    EXPECT_EQ(rococo_result.committed[1], 1);
    EXPECT_EQ(rococo_result.committed[2], 1);
    EXPECT_TRUE(
        check_history(trace, rococo_result.committed, 2).serializable);
}

TEST(TwoPhaseLocking, AbortsOnAnyConflict)
{
    Trace trace;
    trace.num_locations = 4;
    trace.txns.push_back({{0}, {1}}); // t0
    trace.txns.push_back({{1}, {2}}); // t1: reads what t0 writes
    trace.txns.push_back({{3}, {}});  // t2: disjoint
    trace.normalize();
    TwoPhaseLocking tpl;
    const auto result = replay(tpl, trace, 3);
    EXPECT_EQ(result.committed[0], 1);
    EXPECT_EQ(result.committed[1], 0); // R-W conflict with t0
    EXPECT_EQ(result.committed[2], 1);
}

/// Every serializable algorithm must produce serializable histories on
/// random traces — the central property test of the CC layer.
class SerializabilityProperty
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>>
{
};

TEST_P(SerializabilityProperty, RandomTraces)
{
    const auto [concurrency, accesses, seed] = GetParam();
    UniformTraceParams params;
    params.locations = 64; // small: force real contention
    params.accesses = static_cast<unsigned>(accesses);
    params.txns = 300;
    params.seed = seed;
    const Trace trace = generate_uniform_trace(params);

    TwoPhaseLocking tpl;
    Tocc tocc;
    RococoCc rococo(64);
    for (CcAlgorithm* alg :
         std::initializer_list<CcAlgorithm*>{&tpl, &tocc, &rococo}) {
        const ReplayResult result = replay(*alg, trace, concurrency);
        const auto check = check_history(trace, result.committed,
                                         concurrency);
        EXPECT_TRUE(check.serializable)
            << alg->name() << " produced a non-serializable history"
            << " (concurrency=" << concurrency
            << ", accesses=" << accesses << ", seed=" << seed << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializabilityProperty,
    ::testing::Combine(::testing::Values(2, 4, 16),
                       ::testing::Values(4, 8, 16),
                       ::testing::Values(1u, 2u, 3u, 4u)));

TEST(AbortRates, PaperOrderingHolds)
{
    // Fig. 9 shape: ROCoCo <= TOCC <= 2PL on average at medium
    // collision rates with 16-way concurrency.
    UniformTraceParams params;
    params.locations = 1024;
    params.accesses = 16;
    params.txns = 600;

    double tpl_total = 0, tocc_total = 0, rococo_total = 0;
    const int seeds = 8;
    for (int s = 1; s <= seeds; ++s) {
        params.seed = static_cast<uint64_t>(s);
        const Trace trace = generate_uniform_trace(params);
        TwoPhaseLocking tpl;
        Tocc tocc;
        RococoCc rococo(64);
        tpl_total += replay(tpl, trace, 16).abort_rate();
        tocc_total += replay(tocc, trace, 16).abort_rate();
        rococo_total += replay(rococo, trace, 16).abort_rate();
    }
    EXPECT_LT(rococo_total, tocc_total);
    EXPECT_LT(tocc_total, tpl_total);
}

TEST(RococoCc, WindowOverflowCounted)
{
    // With a tiny window and wide concurrency some transactions must
    // overflow.
    UniformTraceParams params;
    params.locations = 64;
    params.accesses = 8;
    params.txns = 400;
    params.seed = 5;
    const Trace trace = generate_uniform_trace(params);
    RococoCc rococo(4); // window smaller than concurrency
    const auto result = replay(rococo, trace, 16);
    EXPECT_TRUE(check_history(trace, result.committed, 16).serializable);
    EXPECT_GT(rococo.verdicts().get("window-overflow"), 0u);
}

} // namespace
} // namespace rococo::cc

#include "cc/nongreedy.h"

namespace rococo::cc {
namespace {

TEST(NonGreedy, BatchOfOneEqualsGreedy)
{
    UniformTraceParams params;
    params.locations = 128;
    params.accesses = 8;
    params.txns = 300;
    for (uint64_t seed : {1u, 2u, 3u}) {
        params.seed = seed;
        const Trace trace = generate_uniform_trace(params);
        RococoCc greedy(64, /*strict_read_only=*/true);
        const ReplayResult reference = replay(greedy, trace, 8);
        const BatchReplayResult batched = batch_replay(trace, 8, 1);
        EXPECT_EQ(batched.committed, reference.committed)
            << "seed " << seed;
        EXPECT_EQ(batched.sacrificed, 0u);
    }
}

TEST(NonGreedy, HistoriesStaySerializable)
{
    UniformTraceParams params;
    params.locations = 64;
    params.accesses = 8;
    params.txns = 200;
    for (uint64_t seed : {4u, 5u, 6u}) {
        params.seed = seed;
        const Trace trace = generate_uniform_trace(params);
        for (size_t batch : {2u, 4u}) {
            const BatchReplayResult result =
                batch_replay(trace, 16, batch);
            // The batch may write back out of arrival order, so the
            // oracle must chain versions by commit sequence.
            EXPECT_TRUE(check_history_ordered(trace, result.committed,
                                              16, result.commit_seq)
                            .serializable)
                << "seed " << seed << " batch " << batch;
        }
    }
}

TEST(NonGreedy, NeverWorseOnAverage)
{
    UniformTraceParams params;
    params.locations = 256;
    params.accesses = 16;
    params.txns = 400;
    double greedy_total = 0, batched_total = 0;
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        params.seed = seed;
        const Trace trace = generate_uniform_trace(params);
        greedy_total += batch_replay(trace, 16, 1).abort_rate();
        batched_total += batch_replay(trace, 16, 4).abort_rate();
    }
    EXPECT_LE(batched_total, greedy_total + 1e-9);
}

TEST(NonGreedy, CountsAddUp)
{
    UniformTraceParams params;
    params.txns = 100;
    params.seed = 9;
    const Trace trace = generate_uniform_trace(params);
    const BatchReplayResult result = batch_replay(trace, 4, 3);
    EXPECT_EQ(result.commit_count + result.abort_count, trace.size());
    uint64_t committed = 0;
    for (char c : result.committed) committed += c;
    EXPECT_EQ(committed, result.commit_count);
}

} // namespace
} // namespace rococo::cc

namespace rococo::cc {
namespace {

TEST(EigenBench, AddressSpacesAreDisjointTiers)
{
    EigenBenchParams params;
    params.txns = 100;
    const Trace trace = generate_eigenbench_trace(params);
    ASSERT_EQ(trace.size(), 100u);
    const uint64_t mild_base = params.hot_locations;
    const uint64_t cold_base = mild_base + params.mild_locations;
    uint64_t hot = 0, mild = 0, cold = 0;
    for (const auto& txn : trace.txns) {
        for (auto sets : {&txn.reads, &txn.writes}) {
            for (uint64_t a : *sets) {
                if (a < mild_base) {
                    ++hot;
                } else if (a < cold_base) {
                    ++mild;
                } else {
                    ++cold;
                }
            }
        }
    }
    EXPECT_GT(hot, 0u);
    EXPECT_GT(mild, 0u);
    EXPECT_GT(cold, 0u);
    // Cold accesses dominate by configuration.
    EXPECT_GT(cold, hot);
}

TEST(EigenBench, HotArrayDrivesContention)
{
    // Shrinking the hot array must raise every algorithm's abort rate;
    // the cold tier is noise.
    auto rate_with_hot = [](uint64_t hot_locations) {
        EigenBenchParams params;
        params.hot_locations = hot_locations;
        params.txns = 500;
        params.seed = 3;
        const Trace trace = generate_eigenbench_trace(params);
        Tocc tocc;
        return replay(tocc, trace, 8).abort_rate();
    };
    EXPECT_GT(rate_with_hot(8), rate_with_hot(1024));
}

TEST(EigenBench, SerializableUnderRococo)
{
    EigenBenchParams params;
    params.hot_locations = 16;
    params.txns = 300;
    params.seed = 5;
    const Trace trace = generate_eigenbench_trace(params);
    RococoCc rococo(64);
    const auto result = replay(rococo, trace, 8);
    EXPECT_TRUE(check_history(trace, result.committed, 8).serializable);
}

} // namespace
} // namespace rococo::cc

#include "cc/engine_cc.h"

namespace rococo::cc {
namespace {

TEST(EngineCc, MatchesExactValidatorWithHugeSignatures)
{
    // End-to-end equivalence: with collision-free signatures the
    // signature-based engine must make the exact validator's decisions
    // on entire replays.
    UniformTraceParams params;
    params.locations = 256;
    params.accesses = 10;
    params.txns = 400;
    for (uint64_t seed : {1u, 2u, 3u}) {
        params.seed = seed;
        const Trace trace = generate_uniform_trace(params);
        RococoCc exact(64, /*strict_read_only=*/true);
        fpga::EngineConfig config;
        config.signature_bits = 1 << 16; // negligible false positives
        EngineCc engine(config);
        const auto exact_result = replay(exact, trace, 8);
        const auto engine_result = replay(engine, trace, 8);
        EXPECT_EQ(engine_result.committed, exact_result.committed)
            << "seed " << seed;
    }
}

TEST(EngineCc, SmallSignaturesOnlyAddAborts)
{
    // Bloom false positives are conservative: the tiny-signature engine
    // may abort more than exact ROCoCo but its history must still be
    // serializable.
    UniformTraceParams params;
    params.locations = 256;
    params.accesses = 10;
    params.txns = 400;
    params.seed = 4;
    const Trace trace = generate_uniform_trace(params);

    RococoCc exact(64, true);
    fpga::EngineConfig config;
    config.signature_bits = 64;
    config.signature_hashes = 2;
    EngineCc engine(config);
    const auto exact_result = replay(exact, trace, 8);
    const auto engine_result = replay(engine, trace, 8);
    EXPECT_LE(engine_result.commit_count, exact_result.commit_count);
    EXPECT_TRUE(
        check_history(trace, engine_result.committed, 8).serializable);
}

} // namespace
} // namespace rococo::cc
