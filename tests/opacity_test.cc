/// Opacity / consistency stress battery: every runtime must present
/// internally consistent snapshots to *running* transactions (footnote
/// 7: "a transaction's read-set must stay consistent during its
/// execution"). Invariant-carrying data is mutated by writer
/// transactions while reader transactions assert the invariants from
/// inside — any torn or non-atomic snapshot trips the checks.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "baselines/global_lock_tm.h"
#include "baselines/htm_tsx.h"
#include "baselines/tinystm_lsa.h"
#include "common/rng.h"
#include "tm/rococo_tm.h"

namespace rococo {
namespace {

std::unique_ptr<tm::TmRuntime>
make_runtime(const std::string& name)
{
    if (name == "rococo") return std::make_unique<tm::RococoTm>();
    if (name == "tinystm") {
        return std::make_unique<baselines::TinyStmLsa>();
    }
    if (name == "htm") return std::make_unique<baselines::HtmTsxSim>();
    if (name == "lock") return std::make_unique<baselines::GlobalLockTm>();
    ADD_FAILURE() << "unknown runtime";
    return nullptr;
}

struct Params
{
    std::string runtime;
    unsigned threads;
};

class OpacityTest
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>>
{
};

TEST_P(OpacityTest, PairInvariantsHoldInsideTransactions)
{
    const auto [runtime_name, threads] = GetParam();
    auto rt = make_runtime(runtime_name);

    constexpr size_t kPairs = 16;
    constexpr int64_t kPairSum = 1000;
    tm::TmArray<int64_t> a(kPairs), b(kPairs);
    for (size_t i = 0; i < kPairs; ++i) {
        a.set_unsafe(i, kPairSum / 2);
        b.set_unsafe(i, kPairSum / 2);
    }

    std::atomic<int> violations{0};
    std::vector<std::thread> workers;
    for (unsigned tid = 0; tid < threads; ++tid) {
        workers.emplace_back([&, tid] {
            rt->thread_init(tid);
            Xoshiro256 rng(31 + tid);
            for (int op = 0; op < 300; ++op) {
                const size_t pair = rng.below(kPairs);
                const double dice = rng.uniform();
                if (dice < 0.45) {
                    // Intra-pair transfer: preserves a[i] + b[i].
                    rt->execute([&](tm::Tx& tx) {
                        const auto delta =
                            static_cast<int64_t>(rng.below(20)) - 10;
                        a.set(tx, pair, a.get(tx, pair) - delta);
                        b.set(tx, pair, b.get(tx, pair) + delta);
                    });
                } else if (dice < 0.9) {
                    // Pair reader: the invariant must hold mid-flight.
                    rt->execute([&](tm::Tx& tx) {
                        const int64_t sum =
                            a.get(tx, pair) + b.get(tx, pair);
                        if (sum != kPairSum) violations.fetch_add(1);
                    });
                } else {
                    // Global scan: total is also invariant.
                    rt->execute([&](tm::Tx& tx) {
                        int64_t total = 0;
                        for (size_t i = 0; i < kPairs; ++i) {
                            total += a.get(tx, i) + b.get(tx, i);
                        }
                        if (total !=
                            static_cast<int64_t>(kPairs) * kPairSum) {
                            violations.fetch_add(1);
                        }
                    });
                }
            }
            rt->thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();

    EXPECT_EQ(violations.load(), 0)
        << runtime_name << " presented an inconsistent snapshot";
    // Post-run the invariants must hold too.
    for (size_t i = 0; i < kPairs; ++i) {
        EXPECT_EQ(a.get_unsafe(i) + b.get_unsafe(i), kPairSum)
            << "pair " << i;
    }
}

TEST_P(OpacityTest, MonotonicVersionsNeverRegress)
{
    // A single cell is incremented; a reader that loads it twice in one
    // transaction must see identical values (no mid-transaction
    // updates leaking in).
    const auto [runtime_name, threads] = GetParam();
    auto rt = make_runtime(runtime_name);
    tm::TmVar<int64_t> version(0);
    std::atomic<int> torn{0};
    std::vector<std::thread> workers;
    for (unsigned tid = 0; tid < threads; ++tid) {
        workers.emplace_back([&, tid] {
            rt->thread_init(tid);
            Xoshiro256 rng(7 + tid);
            for (int op = 0; op < 400; ++op) {
                if (rng.chance(0.5)) {
                    rt->execute([&](tm::Tx& tx) {
                        version.set(tx, version.get(tx) + 1);
                    });
                } else {
                    rt->execute([&](tm::Tx& tx) {
                        const int64_t v1 = version.get(tx);
                        // Busy work between the two reads widens the race
                        // window.
                        int64_t sink = 0;
                        for (int i = 0; i < 50; ++i) sink += i * v1;
                        (void)sink;
                        const int64_t v2 = version.get(tx);
                        if (v1 != v2) torn.fetch_add(1);
                    });
                }
            }
            rt->thread_fini();
        });
    }
    for (auto& worker : workers) worker.join();
    EXPECT_EQ(torn.load(), 0) << runtime_name;
}

INSTANTIATE_TEST_SUITE_P(
    Battery, OpacityTest,
    ::testing::Combine(::testing::Values("rococo", "tinystm", "htm",
                                         "lock"),
                       ::testing::Values(2u, 4u)));

} // namespace
} // namespace rococo
