/// Tests for the FPGA model: link timing, conflict detector
/// (conservative vs the exact classifier), validation engine,
/// real-thread pipeline and the §6.5 resource model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "common/rng.h"
#include "core/rococo_validator.h"
#include "fpga/cci_link.h"
#include "fpga/resource_model.h"
#include "fpga/validation_engine.h"
#include "fpga/validation_pipeline.h"
#include "obs/topk.h"

namespace rococo::fpga {
namespace {

TEST(CciLink, Harp2Defaults)
{
    CciLinkModel link;
    EXPECT_DOUBLE_EQ(link.round_trip_ns(), 600.0);
    EXPECT_DOUBLE_EQ(link.clock_period_ns(), 5.0);
    // A small request clears the pipeline well under a microsecond on
    // top of the link (the Fig. 11 claim).
    EXPECT_LT(link.isolated_latency_ns(8, 4), 1000.0);
}

TEST(CciLink, OccupancyScalesWithAddresses)
{
    CciLinkModel link;
    EXPECT_EQ(link.occupancy_cycles(0, 0), 1u);
    EXPECT_EQ(link.occupancy_cycles(8, 4), 2u);  // two cachelines
    EXPECT_EQ(link.occupancy_cycles(64, 16), 10u);
    EXPECT_GT(link.service_interval_ns(64, 16),
              link.service_interval_ns(4, 4));
    EXPECT_EQ(link.request_cachelines(8, 8), 3u); // 2 data + 1 header
}

TEST(Detector, ClassifiesLikeExactOnLowFpConfig)
{
    // With huge signatures (negligible false positives) the detector's
    // classification must match the exact classifier on random
    // histories.
    const size_t window = 16;
    auto cfg = std::make_shared<const sig::SignatureConfig>(1 << 16, 4);
    ConflictDetector detector(window, cfg);
    core::ExactRococoValidator exact(window,
                                     /*strict_read_only=*/true);
    Xoshiro256 rng(3);

    auto random_set = [&](size_t max_n) {
        std::vector<uint64_t> out;
        const size_t n = rng.below(max_n + 1);
        for (size_t i = 0; i < n; ++i) out.push_back(rng.below(128));
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
    };

    for (int t = 0; t < 100; ++t) {
        const auto reads = random_set(6);
        auto writes = random_set(4);
        if (writes.empty()) writes.push_back(rng.below(128));
        const uint64_t snapshot =
            exact.window_start() +
            rng.below(exact.next_cid() - exact.window_start() + 1);

        OffloadRequest request{reads, writes, snapshot};
        const core::ValidationRequest from_detector =
            detector.classify(request);
        const core::ValidationRequest from_exact =
            exact.classify(reads, writes, snapshot);
        EXPECT_EQ(from_detector.forward, from_exact.forward) << "txn " << t;
        EXPECT_EQ(from_detector.backward, from_exact.backward)
            << "txn " << t;

        // Keep both histories in lockstep by committing through exact.
        const auto result = exact.validate(reads, writes, snapshot);
        if (result.verdict == core::Verdict::kCommit) {
            detector.record_commit(result.cid, request);
        }
    }
}

TEST(Detector, SmallSignaturesAreConservative)
{
    // With realistic 512-bit signatures the detector may report EXTRA
    // edges (false positives) but never fewer than the exact
    // classifier.
    const size_t window = 32;
    auto cfg = std::make_shared<const sig::SignatureConfig>(512, 4);
    ConflictDetector detector(window, cfg);
    core::ExactRococoValidator exact(window, true);
    Xoshiro256 rng(4);

    for (int t = 0; t < 200; ++t) {
        std::vector<uint64_t> reads, writes;
        for (size_t i = 0; i < 1 + rng.below(20); ++i) {
            reads.push_back(rng.below(4096));
        }
        for (size_t i = 0; i < 1 + rng.below(10); ++i) {
            writes.push_back(rng.below(4096));
        }
        std::sort(reads.begin(), reads.end());
        reads.erase(std::unique(reads.begin(), reads.end()), reads.end());
        std::sort(writes.begin(), writes.end());
        writes.erase(std::unique(writes.begin(), writes.end()),
                     writes.end());
        const uint64_t snapshot = exact.next_cid();

        const auto detected =
            detector.classify({reads, writes, snapshot});
        const auto exact_req = exact.classify(reads, writes, snapshot);

        std::set<uint64_t> det_f(detected.forward.begin(),
                                 detected.forward.end());
        std::set<uint64_t> det_b(detected.backward.begin(),
                                 detected.backward.end());
        for (uint64_t c : exact_req.forward) {
            EXPECT_TRUE(det_f.count(c)) << "missed forward edge";
        }
        for (uint64_t c : exact_req.backward) {
            EXPECT_TRUE(det_b.count(c)) << "missed backward edge";
        }

        const auto result = exact.validate(reads, writes, snapshot);
        if (result.verdict == core::Verdict::kCommit) {
            detector.record_commit(result.cid, {reads, writes, snapshot});
        }
    }
}

TEST(Engine, EndToEndCommitAndAbort)
{
    ValidationEngine engine;
    OffloadRequest t0{{}, {1}, 0};
    EXPECT_EQ(engine.process(t0).verdict, core::Verdict::kCommit);

    // Lost update: read old 1, write 1.
    OffloadRequest t1{{1}, {1}, 0};
    EXPECT_EQ(engine.process(t1).verdict, core::Verdict::kAbortCycle);

    // Reader of the new version commits.
    OffloadRequest t2{{1}, {2}, 1};
    EXPECT_EQ(engine.process(t2).verdict, core::Verdict::kCommit);
    EXPECT_EQ(engine.stats().get("commit"), 2u);
    EXPECT_EQ(engine.stats().get("abort-cycle"), 1u);
}

TEST(Engine, AttributesConflictCidOnCycleAbort)
{
    // The deterministic conflict trace of the provenance contract:
    // cid 0 writes address 1; the victim read the old version of 1 and
    // writes it back (lost update). The abort must name cid 0.
    ValidationEngine engine;
    OffloadRequest t0{{}, {1}, 0};
    const core::ValidationResult committed = engine.process(t0);
    ASSERT_EQ(committed.verdict, core::Verdict::kCommit);
    ASSERT_EQ(committed.cid, 0u);
    EXPECT_EQ(committed.conflict_cid, core::kNoConflictCid);

    OffloadRequest victim{{1}, {1}, 0};
    const core::ValidationResult aborted = engine.process(victim);
    ASSERT_EQ(aborted.verdict, core::Verdict::kAbortCycle);
    EXPECT_EQ(aborted.conflict_cid, 0u);

    // An unrelated transaction keeps committing with the sentinel.
    OffloadRequest t2{{1}, {2}, 1};
    const core::ValidationResult after = engine.process(t2);
    ASSERT_EQ(after.verdict, core::Verdict::kCommit);
    EXPECT_EQ(after.conflict_cid, core::kNoConflictCid);
}

TEST(Engine, FeedsConflictTopKFromTheAbortPath)
{
    ValidationEngine engine;
    OffloadRequest writer{{}, {7}, 0};
    ASSERT_EQ(engine.process(writer).verdict, core::Verdict::kCommit);
    for (int i = 0; i < 10; ++i) {
        OffloadRequest victim{{7}, {7}, 0};
        ASSERT_EQ(engine.process(victim).verdict,
                  core::Verdict::kAbortCycle);
    }
#ifndef ROCOCO_FORENSICS_OFF
    // Every sampled cycle abort offered its conflicting addresses; 7
    // must dominate the sketch.
    const obs::TopK& topk = engine.conflict_topk();
    EXPECT_GT(topk.offered(), 0u);
    obs::TopK::Entry top[obs::TopK::kCapacity];
    const size_t n = topk.snapshot(top, obs::TopK::kCapacity);
    ASSERT_GE(n, 1u);
    EXPECT_EQ(top[0].key, 7u);
#else
    EXPECT_EQ(engine.conflict_topk().offered(), 0u);
#endif
}

TEST(Engine, ForensicsSampleZeroDisablesTheTopKFeed)
{
    EngineConfig config;
    config.forensics_sample = 0;
    ValidationEngine engine(config);
    OffloadRequest writer{{}, {7}, 0};
    ASSERT_EQ(engine.process(writer).verdict, core::Verdict::kCommit);
    OffloadRequest victim{{7}, {7}, 0};
    ASSERT_EQ(engine.process(victim).verdict,
              core::Verdict::kAbortCycle);
    EXPECT_EQ(engine.conflict_topk().offered(), 0u);
}

TEST(Engine, ReadOnlyFastPath)
{
    ValidationEngine engine;
    OffloadRequest ro{{5}, {}, 0};
    EXPECT_EQ(engine.process(ro).verdict, core::Verdict::kCommit);
    EXPECT_EQ(engine.next_cid(), 0u);
}

TEST(Engine, WindowOverflow)
{
    EngineConfig config;
    config.window = 4;
    ValidationEngine engine(config);
    for (uint64_t i = 0; i < 8; ++i) {
        OffloadRequest w{{}, {100 + i}, i};
        ASSERT_EQ(engine.process(w).verdict, core::Verdict::kCommit);
    }
    OffloadRequest stale{{100}, {200}, 0};
    EXPECT_EQ(engine.process(stale).verdict,
              core::Verdict::kWindowOverflow);
}

TEST(Engine, LatencyModel)
{
    ValidationEngine engine;
    OffloadRequest small{{1, 2}, {3}, 0};
    OffloadRequest large{std::vector<uint64_t>(100, 0),
                         std::vector<uint64_t>(50, 1), 0};
    EXPECT_LT(engine.isolated_latency_ns(small),
              engine.isolated_latency_ns(large));
    EXPECT_GT(engine.isolated_latency_ns(small), 600.0);
}

TEST(Pipeline, ProcessesConcurrentSubmissions)
{
    ValidationPipeline pipeline;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50;
    std::atomic<int> commits{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                // Disjoint writes: everything commits.
                OffloadRequest req{
                    {}, {uint64_t(t) << 32 | uint64_t(i)}, 0};
                req.snapshot_cid = ~uint64_t{0} >> 1; // "current" snapshot
                auto r = pipeline.validate(std::move(req));
                if (r.verdict == core::Verdict::kCommit) ++commits;
            }
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(commits.load(), kThreads * kPerThread);
    EXPECT_EQ(pipeline.stats().get("commit"),
              uint64_t(kThreads) * kPerThread);
    pipeline.stop();
}

TEST(Pipeline, StopRejectsFurtherWork)
{
    ValidationPipeline pipeline;
    pipeline.stop();
    auto r = pipeline.validate({{}, {1}, 0});
    EXPECT_EQ(r.verdict, core::Verdict::kRejected);
    EXPECT_EQ(r.reason, obs::AbortReason::kBackpressure);
}

TEST(Pipeline, StopResolvesPendingFuturesInsteadOfBreakingPromises)
{
    // Regression: stop() used to close the queue and let the Items'
    // promises die unfulfilled, surfacing to waiters as
    // std::future_error(broken_promise). Now every pending future must
    // resolve — with the real verdict if the worker got there first,
    // with a typed rejection otherwise — and never throw.
    ValidationPipeline pipeline;
    std::vector<std::future<core::ValidationResult>> futures;
    for (uint64_t i = 0; i < 512; ++i) {
        futures.push_back(
            pipeline.submit({{}, {i}, ~uint64_t{0} >> 1}));
    }
    pipeline.stop(); // races the worker through the backlog
    uint64_t resolved = 0;
    for (auto& future : futures) {
        auto r = future.get(); // must not throw
        EXPECT_TRUE(r.verdict == core::Verdict::kCommit ||
                    r.verdict == core::Verdict::kRejected);
        if (r.verdict == core::Verdict::kRejected) {
            EXPECT_EQ(r.reason, obs::AbortReason::kBackpressure);
        }
        ++resolved;
    }
    EXPECT_EQ(resolved, futures.size());
    // Accounting covers both paths: engine verdicts + shutdown aborts
    // == everything submitted.
    const CounterBag bag = pipeline.stats();
    EXPECT_EQ(bag.get("commit") + bag.get("shutdown_aborts"),
              bag.get("submitted"));
}

TEST(Pipeline, ValidateWithDeadlineTimesOutUnderBacklog)
{
    // Stuff the queue, then ask for a verdict with a zero deadline: the
    // worker cannot possibly have drained the backlog between submit
    // and wait, so the caller gets the typed timeout instead of
    // blocking.
    ValidationPipeline pipeline;
    std::vector<std::future<core::ValidationResult>> backlog;
    for (uint64_t i = 0; i < 2048; ++i) {
        backlog.push_back(
            pipeline.submit({{}, {i}, ~uint64_t{0} >> 1}));
    }
    auto r = pipeline.validate({{}, {99999}, 0},
                               std::chrono::nanoseconds(0));
    EXPECT_EQ(r.verdict, core::Verdict::kTimeout);
    EXPECT_EQ(r.reason, obs::AbortReason::kTimeout);
    EXPECT_EQ(pipeline.stats().get("timeout"), 1u);
    pipeline.stop();
    for (auto& future : backlog) future.get(); // all resolve, none throw
}

TEST(Pipeline, ValidateWithGenerousDeadlineStillCommits)
{
    ValidationPipeline pipeline;
    auto r = pipeline.validate({{}, {1}, ~uint64_t{0} >> 1},
                               std::chrono::seconds(30));
    EXPECT_EQ(r.verdict, core::Verdict::kCommit);
    EXPECT_EQ(pipeline.stats().get("timeout"), 0u);
    pipeline.stop();
}

TEST(Pipeline, StatsSnapshotIsConsistentUnderConcurrentReads)
{
    // Hammer stats() from readers while submitters run. Every snapshot
    // must satisfy the documented invariant: the verdict counters never
    // exceed "submitted", and the high-water mark covers every
    // submission the counters include (>= 1 once anything completed).
    ValidationPipeline pipeline;
    constexpr int kSubmitters = 3;
    constexpr int kPerThread = 200;
    std::atomic<bool> done{false};
    std::atomic<int> violations{0};

    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                const CounterBag bag = pipeline.stats();
                const uint64_t verdicts = bag.get("commit") +
                                          bag.get("abort-cycle") +
                                          bag.get("window-overflow");
                const uint64_t submitted = bag.get("submitted");
                if (verdicts > submitted) violations.fetch_add(1);
                if (verdicts > 0 && bag.get("queue_high_water") == 0) {
                    violations.fetch_add(1);
                }
            }
        });
    }

    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                OffloadRequest req{
                    {}, {uint64_t(t) << 32 | uint64_t(i)}, 0};
                req.snapshot_cid = ~uint64_t{0} >> 1;
                pipeline.validate(std::move(req));
            }
        });
    }
    for (auto& thread : submitters) thread.join();
    done.store(true, std::memory_order_release);
    for (auto& thread : readers) thread.join();

    EXPECT_EQ(violations.load(), 0);
    const CounterBag final_bag = pipeline.stats();
    EXPECT_EQ(final_bag.get("commit"),
              uint64_t(kSubmitters) * kPerThread);
    EXPECT_EQ(final_bag.get("submitted"),
              uint64_t(kSubmitters) * kPerThread);
    EXPECT_GE(final_bag.get("queue_high_water"), 1u);
    pipeline.stop();
}

TEST(ResourceModel, ReproducesPaperTable)
{
    const ResourceEstimate e = estimate_resources({});
    EXPECT_EQ(e.registers, 113485u);
    EXPECT_EQ(e.alms, 249442u);
    EXPECT_EQ(e.dsps, 223u);
    EXPECT_EQ(e.bram_bits, 2055802u);
    EXPECT_DOUBLE_EQ(e.clock_mhz, 200.0);
    EXPECT_NEAR(e.registers_pct, 62.9, 0.1);
    EXPECT_NEAR(e.alms_pct, 58.39, 0.05);
    EXPECT_NEAR(e.dsps_pct, 14.7, 0.1);
    EXPECT_NEAR(e.bram_pct, 3.7, 0.1);
}

TEST(ResourceModel, MonotoneInWindowAndSignature)
{
    ResourceParams base;
    ResourceParams wide = base;
    wide.window = 128;
    ResourceParams fat = base;
    fat.signature_bits = 1024;

    const auto b = estimate_resources(base);
    const auto w = estimate_resources(wide);
    const auto f = estimate_resources(fat);
    EXPECT_GT(w.registers, b.registers);
    EXPECT_GT(w.bram_bits, b.bram_bits);
    EXPECT_GT(f.alms, b.alms);
    // §6.5: 1024-bit signatures cost clock frequency.
    EXPECT_LT(f.clock_mhz, b.clock_mhz);
    EXPECT_LT(w.clock_mhz, b.clock_mhz);
}

TEST(ResourceModel, Renders)
{
    const std::string text = to_string(estimate_resources({}));
    EXPECT_NE(text.find("113485"), std::string::npos);
    EXPECT_NE(text.find("MHz"), std::string::npos);
}

} // namespace
} // namespace rococo::fpga
