#!/bin/sh
# Prometheus-exposition end-to-end: a loadgen-hosted server is scraped
# twice over the wire (svcctl prom) while clients pump requests, and
# also writes a textfile exposition at sweep end (--prom-out). Every
# exposition must pass scripts/check_prom.py — charset, TYPE
# discipline, counter naming/monotonicity, quantile ranges.
#
#   $1 = path to svc_loadgen   $2 = path to svcctl
#   $3 = scratch prefix (scrapes written as "$3.<n>.prom")
#   $4 = python interpreter    $5 = path to check_prom.py
set -u

LOADGEN="$1"
SVCCTL="$2"
PREFIX="$3"
PYTHON="$4"
CHECKER="$5"

SOCK="/tmp/prom_e2e_$$.sock"
rm -f "$PREFIX".*.prom

"$LOADGEN" --clients=2 --batch=8 --requests=300000 --socket="$SOCK" \
    --prom-out="$PREFIX.textfile.prom" > /dev/null 2>&1 &
LOADGEN_PID=$!
trap 'kill "$LOADGEN_PID" 2>/dev/null; rm -f "$SOCK"' EXIT

tries=0
while [ ! -S "$SOCK" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "prom_e2e: server socket never appeared" >&2
        exit 1
    fi
    sleep 0.05
done

# Two live scrapes with traffic in between: the pair proves counter
# monotonicity, not just a single well-formed snapshot.
"$SVCCTL" --socket="$SOCK" prom > "$PREFIX.1.prom" || {
    echo "prom_e2e: first svcctl prom scrape failed" >&2
    exit 1
}
sleep 0.3
"$SVCCTL" --socket="$SOCK" prom > "$PREFIX.2.prom" || {
    echo "prom_e2e: second svcctl prom scrape failed" >&2
    exit 1
}
grep -q '# TYPE svc_requests_total counter' "$PREFIX.1.prom" || {
    echo "prom_e2e: scrape lacks the svc_requests_total family" >&2
    exit 1
}
"$PYTHON" "$CHECKER" "$PREFIX.1.prom" "$PREFIX.2.prom" || {
    echo "prom_e2e: live scrapes failed exposition lint" >&2
    exit 1
}

# Sweep end: accounting check inside loadgen, then the textfile.
wait "$LOADGEN_PID"
status=$?
trap - EXIT
rm -f "$SOCK"
if [ "$status" -ne 0 ]; then
    echo "prom_e2e: svc_loadgen accounting check failed" >&2
    exit 1
fi
if [ ! -s "$PREFIX.textfile.prom" ]; then
    echo "prom_e2e: --prom-out wrote no textfile" >&2
    exit 1
fi
"$PYTHON" "$CHECKER" "$PREFIX.textfile.prom" || {
    echo "prom_e2e: --prom-out textfile failed exposition lint" >&2
    exit 1
}
# The textfile is the sweep-end registry: it must be no earlier than
# the second live scrape (counters monotone live -> textfile).
"$PYTHON" "$CHECKER" "$PREFIX.2.prom" "$PREFIX.textfile.prom" || {
    echo "prom_e2e: counters regressed between live scrape and textfile" >&2
    exit 1
}
echo "prom_e2e: OK"
