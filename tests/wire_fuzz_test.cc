/// Robustness fuzz for the svc wire decoder and the server's framing
/// path: seeded, deterministic truncations and bit-flips of valid v1
/// and v2 frames (plus pure garbage streams) must always end in a
/// clean outcome — an incomplete frame awaiting more bytes, a
/// malformed-stream verdict (connection drop), or a well-bounded
/// decoded frame. Never a crash, an unbounded loop, an overread (the
/// asan/ubsan presets run this test too), and never a *truncated*
/// frame accepted as complete. The server half sends the same mutated
/// bytes at a live svc::Server and asserts it survives: every mutated
/// connection ends in a disconnect or a parseable reply, and the
/// server still answers a clean client afterwards.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "svc/server.h"
#include "svc/wire.h"

namespace rococo::svc {
namespace {

std::string
test_socket_path(const std::string& tag)
{
    return "/tmp/rococo_wire_fuzz_" + tag + "_" +
           std::to_string(getpid()) + ".sock";
}

/// One valid frame of every kind the protocol defines.
std::vector<std::vector<uint8_t>>
valid_frames()
{
    WireRequest request;
    request.request_id = 7;
    request.deadline_ns = 1'000'000;
    request.trace_id = 11;
    request.parent_span_id = 13;
    request.offload.reads = {1, 2, 3};
    request.offload.writes = {4, 5};
    request.offload.snapshot_cid = 9;

    WireResponse response;
    response.request_id = 7;
    response.result.verdict = core::Verdict::kCommit;
    response.result.cid = 42;
    response.stages.engine_ns = 500;

    std::vector<std::vector<uint8_t>> frames;
    frames.emplace_back();
    encode_request_v1(frames.back(), request);
    frames.emplace_back();
    encode_request(frames.back(), request);
    frames.emplace_back();
    encode_response(frames.back(), response, /*v2=*/false);
    frames.emplace_back();
    encode_response(frames.back(), response, /*v2=*/true);
    frames.emplace_back();
    encode_stats_request(frames.back());
    frames.emplace_back();
    encode_stats_reply(frames.back(), "{\"counters\":{}}");
    frames.emplace_back();
    encode_topk_request(frames.back());
    frames.emplace_back();
    encode_topk_reply(frames.back(), "{\"shards\": []}");
    frames.emplace_back();
    encode_dump_request(frames.back());
    frames.emplace_back();
    encode_dump_reply(frames.back(), "{\"ok\": false}");
    frames.emplace_back();
    encode_series_request(frames.back());
    frames.emplace_back();
    encode_series_reply(frames.back(),
                        "{\"enabled\": true, \"health\": {\"state\": "
                        "\"ok\", \"rules\": []}, \"samples\": "
                        "{\"series\": []}}");
    frames.emplace_back();
    encode_prom_request(frames.back());
    frames.emplace_back();
    encode_prom_reply(frames.back(),
                      "# TYPE svc_requests_total counter\n"
                      "svc_requests_total 7\n");
    return frames;
}

/// Drain @p reader, decoding every completed frame, and assert the
/// stream ends cleanly within the structural bound (every frame
/// consumes at least the 5-byte header, so a finite buffer can only
/// hold finitely many).
void
drain(FrameReader& reader, size_t fed_bytes)
{
    const size_t bound = fed_bytes / kFrameHeaderBytes + 1;
    size_t frames = 0;
    for (;;) {
        ASSERT_LE(frames, bound) << "decoder yielded impossible frame count";
        bool malformed = false;
        const auto frame = reader.next(&malformed);
        if (!frame) {
            // Clean end: either corrupt (caller would disconnect) or
            // waiting for bytes that will never come.
            return;
        }
        ++frames;
        // Whatever survived framing must decode without crashing and
        // within the protocol's own bounds.
        switch (frame->type) {
        case MsgType::kRequest:
        case MsgType::kRequestV2: {
            const auto decoded =
                decode_request(frame->type, frame->payload, frame->size);
            if (decoded) {
                ASSERT_LE(decoded->offload.reads.size(), kMaxAddresses);
                ASSERT_LE(decoded->offload.writes.size(), kMaxAddresses);
            }
            break;
        }
        case MsgType::kResponse:
        case MsgType::kResponseV2:
            (void)decode_response(frame->type, frame->payload,
                                  frame->size);
            break;
        case MsgType::kStats:
        case MsgType::kStatsReply:
        case MsgType::kTopK:
        case MsgType::kTopKReply:
        case MsgType::kDump:
        case MsgType::kDumpReply:
        case MsgType::kSeries:
        case MsgType::kSeriesReply:
        case MsgType::kProm:
        case MsgType::kPromReply:
            break; // empty / raw text payloads; nothing to decode
        }
    }
}

TEST(WireFuzz, TruncationsNeverCompleteAFrame)
{
    for (const auto& frame : valid_frames()) {
        for (size_t keep = 0; keep < frame.size(); ++keep) {
            FrameReader reader;
            reader.append(frame.data(), keep);
            bool malformed = false;
            const auto got = reader.next(&malformed);
            // A strict prefix can never decode as the full frame: the
            // reader either waits for the rest or flags corruption —
            // it must not hand out a short frame.
            ASSERT_FALSE(got.has_value())
                << "truncated frame accepted at " << keep << "/"
                << frame.size() << " bytes";
        }
    }
}

TEST(WireFuzz, BitFlipsEndCleanOrBoundedDecode)
{
    Xoshiro256 rng(2026);
    for (const auto& frame : valid_frames()) {
        for (int trial = 0; trial < 200; ++trial) {
            auto mutated = frame;
            // One to three seeded single-bit flips anywhere in the
            // frame (header and payload alike).
            const int flips = 1 + int(rng.below(3));
            for (int f = 0; f < flips; ++f) {
                const size_t byte = size_t(rng.below(mutated.size()));
                mutated[byte] ^= uint8_t(1u << rng.below(8));
            }
            FrameReader reader;
            reader.append(mutated.data(), mutated.size());
            drain(reader, mutated.size());
            if (testing::Test::HasFatalFailure()) return;
        }
    }
}

TEST(WireFuzz, GarbageStreamsEndClean)
{
    Xoshiro256 rng(7);
    for (int trial = 0; trial < 100; ++trial) {
        const size_t size = 1 + size_t(rng.below(4096));
        std::vector<uint8_t> garbage(size);
        for (auto& byte : garbage) byte = uint8_t(rng());
        FrameReader reader;
        // Feed in random-sized chunks to exercise resynchronization
        // across append() boundaries.
        size_t off = 0;
        while (off < garbage.size()) {
            const size_t chunk =
                std::min(garbage.size() - off, 1 + rng.below(97));
            reader.append(garbage.data() + off, chunk);
            off += chunk;
        }
        drain(reader, garbage.size());
        if (testing::Test::HasFatalFailure()) return;
    }
}

/// Raw client socket with a receive timeout so a wedged server shows
/// up as a bounded wait, not a hang. Mutation volleys use a short
/// timeout (a parked half-frame is a *correct* server reaction and
/// must not stall the test); the liveness probe uses a generous one.
int
connect_raw(const std::string& path, unsigned timeout_ms = 5000)
{
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    timeval timeout{};
    timeout.tv_sec = timeout_ms / 1000;
    timeout.tv_usec = suseconds_t(timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        close(fd);
        return -1;
    }
    return fd;
}

bool
send_all(int fd, const std::vector<uint8_t>& bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = send(fd, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;
        off += size_t(n);
    }
    return true;
}

/// True when the server answers a clean kStats round trip — the
/// liveness probe run between and after the mutation volleys.
bool
server_answers_stats(const std::string& path)
{
    const int fd = connect_raw(path);
    if (fd < 0) return false;
    std::vector<uint8_t> frame;
    encode_stats_request(frame);
    if (!send_all(fd, frame)) {
        close(fd);
        return false;
    }
    FrameReader reader;
    uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
            close(fd);
            return false;
        }
        reader.append(buf, size_t(n));
        bool malformed = false;
        while (auto got = reader.next(&malformed)) {
            if (got->type == MsgType::kStatsReply) {
                close(fd);
                return true;
            }
        }
        if (malformed) {
            close(fd);
            return false;
        }
    }
}

/// Mutation volley against a live server built from @p config: 120
/// truncated/bit-flipped frames on fresh connections, periodic and
/// final liveness probes, and the accounting cross-check after stop.
/// Shared by the inline (single-threaded) and worker-pool variants —
/// the wire robustness contract is mode-independent.
void
fuzz_live_server(ServerConfig config)
{
    Server server(config);
    ASSERT_TRUE(server.start());

    const auto frames = valid_frames();
    Xoshiro256 rng(99);
    for (int trial = 0; trial < 120; ++trial) {
        auto mutated = frames[size_t(rng.below(frames.size()))];
        if (rng.below(2) == 0) {
            // Truncation.
            mutated.resize(size_t(rng.below(mutated.size())));
        } else {
            const int flips = 1 + int(rng.below(3));
            for (int f = 0; f < flips; ++f) {
                const size_t byte = size_t(rng.below(mutated.size()));
                mutated[byte] ^= uint8_t(1u << rng.below(8));
            }
        }
        const int fd = connect_raw(config.socket_path, /*timeout_ms=*/50);
        ASSERT_GE(fd, 0) << "server stopped accepting at trial " << trial;
        if (send_all(fd, mutated)) {
            // Give the server a chance to react; either it answers
            // something (possibly a valid response if only the payload
            // mutated) or it drops us. Both are clean. A timeout here
            // is fine too — e.g. a truncated frame parks the
            // connection waiting for the rest; liveness is checked on
            // a separate clean connection below.
            uint8_t buf[4096];
            (void)recv(fd, buf, sizeof(buf), 0);
        }
        close(fd);
        if (trial % 30 == 0) {
            ASSERT_TRUE(server_answers_stats(config.socket_path))
                << "server wedged after trial " << trial;
        }
    }
    // Final liveness: stats answers and the accounting registry is
    // still self-consistent (every counted request got a verdict).
    ASSERT_TRUE(server_answers_stats(config.socket_path));
    server.stop();
    const CounterBag stats = server.stats();
    const uint64_t answered = stats.get("svc.verdict.commit") +
                              stats.get("svc.verdict.abort-cycle") +
                              stats.get("svc.verdict.window-overflow") +
                              stats.get("svc.timeout") +
                              stats.get("svc.rejected");
    EXPECT_EQ(stats.get("svc.requests"), answered);
}

TEST(WireFuzz, ServerSurvivesMutatedFrames)
{
    ServerConfig config;
    config.socket_path = test_socket_path("server");
    fuzz_live_server(config);
}

TEST(WireFuzz, ThreadedServerSurvivesMutatedFrames)
{
    // Same volley with the worker pool engaged: mutated frames that
    // survive framing become real jobs, so the IO-thread/worker
    // handoff (acquire, submit, completion drain) also sees the
    // fuzzer's decode edge cases, and connection drops race in-flight
    // jobs whose verdicts must be discarded by the (fd, generation)
    // check rather than written to a recycled descriptor.
    ServerConfig config;
    config.socket_path = test_socket_path("server_mt");
    config.shards = 2;
    config.worker_threads = 2;
    fuzz_live_server(config);
}

} // namespace
} // namespace rococo::svc
