/// Cross-runtime correctness battery: every TM runtime (ROCoCoTM,
/// TinySTM-LSA, simulated TSX, global lock) must preserve atomicity
/// and isolation under real concurrent threads. These are the
/// "does the actual runtime work" tests; scalability is measured by
/// the simulator, not here (single-core machine).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <thread>

#include "baselines/global_lock_tm.h"
#include "baselines/htm_tsx.h"
#include "baselines/sequential_tm.h"
#include "baselines/tinystm_lsa.h"
#include "common/rng.h"
#include "tm/rococo_tm.h"
#include "tm/tm.h"

namespace rococo {
namespace {

using tm::TmRuntime;

std::unique_ptr<TmRuntime>
make_runtime(const std::string& name)
{
    if (name == "rococo") return std::make_unique<tm::RococoTm>();
    if (name == "tinystm") {
        baselines::TinyStmConfig config;
        config.stripes = 1 << 16;
        return std::make_unique<baselines::TinyStmLsa>(config);
    }
    if (name == "htm") {
        return std::make_unique<baselines::HtmTsxSim>();
    }
    if (name == "lock") return std::make_unique<baselines::GlobalLockTm>();
    ADD_FAILURE() << "unknown runtime " << name;
    return nullptr;
}

/// Run body loops on several threads with proper init/fini.
void
run_threads(TmRuntime& rt, unsigned threads,
            const std::function<void(unsigned)>& body)
{
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            rt.thread_init(t);
            body(t);
            rt.thread_fini();
        });
    }
    for (auto& w : workers) w.join();
}

class RuntimeTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RuntimeTest, SingleThreadReadWrite)
{
    auto rt = make_runtime(GetParam());
    tm::TmVar<int64_t> x(5);
    run_threads(*rt, 1, [&](unsigned) {
        rt->execute([&](tm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
    });
    EXPECT_EQ(x.get_unsafe(), 6);
    EXPECT_GE(rt->stats().get(tm::stat::kCommits), 1u);
}

TEST_P(RuntimeTest, ReadAfterWriteWithinTx)
{
    auto rt = make_runtime(GetParam());
    tm::TmVar<int64_t> x(0);
    run_threads(*rt, 1, [&](unsigned) {
        rt->execute([&](tm::Tx& tx) {
            x.set(tx, 41);
            EXPECT_EQ(x.get(tx), 41);
            x.set(tx, x.get(tx) + 1);
        });
    });
    EXPECT_EQ(x.get_unsafe(), 42);
}

TEST_P(RuntimeTest, CounterIncrementsAreAtomic)
{
    auto rt = make_runtime(GetParam());
    tm::TmVar<int64_t> counter(0);
    constexpr unsigned kThreads = 4;
    constexpr int kPerThread = 200;
    run_threads(*rt, kThreads, [&](unsigned) {
        for (int i = 0; i < kPerThread; ++i) {
            rt->execute(
                [&](tm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
        }
    });
    EXPECT_EQ(counter.get_unsafe(), int64_t(kThreads) * kPerThread);
}

TEST_P(RuntimeTest, BankTransfersConserveTotal)
{
    auto rt = make_runtime(GetParam());
    constexpr size_t kAccounts = 32;
    constexpr int64_t kInitial = 100;
    tm::TmArray<int64_t> accounts(kAccounts);
    for (size_t i = 0; i < kAccounts; ++i) {
        accounts.set_unsafe(i, kInitial);
    }
    constexpr unsigned kThreads = 4;
    run_threads(*rt, kThreads, [&](unsigned tid) {
        Xoshiro256 rng(1000 + tid);
        for (int i = 0; i < 150; ++i) {
            const size_t from = rng.below(kAccounts);
            const size_t to = rng.below(kAccounts);
            if (from == to) continue;
            rt->execute([&](tm::Tx& tx) {
                const int64_t amount = 1 + int64_t(rng.below(5));
                accounts.set(tx, from, accounts.get(tx, from) - amount);
                accounts.set(tx, to, accounts.get(tx, to) + amount);
            });
        }
    });
    int64_t total = 0;
    for (size_t i = 0; i < kAccounts; ++i) {
        total += accounts.get_unsafe(i);
    }
    EXPECT_EQ(total, int64_t(kAccounts) * kInitial);
}

TEST_P(RuntimeTest, IsolationInvariantHolds)
{
    // Two cells always updated together must never be observed unequal
    // inside a transaction (catches torn snapshots / isolation bugs).
    auto rt = make_runtime(GetParam());
    tm::TmVar<int64_t> a(0), b(0);
    std::atomic<bool> violated{false};
    constexpr unsigned kThreads = 4;
    run_threads(*rt, kThreads, [&](unsigned tid) {
        Xoshiro256 rng(7 + tid);
        for (int i = 0; i < 200; ++i) {
            if (rng.chance(0.5)) {
                rt->execute([&](tm::Tx& tx) {
                    const int64_t v = a.get(tx) + 1;
                    a.set(tx, v);
                    b.set(tx, v);
                });
            } else {
                rt->execute([&](tm::Tx& tx) {
                    const int64_t va = a.get(tx);
                    const int64_t vb = b.get(tx);
                    if (va != vb) violated = true;
                });
            }
        }
    });
    EXPECT_FALSE(violated.load());
    EXPECT_EQ(a.get_unsafe(), b.get_unsafe());
}

TEST_P(RuntimeTest, WriteSkewPrevented)
{
    // The Fig. 1 anomaly: from x == y == 0, one transaction does
    // "if (y == 0) x = 1", the other "if (x == 0) y = 1". Under any
    // serializable TM at most one write may happen per round.
    auto rt = make_runtime(GetParam());
    tm::TmVar<int64_t> x(0), y(0);
    std::atomic<int> skew{0};
    for (int round = 0; round < 50; ++round) {
        x.set_unsafe(0);
        y.set_unsafe(0);
        run_threads(*rt, 2, [&](unsigned tid) {
            rt->execute([&](tm::Tx& tx) {
                if (tid == 0) {
                    if (y.get(tx) == 0) x.set(tx, 1);
                } else {
                    if (x.get(tx) == 0) y.set(tx, 1);
                }
            });
        });
        if (x.get_unsafe() == 1 && y.get_unsafe() == 1) ++skew;
    }
    EXPECT_EQ(skew.load(), 0) << "write skew observed";
}

TEST_P(RuntimeTest, StatsAccumulate)
{
    auto rt = make_runtime(GetParam());
    tm::TmVar<int64_t> x(0);
    run_threads(*rt, 2, [&](unsigned) {
        for (int i = 0; i < 50; ++i) {
            rt->execute([&](tm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
        }
    });
    EXPECT_EQ(rt->stats().get(tm::stat::kCommits), 100u);
}

INSTANTIATE_TEST_SUITE_P(AllRuntimes, RuntimeTest,
                         ::testing::Values("rococo", "tinystm", "htm",
                                           "lock"));

TEST(RococoTm, ReadOnlyFastPathCounted)
{
    tm::RococoTm rt;
    tm::TmVar<int64_t> x(3);
    run_threads(rt, 1, [&](unsigned) {
        rt.execute([&](tm::Tx& tx) { EXPECT_EQ(x.get(tx), 3); });
    });
    EXPECT_EQ(rt.stats().get(tm::stat::kReadOnlyCommits), 1u);
    EXPECT_EQ(rt.fpga_stats().get("commit"), 0u);
}

TEST(RococoTm, WritersGoThroughFpga)
{
    tm::RococoTm rt;
    tm::TmVar<int64_t> x(0);
    run_threads(rt, 2, [&](unsigned) {
        for (int i = 0; i < 25; ++i) {
            rt.execute([&](tm::Tx& tx) { x.set(tx, x.get(tx) + 1); });
        }
    });
    EXPECT_EQ(x.get_unsafe(), 50);
    EXPECT_EQ(rt.fpga_stats().get("commit"), 50u);
}

TEST(RococoTm, ContentionProducesAbortsButStaysCorrect)
{
    tm::RococoTm rt;
    constexpr size_t kHot = 2; // tiny array: heavy contention
    tm::TmArray<int64_t> cells(kHot);
    constexpr unsigned kThreads = 4;
    constexpr int kPerThread = 100;
    run_threads(rt, kThreads, [&](unsigned tid) {
        Xoshiro256 rng(tid);
        for (int i = 0; i < kPerThread; ++i) {
            rt.execute([&](tm::Tx& tx) {
                const size_t idx = rng.below(kHot);
                cells.set(tx, idx, cells.get(tx, idx) + 1);
            });
        }
    });
    int64_t total = 0;
    for (size_t i = 0; i < kHot; ++i) total += cells.get_unsafe(i);
    EXPECT_EQ(total, int64_t(kThreads) * kPerThread);
}

TEST(HtmTsxSim, FallbackEngagesAfterRepeatedAborts)
{
    // Deterministic: the body aborts its speculative attempts via
    // retry(); with retries=0 the very next attempt must take the
    // global-lock fallback and commit.
    baselines::HtmConfig config;
    config.retries = 0;
    baselines::HtmTsxSim rt(config);
    tm::TmVar<int64_t> x(0);
    run_threads(rt, 1, [&](unsigned) {
        int attempts = 0;
        rt.execute([&](tm::Tx& tx) {
            if (attempts++ < 1) tx.retry(); // kill the speculative try
            x.set(tx, 7);
        });
    });
    EXPECT_EQ(x.get_unsafe(), 7);
    EXPECT_EQ(rt.stats().get(tm::stat::kFallbackCommits), 1u);
    EXPECT_EQ(rt.stats().get(tm::stat::kAborts), 1u);
}

TEST(HtmTsxSim, CapacityAborts)
{
    baselines::HtmConfig config;
    config.read_capacity = 64;
    baselines::HtmTsxSim rt(config);
    tm::TmArray<int64_t> big(256);
    run_threads(rt, 1, [&](unsigned) {
        rt.execute([&](tm::Tx& tx) {
            int64_t sum = 0;
            for (size_t i = 0; i < big.size(); ++i) sum += big.get(tx, i);
            big.set(tx, 0, sum);
        });
    });
    // The transaction eventually commits via fallback, after capacity
    // aborts.
    EXPECT_GT(rt.stats().get(tm::stat::kCapacityAborts), 0u);
    EXPECT_GT(rt.stats().get(tm::stat::kFallbackCommits), 0u);
}

TEST(SequentialTm, DirectExecution)
{
    baselines::SequentialTm rt;
    tm::TmVar<int64_t> x(0);
    rt.thread_init(0);
    rt.execute([&](tm::Tx& tx) { x.set(tx, 9); });
    rt.thread_fini();
    EXPECT_EQ(x.get_unsafe(), 9);
    EXPECT_EQ(rt.stats().get(tm::stat::kCommits), 1u);
}

} // namespace
} // namespace rococo

namespace rococo {
namespace {

TEST(RococoTmIrrevocable, EngagesAfterConsecutiveAborts)
{
    tm::RococoTmConfig config;
    config.irrevocable_after = 1;
    tm::RococoTm rt(config);
    tm::TmVar<int64_t> x(0);
    run_threads(rt, 1, [&](unsigned) {
        int attempts = 0;
        rt.execute([&](tm::Tx& tx) {
            // First attempt aborts (condition wait); the retry runs
            // irrevocably and must commit.
            if (attempts++ == 0) tx.retry();
            x.set(tx, 11);
        });
    });
    EXPECT_EQ(x.get_unsafe(), 11);
    EXPECT_EQ(rt.stats().get("irrevocable_commits"), 1u);
    EXPECT_EQ(rt.stats().get(tm::stat::kCommits), 1u);
}

TEST(RococoTmIrrevocable, UserRetryInIrrevocableModeFallsBack)
{
    tm::RococoTmConfig config;
    config.irrevocable_after = 1;
    tm::RococoTm rt(config);
    tm::TmVar<int64_t> x(0);
    run_threads(rt, 1, [&](unsigned) {
        int attempts = 0;
        rt.execute([&](tm::Tx& tx) {
            // Attempts 0 (optimistic) and 1 (irrevocable) both wait;
            // attempt 2 (back in optimistic mode) succeeds.
            if (attempts++ < 2) tx.retry();
            x.set(tx, 22);
        });
    });
    EXPECT_EQ(x.get_unsafe(), 22);
    EXPECT_EQ(rt.stats().get("irrevocable_commits"), 0u);
    EXPECT_EQ(rt.stats().get(tm::stat::kAborts), 2u);
}

TEST(RococoTmIrrevocable, DisabledWhenZero)
{
    tm::RococoTmConfig config;
    config.irrevocable_after = 0;
    tm::RococoTm rt(config);
    tm::TmVar<int64_t> x(0);
    run_threads(rt, 1, [&](unsigned) {
        int attempts = 0;
        rt.execute([&](tm::Tx& tx) {
            if (attempts++ < 3) tx.retry();
            x.set(tx, 33);
        });
    });
    EXPECT_EQ(x.get_unsafe(), 33);
    EXPECT_EQ(rt.stats().get("irrevocable_commits"), 0u);
}

TEST(RococoTmIrrevocable, ConcurrentThreadsStayCorrect)
{
    // Aggressive threshold under contention: invariants must hold and
    // the system must not deadlock.
    tm::RococoTmConfig config;
    config.irrevocable_after = 2;
    tm::RococoTm rt(config);
    tm::TmVar<int64_t> counter(0);
    constexpr unsigned kThreads = 4;
    constexpr int kPerThread = 150;
    run_threads(rt, kThreads, [&](unsigned) {
        for (int i = 0; i < kPerThread; ++i) {
            rt.execute(
                [&](tm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
        }
    });
    EXPECT_EQ(counter.get_unsafe(), int64_t(kThreads) * kPerThread);
}

} // namespace
} // namespace rococo

namespace rococo {
namespace {

TEST(FailureInjection, TinySignaturesStayCorrect)
{
    // Inject massive bloom false positives (64-bit signatures): the
    // runtime may abort far more, but atomicity must be untouched —
    // false positives are conservative by construction.
    tm::RococoTmConfig config;
    config.engine.signature_bits = 64;
    config.engine.signature_hashes = 2;
    tm::RococoTm rt(config);
    tm::TmArray<int64_t> cells(32);
    run_threads(rt, 4, [&](unsigned tid) {
        Xoshiro256 rng(tid);
        for (int i = 0; i < 100; ++i) {
            const size_t idx = rng.below(32);
            rt.execute([&](tm::Tx& tx) {
                cells.set(tx, idx, cells.get(tx, idx) + 1);
            });
        }
    });
    int64_t total = 0;
    for (size_t i = 0; i < 32; ++i) total += cells.get_unsafe(i);
    EXPECT_EQ(total, 400);
}

TEST(FailureInjection, TinyWindowProgressesViaOverflowAborts)
{
    // A window smaller than the thread count forces window-overflow
    // aborts; irrevocability guarantees progress and correctness.
    tm::RococoTmConfig config;
    config.engine.window = 2;
    config.irrevocable_after = 16;
    tm::RococoTm rt(config);
    tm::TmVar<int64_t> counter(0);
    run_threads(rt, 4, [&](unsigned) {
        for (int i = 0; i < 50; ++i) {
            rt.execute(
                [&](tm::Tx& tx) { counter.set(tx, counter.get(tx) + 1); });
        }
    });
    EXPECT_EQ(counter.get_unsafe(), 200);
}

TEST(FailureInjection, TinyCommitLogRecovers)
{
    tm::RococoTmConfig config;
    config.commit_log_capacity = 2; // minimum ring
    tm::RococoTm rt(config);
    tm::TmArray<int64_t> cells(16);
    run_threads(rt, 4, [&](unsigned tid) {
        Xoshiro256 rng(100 + tid);
        for (int i = 0; i < 80; ++i) {
            const size_t idx = rng.below(16);
            rt.execute([&](tm::Tx& tx) {
                cells.set(tx, idx, cells.get(tx, idx) + 1);
            });
        }
    });
    int64_t total = 0;
    for (size_t i = 0; i < 16; ++i) total += cells.get_unsafe(i);
    EXPECT_EQ(total, 320);
}

} // namespace
} // namespace rococo
