/// Baseline-specific behaviour tests (beyond the cross-runtime battery
/// in runtime_test.cc): TinySTM's LSA snapshot extension and
/// invalidation, the lock table, and deterministic HTM doom scenarios.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "baselines/lock_table.h"
#include "baselines/tinystm_lsa.h"
#include "common/rng.h"
#include "tm/tm.h"

namespace rococo::baselines {
namespace {

TEST(LockTable, EncodingRoundTrip)
{
    EXPECT_FALSE(LockTable::is_locked(LockTable::make_version(7)));
    EXPECT_EQ(LockTable::version_of(LockTable::make_version(7)), 7u);
    EXPECT_TRUE(LockTable::is_locked(LockTable::make_locked(3)));
    EXPECT_EQ(LockTable::owner_of(LockTable::make_locked(3)), 3u);
}

TEST(LockTable, StripesSpread)
{
    LockTable table(1 << 10);
    std::vector<tm::TmCell> cells(512);
    std::set<size_t> stripes;
    for (const auto& cell : cells) {
        stripes.insert(table.index_of(&cell));
    }
    // Adjacent cells must not all collapse onto a few stripes.
    EXPECT_GT(stripes.size(), cells.size() / 4);
}

TEST(TinyStmLsa, SnapshotExtensionAvoidsFalseAbort)
{
    // Reader starts, another thread commits to an UNRELATED cell, the
    // reader then reads that newer cell: LSA extends the snapshot
    // instead of aborting (the reader's earlier reads are still valid).
    TinyStmLsa rt;
    tm::TmVar<int64_t> early(10), late(20);
    std::atomic<int> phase{0};
    std::atomic<int> reader_attempts{0};

    std::thread reader([&] {
        rt.thread_init(0);
        rt.execute([&](tm::Tx& tx) {
            reader_attempts.fetch_add(1);
            EXPECT_EQ(early.get(tx), 10);
            if (phase.load() == 0) {
                phase.store(1);
                while (phase.load() != 2) std::this_thread::yield();
            }
            // Newer version than the reader's snapshot: must extend.
            const int64_t v = late.get(tx);
            EXPECT_TRUE(v == 20 || v == 21);
        });
        rt.thread_fini();
    });

    std::thread writer([&] {
        rt.thread_init(1);
        while (phase.load() != 1) std::this_thread::yield();
        rt.execute([&](tm::Tx& tx) { late.set(tx, 21); });
        phase.store(2);
        rt.thread_fini();
    });

    reader.join();
    writer.join();
    EXPECT_EQ(reader_attempts.load(), 1) << "extension should not abort";
    EXPECT_EQ(rt.stats().get(tm::stat::kCommits), 2u);
}

TEST(TinyStmLsa, InvalidatedReadAborts)
{
    // Same shape, but the writer overwrites the cell the reader already
    // read: the extension must fail and the reader retry.
    TinyStmLsa rt;
    tm::TmVar<int64_t> cell(10);
    tm::TmVar<int64_t> other(0);
    std::atomic<int> phase{0};
    std::atomic<int> reader_attempts{0};

    std::thread reader([&] {
        rt.thread_init(0);
        int64_t seen_first = 0, seen_second = 0;
        rt.execute([&](tm::Tx& tx) {
            reader_attempts.fetch_add(1);
            seen_first = cell.get(tx);
            if (phase.load() == 0) {
                phase.store(1);
                while (phase.load() != 2) std::this_thread::yield();
            }
            other.get(tx); // forces a snapshot check
            seen_second = cell.get(tx);
        });
        rt.thread_fini();
        EXPECT_EQ(seen_first, seen_second) << "opacity violated";
    });

    std::thread writer([&] {
        rt.thread_init(1);
        while (phase.load() != 1) std::this_thread::yield();
        rt.execute([&](tm::Tx& tx) { cell.set(tx, 11); });
        phase.store(2);
        rt.thread_fini();
    });

    reader.join();
    writer.join();
    EXPECT_GE(reader_attempts.load(), 2) << "first attempt must abort";
    EXPECT_GE(rt.stats().get(tm::stat::kAborts), 1u);
}

TEST(TinyStmLsa, WriteWriteConflictSerializedByLocks)
{
    // Two blind writers of the same cell: commit-time locking
    // serializes them; at most transient aborts, final value is one of
    // the two writes and the clock advanced twice.
    TinyStmLsa rt;
    tm::TmVar<int64_t> cell(0);
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
        threads.emplace_back([&, t] {
            rt.thread_init(static_cast<unsigned>(t));
            rt.execute([&](tm::Tx& tx) { cell.set(tx, 100 + t); });
            rt.thread_fini();
        });
    }
    for (auto& thread : threads) thread.join();
    const int64_t v = cell.get_unsafe();
    EXPECT_TRUE(v == 100 || v == 101);
    EXPECT_EQ(rt.stats().get(tm::stat::kCommits), 2u);
}

TEST(TinyStmLsa, ReadOnlyCommitsWithoutLocks)
{
    TinyStmLsa rt;
    tm::TmVar<int64_t> cell(5);
    rt.thread_init(0);
    for (int i = 0; i < 10; ++i) {
        rt.execute([&](tm::Tx& tx) { EXPECT_EQ(cell.get(tx), 5); });
    }
    rt.thread_fini();
    EXPECT_EQ(rt.stats().get(tm::stat::kReadOnlyCommits), 10u);
}

} // namespace
} // namespace rococo::baselines
