/// End-to-end tests of Algorithm 1 / Fig. 8 on the live ROCoCoTM
/// runtime, with phase-controlled threads forcing each scenario:
///
///  (b) snapshot extension: a commit to an unrelated address lands
///      mid-transaction; ValidTS slides forward, no abort;
///  (phantom) the headline behaviour: a transaction whose read was
///      invalidated mid-flight still COMMITS — serialized before the
///      invalidating writer (TOCC-family systems, incl. our TinySTM,
///      must abort the same schedule);
///  (d) MissSet: after an invalidation, reading an address the
///      invalidating commit wrote has no consistent snapshot — abort;
///  (cycle) the same schedule plus a write-write conflict closes a
///      cycle, which only the FPGA-side validator can see.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "baselines/tinystm_lsa.h"
#include "tm/rococo_tm.h"

namespace rococo {
namespace {

/// Run a two-thread schedule: the "victim" transaction executes
/// part A, then blocks while "interferer" runs one whole transaction,
/// then the victim finishes with part B. Only the victim's FIRST
/// attempt blocks; retries run straight through.
struct Schedule
{
    std::function<void(tm::Tx&)> victim_a;
    std::function<void(tm::Tx&)> victim_b;
    std::function<void(tm::Tx&)> interferer;
};

struct ScheduleResult
{
    int victim_attempts = 0;
};

ScheduleResult
run_schedule(tm::TmRuntime& rt, const Schedule& schedule)
{
    std::atomic<int> phase{0};
    ScheduleResult result;

    std::thread victim([&] {
        rt.thread_init(0);
        int attempts = 0;
        rt.execute([&](tm::Tx& tx) {
            ++attempts;
            schedule.victim_a(tx);
            if (phase.load() == 0) {
                phase.store(1);
                while (phase.load() != 2) std::this_thread::yield();
            }
            schedule.victim_b(tx);
        });
        rt.thread_fini();
        result.victim_attempts = attempts;
    });

    std::thread interferer([&] {
        rt.thread_init(1);
        while (phase.load() != 1) std::this_thread::yield();
        rt.execute(schedule.interferer);
        phase.store(2);
        rt.thread_fini();
    });

    victim.join();
    interferer.join();
    return result;
}

TEST(Algorithm1, Fig8bSnapshotExtension)
{
    // Interferer writes an address the victim never touches: the
    // victim's snapshot extends and it commits first try.
    tm::RococoTm rt;
    tm::TmVar<int64_t> mine(1), unrelated(2), out(0);
    Schedule schedule;
    schedule.victim_a = [&](tm::Tx& tx) { EXPECT_EQ(mine.get(tx), 1); };
    schedule.victim_b = [&](tm::Tx& tx) {
        // Touch something else post-interference: forces the commit-log
        // scan, which must extend rather than abort.
        out.set(tx, mine.get(tx) + 10);
    };
    schedule.interferer = [&](tm::Tx& tx) { unrelated.set(tx, 22); };

    const auto result = run_schedule(rt, schedule);
    EXPECT_EQ(result.victim_attempts, 1);
    EXPECT_EQ(out.get_unsafe(), 11);
    EXPECT_EQ(rt.stats().get(tm::stat::kAborts), 0u);
}

TEST(Algorithm1, PhantomOrderingCommitsOnRococoAbortsOnTinyStm)
{
    // The interferer overwrites an address the victim already read.
    // The victim then writes a disjoint address.
    //   ROCoCoTM: ValidTS freezes before the interferer's commit; the
    //   FPGA serializes victim BEFORE interferer -> commit, 1 attempt.
    //   TinySTM (timestamp order): read-set validation fails -> retry.
    auto make_schedule = [](tm::TmVar<int64_t>& x,
                            tm::TmVar<int64_t>& y) {
        Schedule schedule;
        schedule.victim_a = [&x](tm::Tx& tx) {
            EXPECT_EQ(x.get(tx) % 2, 0) << "must read a consistent x";
        };
        schedule.victim_b = [&y](tm::Tx& tx) { y.set(tx, 7); };
        schedule.interferer = [&x](tm::Tx& tx) {
            x.set(tx, x.get(tx) + 2); // keep x even
        };
        return schedule;
    };

    {
        tm::RococoTm rt;
        tm::TmVar<int64_t> x(0), y(0);
        const auto result = run_schedule(rt, make_schedule(x, y));
        EXPECT_EQ(result.victim_attempts, 1)
            << "ROCoCo must commit into the past";
        EXPECT_EQ(y.get_unsafe(), 7);
        EXPECT_EQ(rt.stats().get(tm::stat::kCommits), 2u);
        EXPECT_EQ(rt.stats().get(tm::stat::kAborts), 0u);
    }
    {
        baselines::TinyStmLsa rt;
        tm::TmVar<int64_t> x(0), y(0);
        const auto result = run_schedule(rt, make_schedule(x, y));
        EXPECT_GE(result.victim_attempts, 2)
            << "a timestamp-ordered STM must abort this schedule";
        EXPECT_EQ(y.get_unsafe(), 7); // retry succeeds
    }
}

TEST(Algorithm1, Fig8dMissSetAborts)
{
    // The interferer writes BOTH an address the victim already read
    // (freezing its snapshot) and one the victim reads afterwards:
    // that second read lands in the MissSet -> eager CPU abort.
    tm::RococoTm rt;
    tm::TmVar<int64_t> first(0), second(0), out(0);
    Schedule schedule;
    schedule.victim_a = [&](tm::Tx& tx) { first.get(tx); };
    schedule.victim_b = [&](tm::Tx& tx) {
        out.set(tx, second.get(tx));
    };
    schedule.interferer = [&](tm::Tx& tx) {
        first.set(tx, 1);
        second.set(tx, 1);
    };

    const auto result = run_schedule(rt, schedule);
    EXPECT_GE(result.victim_attempts, 2) << "MissSet read must abort";
    EXPECT_GE(rt.stats().get(tm::stat::kEagerAborts), 1u);
    // The retry reads the post-interference values.
    EXPECT_EQ(out.get_unsafe(), 1);
}

TEST(Algorithm1, WriteWriteCycleCaughtByValidator)
{
    // Lost-update schedule: the victim read x before the interferer's
    // commit and writes x itself — forward edge + WAW backward edge to
    // the same commit is a 2-cycle only validation can reject.
    tm::RococoTm rt;
    tm::TmVar<int64_t> x(0);
    Schedule schedule;
    schedule.victim_a = [&](tm::Tx& tx) { x.get(tx); };
    schedule.victim_b = [&](tm::Tx& tx) { x.set(tx, x.get(tx) + 1); };
    schedule.interferer = [&](tm::Tx& tx) { x.set(tx, x.get(tx) + 1); };

    const auto result = run_schedule(rt, schedule);
    EXPECT_GE(result.victim_attempts, 2);
    EXPECT_EQ(x.get_unsafe(), 2) << "no update may be lost";
    // The abort was decided somewhere sound: either the FPGA saw the
    // cycle or the CPU's miss-set caught the re-read.
    const auto stats = rt.stats();
    EXPECT_GE(stats.get(tm::stat::kCycleAborts) +
                  stats.get(tm::stat::kEagerAborts),
              1u);
}

TEST(Algorithm1, ReadOnlyVictimCommitsWithoutFpga)
{
    // Read-only victims never ship to the FPGA even when interfered
    // with on unrelated addresses.
    tm::RococoTm rt;
    tm::TmVar<int64_t> mine(5), unrelated(0);
    Schedule schedule;
    schedule.victim_a = [&](tm::Tx& tx) { EXPECT_EQ(mine.get(tx), 5); };
    schedule.victim_b = [&](tm::Tx& tx) { EXPECT_EQ(mine.get(tx), 5); };
    schedule.interferer = [&](tm::Tx& tx) {
        unrelated.set(tx, unrelated.get(tx) + 1);
    };
    run_schedule(rt, schedule);
    EXPECT_EQ(rt.stats().get(tm::stat::kReadOnlyCommits), 1u);
    EXPECT_EQ(rt.fpga_stats().get("commit"), 1u) << "only the interferer";
}

} // namespace
} // namespace rococo
