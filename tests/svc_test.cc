/// Tests for the networked validation service (src/svc): wire-protocol
/// round-trips over every field and boundary size, incremental framing,
/// server batching/backpressure/deadline semantics, client failure
/// contract, an end-to-end smoke test with concurrent clients whose
/// abort accounting must sum, and the RococoTm service-backend switch.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/tracer.h"
#include "svc/client.h"
#include "svc/server.h"
#include "svc/wire.h"
#include "tm/rococo_tm.h"

namespace rococo::svc {
namespace {

std::string
test_socket_path(const char* tag)
{
    return "/tmp/rococo_svc_test_" + std::string(tag) + "_" +
           std::to_string(getpid()) + ".sock";
}

/// Raw connected socket for tests that speak the wire protocol without
/// the client library; -1 on failure.
int
connect_raw(const std::string& path)
{
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        close(fd);
        return -1;
    }
    return fd;
}

/// Blocking-read frames from @p fd until one of type @p want arrives
/// (other types are skipped); nullopt on EOF/error.
std::optional<std::vector<uint8_t>>
read_frame_of_type(int fd, MsgType want)
{
    FrameReader reader;
    uint8_t buf[64 * 1024];
    for (;;) {
        while (auto frame = reader.next()) {
            if (frame->type == want) {
                return std::vector<uint8_t>(frame->payload,
                                            frame->payload + frame->size);
            }
        }
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) return std::nullopt;
        reader.append(buf, static_cast<size_t>(n));
    }
}

// ---------------------------------------------------------------------
// Wire protocol

TEST(Wire, RequestRoundTripAllFields)
{
    WireRequest in;
    in.request_id = 0xdeadbeefcafef00dULL;
    in.deadline_ns = 123456789;
    in.trace_id = 0x1122334455667788ULL;
    in.parent_span_id = 0x99aabbccddeeff00ULL;
    in.offload.snapshot_cid = 0xffffffffffffffffULL;
    in.offload.reads = {0, 1, 0x8000000000000000ULL, 42};
    in.offload.writes = {7, 0xabcdef};

    std::vector<uint8_t> bytes;
    encode_request(bytes, in);

    FrameReader reader;
    reader.append(bytes.data(), bytes.size());
    auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::kRequestV2);

    auto out = decode_request(frame->type, frame->payload, frame->size);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->request_id, in.request_id);
    EXPECT_EQ(out->deadline_ns, in.deadline_ns);
    EXPECT_EQ(out->trace_id, in.trace_id);
    EXPECT_EQ(out->parent_span_id, in.parent_span_id);
    EXPECT_EQ(out->offload.snapshot_cid, in.offload.snapshot_cid);
    EXPECT_EQ(out->offload.reads, in.offload.reads);
    EXPECT_EQ(out->offload.writes, in.offload.writes);
}

TEST(Wire, V1RequestRoundTripDropsTraceContext)
{
    WireRequest in;
    in.request_id = 77;
    in.deadline_ns = 5000;
    in.trace_id = 0xffff;         // not representable in v1 —
    in.parent_span_id = 0xffff;   // must decode back as "none"
    in.offload.snapshot_cid = 3;
    in.offload.reads = {1, 2};
    in.offload.writes = {9};

    std::vector<uint8_t> bytes;
    encode_request_v1(bytes, in);

    FrameReader reader;
    reader.append(bytes.data(), bytes.size());
    auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, MsgType::kRequest);

    auto out = decode_request(frame->type, frame->payload, frame->size);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->request_id, in.request_id);
    EXPECT_EQ(out->deadline_ns, in.deadline_ns);
    EXPECT_EQ(out->trace_id, 0u);
    EXPECT_EQ(out->parent_span_id, 0u);
    EXPECT_EQ(out->offload.reads, in.offload.reads);
    EXPECT_EQ(out->offload.writes, in.offload.writes);

    // A v1 payload decoded as v2 (or vice versa) is a length mismatch,
    // never a silent misparse.
    EXPECT_FALSE(decode_request(MsgType::kRequestV2, frame->payload,
                                frame->size)
                     .has_value());
}

TEST(Wire, RequestRoundTripBoundarySizes)
{
    // Empty, single, and large address sets — including the asymmetric
    // corners a packed layout gets wrong first.
    const std::vector<std::pair<size_t, size_t>> shapes = {
        {0, 0}, {1, 0}, {0, 1}, {1, 1}, {4096, 1}, {1, 4096}, {511, 513}};
    for (const auto& [n_reads, n_writes] : shapes) {
        WireRequest in;
        in.request_id = n_reads * 7919 + n_writes;
        for (size_t i = 0; i < n_reads; ++i) in.offload.reads.push_back(i * 3);
        for (size_t i = 0; i < n_writes; ++i) {
            in.offload.writes.push_back(~uint64_t{i});
        }
        std::vector<uint8_t> bytes;
        encode_request(bytes, in);
        FrameReader reader;
        reader.append(bytes.data(), bytes.size());
        auto frame = reader.next();
        ASSERT_TRUE(frame.has_value());
        auto out = decode_request(frame->type, frame->payload, frame->size);
        ASSERT_TRUE(out.has_value()) << n_reads << "/" << n_writes;
        EXPECT_EQ(out->offload.reads, in.offload.reads);
        EXPECT_EQ(out->offload.writes, in.offload.writes);
    }
}

TEST(Wire, ResponseRoundTripAllVerdictsAndReasons)
{
    const core::Verdict verdicts[] = {
        core::Verdict::kCommit, core::Verdict::kAbortCycle,
        core::Verdict::kWindowOverflow, core::Verdict::kTimeout,
        core::Verdict::kRejected};
    for (core::Verdict verdict : verdicts) {
        for (size_t r = 0; r < obs::kAbortReasonCount; ++r) {
            WireResponse in;
            in.request_id = 99;
            in.result = {verdict, 0x123456789abcULL,
                         static_cast<obs::AbortReason>(r)};
            in.result.conflict_cid = 0xfeedULL;
            in.stages = {11, 22, 33, 44};
            // Both versions must round-trip; only v2 carries the stages.
            for (bool v2 : {false, true}) {
                std::vector<uint8_t> bytes;
                encode_response(bytes, in, v2);
                FrameReader reader;
                reader.append(bytes.data(), bytes.size());
                auto frame = reader.next();
                ASSERT_TRUE(frame.has_value());
                EXPECT_EQ(frame->type, v2 ? MsgType::kResponseV2
                                          : MsgType::kResponse);
                auto out = decode_response(frame->type, frame->payload,
                                           frame->size);
                ASSERT_TRUE(out.has_value());
                EXPECT_EQ(out->request_id, in.request_id);
                EXPECT_EQ(out->result.verdict, in.result.verdict);
                EXPECT_EQ(out->result.reason, in.result.reason);
                EXPECT_EQ(out->result.cid, in.result.cid);
                EXPECT_EQ(out->has_stages, v2);
                if (v2) {
                    EXPECT_EQ(out->stages.server_queue_ns, 11u);
                    EXPECT_EQ(out->stages.batch_wait_ns, 22u);
                    EXPECT_EQ(out->stages.engine_ns, 33u);
                    EXPECT_EQ(out->stages.link_ns, 44u);
                    // v2 carries the abort provenance verbatim...
                    EXPECT_EQ(out->result.conflict_cid, 0xfeedULL);
                } else {
                    // ...v1 has no field for it: decoders must leave
                    // the sentinel, never garbage.
                    EXPECT_EQ(out->result.conflict_cid,
                              core::kNoConflictCid);
                }
            }
        }
    }
}

TEST(Wire, DecodeRejectsMalformedPayloads)
{
    // Too short for the fixed request header (both versions).
    uint8_t small[8] = {};
    EXPECT_FALSE(
        decode_request(MsgType::kRequest, small, sizeof(small)).has_value());
    EXPECT_FALSE(decode_request(MsgType::kRequestV2, small, sizeof(small))
                     .has_value());

    // Counts disagreeing with the payload length.
    WireRequest request;
    request.offload.reads = {1, 2, 3};
    std::vector<uint8_t> bytes;
    encode_request(bytes, request);
    const uint8_t* payload = bytes.data() + kFrameHeaderBytes;
    const size_t size = bytes.size() - kFrameHeaderBytes;
    EXPECT_TRUE(
        decode_request(MsgType::kRequestV2, payload, size).has_value());
    EXPECT_FALSE(
        decode_request(MsgType::kRequestV2, payload, size - 8).has_value());

    // Oversized counts must be rejected before any allocation. The
    // counts sit after the fixed v2 fields (40 bytes).
    std::vector<uint8_t> bomb(bytes.begin() + kFrameHeaderBytes,
                              bytes.end());
    const uint32_t huge = kMaxAddresses + 1;
    std::memcpy(bomb.data() + 40, &huge, 4);
    EXPECT_FALSE(decode_request(MsgType::kRequestV2, bomb.data(),
                                bomb.size())
                     .has_value());

    // Responses with enum values off the end of Verdict / AbortReason.
    WireResponse response;
    response.result = {core::Verdict::kCommit, 1, obs::AbortReason::kNone};
    std::vector<uint8_t> rbytes;
    encode_response(rbytes, response);
    std::vector<uint8_t> rpayload(rbytes.begin() + kFrameHeaderBytes,
                                  rbytes.end());
    EXPECT_TRUE(decode_response(MsgType::kResponseV2, rpayload.data(),
                                rpayload.size())
                    .has_value());
    rpayload[8] = 200; // verdict
    EXPECT_FALSE(decode_response(MsgType::kResponseV2, rpayload.data(),
                                 rpayload.size())
                     .has_value());
    rpayload[8] = 0;
    rpayload[9] = 200; // reason
    EXPECT_FALSE(decode_response(MsgType::kResponseV2, rpayload.data(),
                                 rpayload.size())
                     .has_value());
    EXPECT_FALSE(decode_response(MsgType::kResponseV2, rpayload.data(),
                                 rpayload.size() - 1)
                     .has_value());
    // A v2-sized payload is not a valid v1 response, and vice versa.
    EXPECT_FALSE(decode_response(MsgType::kResponse, rpayload.data(),
                                 rpayload.size())
                     .has_value());
}

TEST(Wire, FrameReaderReassemblesByteAtATime)
{
    WireRequest request;
    request.request_id = 7;
    request.offload.reads = {10, 20, 30};
    request.offload.writes = {40};
    std::vector<uint8_t> bytes;
    encode_request(bytes, request);

    FrameReader reader;
    for (size_t i = 0; i < bytes.size(); ++i) {
        EXPECT_FALSE(reader.next().has_value());
        reader.append(&bytes[i], 1);
    }
    auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    auto out = decode_request(frame->type, frame->payload, frame->size);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->offload.reads, request.offload.reads);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Wire, FrameReaderExtractsBackToBackFrames)
{
    std::vector<uint8_t> bytes;
    for (uint64_t id = 0; id < 5; ++id) {
        WireRequest request;
        request.request_id = id;
        encode_request(bytes, request);
    }
    FrameReader reader;
    reader.append(bytes.data(), bytes.size());
    for (uint64_t id = 0; id < 5; ++id) {
        auto frame = reader.next();
        ASSERT_TRUE(frame.has_value());
        auto out = decode_request(frame->type, frame->payload, frame->size);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->request_id, id);
    }
    EXPECT_FALSE(reader.next().has_value());
}

TEST(Wire, FrameReaderFlagsCorruptStreams)
{
    // Unknown frame type.
    uint8_t bad_type[kFrameHeaderBytes] = {0, 0, 0, 0, 99};
    FrameReader reader;
    reader.append(bad_type, sizeof(bad_type));
    bool malformed = false;
    EXPECT_FALSE(reader.next(&malformed).has_value());
    EXPECT_TRUE(malformed);

    // Length claiming more than any well-formed frame can carry.
    FrameReader reader2;
    uint8_t bad_len[kFrameHeaderBytes] = {0xff, 0xff, 0xff, 0xff, 1};
    reader2.append(bad_len, sizeof(bad_len));
    malformed = false;
    EXPECT_FALSE(reader2.next(&malformed).has_value());
    EXPECT_TRUE(malformed);
}

// ---------------------------------------------------------------------
// Server + client

TEST(SvcServer, StartStopIsIdempotentAndRebindable)
{
    ServerConfig config;
    config.socket_path = test_socket_path("startstop");
    {
        Server server(config);
        ASSERT_TRUE(server.start());
        EXPECT_TRUE(server.start()); // already running
        server.stop();
        server.stop();
        ASSERT_TRUE(server.start()); // rebind after stop
    }
    // Destructor stopped it; path must be gone.
    Server again(config);
    ASSERT_TRUE(again.start());
    again.stop();
}

TEST(SvcServer, RefusesUnbindablePath)
{
    ServerConfig config;
    config.socket_path = "/nonexistent-dir/x.sock";
    Server server(config);
    EXPECT_FALSE(server.start());
}

TEST(SvcClient, RejectsWhenServerAbsent)
{
    ClientConfig config;
    config.socket_path = test_socket_path("absent");
    ValidationClient client(config);
    EXPECT_FALSE(client.connected());
    auto result = client.validate({{1}, {2}, 0});
    EXPECT_EQ(result.verdict, core::Verdict::kRejected);
    EXPECT_EQ(result.reason, obs::AbortReason::kBackpressure);
    EXPECT_EQ(client.stats().get("rejected"), 1u);
}

TEST(SvcClient, CommitsThroughServer)
{
    ServerConfig config;
    config.socket_path = test_socket_path("commit");
    Server server(config);
    ASSERT_TRUE(server.start());

    ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    ValidationClient client(client_config);
    ASSERT_TRUE(client.connected());

    // Disjoint writes, current snapshots: everything commits, and cids
    // come from the single server-owned window, in order.
    for (uint64_t i = 0; i < 16; ++i) {
        auto result =
            client.validate({{}, {100 + i}, /*snapshot_cid=*/i});
        ASSERT_EQ(result.verdict, core::Verdict::kCommit);
        EXPECT_EQ(result.cid, i);
        EXPECT_EQ(result.reason, obs::AbortReason::kNone);
    }
    EXPECT_EQ(client.stats().get("commit"), 16u);
    client.stop();
    server.stop();
    EXPECT_EQ(server.stats().get("svc.verdict.commit"), 16u);
    EXPECT_EQ(server.stats().get("svc.requests"), 16u);
}

/// Abort provenance end-to-end: an engine-side cycle abort names the
/// committed cid it collided with, the v2 wire field carries it to the
/// client, and the client both surfaces it on the result and counts
/// the attribution in its own registry.
TEST(SvcClient, ReceivesConflictProvenanceOverTheWire)
{
    ServerConfig config;
    config.socket_path = test_socket_path("provenance");
    Server server(config);
    ASSERT_TRUE(server.start());

    ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    ValidationClient client(client_config);
    ASSERT_TRUE(client.connected());

    // A writer of address 1 commits as cid 0; a stale reader+writer of
    // the same address must abort *because of cid 0*, by name.
    auto writer = client.validate({{}, {1}, /*snapshot_cid=*/0});
    ASSERT_EQ(writer.verdict, core::Verdict::kCommit);
    ASSERT_EQ(writer.cid, 0u);
    EXPECT_EQ(writer.conflict_cid, core::kNoConflictCid);

    auto victim = client.validate({{1}, {1}, /*snapshot_cid=*/0});
    ASSERT_EQ(victim.verdict, core::Verdict::kAbortCycle);
    EXPECT_EQ(victim.conflict_cid, 0u)
        << "abort did not name the committed cid it collided with";

    obs::Registry exported;
    client.export_metrics(exported);
    EXPECT_EQ(
        exported.counter("svc.client.conflict.attributed").value(), 1u);

    client.stop();
    server.stop();
    EXPECT_EQ(server.stats().get("svc.verdict.abort-cycle"), 1u);
}

/// kTopK is answered inline from the service thread — never queued,
/// never an engine pass — and returns the per-shard hot-key table that
/// the abort above fed. A kTopK frame with a payload is malformed.
TEST(SvcServer, AnswersTopKInline)
{
    ServerConfig config;
    config.socket_path = test_socket_path("topk");
    Server server(config);
    ASSERT_TRUE(server.start());

    // Plant one conflict on address 1 so the sketch has an entry.
    ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    ValidationClient client(client_config);
    ASSERT_TRUE(client.connected());
    ASSERT_EQ(client.validate({{}, {1}, 0}).verdict,
              core::Verdict::kCommit);
    ASSERT_EQ(client.validate({{1}, {1}, 0}).verdict,
              core::Verdict::kAbortCycle);
    client.stop();

    const int fd = connect_raw(config.socket_path);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> frame;
    encode_topk_request(frame);
    ASSERT_EQ(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    auto payload = read_frame_of_type(fd, MsgType::kTopKReply);
    ASSERT_TRUE(payload.has_value()) << "no kTopKReply frame";
    const std::string json(payload->begin(), payload->end());
    EXPECT_NE(json.find("\"shards\""), std::string::npos) << json;
#ifndef ROCOCO_FORENSICS_OFF
    EXPECT_NE(json.find("\"key\": 1"), std::string::npos) << json;
#endif
    close(fd);

    // Payload-bearing kTopK: malformed, disconnect.
    {
        const int bad = connect_raw(config.socket_path);
        ASSERT_GE(bad, 0);
        const uint8_t junk[kFrameHeaderBytes + 1] = {
            1, 0, 0, 0, static_cast<uint8_t>(MsgType::kTopK), 0xcc};
        ASSERT_EQ(send(bad, junk, sizeof(junk), MSG_NOSIGNAL),
                  static_cast<ssize_t>(sizeof(junk)));
        uint8_t buf[16];
        EXPECT_EQ(recv(bad, buf, sizeof(buf), 0), 0)
            << "not disconnected";
        close(bad);
    }

    server.stop();
    EXPECT_EQ(server.stats().get("svc.topk"), 1u);
    EXPECT_EQ(server.stats().get("svc.malformed"), 1u);
    // Introspection sits outside the request ledger.
    EXPECT_EQ(server.stats().get("svc.requests"), 2u);
}

/// kDump without a recorder fails softly with a JSON error; with the
/// recorder enabled it writes a schema-complete incident file and
/// replies with its path.
TEST(SvcServer, DumpAnswersInlineAndWritesIncidents)
{
    // Disabled recorder: {"ok": false}, connection stays usable.
    {
        ServerConfig config;
        config.socket_path = test_socket_path("dumpoff");
        Server server(config);
        ASSERT_TRUE(server.start());
        const int fd = connect_raw(config.socket_path);
        ASSERT_GE(fd, 0);
        std::vector<uint8_t> frame;
        encode_dump_request(frame);
        ASSERT_EQ(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(frame.size()));
        auto payload = read_frame_of_type(fd, MsgType::kDumpReply);
        ASSERT_TRUE(payload.has_value()) << "no kDumpReply frame";
        const std::string json(payload->begin(), payload->end());
        EXPECT_NE(json.find("\"ok\": false"), std::string::npos) << json;
        EXPECT_NE(json.find("recorder disabled"), std::string::npos)
            << json;
        close(fd);
        server.stop();
        EXPECT_EQ(server.stats().get("svc.dump"), 1u);
    }
    // Enabled recorder: {"ok": true, "path": ...} and the file exists.
    {
        const std::string prefix = "/tmp/rococo_svc_test_dump_" +
                                   std::to_string(getpid());
        ServerConfig config;
        config.socket_path = test_socket_path("dumpon");
        config.recorder.enabled = true;
        config.recorder.output_prefix = prefix;
        Server server(config);
        ASSERT_TRUE(server.start());
        const int fd = connect_raw(config.socket_path);
        ASSERT_GE(fd, 0);
        std::vector<uint8_t> frame;
        encode_dump_request(frame);
        ASSERT_EQ(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(frame.size()));
        auto payload = read_frame_of_type(fd, MsgType::kDumpReply);
        ASSERT_TRUE(payload.has_value()) << "no kDumpReply frame";
        const std::string json(payload->begin(), payload->end());
        EXPECT_NE(json.find("\"ok\": true"), std::string::npos) << json;
        const std::string expect_path = prefix + "-1.json";
        EXPECT_NE(json.find(expect_path), std::string::npos) << json;
        EXPECT_EQ(access(expect_path.c_str(), F_OK), 0)
            << "incident file missing: " << expect_path;
        close(fd);
        server.stop();
        unlink(expect_path.c_str());
    }
}

TEST(SvcServer, ShedsLoadWhenQueueFull)
{
    ServerConfig config;
    config.socket_path = test_socket_path("backpressure");
    config.max_pending = 0; // every request overflows the bounded queue
    Server server(config);
    ASSERT_TRUE(server.start());

    ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    ValidationClient client(client_config);
    for (int i = 0; i < 8; ++i) {
        auto result = client.validate({{}, {1}, 0});
        EXPECT_EQ(result.verdict, core::Verdict::kRejected);
        EXPECT_EQ(result.reason, obs::AbortReason::kBackpressure);
    }
    client.stop();
    server.stop();
    EXPECT_EQ(server.stats().get("svc.rejected"), 8u);
    EXPECT_EQ(server.stats().get("svc.requests"), 8u);
}

/// Speak the wire protocol raw (no client library) and let a 1 ns
/// relative deadline expire while the request waits: the server must
/// answer kTimeout without an engine pass. Also pins the interop
/// contract: anything that encodes the documented layout is a valid
/// client.
TEST(SvcServer, ExpiresQueuedRequestsPastTheirDeadline)
{
    ServerConfig config;
    config.socket_path = test_socket_path("deadline");
    Server server(config);
    ASSERT_TRUE(server.start());

    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);

    WireRequest request;
    request.request_id = 31337;
    request.deadline_ns = 1; // expires before any engine pass can start
    request.offload.writes = {1};
    std::vector<uint8_t> bytes;
    encode_request(bytes, request);
    ASSERT_EQ(send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));

    FrameReader reader;
    std::optional<WireResponse> response;
    uint8_t buf[512];
    while (!response) {
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        reader.append(buf, static_cast<size_t>(n));
        if (auto frame = reader.next()) {
            ASSERT_EQ(frame->type, MsgType::kResponseV2);
            response =
                decode_response(frame->type, frame->payload, frame->size);
        }
    }
    EXPECT_EQ(response->request_id, request.request_id);
    EXPECT_EQ(response->result.verdict, core::Verdict::kTimeout);
    EXPECT_EQ(response->result.reason, obs::AbortReason::kTimeout);
    close(fd);
    server.stop();
    EXPECT_EQ(server.stats().get("svc.timeout"), 1u);
}

TEST(SvcServer, DropsMalformedConnections)
{
    ServerConfig config;
    config.socket_path = test_socket_path("malformed");
    Server server(config);
    ASSERT_TRUE(server.start());

    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);

    const uint8_t garbage[] = {0xde, 0xad, 0xbe, 0xef, 0xff, 0xff};
    ASSERT_EQ(send(fd, garbage, sizeof(garbage), 0),
              static_cast<ssize_t>(sizeof(garbage)));

    // The server closes the connection; recv sees EOF.
    uint8_t buf[16];
    EXPECT_EQ(recv(fd, buf, sizeof(buf), 0), 0);
    close(fd);
    server.stop();
    EXPECT_EQ(server.stats().get("svc.malformed"), 1u);
}

/// Wire versioning: a pre-trace-context (v1) frame must still validate
/// against a v2 server, and the server must answer it with a v1
/// response so the old decoder never sees an unknown frame type.
TEST(SvcServer, AnswersV1FramesWithV1Responses)
{
    ServerConfig config;
    config.socket_path = test_socket_path("v1compat");
    Server server(config);
    ASSERT_TRUE(server.start());

    const int fd = connect_raw(config.socket_path);
    ASSERT_GE(fd, 0);

    WireRequest request;
    request.request_id = 42;
    request.offload.writes = {7};
    std::vector<uint8_t> bytes;
    encode_request_v1(bytes, request);
    ASSERT_EQ(send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));

    auto payload = read_frame_of_type(fd, MsgType::kResponse);
    ASSERT_TRUE(payload.has_value()) << "no v1 response frame";
    auto response = decode_response(MsgType::kResponse, payload->data(),
                                    payload->size());
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->request_id, request.request_id);
    EXPECT_EQ(response->result.verdict, core::Verdict::kCommit);
    EXPECT_FALSE(response->has_stages);

    close(fd);
    server.stop();
    EXPECT_EQ(server.stats().get("svc.requests"), 1u);
    EXPECT_EQ(server.stats().get("svc.verdict.commit"), 1u);
    EXPECT_EQ(server.stats().get("svc.malformed"), 0u);
}

/// An op the server does not serve (here: a response type and an
/// entirely unknown tag) must disconnect the peer with svc.malformed
/// accounted — the versioning escape hatch never silently drops frames.
TEST(SvcServer, DisconnectsUnknownOps)
{
    ServerConfig config;
    config.socket_path = test_socket_path("unknownop");
    Server server(config);
    ASSERT_TRUE(server.start());

    // A frame type outside the protocol entirely (15, one past
    // kPromReply): flagged by the frame reader itself.
    {
        const int fd = connect_raw(config.socket_path);
        ASSERT_GE(fd, 0);
        const uint8_t unknown[kFrameHeaderBytes] = {0, 0, 0, 0, 15};
        ASSERT_EQ(send(fd, unknown, sizeof(unknown), MSG_NOSIGNAL),
                  static_cast<ssize_t>(sizeof(unknown)));
        uint8_t buf[16];
        EXPECT_EQ(recv(fd, buf, sizeof(buf), 0), 0) << "not disconnected";
        close(fd);
    }
    // A known frame type the server does not accept (a client-bound
    // kResponseV2): well-framed, still not a request.
    {
        const int fd = connect_raw(config.socket_path);
        ASSERT_GE(fd, 0);
        std::vector<uint8_t> bytes;
        WireResponse response;
        response.request_id = 1;
        response.result = {core::Verdict::kCommit, 0, obs::AbortReason::kNone};
        encode_response(bytes, response);
        ASSERT_EQ(send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(bytes.size()));
        uint8_t buf[16];
        EXPECT_EQ(recv(fd, buf, sizeof(buf), 0), 0) << "not disconnected";
        close(fd);
    }
    server.stop();
    EXPECT_EQ(server.stats().get("svc.malformed"), 2u);
    EXPECT_EQ(server.stats().get("svc.requests"), 0u);
}

/// A client that disconnects with requests still queued must never see
/// its verdicts delivered to a *different* client that accept() handed
/// the recycled fd number: every queued request is answered against
/// (fd, generation), not the raw fd.
TEST(SvcServer, DoesNotDeliverStaleVerdictsToRecycledFd)
{
    ServerConfig config;
    config.socket_path = test_socket_path("fdreuse");
    config.max_batch = 1;      // drain the backlog one verdict per pass
    config.max_pending = 8192; // keep the backlog queued, not rejected
    Server server(config);
    ASSERT_TRUE(server.start());

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    const auto wait_for = [](auto&& pred) {
        for (int i = 0; i < 20000; ++i) {
            if (pred()) return true;
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        return false;
    };

    // Allocate B's socket first so closing A frees the lowest fd
    // numbers in the process — the ones accept() will hand to B.
    const int fd_b = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd_b, 0);
    const int fd_a = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd_a, 0);
    ASSERT_EQ(connect(fd_a, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
              0);

    // Heavy requests (512 reads each) so the one-per-pass drain takes
    // milliseconds — long enough that the backlog is still queued when
    // the second client is accepted below.
    constexpr uint64_t kBacklog = 4096;
    {
        std::vector<uint8_t> bytes;
        for (uint64_t id = 1; id <= kBacklog; ++id) {
            WireRequest request;
            request.request_id = id;
            for (uint64_t r = 0; r < 512; ++r) {
                request.offload.reads.push_back(r);
            }
            request.offload.writes = {id};
            encode_request(bytes, request);
        }
        ASSERT_EQ(send(fd_a, bytes.data(), bytes.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(bytes.size()));
    }
    // Wait until the whole backlog is decoded and queued, then
    // half-close: the server sees EOF and frees its side of A while the
    // backlog is still draining one request per pass. SHUT_WR (not
    // close) keeps the test-side fd number occupied so the number the
    // kernel recycles for B is the server-side one in the queue.
    ASSERT_TRUE(wait_for(
        [&] { return server.stats().get("svc.requests") >= kBacklog; }));
    ASSERT_EQ(shutdown(fd_a, SHUT_WR), 0);
    ASSERT_TRUE(wait_for(
        [&] { return server.stats().get("svc.disconnects") >= 1; }));

    ASSERT_EQ(connect(fd_b, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
              0);
    WireRequest probe;
    probe.request_id = 0x5ca1ab1eULL; // outside A's id range
    probe.offload.writes = {99999};
    std::vector<uint8_t> bytes;
    encode_request(bytes, probe);
    ASSERT_EQ(send(fd_b, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));

    // B must receive exactly one response — its own. Any other id is a
    // stale verdict from A's backlog leaking through the recycled fd.
    timeval timeout{5, 0};
    setsockopt(fd_b, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    FrameReader reader;
    uint8_t buf[4096];
    std::optional<WireResponse> response;
    while (!response) {
        const ssize_t n = recv(fd_b, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        reader.append(buf, static_cast<size_t>(n));
        while (auto frame = reader.next()) {
            auto decoded =
                decode_response(frame->type, frame->payload, frame->size);
            ASSERT_TRUE(decoded.has_value());
            ASSERT_EQ(decoded->request_id, probe.request_id)
                << "stale verdict delivered to a recycled fd";
            response = decoded;
        }
    }
    close(fd_a);
    close(fd_b);
    server.stop();

    // The dropped backlog is still accounted: answered exactly once.
    const CounterBag stats = server.stats();
    const uint64_t accounted = stats.get("svc.verdict.commit") +
                               stats.get("svc.verdict.abort-cycle") +
                               stats.get("svc.verdict.window-overflow") +
                               stats.get("svc.timeout") +
                               stats.get("svc.rejected");
    EXPECT_EQ(stats.get("svc.requests"), kBacklog + 1);
    EXPECT_EQ(accounted, stats.get("svc.requests"));
}

/// A client that floods requests but never reads a response must be
/// disconnected once its outbound buffer hits max_out_bytes — the
/// server never buffers unread responses without bound.
TEST(SvcServer, ClosesConnectionsThatStopReadingResponses)
{
    ServerConfig config;
    config.socket_path = test_socket_path("outcap");
    config.max_pending = 16;     // most of the flood draws instant rejects
    config.max_out_bytes = 4096; // small cap so the test fills it quickly
    Server server(config);
    ASSERT_TRUE(server.start());

    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);

    // 64 tiny requests per send; the kernel's socket buffer absorbs the
    // first responses, after which the server-side buffer grows past
    // the cap and the connection is dropped mid-flood.
    std::vector<uint8_t> burst;
    for (int i = 0; i < 64; ++i) {
        WireRequest request;
        request.request_id = static_cast<uint64_t>(i);
        request.offload.writes = {1};
        encode_request(burst, request);
    }
    bool closed = false;
    for (int i = 0; i < 20000 && !closed; ++i) {
        if (send(fd, burst.data(), burst.size(), MSG_NOSIGNAL) < 0) {
            closed = true;
        }
    }
    EXPECT_TRUE(closed) << "server kept buffering for a non-reading peer";
    close(fd);
    server.stop();

    const CounterBag stats = server.stats();
    EXPECT_GE(stats.get("svc.overflow"), 1u);
    // Accounting survives the disconnect: every counted request was
    // answered (delivery of the dropped bytes is not part of the
    // invariant).
    const uint64_t accounted = stats.get("svc.verdict.commit") +
                               stats.get("svc.verdict.abort-cycle") +
                               stats.get("svc.verdict.window-overflow") +
                               stats.get("svc.timeout") +
                               stats.get("svc.rejected");
    EXPECT_EQ(accounted, stats.get("svc.requests"));
}

/// An address set beyond kMaxAddresses must be rejected client-side: on
/// the wire the server would drop it as malformed and close the
/// connection, poisoning every outstanding request.
TEST(SvcClient, RejectsOversizedRequestsWithoutPoisoningConnection)
{
    ServerConfig config;
    config.socket_path = test_socket_path("oversized");
    Server server(config);
    ASSERT_TRUE(server.start());

    ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    ValidationClient client(client_config);
    ASSERT_TRUE(client.connected());

    fpga::OffloadRequest big;
    big.reads.assign(size_t{kMaxAddresses} + 1, 1);
    auto result = client.validate(std::move(big));
    EXPECT_EQ(result.verdict, core::Verdict::kRejected);
    EXPECT_EQ(result.reason, obs::AbortReason::kBackpressure);
    EXPECT_EQ(client.stats().get("oversized"), 1u);

    // The connection is still healthy: a normal request commits.
    EXPECT_TRUE(client.connected());
    auto ok = client.validate({{}, {5}, 0});
    EXPECT_EQ(ok.verdict, core::Verdict::kCommit);

    client.stop();
    server.stop();
    // The oversized request never reached the server.
    EXPECT_EQ(server.stats().get("svc.requests"), 1u);
    EXPECT_EQ(server.stats().get("svc.malformed"), 0u);
}

/// A server that accepts but never answers: validate(timeout) must
/// resolve locally with a typed timeout, not hang.
TEST(SvcClient, TimesOutLocallyAgainstSilentServer)
{
    const std::string path = test_socket_path("silent");
    const int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    unlink(path.c_str());
    ASSERT_EQ(bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
              0);
    ASSERT_EQ(listen(listen_fd, 1), 0);

    ClientConfig config;
    config.socket_path = path;
    ValidationClient client(config);
    ASSERT_TRUE(client.connected());
    const int conn = accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(conn, 0);

    auto result =
        client.validate({{}, {1}, 0}, std::chrono::milliseconds(20));
    EXPECT_EQ(result.verdict, core::Verdict::kTimeout);
    EXPECT_EQ(result.reason, obs::AbortReason::kTimeout);
    EXPECT_EQ(client.stats().get("timeout"), 1u);

    client.stop();
    close(conn);
    close(listen_fd);
    unlink(path.c_str());
}

TEST(SvcClient, ServerShutdownResolvesOutstandingFutures)
{
    ServerConfig config;
    config.socket_path = test_socket_path("shutdown");
    Server server(config);
    ASSERT_TRUE(server.start());

    ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    ValidationClient client(client_config);
    ASSERT_TRUE(client.connected());

    std::vector<std::future<core::ValidationResult>> futures;
    for (uint64_t i = 0; i < 64; ++i) {
        futures.push_back(client.submit({{}, {i}, i}));
    }
    server.stop();
    // Every future resolves — with a real verdict (answered before the
    // shutdown) or a typed rejection (resolved at disconnect) — and
    // none throws broken_promise.
    for (auto& future : futures) {
        auto result = future.get();
        if (result.verdict != core::Verdict::kCommit) {
            EXPECT_EQ(result.verdict, core::Verdict::kRejected);
            EXPECT_EQ(result.reason, obs::AbortReason::kBackpressure);
        }
    }
    client.stop();
}

// ---------------------------------------------------------------------
// End-to-end smoke: concurrent clients, accounting sums

TEST(SvcSmoke, ConcurrentClientsAccountingSums)
{
    ServerConfig config;
    config.socket_path = test_socket_path("smoke");
    config.max_batch = 8;
    config.max_pending = 64;
    Server server(config);
    ASSERT_TRUE(server.start());

    constexpr int kClients = 4;
    constexpr uint64_t kPerClient = 400;
    std::atomic<uint64_t> answered{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            ClientConfig client_config;
            client_config.socket_path = config.socket_path;
            ValidationClient client(client_config);
            ASSERT_TRUE(client.connected());
            Xoshiro256 rng(7 + c);
            std::vector<std::future<core::ValidationResult>> inflight;
            for (uint64_t i = 0; i < kPerClient; ++i) {
                fpga::OffloadRequest request;
                // Overlapping footprints + stale snapshots: all three
                // engine verdicts occur.
                for (int r = 0; r < 4; ++r) {
                    request.reads.push_back(rng.below(64));
                }
                request.writes.push_back(rng.below(64));
                request.snapshot_cid = rng.below(2) == 0
                                           ? uint64_t{0}
                                           : kPerClient * kClients;
                inflight.push_back(client.submit(std::move(request)));
                if (inflight.size() >= 16) {
                    for (auto& f : inflight) {
                        f.get();
                        answered.fetch_add(1);
                    }
                    inflight.clear();
                }
            }
            for (auto& f : inflight) {
                f.get();
                answered.fetch_add(1);
            }
            // Per-client accounting: every submission is accounted as a
            // verdict, a timeout or a rejection.
            const CounterBag stats = client.stats();
            const uint64_t verdicts =
                stats.get("commit") + stats.get("abort-cycle") +
                stats.get("window-overflow") + stats.get("timeout") +
                stats.get("rejected");
            EXPECT_EQ(verdicts, kPerClient);
            client.stop();
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(answered.load(), kClients * kPerClient);

    server.stop();
    const CounterBag stats = server.stats();
    const uint64_t requests = stats.get("svc.requests");
    const uint64_t accounted = stats.get("svc.verdict.commit") +
                               stats.get("svc.verdict.abort-cycle") +
                               stats.get("svc.verdict.window-overflow") +
                               stats.get("svc.timeout") +
                               stats.get("svc.rejected");
    EXPECT_EQ(requests, kClients * kPerClient);
    EXPECT_EQ(accounted, requests);

    // The batching layer actually engaged: the batch-size histogram saw
    // every engine pass, and with 4 pipelined clients at least one pass
    // coalesced more than one request.
    obs::Registry exported;
    server.export_metrics(exported);
    const auto& batches = exported.histogram("svc.batch_size");
    EXPECT_GT(batches.count(), 0u);
    EXPECT_GT(batches.max(), 1u);
}

// ---------------------------------------------------------------------
// Introspection (kStats) and stage attribution

/// kStats must be answered inline — no engine pass, not queued, not
/// counted as a request — even while the pending queue is saturated
/// with a slow-draining backlog, and it must not perturb the
/// accounting invariant.
TEST(SvcStats, SnapshotSucceedsUnderSaturatedQueueWithoutPerturbation)
{
    ServerConfig config;
    config.socket_path = test_socket_path("stats");
    config.max_batch = 1;   // drain one heavy request per pass
    config.max_pending = 64; // small bound: the flood saturates it
    Server server(config);
    ASSERT_TRUE(server.start());

    // Saturate: a background flooder pumps bursts of heavy requests
    // (512 reads each) for the entire stats exchange. One burst is
    // larger than the socket buffer, so every send blocks until the
    // server reads — unread data is always available, the bounded
    // queue stays full, and overflow draws instant backpressure
    // rejections while the queued remainder drains at one per pass.
    const int flood_fd = connect_raw(config.socket_path);
    ASSERT_GE(flood_fd, 0);
    constexpr uint64_t kBurst = 64;
    std::vector<uint8_t> burst;
    for (uint64_t id = 1; id <= kBurst; ++id) {
        WireRequest request;
        request.request_id = id;
        for (uint64_t r = 0; r < 512; ++r) {
            request.offload.reads.push_back(r);
        }
        request.offload.writes = {id};
        encode_request(burst, request);
    }
    const size_t frame_bytes = burst.size() / kBurst;
    std::atomic<bool> stop_flooding{false};
    std::atomic<uint64_t> sent_bytes{0};
    std::thread flooder([&] {
        uint8_t discard[64 * 1024];
        while (!stop_flooding.load(std::memory_order_relaxed)) {
            const ssize_t n =
                send(flood_fd, burst.data(), burst.size(), MSG_NOSIGNAL);
            if (n > 0) {
                sent_bytes.fetch_add(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
            }
            if (n != static_cast<ssize_t>(burst.size())) break;
            // Discard the responses so the server's outbound cap never
            // triggers its flood-protection disconnect (svc.overflow);
            // this test wants the connection alive and saturating.
            while (recv(flood_fd, discard, sizeof(discard),
                        MSG_DONTWAIT) > 0) {
            }
        }
    });
    for (int i = 0; i < 20000; ++i) {
        if (server.stats().get("svc.requests") >= config.max_pending) break;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    ASSERT_GE(server.stats().get("svc.requests"), config.max_pending);

    // Stats from a second connection, answered while the backlog is
    // still queued.
    const int stats_fd = connect_raw(config.socket_path);
    ASSERT_GE(stats_fd, 0);
    std::vector<uint8_t> stats_frame;
    encode_stats_request(stats_frame);
    ASSERT_EQ(send(stats_fd, stats_frame.data(), stats_frame.size(),
                   MSG_NOSIGNAL),
              static_cast<ssize_t>(stats_frame.size()));
    auto payload = read_frame_of_type(stats_fd, MsgType::kStatsReply);
    ASSERT_TRUE(payload.has_value()) << "no stats reply under load";
    const std::string json(payload->begin(), payload->end());
    EXPECT_NE(json.find("\"svc.requests\""), std::string::npos);
    EXPECT_NE(json.find("\"svc.queue_depth\""), std::string::npos);
    EXPECT_NE(json.find("\"svc.window_occupancy\""), std::string::npos);
    EXPECT_NE(json.find("\"svc.stats\""), std::string::npos);

    // The snapshot was served mid-flood, and the flood really builds a
    // backlog: while the flooder keeps pumping, the server must be
    // observable with queued-but-unanswered requests (sampling
    // svc.requests before the answer counters biases the comparison
    // toward equality, so a hit is genuine backlog, not sampling skew).
    bool saw_backlog = false;
    for (int i = 0; i < 20000 && !saw_backlog; ++i) {
        const CounterBag mid = server.stats();
        const uint64_t received = mid.get("svc.requests");
        const uint64_t answered = mid.get("svc.verdict.commit") +
                                  mid.get("svc.verdict.abort-cycle") +
                                  mid.get("svc.verdict.window-overflow") +
                                  mid.get("svc.timeout") +
                                  mid.get("svc.rejected");
        saw_backlog = answered < received;
        if (!saw_backlog) {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
    EXPECT_TRUE(saw_backlog) << "flood never built a request backlog";

    close(stats_fd);
    stop_flooding.store(true, std::memory_order_relaxed);
    flooder.join();
    // Every sent byte is in the kernel; the server will read them all,
    // decoding exactly floor(sent / frame) complete requests (a short
    // final send may leave a fragment parked in its FrameReader). Wait
    // for that count so the final accounting is deterministic.
    const uint64_t total_flooded =
        sent_bytes.load(std::memory_order_relaxed) / frame_bytes;
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.stats().get("svc.requests") < total_flooded &&
           std::chrono::steady_clock::now() < drain_deadline) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    close(flood_fd);
    server.stop();

    // Stats ops never enter the request accounting — the invariant
    // holds exactly, and the poll is visible only under svc.stats.
    const CounterBag stats = server.stats();
    EXPECT_EQ(stats.get("svc.stats"), 1u);
    EXPECT_EQ(stats.get("svc.requests"), total_flooded);
    const uint64_t accounted = stats.get("svc.verdict.commit") +
                               stats.get("svc.verdict.abort-cycle") +
                               stats.get("svc.verdict.window-overflow") +
                               stats.get("svc.timeout") +
                               stats.get("svc.rejected");
    EXPECT_EQ(accounted, stats.get("svc.requests"));
}

/// kSeries and kProm follow the same inline introspection contract as
/// kStats: answered from read_client() without an engine pass, counted
/// under their own counters, never in svc.requests. The kSeries reply
/// carries the monitor's rings + health verdicts; kProm carries the
/// Prometheus text exposition of a fresh registry snapshot.
TEST(SvcServer, AnswersSeriesAndPromInline)
{
    ServerConfig config;
    config.socket_path = test_socket_path("series");
    Server server(config);
    ASSERT_TRUE(server.start());

    // Some traffic so the exposition has non-trivial counters.
    ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    ValidationClient client(client_config);
    ASSERT_TRUE(client.connected());
    for (uint64_t i = 0; i < 8; ++i) {
        ASSERT_EQ(client.validate({{}, {100 + i}, i}).verdict,
                  core::Verdict::kCommit);
    }
    client.stop();

    const int fd = connect_raw(config.socket_path);
    ASSERT_GE(fd, 0);
    {
        std::vector<uint8_t> frame;
        encode_series_request(frame);
        ASSERT_EQ(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(frame.size()));
        auto payload = read_frame_of_type(fd, MsgType::kSeriesReply);
        ASSERT_TRUE(payload.has_value()) << "no kSeriesReply frame";
        const std::string json(payload->begin(), payload->end());
        EXPECT_NE(json.find("\"enabled\": true"), std::string::npos)
            << json;
        EXPECT_NE(json.find("\"svc.requests\""), std::string::npos);
        EXPECT_NE(json.find("\"svc.abort_rate\""), std::string::npos);
        EXPECT_NE(json.find("\"abort-rate\""), std::string::npos)
            << "default SLO rule missing: " << json;
        EXPECT_NE(json.find("\"state\": \"ok\""), std::string::npos);
    }
    {
        std::vector<uint8_t> frame;
        encode_prom_request(frame);
        ASSERT_EQ(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(frame.size()));
        auto payload = read_frame_of_type(fd, MsgType::kPromReply);
        ASSERT_TRUE(payload.has_value()) << "no kPromReply frame";
        const std::string text(payload->begin(), payload->end());
        EXPECT_NE(text.find("# TYPE svc_requests_total counter"),
                  std::string::npos)
            << text;
        EXPECT_NE(text.find("svc_requests_total 8"), std::string::npos)
            << text;
        // Histograms ship as summaries with exact min/max companions.
        EXPECT_NE(text.find("svc_rpc_ns{quantile=\"0.99\"}"),
                  std::string::npos)
            << text;
        EXPECT_NE(text.find("svc_rpc_ns_min"), std::string::npos);
    }
    close(fd);

    // Payload-bearing kSeries: malformed, disconnect.
    {
        const int bad = connect_raw(config.socket_path);
        ASSERT_GE(bad, 0);
        const uint8_t junk[kFrameHeaderBytes + 1] = {
            1, 0, 0, 0, static_cast<uint8_t>(MsgType::kSeries), 0xcc};
        ASSERT_EQ(send(bad, junk, sizeof(junk), MSG_NOSIGNAL),
                  static_cast<ssize_t>(sizeof(junk)));
        uint8_t buf[16];
        EXPECT_EQ(recv(bad, buf, sizeof(buf), 0), 0)
            << "not disconnected";
        close(bad);
    }

    server.stop();
    EXPECT_EQ(server.stats().get("svc.series"), 1u);
    EXPECT_EQ(server.stats().get("svc.prom"), 1u);
    EXPECT_EQ(server.stats().get("svc.malformed"), 1u);
    // Introspection sits outside the request ledger.
    EXPECT_EQ(server.stats().get("svc.requests"), 8u);
}

/// A server running without a monitor still answers kSeries — with an
/// explicit "enabled": false, so pollers (svcctl watch) can fall back
/// to kStats instead of misreading an empty ring as idleness.
TEST(SvcServer, SeriesReportsMonitorDisabled)
{
    ServerConfig config;
    config.socket_path = test_socket_path("seriesoff");
    config.monitor.enabled = false;
    Server server(config);
    ASSERT_TRUE(server.start());

    const int fd = connect_raw(config.socket_path);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> frame;
    encode_series_request(frame);
    ASSERT_EQ(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    auto payload = read_frame_of_type(fd, MsgType::kSeriesReply);
    ASSERT_TRUE(payload.has_value()) << "no kSeriesReply frame";
    const std::string json(payload->begin(), payload->end());
    EXPECT_NE(json.find("\"enabled\": false"), std::string::npos)
        << json;
    close(fd);
    server.stop();
}

/// A kSeries flood — hundreds of polls interleaved with real traffic —
/// must leave the accounting invariant untouched: introspection never
/// enters svc.requests, and every real request still gets exactly one
/// verdict.
TEST(SvcStats, SeriesFloodDoesNotPerturbAccounting)
{
    ServerConfig config;
    config.socket_path = test_socket_path("seriesflood");
    Server server(config);
    ASSERT_TRUE(server.start());

    ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    ValidationClient client(client_config);
    ASSERT_TRUE(client.connected());

    const int poll_fd = connect_raw(config.socket_path);
    ASSERT_GE(poll_fd, 0);
    std::vector<uint8_t> poll_frame;
    encode_series_request(poll_frame);

    constexpr uint64_t kPolls = 200;
    constexpr uint64_t kRequests = 200;
    std::atomic<bool> poller_ok{true};
    std::thread poller([&] {
        for (uint64_t i = 0; i < kPolls; ++i) {
            if (send(poll_fd, poll_frame.data(), poll_frame.size(),
                     MSG_NOSIGNAL) !=
                static_cast<ssize_t>(poll_frame.size())) {
                poller_ok = false;
                return;
            }
            if (!read_frame_of_type(poll_fd, MsgType::kSeriesReply)) {
                poller_ok = false;
                return;
            }
        }
    });
    for (uint64_t i = 0; i < kRequests; ++i) {
        const auto result = client.validate({{}, {1000 + i}, i});
        ASSERT_EQ(result.verdict, core::Verdict::kCommit);
    }
    poller.join();
    EXPECT_TRUE(poller_ok) << "kSeries poll failed mid-flood";
    close(poll_fd);
    client.stop();
    server.stop();

    const CounterBag stats = server.stats();
    EXPECT_EQ(stats.get("svc.series"), kPolls);
    EXPECT_EQ(stats.get("svc.requests"), kRequests);
    const uint64_t accounted = stats.get("svc.verdict.commit") +
                               stats.get("svc.verdict.abort-cycle") +
                               stats.get("svc.verdict.window-overflow") +
                               stats.get("svc.timeout") +
                               stats.get("svc.rejected");
    EXPECT_EQ(accounted, stats.get("svc.requests"));
}

/// v2 responses carry the server's stage breakdown; the client folds it
/// into svc.stage.* histograms whose wall-clock stages sum to the
/// measured round trip by construction (wire is the residual).
TEST(SvcClient, RecordsStageBreakdownFromV2Responses)
{
    ServerConfig config;
    config.socket_path = test_socket_path("stages");
    Server server(config);
    ASSERT_TRUE(server.start());

    ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    ValidationClient client(client_config);
    ASSERT_TRUE(client.connected());

    constexpr uint64_t kRequests = 64;
    for (uint64_t i = 0; i < kRequests; ++i) {
        auto result = client.validate({{}, {100 + i}, i});
        ASSERT_EQ(result.verdict, core::Verdict::kCommit);
    }

    obs::Registry exported;
    client.export_metrics(exported);
    const char* kStages[] = {"client_queue", "wire", "server_queue",
                             "batch_wait", "engine", "link"};
    for (const char* stage : kStages) {
        EXPECT_EQ(exported.histogram("svc.stage." + std::string(stage))
                      .count(),
                  kRequests)
            << stage;
    }
    // The modeled link cost is never zero for a non-empty request.
    EXPECT_GT(exported.histogram("svc.stage.link").mean(), 0.0);

    // Wall-clock stages (link excluded: it is modeled, not measured)
    // sum to the measured end-to-end mean.
    const double stage_sum =
        exported.histogram("svc.stage.client_queue").mean() +
        exported.histogram("svc.stage.wire").mean() +
        exported.histogram("svc.stage.server_queue").mean() +
        exported.histogram("svc.stage.batch_wait").mean() +
        exported.histogram("svc.stage.engine").mean();
    const double e2e = exported.histogram("svc.client.rpc_ns").mean();
    EXPECT_GT(e2e, 0.0);
    EXPECT_NEAR(stage_sum, e2e, 0.05 * e2e);

    // The server kept its own (authoritative) copies of its stages.
    obs::Registry server_metrics;
    client.stop();
    server.stop();
    server.export_metrics(server_metrics);
    EXPECT_EQ(server_metrics.histogram("svc.stage.server_queue").count(),
              kRequests);
    EXPECT_EQ(server_metrics.histogram("svc.stage.engine").count(),
              kRequests);
}

#if ROCOCO_TRACE_ENABLED
/// Trace-context propagation end to end (in-process edition): every
/// validated request yields a client span + flow-start and a server
/// span + flow-end sharing the same id, which is what lets a merged
/// multi-process trace draw one causal arrow per validation.
TEST(SvcTrace, FlowEventsLinkClientAndServerSpans)
{
    auto& tracer = obs::Tracer::instance();
    tracer.reset();
    tracer.start();

    constexpr uint64_t kRequests = 8;
    {
        ServerConfig config;
        config.socket_path = test_socket_path("flows");
        Server server(config);
        ASSERT_TRUE(server.start());
        ClientConfig client_config;
        client_config.socket_path = config.socket_path;
        ValidationClient client(client_config);
        ASSERT_TRUE(client.connected());
        for (uint64_t i = 0; i < kRequests; ++i) {
            ASSERT_EQ(client.validate({{}, {i}, i}).verdict,
                      core::Verdict::kCommit);
        }
        client.stop();
        server.stop();
    }
    tracer.stop();

    std::set<uint64_t> starts, ends;
    uint64_t client_spans = 0, server_spans = 0;
    for (const auto& event : tracer.snapshot()) {
        if (event.name == nullptr) continue;
        const std::string name = event.name;
        if (event.phase == obs::EventPhase::kFlowStart &&
            name == "svc.validate_flow") {
            starts.insert(event.arg_value);
        } else if (event.phase == obs::EventPhase::kFlowEnd &&
                   name == "svc.validate_flow") {
            ends.insert(event.arg_value);
        } else if (name == "svc.rpc") {
            ++client_spans;
        } else if (name == "svc.server.validate") {
            ++server_spans;
        }
    }
    EXPECT_EQ(client_spans, kRequests);
    EXPECT_EQ(server_spans, kRequests);
    EXPECT_EQ(starts.size(), kRequests);
    // Every arrow head has its tail: the ids the server finished are
    // exactly the ids the client started.
    EXPECT_EQ(ends, starts);
    tracer.reset();
}
#endif // ROCOCO_TRACE_ENABLED

// ---------------------------------------------------------------------
// RococoTm backend switch

TEST(SvcTm, RococoTmRunsAgainstValidationService)
{
    ServerConfig server_config;
    server_config.socket_path = test_socket_path("tm");
    Server server(server_config);
    ASSERT_TRUE(server.start());

    tm::RococoTmConfig config;
    config.validation_service = server_config.socket_path;
    config.validation_timeout_ns = 500'000'000; // 500 ms safety net
    tm::RococoTm runtime(config);

    constexpr int kThreads = 4;
    constexpr int kTxPerThread = 100;
    std::vector<tm::TmCell> cells(8);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            runtime.thread_init(static_cast<unsigned>(t));
            Xoshiro256 rng(100 + t);
            for (int i = 0; i < kTxPerThread; ++i) {
                const size_t a = rng.below(cells.size());
                const size_t b =
                    (a + 1 + rng.below(cells.size() - 1)) % cells.size();
                runtime.execute([&](tm::Tx& tx) {
                    // Move one unit a -> b; total is conserved iff the
                    // histories serialize.
                    const tm::Word va = tx.load(cells[a]);
                    const tm::Word vb = tx.load(cells[b]);
                    tx.store(cells[a], va - 1);
                    tx.store(cells[b], vb + 1);
                });
            }
            runtime.thread_fini();
        });
    }
    for (auto& thread : threads) thread.join();

    tm::Word total = 0;
    for (const auto& cell : cells) total += cell.value.load();
    EXPECT_EQ(total, 0) << "service-validated histories must serialize";

    const CounterBag stats = runtime.stats();
    EXPECT_EQ(stats.get(tm::stat::kCommits),
              static_cast<uint64_t>(kThreads * kTxPerThread));

    // The server really did the validating: it saw at least as many
    // requests as there were writing commits.
    EXPECT_GE(server.stats().get("svc.requests"),
              stats.get(tm::stat::kCommits));
    server.stop();
}

/// A wrong or unreachable service path must fail RococoTm construction
/// loudly — a disconnected backend rejects every validation, which
/// try_execute would otherwise retry silently forever.
TEST(SvcTmDeathTest, UnreachableServiceFailsConstructionLoudly)
{
    tm::RococoTmConfig config;
    config.validation_service = test_socket_path("unreachable");
    EXPECT_DEATH({ tm::RococoTm runtime(config); },
                 "validation service unreachable");
}

} // namespace
} // namespace rococo::svc
