/// Unit tests for ROCoCoTM's CPU-side building blocks: redo log,
/// access sets, commit log and update set.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "tm/access_set.h"
#include "tm/commit_log.h"
#include "tm/redo_log.h"
#include "tm/rococo_tm.h"
#include "tm/update_set.h"

namespace rococo::tm {
namespace {

std::shared_ptr<const sig::SignatureConfig>
config()
{
    return std::make_shared<const sig::SignatureConfig>(512, 4);
}

TEST(RedoLog, PutGetOverwrite)
{
    RedoLog log;
    TmCell a, b;
    Word v = 0;
    EXPECT_FALSE(log.get(&a, v));
    log.put(&a, 1);
    log.put(&b, 2);
    ASSERT_TRUE(log.get(&a, v));
    EXPECT_EQ(v, 1u);
    log.put(&a, 7); // overwrite, no new entry
    EXPECT_EQ(log.size(), 2u);
    ASSERT_TRUE(log.get(&a, v));
    EXPECT_EQ(v, 7u);
}

TEST(RedoLog, ApplyWritesBack)
{
    RedoLog log;
    std::vector<TmCell> cells(10);
    for (size_t i = 0; i < cells.size(); ++i) {
        log.put(&cells[i], i * 11);
    }
    log.apply();
    for (size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].unsafe_load(), i * 11);
    }
}

TEST(RedoLog, ClearRetainsNothing)
{
    RedoLog log;
    TmCell a;
    log.put(&a, 5);
    log.clear();
    Word v;
    EXPECT_TRUE(log.empty());
    EXPECT_FALSE(log.get(&a, v));
}

TEST(RedoLog, GrowsPastInitialCapacity)
{
    RedoLog log;
    std::vector<TmCell> cells(500);
    for (size_t i = 0; i < cells.size(); ++i) log.put(&cells[i], i);
    EXPECT_EQ(log.size(), 500u);
    Word v;
    for (size_t i = 0; i < cells.size(); ++i) {
        ASSERT_TRUE(log.get(&cells[i], v));
        EXPECT_EQ(v, i);
    }
}

TEST(AccessSet, SubSignaturesEveryEight)
{
    AccessSet set(config());
    for (uint64_t i = 0; i < 20; ++i) set.insert(1000 + i);
    EXPECT_EQ(set.size(), 20u);
    EXPECT_EQ(set.sub_signatures().size(), 3u); // ceil(20/8)
}

TEST(AccessSet, ConfirmedIntersectRefinesFalsePositives)
{
    auto cfg = config();
    Xoshiro256 rng(3);
    int may = 0, confirmed = 0;
    for (int round = 0; round < 300; ++round) {
        AccessSet set(cfg);
        sig::BloomSignature other(cfg);
        for (int i = 0; i < 24; ++i) set.insert(rng() * 2);
        for (int i = 0; i < 8; ++i) other.insert(rng() * 2 + 1);
        if (set.may_intersect(other)) ++may;
        if (set.confirmed_intersect(other)) ++confirmed;
    }
    EXPECT_LE(confirmed, may);
}

TEST(AccessSet, ConfirmedIntersectFindsRealOverlap)
{
    auto cfg = config();
    AccessSet set(cfg);
    sig::BloomSignature other(cfg);
    for (uint64_t i = 0; i < 30; ++i) set.insert(i);
    other.insert(17);
    EXPECT_TRUE(set.may_intersect(other));
    EXPECT_TRUE(set.confirmed_intersect(other));
}

TEST(CommitLog, PublishCollectRoundTrip)
{
    auto cfg = config();
    CommitLog log(cfg, 16);
    sig::BloomSignature s0(cfg), s1(cfg);
    s0.insert(100);
    s1.insert(200);

    log.publish(0, s0);
    log.advance(0);
    log.publish(1, s1);
    log.advance(1);
    EXPECT_EQ(log.global_ts(), 2u);

    sig::BloomSignature temp(cfg);
    ASSERT_TRUE(log.collect(0, 2, temp));
    EXPECT_TRUE(temp.query(100));
    EXPECT_TRUE(temp.query(200));
}

TEST(CommitLog, StaleReaderDetected)
{
    auto cfg = config();
    CommitLog log(cfg, 4);
    sig::BloomSignature sig(cfg);
    for (uint64_t cid = 0; cid < 8; ++cid) {
        log.publish(cid, sig);
        log.advance(cid);
    }
    sig::BloomSignature temp(cfg);
    EXPECT_FALSE(log.collect(0, 2, temp)) << "overwritten entries";
    EXPECT_TRUE(log.collect(6, 8, temp));
}

TEST(CommitLog, WaitTurnOrdersCommitters)
{
    auto cfg = config();
    CommitLog log(cfg, 16);
    sig::BloomSignature sig(cfg);
    std::vector<int> order;
    std::mutex order_mutex;
    std::vector<std::thread> threads;
    // Start committers in reverse cid order; wait_turn must serialize
    // them as 0, 1, 2.
    for (int cid = 2; cid >= 0; --cid) {
        threads.emplace_back([&, cid] {
            log.wait_turn(static_cast<uint64_t>(cid));
            {
                std::lock_guard<std::mutex> lock(order_mutex);
                order.push_back(cid);
            }
            log.publish(static_cast<uint64_t>(cid), sig);
            log.advance(static_cast<uint64_t>(cid));
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(UpdateSet, PublishQueryClear)
{
    auto cfg = config();
    UpdateSet set(cfg, 4);
    sig::BloomSignature sig(cfg);
    sig.insert(42);
    EXPECT_FALSE(set.query(42));
    set.publish(1, sig);
    EXPECT_TRUE(set.query(42));
    set.clear(1);
    EXPECT_FALSE(set.query(42));
}

TEST(UpdateSet, MultipleActiveSlots)
{
    auto cfg = config();
    UpdateSet set(cfg, 4);
    sig::BloomSignature a(cfg), b(cfg);
    a.insert(1);
    b.insert(2);
    set.publish(0, a);
    set.publish(3, b);
    EXPECT_TRUE(set.query(1));
    EXPECT_TRUE(set.query(2));
    set.clear(0);
    EXPECT_FALSE(set.query(1));
    EXPECT_TRUE(set.query(2));
}

} // namespace
} // namespace rococo::tm

namespace rococo::tm {
namespace {

TEST(CommitLogStale, LaggingReaderAbortsAndRecovers)
{
    // A reader whose snapshot falls more than `capacity` commits behind
    // finds its ring entries overwritten: the runtime must abort it
    // (kStaleAborts) and the retry must succeed.
    RococoTmConfig config;
    config.commit_log_capacity = 4; // tiny ring
    RococoTm rt(config);

    TmVar<int64_t> lagging(1);
    TmArray<int64_t> churn(16);

    std::atomic<int> phase{0};
    std::thread reader([&] {
        rt.thread_init(0);
        rt.execute([&](Tx& tx) {
            const int64_t first = lagging.get(tx);
            if (phase.load() == 0) {
                // First attempt: signal the writer and wait for the
                // ring to wrap before touching anything else.
                phase.store(1);
                while (phase.load() != 2) std::this_thread::yield();
            }
            // Second read: on the stale first attempt this must abort.
            const int64_t second = churn.get(tx, 0);
            (void)first;
            (void)second;
        });
        rt.thread_fini();
    });

    std::thread writer([&] {
        rt.thread_init(1);
        while (phase.load() != 1) std::this_thread::yield();
        for (int i = 0; i < 12; ++i) { // > capacity commits
            rt.execute([&](Tx& tx) {
                churn.set(tx, static_cast<size_t>(i) % 16,
                          churn.get(tx, static_cast<size_t>(i) % 16) + 1);
            });
        }
        phase.store(2);
        rt.thread_fini();
    });

    reader.join();
    writer.join();
    EXPECT_GE(rt.stats().get(stat::kStaleAborts), 1u);
    EXPECT_GE(rt.stats().get(stat::kCommits), 13u);
}

} // namespace
} // namespace rococo::tm
