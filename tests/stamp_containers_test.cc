/// Tests for the transactional containers, both single-threaded
/// (against the sequential runtime) and concurrent (against ROCoCoTM).
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "baselines/sequential_tm.h"
#include "common/rng.h"
#include "stamp/containers/tx_bitmap.h"
#include "stamp/containers/tx_hashtable.h"
#include "stamp/containers/tx_heap.h"
#include "stamp/containers/tx_list.h"
#include "stamp/containers/tx_map.h"
#include "stamp/containers/tx_queue.h"
#include "tm/rococo_tm.h"

namespace rococo::stamp {
namespace {

/// Run one transactional body on the sequential runtime.
template <typename F>
void
seq(F&& body)
{
    baselines::SequentialTm rt;
    rt.thread_init(0);
    rt.execute(std::forward<F>(body));
    rt.thread_fini();
}

TEST(TxList, InsertFindRemove)
{
    TxList::Pool pool(64);
    TxList list(pool);
    seq([&](tm::Tx& tx) {
        EXPECT_TRUE(list.insert(tx, 5, 50));
        EXPECT_TRUE(list.insert(tx, 1, 10));
        EXPECT_TRUE(list.insert(tx, 9, 90));
        EXPECT_FALSE(list.insert(tx, 5, 55)) << "duplicate";
        EXPECT_EQ(list.find(tx, 5).value(), 50u);
        EXPECT_FALSE(list.find(tx, 7).has_value());
        EXPECT_EQ(list.size(tx), 3u);
        EXPECT_TRUE(list.remove(tx, 5));
        EXPECT_FALSE(list.remove(tx, 5));
        EXPECT_EQ(list.size(tx), 2u);
        EXPECT_TRUE(list.update(tx, 9, 99));
        EXPECT_EQ(list.find(tx, 9).value(), 99u);
    });
    // Sorted traversal.
    std::vector<uint64_t> keys;
    list.unsafe_for_each([&](uint64_t k, uint64_t) { keys.push_back(k); });
    EXPECT_EQ(keys, (std::vector<uint64_t>{1, 9}));
}

TEST(TxHashTable, BasicOperations)
{
    TxHashTable table(16, 256);
    seq([&](tm::Tx& tx) {
        for (uint64_t k = 0; k < 100; ++k) {
            EXPECT_TRUE(table.insert(tx, k * 7, k));
        }
        for (uint64_t k = 0; k < 100; ++k) {
            EXPECT_EQ(table.find(tx, k * 7).value(), k);
        }
        EXPECT_TRUE(table.remove(tx, 7));
        EXPECT_FALSE(table.contains(tx, 7));
    });
    EXPECT_EQ(table.unsafe_size(), 99u);
}

TEST(TxMap, InsertFindRemoveRandomized)
{
    TxMap map(1024);
    Xoshiro256 rng(3);
    std::set<uint64_t> model;
    seq([&](tm::Tx& tx) {
        for (int i = 0; i < 400; ++i) {
            const uint64_t key = rng.below(200);
            if (rng.chance(0.6)) {
                EXPECT_EQ(map.insert(tx, key, key * 3),
                          model.insert(key).second);
            } else {
                EXPECT_EQ(map.remove(tx, key), model.erase(key) == 1);
            }
        }
        for (uint64_t key : model) {
            EXPECT_EQ(map.find(tx, key).value(), key * 3);
        }
    });
    // In-order traversal matches the model.
    std::vector<uint64_t> keys;
    map.unsafe_for_each([&](uint64_t k, uint64_t) { keys.push_back(k); });
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(keys.size(), model.size());
    EXPECT_TRUE(std::equal(keys.begin(), keys.end(), model.begin()));
}

TEST(TxMap, LowerBound)
{
    TxMap map(64);
    seq([&](tm::Tx& tx) {
        map.insert(tx, 10, 1);
        map.insert(tx, 20, 2);
        map.insert(tx, 30, 3);
        EXPECT_EQ(map.lower_bound(tx, 15)->first, 20u);
        EXPECT_EQ(map.lower_bound(tx, 20)->first, 20u);
        EXPECT_EQ(map.lower_bound(tx, 5)->first, 10u);
        EXPECT_FALSE(map.lower_bound(tx, 31).has_value());
    });
}

TEST(TxMap, PutInsertsOrUpdates)
{
    TxMap map(64);
    seq([&](tm::Tx& tx) {
        map.put(tx, 1, 10);
        map.put(tx, 1, 11);
        EXPECT_EQ(map.find(tx, 1).value(), 11u);
        EXPECT_EQ(map.unsafe_size(), 1u);
    });
}

TEST(TxHeap, OrdersKeys)
{
    TxHeap heap(64);
    Xoshiro256 rng(5);
    std::multiset<uint64_t> model;
    seq([&](tm::Tx& tx) {
        for (int i = 0; i < 40; ++i) {
            const uint64_t key = rng.below(1000);
            ASSERT_TRUE(heap.push(tx, key));
            model.insert(key);
        }
        while (!model.empty()) {
            const auto top = heap.pop(tx);
            ASSERT_TRUE(top.has_value());
            EXPECT_EQ(*top, *model.begin());
            model.erase(model.begin());
        }
        EXPECT_FALSE(heap.pop(tx).has_value());
    });
}

TEST(TxHeap, RespectsCapacity)
{
    TxHeap heap(2);
    seq([&](tm::Tx& tx) {
        EXPECT_TRUE(heap.push(tx, 1));
        EXPECT_TRUE(heap.push(tx, 2));
        EXPECT_FALSE(heap.push(tx, 3));
    });
}

TEST(TxQueue, FifoSemantics)
{
    TxQueue queue(8);
    seq([&](tm::Tx& tx) {
        for (uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(queue.push(tx, i));
        EXPECT_FALSE(queue.push(tx, 9)) << "full";
        for (uint64_t i = 0; i < 8; ++i) {
            EXPECT_EQ(queue.pop(tx).value(), i);
        }
        EXPECT_FALSE(queue.pop(tx).has_value());
    });
}

TEST(TxQueue, WrapsAround)
{
    TxQueue queue(4);
    seq([&](tm::Tx& tx) {
        for (uint64_t round = 0; round < 5; ++round) {
            for (uint64_t i = 0; i < 3; ++i) {
                ASSERT_TRUE(queue.push(tx, round * 10 + i));
            }
            for (uint64_t i = 0; i < 3; ++i) {
                EXPECT_EQ(queue.pop(tx).value(), round * 10 + i);
            }
        }
    });
}

TEST(TxBitmap, SetTestClear)
{
    TxBitmap bitmap(200);
    seq([&](tm::Tx& tx) {
        EXPECT_FALSE(bitmap.test(tx, 70));
        EXPECT_TRUE(bitmap.set(tx, 70));
        EXPECT_FALSE(bitmap.set(tx, 70)) << "already set";
        EXPECT_TRUE(bitmap.test(tx, 70));
        bitmap.clear(tx, 70);
        EXPECT_FALSE(bitmap.test(tx, 70));
        bitmap.set(tx, 0);
        bitmap.set(tx, 199);
    });
    EXPECT_EQ(bitmap.unsafe_count(), 2u);
}

TEST(TxMapConcurrent, ParallelInsertsAllLand)
{
    // Concurrent inserts of disjoint key ranges through ROCoCoTM.
    TxMap map(4096);
    tm::RococoTm rt;
    constexpr unsigned kThreads = 4;
    constexpr uint64_t kPerThread = 100;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            rt.thread_init(t);
            Xoshiro256 rng(t);
            for (uint64_t i = 0; i < kPerThread; ++i) {
                const uint64_t key = t * 1000 + i;
                rt.execute([&](tm::Tx& tx) { map.insert(tx, key, key); });
            }
            rt.thread_fini();
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(map.unsafe_size(), kThreads * kPerThread);
}

TEST(TxQueueConcurrent, EveryItemPoppedOnce)
{
    TxQueue queue(1024);
    for (uint64_t i = 0; i < 400; ++i) queue.unsafe_push(i);
    tm::RococoTm rt;
    std::array<std::atomic<int>, 400> popped{};
    constexpr unsigned kThreads = 4;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            rt.thread_init(t);
            for (;;) {
                std::optional<uint64_t> item;
                rt.execute([&](tm::Tx& tx) { item = queue.pop(tx); });
                if (!item) break;
                popped[*item].fetch_add(1);
            }
            rt.thread_fini();
        });
    }
    for (auto& thread : threads) thread.join();
    for (int i = 0; i < 400; ++i) {
        EXPECT_EQ(popped[i].load(), 1) << "item " << i;
    }
}

} // namespace
} // namespace rococo::stamp
