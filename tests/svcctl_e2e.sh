#!/bin/sh
# Live-introspection smoke test: svcctl against a server under load.
#
#   $1 = path to svc_loadgen   $2 = path to svcctl
#
# svc_loadgen runs a single long (clients=2, batch=8) cell in the
# background; while its clients are pumping requests we hit the server
# with every svcctl command. The loadgen's own exit status is the
# accounting check — it verifies svc.requests == sum(answers) after the
# sweep and exits 1 on imbalance, so a stats op that perturbed the
# ledger fails this test.
set -u

LOADGEN="$1"
SVCCTL="$2"
SOCK="/tmp/svcctl_e2e_$$.sock"

"$LOADGEN" --clients=2 --batch=8 --requests=300000 --socket="$SOCK" \
    > /dev/null 2>&1 &
LOADGEN_PID=$!
trap 'kill "$LOADGEN_PID" 2>/dev/null; rm -f "$SOCK"' EXIT

# The server binds before the clients fork; wait for the socket.
tries=0
while [ ! -S "$SOCK" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "svcctl_e2e: server socket never appeared" >&2
        exit 1
    fi
    sleep 0.05
done

"$SVCCTL" --socket="$SOCK" stats | grep -q '"svc.requests"' || {
    echo "svcctl_e2e: stats lacks svc.requests" >&2
    exit 1
}
"$SVCCTL" --socket="$SOCK" hist svc.batch_size | grep -q '"count"' || {
    echo "svcctl_e2e: hist svc.batch_size failed" >&2
    exit 1
}
"$SVCCTL" --socket="$SOCK" watch --interval-ms=50 --count=3 \
    | grep -q 'req/s' || {
    echo "svcctl_e2e: watch produced no samples" >&2
    exit 1
}

# Continuous-monitoring ops against the default-on health monitor.
"$SVCCTL" --socket="$SOCK" series | grep -q '"enabled": true' || {
    echo "svcctl_e2e: series lacks an enabled monitor" >&2
    exit 1
}
"$SVCCTL" --socket="$SOCK" series | grep -q '"svc.abort_rate"' || {
    echo "svcctl_e2e: series lacks the svc.abort_rate ring" >&2
    exit 1
}
"$SVCCTL" --socket="$SOCK" prom | grep -q '# TYPE svc_requests_total counter' || {
    echo "svcctl_e2e: prom exposition lacks svc_requests_total" >&2
    exit 1
}
# Conflict-free workload: the dashboard's scriptable form must report
# health and exit 0 (it exits 3 on critical).
MONITOR_OUT=$("$SVCCTL" --socket="$SOCK" monitor --once) || {
    echo "svcctl_e2e: monitor --once exited non-zero on a healthy server" >&2
    exit 1
}
echo "$MONITOR_OUT" | grep -q 'health:' || {
    echo "svcctl_e2e: monitor output lacks the health banner" >&2
    exit 1
}
echo "$MONITOR_OUT" | grep -q 'abort-rate' || {
    echo "svcctl_e2e: monitor output lacks the abort-rate rule row" >&2
    exit 1
}

# Forensics ops answer inline under load. This workload is
# conflict-free, so top must succeed with the table header either way;
# the raw JSON form must carry the fixed shards shape.
"$SVCCTL" --socket="$SOCK" top > /dev/null || {
    echo "svcctl_e2e: top failed against a live server" >&2
    exit 1
}
"$SVCCTL" --socket="$SOCK" top --json | grep -q '"shards"' || {
    echo "svcctl_e2e: top --json lacks shards" >&2
    exit 1
}
# This server runs without a flight recorder: dump must fail loudly
# (exit 1, JSON error) rather than pretend an incident was written.
if "$SVCCTL" --socket="$SOCK" dump 2>/dev/null | grep -q '"ok": true'; then
    echo "svcctl_e2e: dump claimed success without a recorder" >&2
    exit 1
fi
if "$SVCCTL" --socket="$SOCK" dump > /dev/null 2>&1; then
    echo "svcctl_e2e: dump exited 0 without a recorder" >&2
    exit 1
fi

# Unknown histogram and usage errors must fail loudly, not silently.
if "$SVCCTL" --socket="$SOCK" hist no.such.histogram 2>/dev/null; then
    echo "svcctl_e2e: hist accepted an unknown name" >&2
    exit 1
fi
if "$SVCCTL" frobnicate 2>/dev/null; then
    echo "svcctl_e2e: unknown command did not fail" >&2
    exit 1
fi

# The accounting cross-check happens inside svc_loadgen at sweep end.
wait "$LOADGEN_PID"
status=$?
trap - EXIT
rm -f "$SOCK"
if [ "$status" -ne 0 ]; then
    echo "svcctl_e2e: svc_loadgen accounting check failed" >&2
    exit 1
fi
echo "svcctl_e2e: OK"
