/// Tests for the observability layer (src/obs): abort-reason taxonomy,
/// metrics registry (counters/gauges/log2 latency histograms, merge,
/// JSON/CSV export), the per-thread ring-buffer tracer (wraparound,
/// Chrome trace-event export) and the TelemetrySession envelope.
///
/// The TRACE_* macro tests compile in both tracer modes: with
/// -DROCOCO_TRACE=OFF the macros expand to nothing and the
/// runtime-gating expectations are #if'd out, which is itself the
/// compile-time check that instrumented code builds without the
/// tracer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/abort_reason.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace rococo::obs {
namespace {

/// Minimal JSON well-formedness check: quotes pair up (honouring
/// escapes) and braces/brackets balance outside strings. Not a parser —
/// just enough to catch truncated or mis-quoted exporter output.
bool
json_well_formed(const std::string& text)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : text) {
        if (in_string) {
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{':
          case '[': ++depth; break;
          case '}':
          case ']':
            if (--depth < 0) return false;
            break;
          default: break;
        }
    }
    return depth == 0 && !in_string;
}

/// Restore the tracer to its pre-test state so tests compose.
struct TracerGuard
{
    ~TracerGuard()
    {
        Tracer::instance().stop();
        Tracer::instance().set_thread_capacity(size_t{1} << 13);
        Tracer::instance().reset();
    }
};

TEST(AbortReason, NamesAreStableAndDistinct)
{
    std::set<std::string> ids, counters, histograms;
    for (size_t r = 0; r < kAbortReasonCount; ++r) {
        const auto reason = static_cast<AbortReason>(r);
        const std::string id = to_string(reason);
        EXPECT_FALSE(id.empty());
        ids.insert(id);
        counters.insert(abort_counter_name(reason));
        histograms.insert(retry_histogram_name(reason));
        // The derived names embed the id, so logs, counters and
        // histograms can never disagree on spelling.
        EXPECT_EQ(abort_counter_name(reason),
                  std::string("tm.abort.") + id);
        EXPECT_EQ(retry_histogram_name(reason),
                  std::string("tm.retry_ns.") + id);
    }
    EXPECT_EQ(ids.size(), kAbortReasonCount);
    EXPECT_EQ(counters.size(), kAbortReasonCount);
    EXPECT_EQ(histograms.size(), kAbortReasonCount);
    EXPECT_STREQ(to_string(AbortReason::kNone), "none");
    EXPECT_STREQ(to_string(AbortReason::kValidationCycle),
                 "validation-cycle");
}

TEST(LatencyHistogram, RecordsLog2BucketsAndQuantiles)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.quantile(0.5), 0u);
    for (uint64_t v : {0, 1, 2, 3, 100, 1000, 1000000}) hist.record(v);
    EXPECT_EQ(hist.count(), 7u);
    EXPECT_EQ(hist.max(), 1000000u);
    // The top quantile is clamped to the observed maximum, not the
    // bucket upper bound (2^20 would overstate by ~5%).
    EXPECT_EQ(hist.quantile(1.0), 1000000u);
    EXPECT_EQ(hist.quantile(0.0), 0u);
    // Median falls in the bucket holding 3 (values 2..3).
    const uint64_t p50 = hist.quantile(0.5);
    EXPECT_GE(p50, 2u);
    EXPECT_LE(p50, 4u);
    // Quantile argument clamps instead of misbehaving.
    EXPECT_EQ(hist.quantile(7.0), hist.quantile(1.0));
    EXPECT_EQ(hist.quantile(-3.0), hist.quantile(0.0));
}

TEST(LatencyHistogram, MergeAndReset)
{
    LatencyHistogram a, b;
    for (uint64_t i = 0; i < 100; ++i) a.record(10);
    for (uint64_t i = 0; i < 100; ++i) b.record(100000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_EQ(a.max(), 100000u);
    EXPECT_LT(a.quantile(0.25), 100u);
    EXPECT_GT(a.quantile(0.75), 50000u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.max(), 0u);
}

TEST(Gauge, TracksLastMinMaxMean)
{
    Gauge gauge;
    EXPECT_EQ(gauge.samples(), 0u);
    gauge.set(4.0);
    gauge.set(1.0);
    gauge.set(7.0);
    EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
    EXPECT_DOUBLE_EQ(gauge.min(), 1.0);
    EXPECT_DOUBLE_EQ(gauge.max(), 7.0);
    EXPECT_DOUBLE_EQ(gauge.mean(), 4.0);
    EXPECT_EQ(gauge.samples(), 3u);
}

TEST(Registry, MergesPerThreadRegistriesExactly)
{
    // The RococoTm pattern: per-thread registries merged into a shared
    // one at thread_fini, with no double counting and no lost updates.
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 10000;
    std::vector<Registry> locals(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Registry& local = locals[static_cast<size_t>(t)];
            Counter& commits = local.counter("commits");
            LatencyHistogram& lat = local.histogram("latency_ns");
            for (uint64_t i = 0; i < kPerThread; ++i) {
                commits.add();
                lat.record(64 + i % 1024);
            }
            local.gauge("depth").set(static_cast<double>(t));
        });
    }
    for (auto& thread : threads) thread.join();

    Registry merged;
    for (const Registry& local : locals) merged.merge(local);
    EXPECT_EQ(merged.get("commits"), kThreads * kPerThread);
    EXPECT_EQ(merged.histogram("latency_ns").count(),
              kThreads * kPerThread);
    EXPECT_EQ(merged.gauge("depth").samples(),
              static_cast<uint64_t>(kThreads));
    EXPECT_DOUBLE_EQ(merged.gauge("depth").max(), kThreads - 1.0);
}

TEST(Registry, CounterBagRoundTripSkipsZeros)
{
    Registry registry;
    CounterBag bag;
    bag.bump("aborts", 3);
    registry.add(bag);
    registry.bump("commits", 5);
    registry.counter("untouched"); // registered but zero
    const CounterBag out = registry.to_counter_bag();
    EXPECT_EQ(out.get("aborts"), 3u);
    EXPECT_EQ(out.get("commits"), 5u);
    EXPECT_EQ(out.counters().count("untouched"), 0u);
}

TEST(Registry, JsonAndCsvExportAreWellFormed)
{
    Registry registry;
    registry.bump("tm.commit", 42);
    registry.gauge("fpga.queue_depth").set(3.5);
    for (uint64_t i = 1; i <= 100; ++i) {
        registry.histogram("tm.attempt_ns.commit").record(i * 100);
    }
    std::ostringstream json;
    registry.to_json(json);
    EXPECT_TRUE(json_well_formed(json.str())) << json.str();
    EXPECT_NE(json.str().find("\"tm.commit\": 42"), std::string::npos)
        << json.str();
    EXPECT_NE(json.str().find("\"p99\""), std::string::npos);

    std::ostringstream csv;
    registry.to_csv(csv);
    EXPECT_NE(csv.str().find("counter,tm.commit,value,42"),
              std::string::npos)
        << csv.str();
}

TEST(Tracer, RingWrapsKeepingNewestEvents)
{
    TracerGuard guard;
    Tracer& tracer = Tracer::instance();
    tracer.set_thread_capacity(8);
    tracer.reset();
    tracer.start();
    for (uint64_t i = 0; i < 20; ++i) {
        TraceEvent event;
        event.name = "seq";
        event.arg_name = "seq";
        event.arg_value = i;
        event.ts_ns = i;
        event.phase = EventPhase::kCounter;
        tracer.record(event);
    }
    tracer.stop();
    const std::vector<TraceEvent> events = tracer.snapshot();
    ASSERT_EQ(events.size(), 8u);
    // The newest 8 of the 20 survive, oldest first.
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].arg_value, 12 + i);
    }
    EXPECT_GE(tracer.thread_count(), 1u);
}

TEST(Tracer, ExportsChromeEventArray)
{
    TracerGuard guard;
    Tracer& tracer = Tracer::instance();
    tracer.set_thread_capacity(64);
    tracer.reset();
    tracer.start();

    TraceEvent span;
    span.name = "tx.validate";
    span.cat = "tm";
    span.arg_name = "cid";
    span.arg_value = 7;
    span.ts_ns = 1000;
    span.dur_ns = 500;
    span.phase = EventPhase::kComplete;
    tracer.record(span);
    tracer.counter("queue_depth", 3);
    tracer.instant("tm", "tx.abort");
    tracer.stop();

    std::ostringstream out;
    tracer.export_chrome_events(out);
    const std::string text = out.str();
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_EQ(text.front(), '[');
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"args\":{\"cid\":7}"), std::string::npos);
    // Timestamps are rebased to the earliest event and emitted in
    // microseconds: the span starts at ts 0.
    EXPECT_NE(text.find("\"ts\":0.000"), std::string::npos);
}

TEST(Tracer, CountsDroppedEventsWhenRingWraps)
{
    TracerGuard guard;
    Tracer& tracer = Tracer::instance();
    tracer.set_thread_capacity(8);
    tracer.reset();
    tracer.start();
    EXPECT_EQ(tracer.dropped_events(), 0u);
    for (uint64_t i = 0; i < 20; ++i) {
        TraceEvent event;
        event.name = "seq";
        event.ts_ns = i;
        event.phase = EventPhase::kInstant;
        tracer.record(event);
    }
    tracer.stop();
    // 20 pushed into a ring of 8: 12 overwritten.
    EXPECT_EQ(tracer.dropped_events(), 12u);
    tracer.reset();
    EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(Tracer, ExportsFlowEventsWithSharedId)
{
    TracerGuard guard;
    Tracer& tracer = Tracer::instance();
    tracer.set_thread_capacity(64);
    tracer.reset();
    tracer.start();
    tracer.flow(EventPhase::kFlowStart, "svc", "svc.validate_flow",
                0xabcdef, 1000);
    tracer.flow(EventPhase::kFlowEnd, "svc", "svc.validate_flow",
                0xabcdef, 2000);
    tracer.stop();

    std::ostringstream out;
    tracer.export_chrome_events(out);
    const std::string text = out.str();
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_NE(text.find("\"ph\":\"s\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"ph\":\"f\""), std::string::npos) << text;
    // Both halves carry the binding id; the tail also binds to the
    // enclosing slice ("bp":"e"), which Perfetto needs to attach the
    // arrow to the receiving span rather than the one after it.
    const size_t first = text.find("\"id\":\"0xabcdef\"");
    ASSERT_NE(first, std::string::npos) << text;
    EXPECT_NE(text.find("\"id\":\"0xabcdef\"", first + 1), std::string::npos)
        << "both flow halves must carry the id";
    EXPECT_NE(text.find("\"bp\":\"e\""), std::string::npos);
}

TEST(TelemetrySession, SurfacesDroppedEventsAndMeta)
{
    TracerGuard guard;
    Tracer::instance().set_thread_capacity(4);
    const std::string path =
        testing::TempDir() + "obs_test_dropped.json";
    {
        TelemetrySession session(path);
#if ROCOCO_TRACE_ENABLED
        for (uint64_t i = 0; i < 10; ++i) {
            TRACE_INSTANT("test", "wrap.instant");
        }
#endif
        EXPECT_TRUE(session.finish());
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    const std::string text = content.str();
    EXPECT_TRUE(json_well_formed(text)) << text;
    // The meta envelope is always present...
    EXPECT_NE(text.find("\"meta\""), std::string::npos);
    EXPECT_NE(text.find("\"pid\""), std::string::npos);
    EXPECT_NE(text.find("\"base_time_ns\""), std::string::npos);
#if ROCOCO_TRACE_ENABLED
    // ...and the 6 events the 4-slot ring overwrote are accounted.
    EXPECT_NE(text.find("\"obs.trace.dropped\": 6"), std::string::npos)
        << text;
#endif
    std::remove(path.c_str());
}

TEST(TraceMacros, CompileAndGateOnTracerState)
{
    TracerGuard guard;
    Tracer& tracer = Tracer::instance();
    tracer.set_thread_capacity(64);
    tracer.reset();

    // Tracer stopped: macros must record nothing (and with
    // ROCOCO_TRACE=OFF they are not even compiled).
    {
        TRACE_SPAN("test", "span.idle");
        TRACE_SPAN_ARG("test", "span.idle_arg", "v", 1);
        TRACE_COUNTER("test.counter", 2);
        TRACE_INSTANT("test", "instant.idle");
    }
    EXPECT_EQ(tracer.snapshot().size(), 0u);

    tracer.start();
    {
        TRACE_SPAN("test", "span.active");
        ScopedSpan late("test", "span.late_arg");
        late.arg("cid", 9);
        TRACE_INSTANT("test", "instant.active");
    }
    tracer.stop();
#if ROCOCO_TRACE_ENABLED
    EXPECT_EQ(tracer.snapshot().size(), 3u);
#else
    EXPECT_EQ(tracer.snapshot().size(), 0u);
#endif
}

TEST(TelemetrySession, WritesCombinedFileAndGatesGlobalState)
{
    TracerGuard guard;
    const std::string path =
        testing::TempDir() + "obs_test_telemetry.json";

    EXPECT_FALSE(telemetry_active());
    {
        TelemetrySession inert("");
        EXPECT_FALSE(inert.active());
        EXPECT_FALSE(telemetry_active());
        EXPECT_TRUE(inert.finish());
    }

    TelemetrySession session(path);
    EXPECT_TRUE(session.active());
    EXPECT_TRUE(telemetry_active());
    // Per-reason counters must sum to the total for the file checker.
    Registry::global().bump("tm.abort", 2);
    Registry::global().bump(
        abort_counter_name(AbortReason::kValidationCycle), 2);
    Registry::global().bump("tm.commit", 5);
    {
        TRACE_SPAN("test", "session.span");
    }
    EXPECT_TRUE(session.finish());
    EXPECT_FALSE(telemetry_active());
    EXPECT_TRUE(session.finish()) << "finish must be idempotent";

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    const std::string text = content.str();
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"metrics\""), std::string::npos);
    EXPECT_NE(text.find("\"tm.commit\": 5"), std::string::npos);
    EXPECT_NE(text.find("\"tm.abort.validation-cycle\": 2"),
              std::string::npos);
#if ROCOCO_TRACE_ENABLED
    EXPECT_NE(text.find("session.span"), std::string::npos);
#endif
    std::remove(path.c_str());
}

} // namespace
} // namespace rococo::obs
