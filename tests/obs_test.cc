/// Tests for the observability layer (src/obs): abort-reason taxonomy,
/// metrics registry (counters/gauges/log2 latency histograms, merge,
/// JSON/CSV export), the per-thread ring-buffer tracer (wraparound,
/// Chrome trace-event export) and the TelemetrySession envelope.
///
/// The TRACE_* macro tests compile in both tracer modes: with
/// -DROCOCO_TRACE=OFF the macros expand to nothing and the
/// runtime-gating expectations are #if'd out, which is itself the
/// compile-time check that instrumented code builds without the
/// tracer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/abort_reason.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace rococo::obs {
namespace {

/// Minimal JSON well-formedness check: quotes pair up (honouring
/// escapes) and braces/brackets balance outside strings. Not a parser —
/// just enough to catch truncated or mis-quoted exporter output.
bool
json_well_formed(const std::string& text)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : text) {
        if (in_string) {
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{':
          case '[': ++depth; break;
          case '}':
          case ']':
            if (--depth < 0) return false;
            break;
          default: break;
        }
    }
    return depth == 0 && !in_string;
}

/// Restore the tracer to its pre-test state so tests compose.
struct TracerGuard
{
    ~TracerGuard()
    {
        Tracer::instance().stop();
        Tracer::instance().set_thread_capacity(size_t{1} << 13);
        Tracer::instance().reset();
    }
};

TEST(AbortReason, NamesAreStableAndDistinct)
{
    std::set<std::string> ids, counters, histograms;
    for (size_t r = 0; r < kAbortReasonCount; ++r) {
        const auto reason = static_cast<AbortReason>(r);
        const std::string id = to_string(reason);
        EXPECT_FALSE(id.empty());
        ids.insert(id);
        counters.insert(abort_counter_name(reason));
        histograms.insert(retry_histogram_name(reason));
        // The derived names embed the id, so logs, counters and
        // histograms can never disagree on spelling.
        EXPECT_EQ(abort_counter_name(reason),
                  std::string("tm.abort.") + id);
        EXPECT_EQ(retry_histogram_name(reason),
                  std::string("tm.retry_ns.") + id);
    }
    EXPECT_EQ(ids.size(), kAbortReasonCount);
    EXPECT_EQ(counters.size(), kAbortReasonCount);
    EXPECT_EQ(histograms.size(), kAbortReasonCount);
    EXPECT_STREQ(to_string(AbortReason::kNone), "none");
    EXPECT_STREQ(to_string(AbortReason::kValidationCycle),
                 "validation-cycle");
}

TEST(LatencyHistogram, RecordsLog2BucketsAndQuantiles)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.quantile(0.5), 0u);
    for (uint64_t v : {0, 1, 2, 3, 100, 1000, 1000000}) hist.record(v);
    EXPECT_EQ(hist.count(), 7u);
    EXPECT_EQ(hist.max(), 1000000u);
    // The top quantile is clamped to the observed maximum, not the
    // bucket upper bound (2^20 would overstate by ~5%).
    EXPECT_EQ(hist.quantile(1.0), 1000000u);
    EXPECT_EQ(hist.quantile(0.0), 0u);
    // Median falls in the bucket holding 3 (values 2..3).
    const uint64_t p50 = hist.quantile(0.5);
    EXPECT_GE(p50, 2u);
    EXPECT_LE(p50, 4u);
    // Quantile argument clamps instead of misbehaving.
    EXPECT_EQ(hist.quantile(7.0), hist.quantile(1.0));
    EXPECT_EQ(hist.quantile(-3.0), hist.quantile(0.0));
}

TEST(LatencyHistogram, MergeAndReset)
{
    LatencyHistogram a, b;
    for (uint64_t i = 0; i < 100; ++i) a.record(10);
    for (uint64_t i = 0; i < 100; ++i) b.record(100000);
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_EQ(a.max(), 100000u);
    EXPECT_LT(a.quantile(0.25), 100u);
    EXPECT_GT(a.quantile(0.75), 50000u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.max(), 0u);
}

TEST(LatencyHistogram, TracksExactRunningMin)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.min(), 0u); // empty histogram reads 0, like max()
    for (uint64_t v : {500, 37, 10000, 37, 99}) hist.record(v);
    EXPECT_EQ(hist.min(), 37u);
    EXPECT_EQ(hist.sum(), 500u + 37 + 10000 + 37 + 99);
    // The bottom quantile is clamped to the observed minimum, not the
    // bucket lower bound (bucket of 37 starts at 32).
    EXPECT_EQ(hist.quantile(0.0), 37u);
    for (double q : {0.25, 0.5, 0.99}) {
        EXPECT_GE(hist.quantile(q), 37u);
        EXPECT_LE(hist.quantile(q), 10000u);
    }

    LatencyHistogram other;
    other.record(12);
    hist.merge(other);
    EXPECT_EQ(hist.min(), 12u);
    // Merging an empty histogram must not disturb the min (the
    // sentinel is not a value).
    LatencyHistogram empty;
    hist.merge(empty);
    EXPECT_EQ(hist.min(), 12u);

    hist.reset();
    EXPECT_EQ(hist.min(), 0u);
}

TEST(LatencyHistogram, MinMaxExactUnderConcurrentRecording)
{
    // Regression for the CAS-down min loop: with per-thread disjoint
    // value ranges, the global min/max must be the exact extremes, not
    // a torn or lost update. (Run under -DROCOCO_SANITIZE=thread this
    // also proves record() stays data-race-free with min tracking.)
    LatencyHistogram hist;
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hist, t] {
            // Thread t records in [1000*(t+1), 1000*(t+1) + kPerThread).
            const uint64_t base = 1000 * (uint64_t(t) + 1);
            for (uint64_t i = 0; i < kPerThread; ++i) {
                hist.record(base + i);
            }
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(hist.count(), uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(hist.min(), 1000u);
    EXPECT_EQ(hist.max(), 1000u * kThreads + kPerThread - 1);
}

TEST(Gauge, TracksLastMinMaxMean)
{
    Gauge gauge;
    EXPECT_EQ(gauge.samples(), 0u);
    gauge.set(4.0);
    gauge.set(1.0);
    gauge.set(7.0);
    EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
    EXPECT_DOUBLE_EQ(gauge.min(), 1.0);
    EXPECT_DOUBLE_EQ(gauge.max(), 7.0);
    EXPECT_DOUBLE_EQ(gauge.mean(), 4.0);
    EXPECT_EQ(gauge.samples(), 3u);
}

TEST(Registry, MergesPerThreadRegistriesExactly)
{
    // The RococoTm pattern: per-thread registries merged into a shared
    // one at thread_fini, with no double counting and no lost updates.
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 10000;
    std::vector<Registry> locals(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Registry& local = locals[static_cast<size_t>(t)];
            Counter& commits = local.counter("commits");
            LatencyHistogram& lat = local.histogram("latency_ns");
            for (uint64_t i = 0; i < kPerThread; ++i) {
                commits.add();
                lat.record(64 + i % 1024);
            }
            local.gauge("depth").set(static_cast<double>(t));
        });
    }
    for (auto& thread : threads) thread.join();

    Registry merged;
    for (const Registry& local : locals) merged.merge(local);
    EXPECT_EQ(merged.get("commits"), kThreads * kPerThread);
    EXPECT_EQ(merged.histogram("latency_ns").count(),
              kThreads * kPerThread);
    EXPECT_EQ(merged.gauge("depth").samples(),
              static_cast<uint64_t>(kThreads));
    EXPECT_DOUBLE_EQ(merged.gauge("depth").max(), kThreads - 1.0);
}

TEST(Registry, CounterBagRoundTripSkipsZeros)
{
    Registry registry;
    CounterBag bag;
    bag.bump("aborts", 3);
    registry.add(bag);
    registry.bump("commits", 5);
    registry.counter("untouched"); // registered but zero
    const CounterBag out = registry.to_counter_bag();
    EXPECT_EQ(out.get("aborts"), 3u);
    EXPECT_EQ(out.get("commits"), 5u);
    EXPECT_EQ(out.counters().count("untouched"), 0u);
}

TEST(Registry, ConcurrentExportWhileWritersActive)
{
    // The flight-recorder / kStats pattern: one thread repeatedly
    // exports (to_json + merge into a scratch registry) while writer
    // threads keep bumping counters, recording histograms and setting
    // gauges. Nothing to assert beyond "no crash, no torn registry" —
    // under TSan this is the data-race check for the registry's
    // internal locking.
    Registry registry;
    std::atomic<bool> stop{false};
    constexpr int kWriters = 4;
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&, t] {
            Counter& hits = registry.counter("stress.hits");
            LatencyHistogram& lat = registry.histogram("stress.lat");
            uint64_t i = 0;
            // do-while: at least one write per thread even if the
            // exporter finishes its rounds before we are scheduled.
            do {
                hits.add(1);
                lat.record(64 + i % 4096);
                registry.gauge("stress.depth")
                    .set(static_cast<double>(t));
                // New names mid-flight: the map itself is contended,
                // not just the values.
                if (i % 1024 == 0) {
                    registry.counter("stress.dyn." +
                                     std::to_string(i % 8));
                }
                ++i;
            } while (!stop.load(std::memory_order_relaxed));
        });
    }
    Registry scratch;
    for (int round = 0; round < 200; ++round) {
        std::ostringstream out;
        registry.to_json(out);
        EXPECT_TRUE(json_well_formed(out.str()));
        scratch.reset();
        scratch.merge(registry);
        EXPECT_GE(scratch.get("stress.hits"), 0u);
    }
    stop.store(true);
    for (auto& writer : writers) writer.join();
    EXPECT_GT(registry.get("stress.hits"), 0u);
}

TEST(Registry, JsonAndCsvExportAreWellFormed)
{
    Registry registry;
    registry.bump("tm.commit", 42);
    registry.gauge("fpga.queue_depth").set(3.5);
    for (uint64_t i = 1; i <= 100; ++i) {
        registry.histogram("tm.attempt_ns.commit").record(i * 100);
    }
    std::ostringstream json;
    registry.to_json(json);
    EXPECT_TRUE(json_well_formed(json.str())) << json.str();
    EXPECT_NE(json.str().find("\"tm.commit\": 42"), std::string::npos)
        << json.str();
    EXPECT_NE(json.str().find("\"p99\""), std::string::npos);

    std::ostringstream csv;
    registry.to_csv(csv);
    EXPECT_NE(csv.str().find("counter,tm.commit,value,42"),
              std::string::npos)
        << csv.str();
}

TEST(Tracer, RingWrapsKeepingNewestEvents)
{
    TracerGuard guard;
    Tracer& tracer = Tracer::instance();
    tracer.set_thread_capacity(8);
    tracer.reset();
    tracer.start();
    for (uint64_t i = 0; i < 20; ++i) {
        TraceEvent event;
        event.name = "seq";
        event.arg_name = "seq";
        event.arg_value = i;
        event.ts_ns = i;
        event.phase = EventPhase::kCounter;
        tracer.record(event);
    }
    tracer.stop();
    const std::vector<TraceEvent> events = tracer.snapshot();
    ASSERT_EQ(events.size(), 8u);
    // The newest 8 of the 20 survive, oldest first.
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].arg_value, 12 + i);
    }
    EXPECT_GE(tracer.thread_count(), 1u);
}

TEST(Tracer, ExportsChromeEventArray)
{
    TracerGuard guard;
    Tracer& tracer = Tracer::instance();
    tracer.set_thread_capacity(64);
    tracer.reset();
    tracer.start();

    TraceEvent span;
    span.name = "tx.validate";
    span.cat = "tm";
    span.arg_name = "cid";
    span.arg_value = 7;
    span.ts_ns = 1000;
    span.dur_ns = 500;
    span.phase = EventPhase::kComplete;
    tracer.record(span);
    tracer.counter("queue_depth", 3);
    tracer.instant("tm", "tx.abort");
    tracer.stop();

    std::ostringstream out;
    tracer.export_chrome_events(out);
    const std::string text = out.str();
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_EQ(text.front(), '[');
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"args\":{\"cid\":7}"), std::string::npos);
    // Timestamps are rebased to the earliest event and emitted in
    // microseconds: the span starts at ts 0.
    EXPECT_NE(text.find("\"ts\":0.000"), std::string::npos);
}

TEST(Tracer, CountsDroppedEventsWhenRingWraps)
{
    TracerGuard guard;
    Tracer& tracer = Tracer::instance();
    tracer.set_thread_capacity(8);
    tracer.reset();
    tracer.start();
    EXPECT_EQ(tracer.dropped_events(), 0u);
    for (uint64_t i = 0; i < 20; ++i) {
        TraceEvent event;
        event.name = "seq";
        event.ts_ns = i;
        event.phase = EventPhase::kInstant;
        tracer.record(event);
    }
    tracer.stop();
    // 20 pushed into a ring of 8: 12 overwritten.
    EXPECT_EQ(tracer.dropped_events(), 12u);
    tracer.reset();
    EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(Tracer, ExportsFlowEventsWithSharedId)
{
    TracerGuard guard;
    Tracer& tracer = Tracer::instance();
    tracer.set_thread_capacity(64);
    tracer.reset();
    tracer.start();
    tracer.flow(EventPhase::kFlowStart, "svc", "svc.validate_flow",
                0xabcdef, 1000);
    tracer.flow(EventPhase::kFlowEnd, "svc", "svc.validate_flow",
                0xabcdef, 2000);
    tracer.stop();

    std::ostringstream out;
    tracer.export_chrome_events(out);
    const std::string text = out.str();
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_NE(text.find("\"ph\":\"s\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"ph\":\"f\""), std::string::npos) << text;
    // Both halves carry the binding id; the tail also binds to the
    // enclosing slice ("bp":"e"), which Perfetto needs to attach the
    // arrow to the receiving span rather than the one after it.
    const size_t first = text.find("\"id\":\"0xabcdef\"");
    ASSERT_NE(first, std::string::npos) << text;
    EXPECT_NE(text.find("\"id\":\"0xabcdef\"", first + 1), std::string::npos)
        << "both flow halves must carry the id";
    EXPECT_NE(text.find("\"bp\":\"e\""), std::string::npos);
}

TEST(TelemetrySession, SurfacesDroppedEventsAndMeta)
{
    TracerGuard guard;
    Tracer::instance().set_thread_capacity(4);
    const std::string path =
        testing::TempDir() + "obs_test_dropped.json";
    {
        TelemetrySession session(path);
#if ROCOCO_TRACE_ENABLED
        for (uint64_t i = 0; i < 10; ++i) {
            TRACE_INSTANT("test", "wrap.instant");
        }
#endif
        EXPECT_TRUE(session.finish());
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    const std::string text = content.str();
    EXPECT_TRUE(json_well_formed(text)) << text;
    // The meta envelope is always present...
    EXPECT_NE(text.find("\"meta\""), std::string::npos);
    EXPECT_NE(text.find("\"pid\""), std::string::npos);
    EXPECT_NE(text.find("\"base_time_ns\""), std::string::npos);
#if ROCOCO_TRACE_ENABLED
    // ...and the 6 events the 4-slot ring overwrote are accounted.
    EXPECT_NE(text.find("\"obs.trace.dropped\": 6"), std::string::npos)
        << text;
#endif
    std::remove(path.c_str());
}

TEST(TraceMacros, CompileAndGateOnTracerState)
{
    TracerGuard guard;
    Tracer& tracer = Tracer::instance();
    tracer.set_thread_capacity(64);
    tracer.reset();

    // Tracer stopped: macros must record nothing (and with
    // ROCOCO_TRACE=OFF they are not even compiled).
    {
        TRACE_SPAN("test", "span.idle");
        TRACE_SPAN_ARG("test", "span.idle_arg", "v", 1);
        TRACE_COUNTER("test.counter", 2);
        TRACE_INSTANT("test", "instant.idle");
    }
    EXPECT_EQ(tracer.snapshot().size(), 0u);

    tracer.start();
    {
        TRACE_SPAN("test", "span.active");
        ScopedSpan late("test", "span.late_arg");
        late.arg("cid", 9);
        TRACE_INSTANT("test", "instant.active");
    }
    tracer.stop();
#if ROCOCO_TRACE_ENABLED
    EXPECT_EQ(tracer.snapshot().size(), 3u);
#else
    EXPECT_EQ(tracer.snapshot().size(), 0u);
#endif
}

TEST(TelemetrySession, WritesCombinedFileAndGatesGlobalState)
{
    TracerGuard guard;
    const std::string path =
        testing::TempDir() + "obs_test_telemetry.json";

    EXPECT_FALSE(telemetry_active());
    {
        TelemetrySession inert("");
        EXPECT_FALSE(inert.active());
        EXPECT_FALSE(telemetry_active());
        EXPECT_TRUE(inert.finish());
    }

    TelemetrySession session(path);
    EXPECT_TRUE(session.active());
    EXPECT_TRUE(telemetry_active());
    // Per-reason counters must sum to the total for the file checker.
    Registry::global().bump("tm.abort", 2);
    Registry::global().bump(
        abort_counter_name(AbortReason::kValidationCycle), 2);
    Registry::global().bump("tm.commit", 5);
    {
        TRACE_SPAN("test", "session.span");
    }
    EXPECT_TRUE(session.finish());
    EXPECT_FALSE(telemetry_active());
    EXPECT_TRUE(session.finish()) << "finish must be idempotent";

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    const std::string text = content.str();
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"metrics\""), std::string::npos);
    EXPECT_NE(text.find("\"tm.commit\": 5"), std::string::npos);
    EXPECT_NE(text.find("\"tm.abort.validation-cycle\": 2"),
              std::string::npos);
#if ROCOCO_TRACE_ENABLED
    EXPECT_NE(text.find("session.span"), std::string::npos);
#endif
    std::remove(path.c_str());
}

std::string
read_file(const std::string& path)
{
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    return content.str();
}

/// Count occurrences of @p needle in @p text.
size_t
count_of(const std::string& text, const std::string& needle)
{
    size_t n = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1)) {
        ++n;
    }
    return n;
}

TEST(FlightRecorder, ManualDumpWritesNumberedIncidentFiles)
{
    const std::string prefix = testing::TempDir() + "fr_manual";
    Registry source;
    source.bump("aborts", 3);
    FlightRecorderConfig config;
    config.output_prefix = prefix;
    config.abort_counters = {"aborts"};
    FlightRecorder recorder(config,
                            [&](Registry& out) { out.merge(source); });

    const std::string first = recorder.dump("manual");
    EXPECT_EQ(first, prefix + "-1.json");
    const std::string second = recorder.dump("manual");
    EXPECT_EQ(second, prefix + "-2.json");
    EXPECT_EQ(recorder.dumps(), 2u);
    EXPECT_EQ(recorder.last_dump_path(), second);

    const std::string text = read_file(first);
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_NE(text.find("\"trigger\": \"manual\""), std::string::npos);
    EXPECT_NE(text.find("\"seq\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"aborts\": 3"), std::string::npos);
    // No topk source and no tracer: the stubs keep the schema whole.
    EXPECT_NE(text.find("\"topk\": {\"shards\": []}"), std::string::npos);
    EXPECT_NE(text.find("\"traceEvents\": []"), std::string::npos);
    std::remove(first.c_str());
    std::remove(second.c_str());
}

TEST(FlightRecorder, TickSamplesOnlyWhenDue)
{
    FlightRecorderConfig config;
    config.sample_period_ns = 1000;
    FlightRecorder recorder(config, {});
    recorder.tick(500);
    EXPECT_EQ(recorder.samples_taken(), 0u);
    recorder.tick(1000);
    EXPECT_EQ(recorder.samples_taken(), 1u);
    recorder.tick(1500); // only 500 ns since the last sample
    EXPECT_EQ(recorder.samples_taken(), 1u);
    recorder.tick(2100);
    EXPECT_EQ(recorder.samples_taken(), 2u);
}

TEST(FlightRecorder, AbortRateTriggerFiresOnDeltaAndCooldownHolds)
{
    const std::string prefix = testing::TempDir() + "fr_rate";
    Registry source;
    FlightRecorderConfig config;
    config.output_prefix = prefix;
    config.sample_period_ns = 1000;
    config.abort_counters = {"aborts"};
    config.total_counters = {"total"};
    config.abort_rate_threshold = 0.5;
    config.min_delta_total = 16;
    config.cooldown_ns = ~uint64_t{0} >> 1;
    FlightRecorder recorder(config,
                            [&](Registry& out) { out.merge(source); });

    recorder.tick(1000); // baseline sample: no previous, rate 0
    EXPECT_EQ(recorder.dumps(), 0u);

    // A genuine spike: 90 aborts out of 100 new requests.
    source.bump("total", 100);
    source.bump("aborts", 90);
    recorder.tick(2000);
    EXPECT_EQ(recorder.dumps(), 1u);
    const std::string path = recorder.last_dump_path();
    EXPECT_EQ(path, prefix + "-1.json");
    const std::string text = read_file(path);
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_NE(text.find("\"trigger\": \"abort-rate\""),
              std::string::npos);
    EXPECT_NE(text.find("\"abort_rate\": 0.9"), std::string::npos);

    // Same spike again: the cooldown keeps the recorder from spamming
    // incident files while the system is still on fire.
    source.bump("total", 100);
    source.bump("aborts", 90);
    recorder.tick(3000);
    EXPECT_EQ(recorder.dumps(), 1u);

    // A delta below min_delta_total must never fire: one abort in two
    // requests is 50% but not a spike.
    std::remove(path.c_str());
}

TEST(FlightRecorder, MinDeltaTotalGuardsAgainstIdleBlips)
{
    Registry source;
    FlightRecorderConfig config;
    config.output_prefix = testing::TempDir() + "fr_blip";
    config.sample_period_ns = 1000;
    config.abort_counters = {"aborts"};
    config.total_counters = {"total"};
    config.abort_rate_threshold = 0.5;
    config.min_delta_total = 16;
    FlightRecorder recorder(config,
                            [&](Registry& out) { out.merge(source); });
    recorder.tick(1000);
    source.bump("total", 2);
    source.bump("aborts", 2); // 100% of a 2-request delta
    recorder.tick(2000);
    EXPECT_EQ(recorder.dumps(), 0u);
}

TEST(FlightRecorder, P99TriggerAndBoundedRing)
{
    const std::string prefix = testing::TempDir() + "fr_p99";
    Registry source;
    for (int i = 0; i < 32; ++i) {
        source.histogram("lat").record(1'000'000);
    }
    FlightRecorderConfig config;
    config.output_prefix = prefix;
    config.sample_period_ns = 1000;
    config.ring_capacity = 3;
    config.watch_histogram = "lat";
    config.p99_threshold_ns = 10'000;
    config.cooldown_ns = ~uint64_t{0} >> 1;
    FlightRecorder recorder(config,
                            [&](Registry& out) { out.merge(source); });

    for (uint64_t t = 1; t <= 5; ++t) recorder.tick(t * 1000);
    EXPECT_EQ(recorder.samples_taken(), 5u);
    // The very first sample clears the p99 threshold.
    EXPECT_EQ(recorder.dumps(), 1u);
    std::string text = read_file(recorder.last_dump_path());
    EXPECT_NE(text.find("\"trigger\": \"p99\""), std::string::npos);
    std::remove(recorder.last_dump_path().c_str());

    // After 5 samples into a 3-slot ring, a dump carries exactly the
    // newest 3, in time order.
    const std::string manual = recorder.dump("manual");
    text = read_file(manual);
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_EQ(count_of(text, "{\"t_ns\""), 3u) << text;
    EXPECT_NE(text.find("\"t_ns\": 3000"), std::string::npos);
    EXPECT_NE(text.find("\"t_ns\": 5000"), std::string::npos);
    EXPECT_EQ(text.find("\"t_ns\": 1000"), std::string::npos);
    std::remove(manual.c_str());
}

TEST(FlightRecorder, TopKSourceIsEmbeddedVerbatim)
{
    Registry source;
    FlightRecorderConfig config;
    config.output_prefix = testing::TempDir() + "fr_topk";
    FlightRecorder recorder(config,
                            [&](Registry& out) { out.merge(source); });
    recorder.set_topk_source([](std::string* out) {
        *out = "{\"shards\": [{\"shard\": 0, \"offered\": 7, "
               "\"entries\": [{\"key\": 42, \"count\": 7, \"error\": "
               "0}]}]}";
    });
    const std::string path = recorder.dump("manual");
    ASSERT_FALSE(path.empty());
    const std::string text = read_file(path);
    EXPECT_TRUE(json_well_formed(text)) << text;
    EXPECT_NE(text.find("\"key\": 42"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TelemetrySession, StampsMonotonicExportSeqAndDroppedGauge)
{
    TracerGuard guard;
    const std::string path_a = testing::TempDir() + "obs_seq_a.json";
    const std::string path_b = testing::TempDir() + "obs_seq_b.json";
    {
        TelemetrySession session(path_a);
        EXPECT_TRUE(session.finish());
    }
    {
        TelemetrySession session(path_b);
        EXPECT_TRUE(session.finish());
    }
    auto export_seq = [](const std::string& text) -> long {
        const size_t at = text.find("\"export_seq\": ");
        EXPECT_NE(at, std::string::npos) << text;
        return at == std::string::npos
                   ? -1
                   : std::atol(text.c_str() + at + 14);
    };
    const std::string text_a = read_file(path_a);
    const std::string text_b = read_file(path_b);
    // Strictly increasing within the process, numbered from 1 — the
    // property merge_trace_json.py uses to reject stale duplicates.
    const long seq_a = export_seq(text_a);
    const long seq_b = export_seq(text_b);
    EXPECT_GE(seq_a, 1);
    EXPECT_GT(seq_b, seq_a);
    // The dropped gauge is exported even when zero, so --strict can
    // tell "no drops" from "nobody measured".
    EXPECT_NE(text_a.find("\"obs.trace.dropped_total\""),
              std::string::npos)
        << text_a;
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

} // namespace
} // namespace rococo::obs
