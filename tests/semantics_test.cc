/// Tests of the §3 semantics checkers: the Fig. 3 (a) lattice
/// relationships between snapshot isolation, serializability and
/// strict serializability, realized on replayed histories.
#include <gtest/gtest.h>

#include "cc/nongreedy.h"
#include "cc/replay.h"
#include "cc/rococo_cc.h"
#include "cc/semantics.h"
#include "cc/snapshot_isolation.h"
#include "cc/tocc.h"
#include "cc/trace_generator.h"
#include "graph/interval_order.h"
#include "graph/transitive_closure.h"

namespace rococo::cc {
namespace {

TEST(Semantics, SiHistorySatisfiesSiAxiom)
{
    UniformTraceParams params;
    params.locations = 64;
    params.accesses = 8;
    params.txns = 300;
    for (uint64_t seed : {1u, 2u, 3u}) {
        params.seed = seed;
        const Trace trace = generate_uniform_trace(params);
        SnapshotIsolation si;
        const auto result = replay(si, trace, 8);
        EXPECT_TRUE(check_snapshot_isolation(trace, result.committed, 8)
                        .holds)
            << "seed " << seed;
    }
}

TEST(Semantics, WriteSkewIsSiButNotSerializable)
{
    // Fig. 1: the canonical incomparability witness in one direction.
    Trace trace;
    trace.num_locations = 2;
    trace.txns.push_back({{1}, {0}});
    trace.txns.push_back({{0}, {1}});
    trace.normalize();
    const std::vector<char> both = {1, 1};
    EXPECT_TRUE(check_snapshot_isolation(trace, both, 2).holds);
    EXPECT_FALSE(check_history(trace, both, 2).serializable);
}

TEST(Semantics, RococoHistoryCanViolateSiAxiom)
{
    // ...and the other direction: two concurrent blind writers of the
    // same address. ROCoCo commits both (WAW is just a backward edge);
    // SI's first-committer-wins forbids the second.
    Trace trace;
    trace.num_locations = 2;
    trace.txns.push_back({{}, {0}});
    trace.txns.push_back({{}, {0}});
    trace.normalize();

    RococoCc rococo(64);
    const auto result = replay(rococo, trace, 2);
    EXPECT_EQ(result.commit_count, 2u);
    EXPECT_TRUE(check_history(trace, result.committed, 2).serializable);
    const auto si = check_snapshot_isolation(trace, result.committed, 2);
    EXPECT_FALSE(si.holds) << "serializability and SI are incomparable";
    EXPECT_EQ(si.txn_a, 0u);
    EXPECT_EQ(si.txn_b, 1u);

    SnapshotIsolation si_alg;
    const auto si_result = replay(si_alg, trace, 2);
    EXPECT_EQ(si_result.commit_count, 1u) << "SI aborts the second writer";
}

TEST(Semantics, ToccHistoriesAreStrictSerializable)
{
    // TOCC's timestamp order is itself a witness compatible with real
    // time: its histories are always strict serializable (§3.2 — the
    // restriction ROCoCo removes).
    UniformTraceParams params;
    params.locations = 64;
    params.accesses = 8;
    params.txns = 250;
    for (uint64_t seed : {4u, 5u, 6u}) {
        params.seed = seed;
        const Trace trace = generate_uniform_trace(params);
        Tocc tocc;
        const auto result = replay(tocc, trace, 8);
        EXPECT_TRUE(
            check_strict_serializability(trace, result.committed, 8)
                .serializable)
            << "seed " << seed;
    }
}

TEST(Semantics, RococoEscapesStrictSerializability)
{
    // The paper's core thesis made concrete: ROCoCo enforces
    // serializability WITHOUT the strictness restriction. Chains of
    // commits "into the past" can transitively order a transaction
    // before one that finished more than a whole concurrency window
    // earlier — every history stays serializable, but some are NOT
    // strict serializable. TOCC could never produce those histories;
    // the extra commits are exactly the phantom-ordering savings.
    UniformTraceParams params;
    params.locations = 64;
    params.accesses = 8;
    params.txns = 250;
    int non_strict = 0;
    for (uint64_t seed = 4; seed < 12; ++seed) {
        params.seed = seed;
        const Trace trace = generate_uniform_trace(params);
        RococoCc rococo(64);
        const auto result = replay(rococo, trace, 8);
        ASSERT_TRUE(check_history(trace, result.committed, 8)
                        .serializable)
            << "seed " << seed;
        if (!check_strict_serializability(trace, result.committed, 8)
                 .serializable) {
            ++non_strict;
        }
    }
    EXPECT_GT(non_strict, 0)
        << "expected at least one serializable-but-not-strict history";
}

TEST(Semantics, StrictCheckRejectsRealTimeViolation)
{
    // A history whose only witness order reverses two non-overlapping
    // transactions: t0 writes x, much later t2 reads the ORIGINAL x
    // (impossible under any strict witness when t2 saw a snapshot
    // after t0). Construct directly: committed t0 W(x); t2 (not
    // overlapping, T=1) reads x but we mark its version edges as if it
    // read before t0 — achievable by a reader whose snapshot predates
    // t0 yet runs after: in the replay model that cannot happen, so we
    // hand-build the graph instead.
    Trace trace;
    trace.num_locations = 1;
    trace.txns.push_back({{}, {0}}); // t0: W(x)
    trace.txns.push_back({{0}, {}}); // t1: R(x)
    trace.normalize();
    const std::vector<char> both = {1, 1};
    // With T=1 they don't overlap; t1 reads t0's version: fine.
    EXPECT_TRUE(check_strict_serializability(trace, both, 1).serializable);
}

TEST(Semantics, RealTimeRelationIsIntervalOrder)
{
    // §3.2: real-time precedence of intervals is an interval order —
    // the property that dooms timestamp-based OCC to phantom orderings.
    UniformTraceParams params;
    params.locations = 32;
    params.accesses = 4;
    params.txns = 24; // small: the 2+2 search is quartic
    params.seed = 8;
    const Trace trace = generate_uniform_trace(params);
    std::vector<char> all(trace.size(), 1);
    const auto rt = real_time_graph(trace, all, 5);
    EXPECT_TRUE(graph::is_interval_order(rt));
}

TEST(Semantics, NonGreedyHistoriesStaySerializableNotNecessarilyStrict)
{
    // The batch validator inherits ROCoCo's semantics: plain
    // serializability always; strictness not necessarily.
    UniformTraceParams params;
    params.locations = 64;
    params.accesses = 8;
    params.txns = 200;
    params.seed = 6;
    const Trace trace = generate_uniform_trace(params);
    const auto result = batch_replay(trace, 16, 4);
    graph::DependencyGraph g = build_rw_graph_ordered(
        trace, result.committed, 16, result.commit_seq);
    EXPECT_TRUE(graph::check_serializability(g).serializable);
}

} // namespace
} // namespace rococo::cc
