/// Hot-path microbench for the validation request path: the two
/// numbers the bit-sliced detector rework is accountable for
/// (docs/PERFORMANCE.md, BENCH_hotpath.json).
///
///   1. classify ns/request — the column-major kernel
///      (ConflictDetector::classify_into) against the row-major walk
///      it replaced (classify_scalar), same live history, same
///      requests. The scalar loop's fresh result vectors are part of
///      its measured cost: that is exactly what the seed path did per
///      request.
///   2. pipeline validate ns + allocations/validation — the full
///      synchronous round trip through ValidationPipeline::validate()
///      (enqueue, worker classify+decide, slot wakeup) in steady
///      state, with this binary's counting operator new proving the
///      zero-allocation claim outside the test harness.
///
/// The window is kept full, so every classification scans a full
/// history and every commit evicts — the steady state of a saturated
/// engine, which is where the O(W*k) vs O(k) gap matters.
///
/// Usage: micro_validate [--iters=200000] [--pipeline-iters=50000]
///                       [--reads=4] [--writes=4] [--pool=4096]
///                       [--seed=1] [--csv=PATH]
///   Sweeps (window, signature bits, hashes) over the paper geometry
///   W=64/512-bit/k=4 plus two contrast points. --csv writes one row
///   per geometry — the input scripts/bench_summary.py --hotpath-csv
///   distills into BENCH_hotpath.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "fpga/validation_pipeline.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}

void*
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}
void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

using namespace rococo;

namespace {

struct Geometry
{
    size_t window;
    unsigned sig_bits;
    unsigned hashes;
};

struct KernelTiming
{
    sig::MatchKernel kernel;
    double sliced_ns = 0;
};

struct Result
{
    /// One timing per runtime-available match kernel (scalar always
    /// first), same history and request stream for each.
    std::vector<KernelTiming> kernels;
    double scalar_ns = 0;
    double pipeline_ns = 0;
    double allocs_per_validation = 0;
};

uint64_t
now_ns()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Requests drawn from one address pool, so classification hits real
/// history entries (the emit loop runs) instead of timing the
/// zero-match early exit.
std::vector<fpga::OffloadRequest>
build_requests(size_t count, size_t reads, size_t writes, uint64_t pool,
               uint64_t snapshot, Xoshiro256& rng)
{
    std::vector<fpga::OffloadRequest> requests(count);
    for (auto& request : requests) {
        for (size_t i = 0; i < reads; ++i) {
            request.reads.push_back(rng() % pool);
        }
        for (size_t i = 0; i < writes; ++i) {
            request.writes.push_back(rng() % pool);
        }
        request.snapshot_cid = snapshot;
    }
    return requests;
}

Result
run_geometry(const Geometry& geometry, uint64_t iters,
             uint64_t pipeline_iters, size_t reads, size_t writes,
             uint64_t pool, uint64_t seed)
{
    Result result;
    uint64_t sink = 0; // defeat dead-code elimination

    // --- classify kernels on a bare detector with a full window ---
    {
        auto config = std::make_shared<const sig::SignatureConfig>(
            geometry.sig_bits, geometry.hashes, seed);
        fpga::ConflictDetector detector(geometry.window, config);
        Xoshiro256 rng(seed);
        fpga::OffloadRequest committed;
        for (uint64_t cid = 0; cid < geometry.window; ++cid) {
            committed.reads.clear();
            committed.writes.clear();
            for (size_t i = 0; i < reads; ++i) {
                committed.reads.push_back(rng() % pool);
            }
            for (size_t i = 0; i < writes; ++i) {
                committed.writes.push_back(rng() % pool);
            }
            detector.record_commit(cid, committed);
        }
        const std::vector<fpga::OffloadRequest> requests = build_requests(
            1024, reads, writes, pool, geometry.window / 2, rng);

        core::ValidationRequest out; // reused: the zero-alloc hot path
        for (sig::MatchKernel kernel : sig::runtime_kernels()) {
            detector.set_match_kernel(kernel);
            for (const auto& request : requests) { // warm caches + capacity
                detector.classify_into(request, &out);
                sink += out.forward.size();
            }
            const uint64_t t0 = now_ns();
            for (uint64_t i = 0; i < iters; ++i) {
                detector.classify_into(requests[i % requests.size()], &out);
                sink += out.backward.size();
            }
            const uint64_t t1 = now_ns();
            result.kernels.push_back(
                {kernel, double(t1 - t0) / double(iters)});
        }
        detector.set_match_kernel(sig::best_kernel());

        const uint64_t t0 = now_ns();
        for (uint64_t i = 0; i < iters; ++i) {
            const core::ValidationRequest scalar =
                detector.classify_scalar(requests[i % requests.size()]);
            sink += scalar.backward.size();
        }
        const uint64_t t1 = now_ns();
        result.scalar_ns = double(t1 - t0) / double(iters);
    }

    // --- full pipeline round trip, steady state, counted allocations ---
    {
        fpga::EngineConfig config;
        config.window = geometry.window;
        config.signature_bits = geometry.sig_bits;
        config.signature_hashes = geometry.hashes;
        fpga::ValidationPipeline pipeline(config);
        auto request = [&](uint64_t i) {
            fpga::OffloadRequest r;
            r.writes.push_back(uint64_t{1} << 32 | i); // unique: commits
            r.writes.push_back(i % 32);                // contended pool
            return r;
        };
        uint64_t i = 0;
        for (; i < 2 * geometry.window; ++i) { // fill window, grow slab
            sink += pipeline.validate(request(i)).cid;
        }
        const uint64_t allocs_before =
            g_allocations.load(std::memory_order_relaxed);
        const uint64_t t0 = now_ns();
        for (const uint64_t end = i + pipeline_iters; i < end; ++i) {
            sink += pipeline.validate(request(i)).cid;
        }
        const uint64_t t1 = now_ns();
        const uint64_t allocs =
            g_allocations.load(std::memory_order_relaxed) - allocs_before;
        result.pipeline_ns = double(t1 - t0) / double(pipeline_iters);
        result.allocs_per_validation =
            double(allocs) / double(pipeline_iters);
    }

    if (sink == 0xdead) std::printf("\n"); // keep `sink` observable
    return result;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv,
            {"iters", "pipeline-iters", "reads", "writes", "pool", "seed",
             "csv"});
    const uint64_t iters =
        static_cast<uint64_t>(cli.get_int("iters", 200000));
    const uint64_t pipeline_iters =
        static_cast<uint64_t>(cli.get_int("pipeline-iters", 50000));
    const size_t reads = static_cast<size_t>(cli.get_int("reads", 4));
    const size_t writes = static_cast<size_t>(cli.get_int("writes", 4));
    const uint64_t pool = static_cast<uint64_t>(cli.get_int("pool", 4096));
    const uint64_t seed = static_cast<uint64_t>(cli.get_int("seed", 1));
    const std::string csv_path = cli.get("csv", "");

    std::printf("Validation hot path: bit-sliced classify vs the "
                "row-major scalar walk (full window, %zu reads + %zu "
                "writes per request), plus the steady-state pipeline "
                "round trip with counted heap allocations.\n\n",
                reads, writes);

    std::ofstream csv;
    if (!csv_path.empty()) {
        csv.open(csv_path);
        csv << "window,sig_bits,hashes,reads,writes,iters,kernel,"
               "sliced_ns,scalar_ns,speedup,pipeline_validate_ns,"
               "allocs_per_validation\n";
    }

    Table table({"W", "m", "k", "kernel", "sliced ns", "scalar ns",
                 "speedup", "pipeline ns", "allocs/val"});
    // W=64/512/4 is the paper deployment and the canary row; the other
    // two vary one axis each (signature size, multi-word columns). One
    // output row per (geometry, runtime-available match kernel).
    for (const Geometry& geometry : {Geometry{64, 512, 4},
                                     Geometry{64, 256, 4},
                                     Geometry{128, 512, 4}}) {
        const Result r = run_geometry(geometry, iters, pipeline_iters,
                                      reads, writes, pool, seed);
        for (const KernelTiming& t : r.kernels) {
            const double speedup =
                t.sliced_ns > 0 ? r.scalar_ns / t.sliced_ns : 0;
            table.row()
                .num(geometry.window, 0)
                .num(geometry.sig_bits, 0)
                .num(geometry.hashes, 0)
                .cell(sig::to_string(t.kernel))
                .num(t.sliced_ns, 1)
                .num(r.scalar_ns, 1)
                .num(speedup, 2)
                .num(r.pipeline_ns, 0)
                .num(r.allocs_per_validation, 3);
            if (csv.is_open()) {
                csv << geometry.window << ',' << geometry.sig_bits << ','
                    << geometry.hashes << ',' << reads << ',' << writes
                    << ',' << iters << ',' << sig::to_string(t.kernel)
                    << ',' << t.sliced_ns << ',' << r.scalar_ns << ','
                    << speedup << ',' << r.pipeline_ns << ','
                    << r.allocs_per_validation << '\n';
            }
        }
    }
    table.print();
    std::printf("\nThe scalar walk re-queries every window signature "
                "(O(W*k) per address); the bit-sliced kernel loads k "
                "occupancy columns and ANDs (O(k) words). The pipeline "
                "column is the full cross-thread validate() round trip; "
                "allocs/val is this binary's global operator-new count "
                "per steady-state validation (expected: 0).\n");
    return 0;
}
