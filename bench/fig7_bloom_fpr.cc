/// Reproduces Fig. 7: false positivity of (a) membership query and
/// (b) set intersection for parallel bloom-filter signatures, as a
/// function of stored elements n, for several (m, k) geometries —
/// both the analytic model (Jeffrey & Steffan) and a Monte-Carlo
/// measurement of the actual implementation.
///
/// Expected shape: query false positives stay small for small n, but
/// false set-overlap of intersections rises sharply past ~8 elements —
/// the observation that leads ROCoCoTM to m = 512 with 8-address
/// sub-signatures (§5.2).
#include <cstdio>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "sig/bloom_signature.h"
#include "sig/signature_model.h"

using namespace rococo;

namespace {

double
measure_query_fpr(unsigned m, unsigned k, unsigned n, int rounds,
                  Xoshiro256& rng)
{
    auto cfg = std::make_shared<const sig::SignatureConfig>(m, k);
    int fp = 0, probes = 0;
    for (int round = 0; round < rounds; ++round) {
        sig::BloomSignature s(cfg);
        for (unsigned i = 0; i < n; ++i) s.insert(rng() * 2); // evens
        for (int p = 0; p < 16; ++p) {
            ++probes;
            fp += s.query(rng() * 2 + 1) ? 1 : 0; // odd: never inserted
        }
    }
    return static_cast<double>(fp) / probes;
}

std::pair<double, double>
measure_intersect_fpr(unsigned m, unsigned k, unsigned n, int rounds,
                      Xoshiro256& rng)
{
    auto cfg = std::make_shared<const sig::SignatureConfig>(m, k);
    int any_bit = 0, partitioned = 0;
    for (int round = 0; round < rounds; ++round) {
        sig::BloomSignature a(cfg), b(cfg);
        for (unsigned i = 0; i < n; ++i) {
            a.insert(rng() * 2);
            b.insert(rng() * 2 + 1);
        }
        any_bit += a.intersects(b) ? 1 : 0;
        partitioned += a.intersects_all_partitions(b) ? 1 : 0;
    }
    return {static_cast<double>(any_bit) / rounds,
            static_cast<double>(partitioned) / rounds};
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"rounds"});
    const int rounds = static_cast<int>(cli.get_int("rounds", 1500));
    Xoshiro256 rng(2024);

    const std::pair<unsigned, unsigned> geometries[] = {
        {256, 4}, {512, 2}, {512, 4}, {1024, 4}};

    std::printf("Figure 7 (a): query false-positive rate vs stored "
                "elements (model | measured, %d rounds)\n\n",
                rounds);
    {
        Table table({"n", "m=256,k=4", "m=512,k=2", "m=512,k=4",
                     "m=1024,k=4"});
        for (unsigned n : {2u, 4u, 8u, 16u, 32u, 64u}) {
            Table& row = table.row();
            row.num(static_cast<int>(n));
            for (auto [m, k] : geometries) {
                char buf[48];
                std::snprintf(
                    buf, sizeof(buf), "%.4f | %.4f",
                    sig::query_false_positive({m, k}, n),
                    measure_query_fpr(m, k, n, rounds / 4, rng));
                row.cell(buf);
            }
        }
        table.print();
    }

    std::printf("\nFigure 7 (b): false set-overlap of intersection, two "
                "disjoint n-element sets.\n"
                "Each cell: any-bit AND criterion (model | measured), "
                "then the per-partition criterion (model | measured)\n\n");
    {
        Table table({"n", "m=256,k=4", "m=512,k=2", "m=512,k=4",
                     "m=1024,k=4"});
        for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
            Table& row = table.row();
            row.num(static_cast<int>(n));
            for (auto [m, k] : geometries) {
                const auto [any_bit, partitioned] =
                    measure_intersect_fpr(m, k, n, rounds, rng);
                char buf[96];
                std::snprintf(
                    buf, sizeof(buf), "%.3f|%.3f  %.3f|%.3f",
                    sig::intersection_false_overlap({m, k}, n, n),
                    any_bit,
                    sig::intersection_false_overlap_all_partitions(
                        {m, k}, n, n),
                    partitioned);
                row.cell(buf);
            }
        }
        table.print();
    }

    std::printf(
        "\nFalse set-overlap rises sharply past ~8 elements even for "
        "m=512 — hence ROCoCoTM only intersects signatures of at most "
        "8 addresses (one per 512-bit cacheline) and uses the "
        "per-partition criterion: %.1f%% false overlap at n=8 "
        "(vs %.1f%% for the naive any-bit AND), §5.2.\n",
        sig::intersection_false_overlap_all_partitions({512, 4}, 8, 8) *
            100.0,
        sig::intersection_false_overlap({512, 4}, 8, 8) * 100.0);
    return 0;
}
