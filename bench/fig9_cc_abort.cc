/// Reproduces Fig. 9: abort rate vs collision rate for 2PL, TOCC and
/// ROCoCo on the EigenBench-like micro-benchmark (§6.1).
///
/// Setup per the paper: a 1024-slot array; each transaction accesses
/// N in {4, 8, ..., 32} distinct slots (50% reads / 50% writes), giving
/// pairwise collision rates 1 - (1 - N/1024)^N of about 1.5%..63.8%;
/// fifty random traces per point; T in {4, 16} concurrent transactions.
///
/// Expected shape: ROCoCo <= TOCC <= 2PL everywhere; the ROCoCo-vs-TOCC
/// gap peaks at medium collision rates with T = 16 (the paper reports
/// up to 56.2% lower than 2PL and 20.2% lower than TOCC at a 22.3%
/// collision rate) and closes above ~50% collision.
#include <array>
#include <cstdio>
#include <memory>

#include "cc/replay.h"
#include "cc/rococo_cc.h"
#include "cc/tocc.h"
#include "cc/trace_generator.h"
#include "cc/two_phase_locking.h"
#include "common/cli.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/abort_reason.h"
#include "obs/telemetry.h"

using namespace rococo;

namespace {

/// Typed abort attribution accumulated across every replay of one
/// algorithm (indexed by obs::AbortReason).
using ReasonCounts = std::array<uint64_t, obs::kAbortReasonCount>;

struct Point
{
    double collision = 0;
    double tpl = 0;
    double tocc = 0;
    double rococo = 0;
};

struct ReasonTotals
{
    ReasonCounts tpl{};
    ReasonCounts tocc{};
    ReasonCounts rococo{};
};

void
accumulate(ReasonCounts& into, const cc::ReplayResult& result)
{
    for (size_t r = 0; r < into.size(); ++r) {
        into[r] += result.aborts_by_reason[r];
    }
}

Point
measure(unsigned accesses, int concurrency, size_t txns, int seeds,
        ReasonTotals& reasons)
{
    Point point;
    point.collision = cc::uniform_collision_rate(1024, accesses);
    RunningStat tpl_stat, tocc_stat, rococo_stat;
    for (int seed = 1; seed <= seeds; ++seed) {
        cc::UniformTraceParams params;
        params.locations = 1024;
        params.accesses = accesses;
        params.read_fraction = 0.5;
        params.txns = txns;
        params.seed = static_cast<uint64_t>(seed);
        const cc::Trace trace = cc::generate_uniform_trace(params);

        cc::TwoPhaseLocking tpl;
        cc::Tocc tocc;
        cc::RococoCc rococo(64);
        const cc::ReplayResult tpl_result =
            cc::replay(tpl, trace, concurrency);
        const cc::ReplayResult tocc_result =
            cc::replay(tocc, trace, concurrency);
        const cc::ReplayResult rococo_result =
            cc::replay(rococo, trace, concurrency);
        tpl_stat.add(tpl_result.abort_rate());
        tocc_stat.add(tocc_result.abort_rate());
        rococo_stat.add(rococo_result.abort_rate());
        accumulate(reasons.tpl, tpl_result);
        accumulate(reasons.tocc, tocc_result);
        accumulate(reasons.rococo, rococo_result);
    }
    point.tpl = tpl_stat.mean();
    point.tocc = tocc_stat.mean();
    point.rococo = rococo_stat.mean();
    return point;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"txns", "seeds", "window", "csv", "telemetry-out"});
    const size_t txns = static_cast<size_t>(cli.get_int("txns", 1000));
    const int seeds = static_cast<int>(cli.get_int("seeds", 50));
    obs::TelemetrySession telemetry(cli.get("telemetry-out", ""));

    std::printf("Figure 9: abort rate vs collision rate "
                "(1024 slots, 50%%R/50%%W, %d traces/point, %zu txns)\n\n",
                seeds, txns);

    std::unique_ptr<CsvWriter> csv;
    if (cli.has("csv")) {
        csv = std::make_unique<CsvWriter>(
            cli.get("csv", ""),
            std::vector<std::string>{"threads", "accesses", "collision",
                                     "tpl", "tocc", "rococo"});
    }

    ReasonTotals reasons;
    for (int concurrency : {4, 16}) {
        std::printf("T = %d concurrent transactions\n", concurrency);
        Table table({"N", "collision", "2PL", "TOCC", "ROCoCo",
                     "ROCoCo vs 2PL", "ROCoCo vs TOCC"});
        for (unsigned accesses = 4; accesses <= 32; accesses += 4) {
            const Point p =
                measure(accesses, concurrency, txns, seeds, reasons);
            if (csv) {
                csv->write_row({std::to_string(concurrency),
                                std::to_string(accesses),
                                std::to_string(p.collision),
                                std::to_string(p.tpl),
                                std::to_string(p.tocc),
                                std::to_string(p.rococo)});
            }
            auto reduction = [](double base, double ours) {
                return base > 0 ? (base - ours) / base * 100.0 : 0.0;
            };
            table.row()
                .num(static_cast<int>(accesses))
                .num(p.collision, 3)
                .num(p.tpl, 4)
                .num(p.tocc, 4)
                .num(p.rococo, 4)
                .cell(std::to_string(
                          static_cast<int>(reduction(p.tpl, p.rococo))) +
                      "%")
                .cell(std::to_string(
                          static_cast<int>(reduction(p.tocc, p.rococo))) +
                      "%");
        }
        table.print();
        std::printf("\n");
    }

    // Typed abort attribution: 2PL aborts are lock conflicts, TOCC's
    // are commit-order inversions (the phantom ordering of §3.1), and
    // ROCoCo's split into true ->rw cycles vs window evictions.
    std::printf("Abort attribution by typed AbortReason (all points)\n");
    Table attribution({"reason", "2PL", "TOCC", "ROCoCo"});
    for (size_t r = 0; r < obs::kAbortReasonCount; ++r) {
        const uint64_t total =
            reasons.tpl[r] + reasons.tocc[r] + reasons.rococo[r];
        if (total == 0) continue;
        attribution.row()
            .cell(obs::to_string(static_cast<obs::AbortReason>(r)))
            .num(reasons.tpl[r])
            .num(reasons.tocc[r])
            .num(reasons.rococo[r]);
    }
    attribution.print();
    return telemetry.finish() ? 0 : 1;
}
