/// Reproduces Fig. 9: abort rate vs collision rate for 2PL, TOCC and
/// ROCoCo on the EigenBench-like micro-benchmark (§6.1).
///
/// Setup per the paper: a 1024-slot array; each transaction accesses
/// N in {4, 8, ..., 32} distinct slots (50% reads / 50% writes), giving
/// pairwise collision rates 1 - (1 - N/1024)^N of about 1.5%..63.8%;
/// fifty random traces per point; T in {4, 16} concurrent transactions.
///
/// Expected shape: ROCoCo <= TOCC <= 2PL everywhere; the ROCoCo-vs-TOCC
/// gap peaks at medium collision rates with T = 16 (the paper reports
/// up to 56.2% lower than 2PL and 20.2% lower than TOCC at a 22.3%
/// collision rate) and closes above ~50% collision.
#include <cstdio>
#include <memory>

#include "cc/replay.h"
#include "cc/rococo_cc.h"
#include "cc/tocc.h"
#include "cc/trace_generator.h"
#include "cc/two_phase_locking.h"
#include "common/cli.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"

using namespace rococo;

namespace {

struct Point
{
    double collision = 0;
    double tpl = 0;
    double tocc = 0;
    double rococo = 0;
};

Point
measure(unsigned accesses, int concurrency, size_t txns, int seeds)
{
    Point point;
    point.collision = cc::uniform_collision_rate(1024, accesses);
    RunningStat tpl_stat, tocc_stat, rococo_stat;
    for (int seed = 1; seed <= seeds; ++seed) {
        cc::UniformTraceParams params;
        params.locations = 1024;
        params.accesses = accesses;
        params.read_fraction = 0.5;
        params.txns = txns;
        params.seed = static_cast<uint64_t>(seed);
        const cc::Trace trace = cc::generate_uniform_trace(params);

        cc::TwoPhaseLocking tpl;
        cc::Tocc tocc;
        cc::RococoCc rococo(64);
        tpl_stat.add(cc::replay(tpl, trace, concurrency).abort_rate());
        tocc_stat.add(cc::replay(tocc, trace, concurrency).abort_rate());
        rococo_stat.add(
            cc::replay(rococo, trace, concurrency).abort_rate());
    }
    point.tpl = tpl_stat.mean();
    point.tocc = tocc_stat.mean();
    point.rococo = rococo_stat.mean();
    return point;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"txns", "seeds", "window", "csv"});
    const size_t txns = static_cast<size_t>(cli.get_int("txns", 1000));
    const int seeds = static_cast<int>(cli.get_int("seeds", 50));

    std::printf("Figure 9: abort rate vs collision rate "
                "(1024 slots, 50%%R/50%%W, %d traces/point, %zu txns)\n\n",
                seeds, txns);

    std::unique_ptr<CsvWriter> csv;
    if (cli.has("csv")) {
        csv = std::make_unique<CsvWriter>(
            cli.get("csv", ""),
            std::vector<std::string>{"threads", "accesses", "collision",
                                     "tpl", "tocc", "rococo"});
    }

    for (int concurrency : {4, 16}) {
        std::printf("T = %d concurrent transactions\n", concurrency);
        Table table({"N", "collision", "2PL", "TOCC", "ROCoCo",
                     "ROCoCo vs 2PL", "ROCoCo vs TOCC"});
        for (unsigned accesses = 4; accesses <= 32; accesses += 4) {
            const Point p = measure(accesses, concurrency, txns, seeds);
            if (csv) {
                csv->write_row({std::to_string(concurrency),
                                std::to_string(accesses),
                                std::to_string(p.collision),
                                std::to_string(p.tpl),
                                std::to_string(p.tocc),
                                std::to_string(p.rococo)});
            }
            auto reduction = [](double base, double ours) {
                return base > 0 ? (base - ours) / base * 100.0 : 0.0;
            };
            table.row()
                .num(static_cast<int>(accesses))
                .num(p.collision, 3)
                .num(p.tpl, 4)
                .num(p.tocc, 4)
                .num(p.rococo, 4)
                .cell(std::to_string(
                          static_cast<int>(reduction(p.tpl, p.rococo))) +
                      "%")
                .cell(std::to_string(
                          static_cast<int>(reduction(p.tocc, p.rococo))) +
                      "%");
        }
        table.print();
        std::printf("\n");
    }
    return 0;
}
