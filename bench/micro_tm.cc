/// google-benchmark micro-benchmarks of the TM runtimes' primitive
/// operations (single-threaded): transactional read, write and commit
/// costs per runtime. These are the measured counterparts of the
/// simulator's cost-model constants (src/sim/cost_model.cc) — absolute
/// values differ from the paper's Xeon, but the *ratios* between
/// runtimes (TinySTM's per-access metadata vs ROCoCoTM's signatures vs
/// raw hardware access) are what the model encodes.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>

#include "baselines/global_lock_tm.h"
#include "baselines/htm_tsx.h"
#include "baselines/sequential_tm.h"
#include "baselines/tinystm_lsa.h"
#include "obs/telemetry.h"
#include "tm/rococo_tm.h"

using namespace rococo;

namespace {

std::unique_ptr<tm::TmRuntime>
make_runtime(int which)
{
    switch (which) {
      case 0: return std::make_unique<baselines::SequentialTm>();
      case 1: return std::make_unique<baselines::GlobalLockTm>();
      case 2: return std::make_unique<baselines::TinyStmLsa>();
      case 3: return std::make_unique<baselines::HtmTsxSim>();
      default: return std::make_unique<tm::RococoTm>();
    }
}

const char* const kNames[] = {"Sequential", "GlobalLock", "TinySTM",
                              "HTM-TSX", "ROCoCoTM"};

void
BM_ReadOnlyTxn(benchmark::State& state)
{
    auto rt = make_runtime(static_cast<int>(state.range(0)));
    tm::TmArray<int64_t> data(256);
    rt->thread_init(0);
    const size_t reads = static_cast<size_t>(state.range(1));
    size_t cursor = 0;
    for (auto _ : state) {
        rt->execute([&](tm::Tx& tx) {
            int64_t sum = 0;
            for (size_t i = 0; i < reads; ++i) {
                sum += data.get(tx, (cursor + i) % 256);
            }
            benchmark::DoNotOptimize(sum);
        });
        ++cursor;
    }
    rt->thread_fini();
    state.SetLabel(kNames[state.range(0)]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadOnlyTxn)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {8}})
    ->ArgNames({"runtime", "reads"});

void
BM_ReadWriteTxn(benchmark::State& state)
{
    auto rt = make_runtime(static_cast<int>(state.range(0)));
    tm::TmArray<int64_t> data(256);
    rt->thread_init(0);
    size_t cursor = 0;
    for (auto _ : state) {
        rt->execute([&](tm::Tx& tx) {
            for (size_t i = 0; i < 4; ++i) {
                const size_t idx = (cursor * 4 + i) % 256;
                data.set(tx, idx, data.get(tx, idx) + 1);
            }
        });
        ++cursor;
    }
    rt->thread_fini();
    state.SetLabel(kNames[state.range(0)]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadWriteTxn)
    ->ArgsProduct({{0, 1, 2, 3, 4}})
    ->ArgNames({"runtime"});

} // namespace

// Custom main: google-benchmark rejects flags it does not know, so
// --telemetry-out=FILE is peeled off before Initialize. When given, the
// whole benchmark run records spans + metrics and writes a combined
// Chrome-trace/metrics JSON on exit (see src/obs/telemetry.h).
int
main(int argc, char** argv)
{
    std::string telemetry_out;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        constexpr const char* kFlag = "--telemetry-out=";
        if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
            telemetry_out = argv[i] + std::strlen(kFlag);
        } else {
            argv[kept++] = argv[i];
        }
    }
    argc = kept;

    obs::TelemetrySession telemetry(telemetry_out);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return telemetry.finish() ? 0 : 1;
}
