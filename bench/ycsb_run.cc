/// YCSB-style workload driver for the transactional KV layer
/// (src/kv, docs/KV.md): races the OCC store (KvStore over
/// tm::RococoTm) against the conservative 2PL baseline (KvStore2pl)
/// under identical traffic — same seeds, same key space, same mix —
/// and reports throughput, per-op latency histograms and transaction
/// outcomes per engine. scripts/bench_summary.py --ycsb-csv distills
/// the --csv output into the committed BENCH_ycsb.json and enforces
/// the OCC-beats-2PL canary on the read-heavy mix.
///
/// Workload mixes follow the YCSB letters — a = 50/50 read/update,
/// b = 95/5, c = 100/0 — with --rmw-pct / --scan-pct carving multi-key
/// transaction shares (txn-keys keys each) out of the point-op shares:
/// rmw replaces updates first, scan replaces reads. Key choice is
/// uniform or Zipf(theta) through the same common/zipf.h sampler the
/// svc loadgen uses; keys are the classic "user<N>" strings.
///
/// Two modes:
///
///   * In-process (default): T worker threads per engine over one
///     store, preceded by a load phase that populates every key. The
///     kv.* metric invariant (sum of kv.ops.* == kv.txn.commits) is
///     asserted after each engine run — any violation exits 1.
///
///   * --service: the millions-of-users shape. The parent hosts one
///     sharded svc::Server (--shards, default 2) and forks --clients
///     (default 4) genuine client *processes*, each pumping KV-shaped
///     validation RPCs whose read/write sets are the slot-derived wire
///     addresses of the hashed key space (KeyMapper::meta_addr/
///     value_addr of the key's home slot) — so `svcctl top` sees real
///     KV conflict addresses and scripts/resolve_topk.py can join them
///     back to string keys via --key-map-out. The server-side
///     accounting ledger (svc.requests vs. answers) is cross-checked
///     on exit; an imbalance exits 1. --stale-snapshots=1 sends
///     snapshot_cid=0 so every window overlap aborts — the conflict
///     storm the forensics e2e test feeds to `svcctl top`.
///
/// --key-map-out=FILE dumps the key→slot/address dictionary: resolved
/// occupied slots in in-process mode (after the first OCC run), home
/// slots in service mode (where no table exists — requests carry home
/// addresses). --telemetry-out / --prom-out capture the first engine
/// run's registry (kv.* + tm.*) as a telemetry envelope / Prometheus
/// textfile; both narrow the run to its first workload/zipf cell.
/// --slo-p99-us=X checks every op's p99 against an SLO and exits 1 on
/// breach.
///
/// Usage:
///   ycsb_run [--workload=b | a,b,c] [--engine=both|occ|2pl]
///            [--threads=4] [--ops=100000] [--keys=8192]
///            [--capacity=65536] [--zipf=0.99 | 0,0.99] [--txn-keys=4]
///            [--rmw-pct=0] [--scan-pct=0] [--seed=42] [--csv=FILE]
///            [--slo-p99-us=X] [--telemetry-out=FILE] [--prom-out=FILE]
///            [--key-map-out=FILE]
///   ycsb_run --service [--clients=4] [--shards=2] [--requests=20000]
///            [--outstanding=16] [--stale-snapshots=0] [--socket=PATH]
///            [workload/key flags as above]
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/barrier.h"
#include "common/cli.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/zipf.h"
#include "kv/kv_2pl.h"
#include "kv/kv_store.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "svc/client.h"
#include "svc/server.h"

namespace rococo {
namespace {

using kv::kMaxTxnKeys;
using kv::kOpCount;
using kv::kOpNames;

/// Operation mix in percent (sums to 100).
struct Mix
{
    unsigned read = 0;
    unsigned update = 0;
    unsigned rmw = 0;
    unsigned scan = 0;
};

Mix
mix_for(char workload)
{
    switch (workload) {
      case 'a': return {50, 50, 0, 0};
      case 'b': return {95, 5, 0, 0};
      case 'c': return {100, 0, 0, 0};
      default:
        std::fprintf(stderr,
                     "ycsb_run: unknown workload '%c' (expected a|b|c)\n",
                     workload);
        std::exit(2);
    }
}

/// Carve the multi-key shares out of the point-op shares: rmw replaces
/// updates first (both write), scan replaces reads.
void
carve_mix(Mix& mix, unsigned rmw_pct, unsigned scan_pct)
{
    unsigned take = std::min(mix.update, rmw_pct);
    mix.update -= take;
    mix.rmw += take;
    rmw_pct -= take;
    take = std::min(mix.read, rmw_pct);
    mix.read -= take;
    mix.rmw += take;
    take = std::min(mix.read, scan_pct);
    mix.read -= take;
    mix.scan += take;
}

constexpr size_t kKeyBufLen = 24;

size_t
format_key(uint64_t k, char* buf)
{
    return static_cast<size_t>(
        std::snprintf(buf, kKeyBufLen, "user%" PRIu64, k));
}

struct RunConfig
{
    char workload = 'b';
    Mix mix;
    double zipf = 0.99; ///< 0 = uniform
    unsigned threads = 4;
    uint64_t ops = 100000; ///< total per engine
    uint64_t keys = 8192;
    size_t capacity = size_t{1} << 16;
    unsigned txn_keys = 4; ///< fan-in of rmw/scan transactions
    uint64_t seed = 42;
};

/// One op family's measured-phase latency summary.
struct OpStat
{
    uint64_t count = 0;
    uint64_t sum_ns = 0;
    uint64_t p50_ns = 0;
    uint64_t p95_ns = 0;
    uint64_t p99_ns = 0;
};

struct EngineRow
{
    char workload = '?';
    std::string engine;
    double zipf = 0;
    unsigned threads = 0;
    uint64_t keys = 0;
    size_t capacity = 0;
    uint64_t ops = 0;
    double elapsed_ms = 0;
    double kops_s = 0;
    uint64_t commits = 0; ///< measured phase (load phase excluded)
    uint64_t aborts = 0;
    uint64_t retries = 0;
    uint64_t collisions = 0;
    double abort_rate = 0; ///< aborts / (commits + aborts)
    OpStat op[kOpCount];
};

/// Per-thread measured-phase stats; the driver's own histograms so the
/// load phase never pollutes the reported latency (the store's
/// kv.latency.* histograms cover its whole lifetime, load included).
struct ThreadStats
{
    uint64_t done[kOpCount] = {};
    obs::LatencyHistogram hist[kOpCount];
};

void
run_worker(kv::KvInterface& store, const RunConfig& cfg,
           const ZipfSampler* zipf, unsigned tid, uint64_t ops,
           Barrier& barrier, ThreadStats& stats)
{
    store.thread_init(tid);
    Xoshiro256 rng(cfg.seed + 0x9e3779b97f4a7c15ULL * (tid + 1));
    char bufs[kMaxTxnKeys][kKeyBufLen];
    std::string_view keys[kMaxTxnKeys];
    kv::RmwEntry entries[kMaxTxnKeys];
    uint64_t ids[kMaxTxnKeys];
    // The rmw body: transactional counter bump, inserting absent keys.
    auto increment = [](std::span<kv::RmwEntry> view) {
        for (kv::RmwEntry& entry : view) {
            entry.value = entry.found ? entry.value + 1 : 1;
            entry.write = true;
        }
    };
    barrier.arrive_and_wait();
    for (uint64_t i = 0; i < ops; ++i) {
        const unsigned roll = static_cast<unsigned>(rng.below(100));
        kv::Op op;
        size_t fan = 1;
        if (roll < cfg.mix.read) {
            op = kv::kOpGet;
        } else if (roll < cfg.mix.read + cfg.mix.update) {
            op = kv::kOpPut;
        } else if (roll <
                   cfg.mix.read + cfg.mix.update + cfg.mix.rmw) {
            op = kv::kOpRmw;
            fan = cfg.txn_keys;
        } else {
            op = kv::kOpScan;
            fan = cfg.txn_keys;
        }
        for (size_t j = 0; j < fan; ++j) {
            uint64_t k = zipf ? zipf->draw(rng) : rng.below(cfg.keys);
            // rmw keys must be distinct; walk off duplicates (the key
            // space is larger than the fan-in, so this terminates).
            for (size_t d = 0; d < j;) {
                if (ids[d] == k) {
                    k = (k + 1) % cfg.keys;
                    d = 0;
                } else {
                    ++d;
                }
            }
            ids[j] = k;
            keys[j] = {bufs[j], format_key(k, bufs[j])};
        }
        const uint64_t t0 = obs::now_ns();
        switch (op) {
          case kv::kOpGet: {
            uint64_t value;
            store.get(keys[0], value);
            break;
          }
          case kv::kOpPut:
            store.put(keys[0], (uint64_t{tid} << 48) | i);
            break;
          case kv::kOpScan:
            store.scan({keys, fan}, {entries, fan});
            break;
          default:
            store.rmw({keys, fan}, increment);
            break;
        }
        stats.hist[op].record(obs::now_ns() - t0);
        ++stats.done[op];
    }
    store.thread_fini();
}

EngineRow
run_engine(kv::KvInterface& store, const std::string& engine,
           const RunConfig& cfg, const ZipfSampler* zipf)
{
    // Load phase: populate the whole key space so reads mostly hit.
    store.thread_init(0);
    char buf[kKeyBufLen];
    for (uint64_t k = 0; k < cfg.keys; ++k) {
        const std::string_view key{buf, format_key(k, buf)};
        if (store.put(key, k) != kv::KvStatus::kOk) {
            std::fprintf(stderr,
                         "ycsb_run: load phase out of space at key "
                         "%" PRIu64 " (capacity %zu; raise --capacity "
                         "above ~1.5x --keys)\n",
                         k, cfg.capacity);
            std::exit(2);
        }
    }
    store.thread_fini();

    const obs::Registry& metrics = store.metrics();
    const uint64_t commits0 = metrics.get("kv.txn.commits");
    const uint64_t aborts0 = metrics.get("kv.txn.aborts");
    const uint64_t retries0 = metrics.get("kv.txn.retries");
    const uint64_t collisions0 = metrics.get("kv.key_collisions");

    std::vector<ThreadStats> stats(cfg.threads);
    Barrier barrier(cfg.threads + 1);
    const uint64_t per_thread =
        std::max<uint64_t>(1, cfg.ops / cfg.threads);
    std::vector<std::thread> workers;
    workers.reserve(cfg.threads);
    for (unsigned t = 0; t < cfg.threads; ++t) {
        workers.emplace_back([&, t] {
            run_worker(store, cfg, zipf, t, per_thread, barrier,
                       stats[t]);
        });
    }
    barrier.arrive_and_wait();
    const uint64_t t0 = obs::now_ns();
    for (std::thread& worker : workers) worker.join();
    const uint64_t elapsed = obs::now_ns() - t0;

    // The kv metric invariant: every operation is exactly one
    // committed transaction. Checked over the store's full lifetime
    // (load + measured phase); a violation is an accounting bug.
    uint64_t op_total = 0;
    for (int op = 0; op < kOpCount; ++op) {
        op_total += metrics.get(std::string("kv.ops.") + kOpNames[op]);
    }
    if (op_total != metrics.get("kv.txn.commits")) {
        std::fprintf(stderr,
                     "ycsb_run: kv accounting violation (%s): "
                     "sum(kv.ops.*) = %" PRIu64 " but kv.txn.commits = "
                     "%" PRIu64 "\n",
                     engine.c_str(), op_total,
                     metrics.get("kv.txn.commits"));
        std::exit(1);
    }

    EngineRow row;
    row.workload = cfg.workload;
    row.engine = engine;
    row.zipf = cfg.zipf;
    row.threads = cfg.threads;
    row.keys = cfg.keys;
    row.capacity = cfg.capacity;
    row.ops = per_thread * cfg.threads;
    row.elapsed_ms = double(elapsed) / 1e6;
    row.kops_s = double(row.ops) / (double(elapsed) / 1e9) / 1e3;
    row.commits = metrics.get("kv.txn.commits") - commits0;
    row.aborts = metrics.get("kv.txn.aborts") - aborts0;
    row.retries = metrics.get("kv.txn.retries") - retries0;
    row.collisions = metrics.get("kv.key_collisions") - collisions0;
    const double attempts = double(row.commits + row.aborts);
    row.abort_rate = attempts > 0 ? double(row.aborts) / attempts : 0;

    for (int op = 0; op < kOpCount; ++op) {
        OpStat& stat = row.op[op];
        std::vector<uint64_t> p50s;
        for (const ThreadStats& ts : stats) {
            const obs::LatencyHistogram& h = ts.hist[op];
            if (h.count() == 0) continue;
            stat.count += h.count();
            stat.sum_ns += static_cast<uint64_t>(
                h.mean() * double(h.count()) + 0.5);
            p50s.push_back(h.quantile(0.50));
            // Tails aggregate as the worst thread's tail.
            stat.p95_ns = std::max(stat.p95_ns, h.quantile(0.95));
            stat.p99_ns = std::max(stat.p99_ns, h.quantile(0.99));
        }
        std::sort(p50s.begin(), p50s.end());
        stat.p50_ns = p50s.empty() ? 0 : p50s[p50s.size() / 2];
    }
    return row;
}

/// The key→slot/wire-address dictionary resolve_topk.py joins against.
template <typename SlotOf>
bool
write_key_map(const std::string& path, uint64_t keys, size_t capacity,
              const char* mode, SlotOf&& slot_of)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f,
                 "{\"capacity\": %zu, \"probe_window\": %zu, "
                 "\"mode\": \"%s\",\n \"entries\": [",
                 capacity, kv::KeyMapper::kMaxProbe, mode);
    char buf[kKeyBufLen];
    bool first = true;
    for (uint64_t k = 0; k < keys; ++k) {
        const size_t len = format_key(k, buf);
        const size_t slot = slot_of(std::string_view{buf, len});
        if (slot == kv::KeyMapper::kNpos) continue;
        std::fprintf(f,
                     "%s\n  {\"key\": \"%.*s\", \"slot\": %zu, "
                     "\"meta_addr\": %" PRIu64 ", \"value_addr\": "
                     "%" PRIu64 "}",
                     first ? "" : ",", static_cast<int>(len), buf, slot,
                     kv::KeyMapper::meta_addr(slot),
                     kv::KeyMapper::value_addr(slot));
        first = false;
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return true;
}

// --------------------------------------------------------------------
// --service mode: forked client processes against one sharded server.

struct SvcRunConfig
{
    std::string socket_path;
    size_t clients = 4;
    uint32_t shards = 2;
    uint64_t requests = 20000; ///< per client
    size_t outstanding = 16;
    bool stale = false; ///< snapshot_cid = 0: force conflict aborts
    RunConfig run;
};

struct SvcClientReport
{
    uint64_t completed = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t timeouts = 0;
    uint64_t rejected = 0;
    uint64_t p50_ns = 0;
    uint64_t p95_ns = 0;
    uint64_t p99_ns = 0;
};

/// Child body: KV-shaped validation RPCs. Read/write sets carry the
/// slot-derived wire addresses of each key's home slot — the same
/// addresses --key-map-out records, so conflict forensics joins back
/// to string keys.
SvcClientReport
run_svc_client(const SvcRunConfig& cfg, unsigned seed)
{
    svc::ClientConfig client_config;
    client_config.socket_path = cfg.socket_path;
    svc::ValidationClient client(client_config);
    SvcClientReport report;
    if (!client.connected()) return report;

    kv::KeyMapper mapper(cfg.run.capacity);
    Xoshiro256 rng(seed);
    const std::unique_ptr<ZipfSampler> zipf =
        cfg.run.zipf > 0
            ? std::make_unique<ZipfSampler>(cfg.run.keys, cfg.run.zipf)
            : nullptr;
    obs::LatencyHistogram latency;
    char buf[kKeyBufLen];
    auto home_of = [&](uint64_t k) {
        const size_t len = format_key(k, buf);
        return mapper.map(std::string_view{buf, len}).home;
    };
    auto draw = [&] {
        return zipf ? zipf->draw(rng) : rng.below(cfg.run.keys);
    };

    struct InFlight
    {
        std::future<core::ValidationResult> future;
        uint64_t sent_ns;
    };
    std::vector<InFlight> window;
    window.reserve(cfg.outstanding);
    auto account = [&](InFlight& flight) {
        const core::ValidationResult result = flight.future.get();
        latency.record(obs::now_ns() - flight.sent_ns);
        ++report.completed;
        switch (result.verdict) {
          case core::Verdict::kCommit: ++report.commits; break;
          case core::Verdict::kTimeout: ++report.timeouts; break;
          case core::Verdict::kRejected: ++report.rejected; break;
          default: ++report.aborts; break;
        }
    };

    const Mix& mix = cfg.run.mix;
    for (uint64_t i = 0; i < cfg.requests; ++i) {
        fpga::OffloadRequest request;
        const unsigned roll = static_cast<unsigned>(rng.below(100));
        if (roll < mix.read) {
            const size_t slot = home_of(draw());
            request.reads.push_back(kv::KeyMapper::meta_addr(slot));
            request.reads.push_back(kv::KeyMapper::value_addr(slot));
        } else if (roll < mix.read + mix.update) {
            const size_t slot = home_of(draw());
            request.reads.push_back(kv::KeyMapper::meta_addr(slot));
            request.writes.push_back(kv::KeyMapper::value_addr(slot));
        } else {
            const bool writes = roll < mix.read + mix.update + mix.rmw;
            for (unsigned j = 0; j < cfg.run.txn_keys; ++j) {
                const size_t slot = home_of(draw());
                request.reads.push_back(kv::KeyMapper::meta_addr(slot));
                request.reads.push_back(
                    kv::KeyMapper::value_addr(slot));
                if (writes) {
                    request.writes.push_back(
                        kv::KeyMapper::value_addr(slot));
                }
            }
        }
        // Current snapshot: conflicts come from genuine window
        // overlap. Stale (cid 0) turns every overlap into an abort —
        // the planted storm the forensics e2e feeds `svcctl top`.
        request.snapshot_cid = cfg.stale ? 0 : ~uint64_t{0} >> 1;
        window.push_back({client.submit(std::move(request)),
                          obs::now_ns()});
        if (window.size() >= cfg.outstanding) {
            account(window.front());
            window.erase(window.begin());
        }
    }
    for (InFlight& flight : window) account(flight);
    client.stop();

    report.p50_ns = latency.quantile(0.50);
    report.p95_ns = latency.quantile(0.95);
    report.p99_ns = latency.quantile(0.99);
    return report;
}

int
run_service(const SvcRunConfig& cfg)
{
    svc::ServerConfig server_config;
    server_config.socket_path = cfg.socket_path;
    server_config.shards = cfg.shards;
    svc::Server server(server_config);
    if (!server.start()) {
        std::fprintf(stderr, "ycsb_run: cannot bind %s\n",
                     cfg.socket_path.c_str());
        return 1;
    }

    std::vector<pid_t> pids;
    std::vector<int> pipes;
    const uint64_t start_ns = obs::now_ns();
    for (size_t c = 0; c < cfg.clients; ++c) {
        int fds[2];
        if (pipe(fds) != 0) return 1;
        const pid_t pid = fork();
        if (pid == 0) {
            close(fds[0]);
            const SvcClientReport report = run_svc_client(
                cfg, static_cast<unsigned>(cfg.run.seed + 1000 + c));
            const ssize_t n = write(fds[1], &report, sizeof(report));
            _exit(n == sizeof(report) ? 0 : 1);
        }
        close(fds[1]);
        pids.push_back(pid);
        pipes.push_back(fds[0]);
    }

    SvcClientReport total;
    std::vector<uint64_t> p50s;
    for (size_t c = 0; c < cfg.clients; ++c) {
        SvcClientReport report{};
        const ssize_t n = read(pipes[c], &report, sizeof(report));
        if (n != sizeof(report)) report = {};
        close(pipes[c]);
        int status = 0;
        waitpid(pids[c], &status, 0);
        total.completed += report.completed;
        total.commits += report.commits;
        total.aborts += report.aborts;
        total.timeouts += report.timeouts;
        total.rejected += report.rejected;
        p50s.push_back(report.p50_ns);
        total.p95_ns = std::max(total.p95_ns, report.p95_ns);
        total.p99_ns = std::max(total.p99_ns, report.p99_ns);
    }
    const uint64_t elapsed = obs::now_ns() - start_ns;
    server.stop();

    // Accounting cross-check: every well-formed request answered
    // exactly once, same ledger the svc tests and loadgen enforce.
    const CounterBag stats = server.stats();
    const uint64_t answered = stats.get("svc.verdict.commit") +
                              stats.get("svc.verdict.abort-cycle") +
                              stats.get("svc.verdict.window-overflow") +
                              stats.get("svc.timeout") +
                              stats.get("svc.rejected");
    if (answered != stats.get("svc.requests")) {
        std::fprintf(stderr,
                     "ycsb_run: svc accounting mismatch: %" PRIu64
                     " answered vs %" PRIu64 " requests\n",
                     answered, stats.get("svc.requests"));
        return 1;
    }

    std::sort(p50s.begin(), p50s.end());
    const double done = double(std::max<uint64_t>(total.completed, 1));
    Table table({"workload", "clients", "shards", "zipf", "kreq/s",
                 "p50_us", "p95_us", "p99_us", "commit%", "abort%",
                 "elapsed_ms"});
    table.row()
        .cell(std::string(1, cfg.run.workload))
        .num(static_cast<uint64_t>(cfg.clients))
        .num(static_cast<uint64_t>(cfg.shards))
        .num(cfg.run.zipf, 2)
        .num(double(total.completed) / (double(elapsed) / 1e9) / 1e3, 1)
        .num(double(p50s.empty() ? 0 : p50s[p50s.size() / 2]) / 1e3, 1)
        .num(double(total.p95_ns) / 1e3, 1)
        .num(double(total.p99_ns) / 1e3, 1)
        .num(100.0 * double(total.commits) / done, 1)
        .num(100.0 * double(total.aborts) / done, 1)
        .num(double(elapsed) / 1e6, 1);
    table.print();
    return 0;
}

} // namespace
} // namespace rococo

int
main(int argc, char** argv)
{
    using namespace rococo;

    Cli cli(argc, argv,
            {"workload", "engine", "threads", "ops", "keys", "capacity",
             "zipf", "txn-keys", "rmw-pct", "scan-pct", "seed", "csv",
             "slo-p99-us", "telemetry-out", "prom-out", "key-map-out",
             "service", "clients", "shards", "requests", "outstanding",
             "stale-snapshots", "socket"});

    RunConfig base;
    base.threads = static_cast<unsigned>(cli.get_int("threads", 4));
    base.ops = static_cast<uint64_t>(cli.get_int("ops", 100000));
    base.keys =
        std::max<uint64_t>(kMaxTxnKeys + 1,
                           static_cast<uint64_t>(
                               cli.get_int("keys", 8192)));
    base.capacity =
        static_cast<size_t>(cli.get_int("capacity", 1 << 16));
    base.txn_keys = static_cast<unsigned>(std::clamp<int64_t>(
        cli.get_int("txn-keys", 4), 1, kMaxTxnKeys));
    base.seed = static_cast<uint64_t>(cli.get_int("seed", 42));
    const unsigned rmw_pct = static_cast<unsigned>(
        std::clamp<int64_t>(cli.get_int("rmw-pct", 0), 0, 100));
    const unsigned scan_pct = static_cast<unsigned>(
        std::clamp<int64_t>(cli.get_int("scan-pct", 0), 0, 100));

    // --workload / --zipf accept comma lists; the row loop is their
    // cross product per engine.
    std::vector<char> workloads;
    for (const char c : cli.get("workload", "b")) {
        if (c == ',' || c == ' ') continue;
        workloads.push_back(static_cast<char>(std::tolower(c)));
        mix_for(workloads.back()); // validate early
    }
    std::vector<double> zipfs;
    {
        const std::string spec = cli.get("zipf", "0.99");
        size_t pos = 0;
        while (pos < spec.size()) {
            size_t end = spec.find(',', pos);
            if (end == std::string::npos) end = spec.size();
            zipfs.push_back(std::atof(spec.substr(pos, end - pos).c_str()));
            pos = end + 1;
        }
        if (zipfs.empty()) zipfs.push_back(0.0);
    }

    if (cli.get_bool("service", false)) {
        SvcRunConfig svc_cfg;
        svc_cfg.socket_path =
            cli.get("socket", "/tmp/rococo_ycsb_" +
                                  std::to_string(getpid()) + ".sock");
        svc_cfg.clients = static_cast<size_t>(
            std::max<int64_t>(1, cli.get_int("clients", 4)));
        svc_cfg.shards = static_cast<uint32_t>(
            std::max<int64_t>(1, cli.get_int("shards", 2)));
        svc_cfg.requests = static_cast<uint64_t>(
            std::max<int64_t>(1, cli.get_int("requests", 20000)));
        svc_cfg.outstanding = static_cast<size_t>(
            std::max<int64_t>(1, cli.get_int("outstanding", 16)));
        svc_cfg.stale = cli.get_bool("stale-snapshots", false);
        svc_cfg.run = base;
        svc_cfg.run.workload = workloads.front();
        svc_cfg.run.mix = mix_for(svc_cfg.run.workload);
        carve_mix(svc_cfg.run.mix, rmw_pct, scan_pct);
        svc_cfg.run.zipf = zipfs.front();

        const std::string key_map_out = cli.get("key-map-out", "");
        if (!key_map_out.empty()) {
            // No table exists service-side: requests carry home-slot
            // addresses, so that is what the dictionary records.
            kv::KeyMapper mapper(svc_cfg.run.capacity);
            if (!write_key_map(key_map_out, svc_cfg.run.keys,
                               mapper.capacity(), "home",
                               [&](std::string_view key) {
                                   return mapper.map(key).home;
                               })) {
                std::fprintf(stderr, "ycsb_run: cannot write %s\n",
                             key_map_out.c_str());
                return 1;
            }
        }
        return run_service(svc_cfg);
    }

    const std::string engine_spec = cli.get("engine", "both");
    std::vector<std::string> engines;
    if (engine_spec == "both") {
        engines = {"occ", "2pl"};
    } else if (engine_spec == "occ" || engine_spec == "2pl") {
        engines = {engine_spec};
    } else {
        std::fprintf(stderr,
                     "ycsb_run: unknown engine '%s' (occ|2pl|both)\n",
                     engine_spec.c_str());
        return 2;
    }

    const std::string telemetry_out = cli.get("telemetry-out", "");
    const std::string prom_out = cli.get("prom-out", "");
    const std::string key_map_out = cli.get("key-map-out", "");
    const double slo_p99_us = cli.get_double("slo-p99-us", 0.0);
    if (!telemetry_out.empty() || !prom_out.empty()) {
        // A capture wants one clean measured region, not a sweep.
        workloads.resize(1);
        zipfs.resize(1);
    }

    Table table({"workload", "engine", "zipf", "threads", "kops/s",
                 "abort%", "retries", "collisions", "get_p99_us",
                 "put_p99_us", "rmw_p99_us", "scan_p99_us",
                 "elapsed_ms"});
    std::vector<EngineRow> rows;
    bool first_run = true;
    bool key_map_written = false;
    for (const char workload : workloads) {
        for (const double zipf : zipfs) {
            RunConfig cfg = base;
            cfg.workload = workload;
            cfg.mix = mix_for(workload);
            carve_mix(cfg.mix, rmw_pct, scan_pct);
            cfg.zipf = zipf;
            const std::unique_ptr<ZipfSampler> sampler =
                zipf > 0 ? std::make_unique<ZipfSampler>(cfg.keys, zipf)
                         : nullptr;
            for (const std::string& engine : engines) {
                // Construct the session before the store so the
                // registry/tracer reset covers exactly this run.
                std::unique_ptr<obs::TelemetrySession> session;
                if (first_run && !telemetry_out.empty()) {
                    session = std::make_unique<obs::TelemetrySession>(
                        telemetry_out);
                }
                std::unique_ptr<kv::KvStore> occ;
                std::unique_ptr<kv::KvStore2pl> pessimistic;
                kv::KvInterface* store = nullptr;
                if (engine == "occ") {
                    kv::KvStoreConfig store_config;
                    store_config.capacity = cfg.capacity;
                    occ = std::make_unique<kv::KvStore>(store_config);
                    store = occ.get();
                } else {
                    kv::Kv2plConfig store_config;
                    store_config.capacity = cfg.capacity;
                    pessimistic = std::make_unique<kv::KvStore2pl>(
                        store_config);
                    store = pessimistic.get();
                }
                rows.push_back(
                    run_engine(*store, engine, cfg, sampler.get()));
                const EngineRow& row = rows.back();
                table.row()
                    .cell(std::string(1, row.workload))
                    .cell(row.engine)
                    .num(row.zipf, 2)
                    .num(static_cast<uint64_t>(row.threads))
                    .num(row.kops_s, 1)
                    .num(100.0 * row.abort_rate, 2)
                    .num(row.retries)
                    .num(row.collisions)
                    .num(double(row.op[kv::kOpGet].p99_ns) / 1e3, 1)
                    .num(double(row.op[kv::kOpPut].p99_ns) / 1e3, 1)
                    .num(double(row.op[kv::kOpRmw].p99_ns) / 1e3, 1)
                    .num(double(row.op[kv::kOpScan].p99_ns) / 1e3, 1)
                    .num(row.elapsed_ms, 1);

                if (first_run && !prom_out.empty()) {
                    obs::Registry prom;
                    prom.merge(store->metrics());
                    if (occ) prom.merge(occ->runtime().registry());
                    if (!prom.export_prom_file(prom_out)) {
                        std::fprintf(stderr,
                                     "ycsb_run: cannot write %s\n",
                                     prom_out.c_str());
                        return 1;
                    }
                }
                if (session) {
                    obs::Registry::global().merge(store->metrics());
                    if (occ) {
                        obs::Registry::global().merge(
                            occ->runtime().registry());
                    }
                    if (!session->finish()) {
                        std::fprintf(stderr,
                                     "ycsb_run: cannot write %s\n",
                                     telemetry_out.c_str());
                        return 1;
                    }
                }
                if (!key_map_written && !key_map_out.empty() && occ) {
                    if (!write_key_map(
                            key_map_out, cfg.keys,
                            occ->mapper().capacity(), "resolved",
                            [&](std::string_view key) {
                                return occ->resolve_slot(key);
                            })) {
                        std::fprintf(stderr,
                                     "ycsb_run: cannot write %s\n",
                                     key_map_out.c_str());
                        return 1;
                    }
                    key_map_written = true;
                }
                first_run = false;
            }
        }
    }
    table.print();
    if (!key_map_out.empty() && !key_map_written) {
        std::fprintf(stderr,
                     "ycsb_run: --key-map-out needs an occ engine run "
                     "(slots are resolved from the OCC table)\n");
        return 1;
    }

    const std::string csv_path = cli.get("csv", "");
    if (!csv_path.empty()) {
        std::vector<std::string> header = {
            "workload",   "engine",  "zipf",       "threads",
            "keys",       "capacity", "ops",       "elapsed_ms",
            "kops_s",     "commits", "aborts",     "retries",
            "abort_rate", "key_collisions"};
        for (int op = 0; op < kOpCount; ++op) {
            const std::string prefix = kOpNames[op];
            header.push_back(prefix + "_count");
            header.push_back(prefix + "_mean_ns");
            header.push_back(prefix + "_p50_ns");
            header.push_back(prefix + "_p95_ns");
            header.push_back(prefix + "_p99_ns");
        }
        CsvWriter csv(csv_path, header);
        for (const EngineRow& row : rows) {
            std::vector<std::string> cells = {
                std::string(1, row.workload),
                row.engine,
                std::to_string(row.zipf),
                std::to_string(row.threads),
                std::to_string(row.keys),
                std::to_string(row.capacity),
                std::to_string(row.ops),
                std::to_string(row.elapsed_ms),
                std::to_string(row.kops_s),
                std::to_string(row.commits),
                std::to_string(row.aborts),
                std::to_string(row.retries),
                std::to_string(row.abort_rate),
                std::to_string(row.collisions)};
            for (int op = 0; op < kOpCount; ++op) {
                const OpStat& stat = row.op[op];
                cells.push_back(std::to_string(stat.count));
                cells.push_back(std::to_string(
                    stat.count ? stat.sum_ns / stat.count : 0));
                cells.push_back(std::to_string(stat.p50_ns));
                cells.push_back(std::to_string(stat.p95_ns));
                cells.push_back(std::to_string(stat.p99_ns));
            }
            csv.write_row(cells);
        }
    }

    // Per-op p99 SLO report: breach exits 1 so the flag doubles as a
    // latency gate in scripts.
    if (slo_p99_us > 0) {
        bool breached = false;
        for (const EngineRow& row : rows) {
            for (int op = 0; op < kOpCount; ++op) {
                const OpStat& stat = row.op[op];
                if (stat.count == 0) continue;
                const double p99_us = double(stat.p99_ns) / 1e3;
                const bool ok = p99_us <= slo_p99_us;
                std::printf("SLO p99<=%.1fus %c/%s/%s: p99=%.1fus %s\n",
                            slo_p99_us, row.workload,
                            row.engine.c_str(), kOpNames[op], p99_us,
                            ok ? "PASS" : "FAIL");
                breached = breached || !ok;
            }
        }
        if (breached) return 1;
    }
    return 0;
}
