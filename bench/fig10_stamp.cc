/// Reproduces Fig. 10: speedup (vs sequential) and abort rate on the
/// STAMP-like suite for TinySTM, the simulated TSX HTM and ROCoCoTM at
/// {1, 4, 8, 14, 28} threads, plus the FPGA-side abort rate for
/// ROCoCoTM (the dotted line) and the paper's geomean comparisons.
///
/// Methodology (DESIGN.md): each workload runs once, single-threaded,
/// under a recording runtime; the captured transaction trace is
/// replayed by the discrete-event simulator under each backend's cost
/// and concurrency-control model on a modelled 14-core/28-thread
/// HARP2 Xeon. bayes is excluded, as in the paper.
///
/// Expected shapes: TSX leads at 4 threads then collapses under its
/// abort avalanche (83.3% ceiling); ROCoCoTM trails TinySTM at 1
/// thread (offload latency) but wins at 14/28 threads (paper: 1.41x /
/// 1.55x geomean over TinySTM, 4.04x / 8.05x over TSX); ssca2 scales
/// poorly on ROCoCoTM; labyrinth/yada show its abort-rate advantage.
#include <cstdio>
#include <map>
#include <memory>

#include "common/cli.h"
#include "common/csv.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/telemetry.h"
#include "sim/stamp_sim.h"

using namespace rococo;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv,
            {"scale", "seed", "threads", "workloads", "contention",
             "csv", "telemetry-out"});
    // Metrics-only telemetry: the sim.* counters from every simulate()
    // call below land in one file (no spans — no real threads run).
    obs::TelemetrySession telemetry(cli.get("telemetry-out", ""));
    stamp::WorkloadParams params;
    params.scale = static_cast<unsigned>(cli.get_int("scale", 2));
    params.seed = static_cast<uint64_t>(cli.get_int("seed", 7));
    params.high_contention = cli.get("contention", "high") != "low";
    const std::vector<int> threads =
        cli.get_int_list("threads", {1, 4, 8, 14, 28});
    const std::vector<std::string> backends = {"tinystm", "tsx", "rococo"};

    std::vector<std::string> workloads = stamp::workload_names();
    if (cli.has("workloads")) {
        workloads.clear();
        // comma list
        std::string spec = cli.get("workloads", "");
        size_t pos = 0;
        while (pos < spec.size()) {
            size_t comma = spec.find(',', pos);
            if (comma == std::string::npos) comma = spec.size();
            workloads.push_back(spec.substr(pos, comma - pos));
            pos = comma + 1;
        }
    }

    std::printf("Figure 10: STAMP speedups and abort rates "
                "(trace-driven simulation, scale=%u)\n\n",
                params.scale);

    // speedups[backend][threads] per workload for the geomean summary.
    std::map<std::string, std::map<unsigned, std::vector<double>>> speedups;

    std::unique_ptr<CsvWriter> csv;
    if (cli.has("csv")) {
        csv = std::make_unique<CsvWriter>(
            cli.get("csv", ""),
            std::vector<std::string>{"workload", "backend", "threads",
                                     "speedup", "abort_rate",
                                     "fpga_abort_rate"});
    }

    for (const std::string& workload : workloads) {
        const stamp::SimTrace trace =
            sim::capture_workload_trace(workload, params);
        std::printf("%s: %zu txns, mean R/W set %.1f/%.1f, "
                    "%.0f%% read-only\n",
                    workload.c_str(), trace.txns.size(),
                    trace.mean_read_set(), trace.mean_write_set(),
                    trace.read_only_fraction() * 100.0);

        const auto rows =
            sim::simulate_grid(workload, trace, backends, threads);
        Table table({"backend", "threads", "speedup", "abort_rate",
                     "fpga_abort_rate"});
        for (const auto& row : rows) {
            table.row()
                .cell(row.backend)
                .num(static_cast<int>(row.threads))
                .num(row.speedup, 2)
                .num(row.abort_rate, 3)
                .cell(row.backend == "ROCoCoTM"
                          ? [&] {
                                char buf[32];
                                std::snprintf(buf, sizeof(buf), "%.3f",
                                              row.offload_abort_rate);
                                return std::string(buf);
                            }()
                          : std::string("-"));
            speedups[row.backend][row.threads].push_back(row.speedup);
            if (csv) {
                csv->write_row({row.workload, row.backend,
                                std::to_string(row.threads),
                                std::to_string(row.speedup),
                                std::to_string(row.abort_rate),
                                std::to_string(row.offload_abort_rate)});
            }
        }
        table.print();
        std::printf("\n");
    }

    std::printf("Geomean speedups over sequential\n");
    Table summary({"backend", "1", "4", "8", "14", "28"});
    for (const auto& [backend, by_threads] : speedups) {
        Table& row = summary.row();
        row.cell(backend);
        for (int t : threads) {
            auto it = by_threads.find(static_cast<unsigned>(t));
            row.num(it == by_threads.end() ? 0.0 : geomean(it->second), 2);
        }
    }
    summary.print();

    // The paper's headline ratios.
    auto ratio = [&](const char* a, const char* b, unsigned t) {
        const auto& sa = speedups[a][t];
        const auto& sb = speedups[b][t];
        if (sa.empty() || sb.empty()) return 0.0;
        return geomean(sa) / geomean(sb);
    };
    std::printf("\nROCoCoTM vs TinySTM: %.2fx @14t, %.2fx @28t "
                "(paper: 1.41x, 1.55x)\n",
                ratio("ROCoCoTM", "TinySTM", 14),
                ratio("ROCoCoTM", "TinySTM", 28));
    std::printf("ROCoCoTM vs TSX:     %.2fx @14t, %.2fx @28t "
                "(paper: 4.04x, 8.05x)\n",
                ratio("ROCoCoTM", "TSX", 14),
                ratio("ROCoCoTM", "TSX", 28));
    std::printf("TinySTM vs ROCoCoTM @1t: %.2fx (paper: 1.32x)\n",
                ratio("TinySTM", "ROCoCoTM", 1));
    return telemetry.finish() ? 0 : 1;
}
