/// Ablation of Fig. 6 (c) vs (d): centralized validation on an
/// exclusive core (each validation occupies the validator for its full
/// latency, serializing requests) vs the pipelined FPGA engine (a
/// request only occupies the address stream; latencies overlap).
///
/// Expected shape: at 1 thread the two are indistinguishable (no
/// queueing); as thread count grows, the exclusive validator becomes
/// the bottleneck — amortized validation latency explodes while the
/// pipelined engine's stays near the isolated round trip. This is the
/// paper's §6.4 argument that pipelining removes the centralized
/// validation bottleneck.
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "sim/sim_rococo.h"
#include "sim/stamp_sim.h"

using namespace rococo;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"scale", "seed", "workload"});
    stamp::WorkloadParams params;
    params.scale = static_cast<unsigned>(cli.get_int("scale", 2));
    params.seed = static_cast<uint64_t>(cli.get_int("seed", 7));
    // ssca2: the highest validation rate in the suite — worst case for
    // a centralized validator.
    const std::string workload = cli.get("workload", "ssca2");

    const stamp::SimTrace trace =
        sim::capture_workload_trace(workload, params);
    std::printf("Validation pipelining ablation on %s (%zu txns)\n\n",
                workload.c_str(), trace.txns.size());

    Table table({"threads", "pipelined s", "exclusive s",
                 "pipelined val us", "exclusive val us", "slowdown"});
    for (int threads : {1, 4, 8, 14, 28}) {
        sim::SimConfig config;
        config.threads = static_cast<unsigned>(threads);

        sim::RococoSimBackend pipelined(64, {}, /*pipelined=*/true);
        sim::RococoSimBackend exclusive(64, {}, /*pipelined=*/false);
        const auto rp = sim::simulate(trace, pipelined, config);
        const auto re = sim::simulate(trace, exclusive, config);

        table.row()
            .num(threads)
            .num(rp.seconds, 4)
            .num(re.seconds, 4)
            .num(pipelined.mean_offload_latency_ns() / 1000.0, 3)
            .num(exclusive.mean_offload_latency_ns() / 1000.0, 3)
            .num(rp.seconds > 0 ? re.seconds / rp.seconds : 0.0, 2);
    }
    table.print();
    std::printf("\nThe pipelined engine keeps amortized validation "
                "latency flat as concurrency grows; the exclusive-core "
                "validator queues up and becomes the bottleneck "
                "(Fig. 6 (c) vs (d), §6.4).\n");
    return 0;
}
