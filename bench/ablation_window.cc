/// Ablation of the sliding-window size W (§4.2, §5.1): abort rates of
/// ROCoCo on the micro-benchmark as W shrinks below / grows beyond the
/// concurrency level, split into cycle aborts (real conflicts) and
/// window-overflow aborts (snapshots falling off the window), plus the
/// hardware cost of each W from the resource model.
///
/// Expected shape: once W comfortably exceeds the number of concurrent
/// transactions (the paper picks W = 64 for at most 28 threads),
/// overflow aborts vanish and the abort rate converges to the
/// cycle-only floor; growing W further buys nothing but area.
#include <cstdio>

#include "cc/replay.h"
#include "cc/rococo_cc.h"
#include "cc/trace_generator.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "fpga/resource_model.h"

using namespace rococo;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"txns", "seeds", "accesses", "concurrency"});
    const size_t txns = static_cast<size_t>(cli.get_int("txns", 1000));
    const int seeds = static_cast<int>(cli.get_int("seeds", 20));
    const unsigned accesses =
        static_cast<unsigned>(cli.get_int("accesses", 16));
    const int concurrency =
        static_cast<int>(cli.get_int("concurrency", 16));

    std::printf("Sliding-window ablation (micro-benchmark: 1024 slots, "
                "N=%u, T=%d, %d seeds)\n\n",
                accesses, concurrency, seeds);

    Table table({"W", "abort rate", "cycle aborts", "overflow aborts",
                 "registers", "ALMs", "clock MHz"});
    for (size_t window : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        RunningStat rate;
        uint64_t cycles = 0, overflows = 0;
        for (int seed = 1; seed <= seeds; ++seed) {
            cc::UniformTraceParams params;
            params.locations = 1024;
            params.accesses = accesses;
            params.txns = txns;
            params.seed = static_cast<uint64_t>(seed);
            const cc::Trace trace = cc::generate_uniform_trace(params);
            cc::RococoCc rococo(window);
            rate.add(cc::replay(rococo, trace, concurrency).abort_rate());
            cycles += rococo.verdicts().get("abort-cycle");
            overflows += rococo.verdicts().get("window-overflow");
        }
        fpga::ResourceParams rp;
        rp.window = static_cast<unsigned>(window);
        const auto res = fpga::estimate_resources(rp);
        table.row()
            .num(static_cast<int>(window))
            .num(rate.mean(), 4)
            .num(cycles)
            .num(overflows)
            .num(res.registers)
            .num(res.alms)
            .num(res.clock_mhz, 0);
    }
    table.print();
    std::printf("\nW = 64 (the paper's choice for <= 28 threads) is the "
                "knee: overflow aborts are gone and larger windows only "
                "add area.\n");
    return 0;
}
