/// Ablation of the bloom-signature width m (§6.5): replay the
/// micro-benchmark through the *signature-based* validation engine
/// (Detector + Manager, exactly the FPGA data path) at m = 256 / 512 /
/// 1024 bits and compare against exact (infinite-precision)
/// classification. Signature false positives only add spurious edges,
/// so small signatures inflate the abort rate; the paper found 512
/// bits sufficient — 1024-bit signatures brought "no noteworthy
/// improvement" while costing clock frequency.
#include <cstdio>

#include "cc/replay.h"
#include "cc/rococo_cc.h"
#include "cc/trace_generator.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "cc/engine_cc.h"
#include "fpga/resource_model.h"
#include "fpga/validation_engine.h"

using namespace rococo;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"txns", "seeds", "accesses", "concurrency"});
    const size_t txns = static_cast<size_t>(cli.get_int("txns", 800));
    const int seeds = static_cast<int>(cli.get_int("seeds", 15));
    const unsigned accesses =
        static_cast<unsigned>(cli.get_int("accesses", 16));
    const int concurrency =
        static_cast<int>(cli.get_int("concurrency", 16));

    std::printf("Signature-width ablation (micro-benchmark: N=%u, T=%d, "
                "%d seeds). 'exact' uses precise address sets.\n\n",
                accesses, concurrency, seeds);

    Table table({"signature", "abort rate", "vs exact",
                 "clock MHz", "ALM util %"});

    // Exact baseline.
    RunningStat exact_rate;
    for (int seed = 1; seed <= seeds; ++seed) {
        cc::UniformTraceParams params;
        params.locations = 1024;
        params.accesses = accesses;
        params.txns = txns;
        params.seed = static_cast<uint64_t>(seed);
        const cc::Trace trace = cc::generate_uniform_trace(params);
        cc::RococoCc exact(64, /*strict_read_only=*/true);
        exact_rate.add(cc::replay(exact, trace, concurrency).abort_rate());
    }
    table.row()
        .cell("exact")
        .num(exact_rate.mean(), 4)
        .cell("-")
        .cell("-")
        .cell("-");

    for (unsigned m : {256u, 512u, 1024u}) {
        RunningStat rate;
        for (int seed = 1; seed <= seeds; ++seed) {
            cc::UniformTraceParams params;
            params.locations = 1024;
            params.accesses = accesses;
            params.txns = txns;
            params.seed = static_cast<uint64_t>(seed);
            const cc::Trace trace = cc::generate_uniform_trace(params);
            fpga::EngineConfig config;
            config.signature_bits = m;
            cc::EngineCc engine(config);
            rate.add(cc::replay(engine, trace, concurrency).abort_rate());
        }
        fpga::ResourceParams rp;
        rp.signature_bits = m;
        const auto res = fpga::estimate_resources(rp);
        char delta[32];
        std::snprintf(delta, sizeof(delta), "%+.4f",
                      rate.mean() - exact_rate.mean());
        table.row()
            .cell(std::to_string(m) + "-bit")
            .num(rate.mean(), 4)
            .cell(delta)
            .num(res.clock_mhz, 0)
            .num(res.alms_pct, 1);
    }
    table.print();
    std::printf("\n512-bit signatures already sit on the exact floor "
                "(the paper's §6.5 finding); 1024 bits only lower the "
                "clock.\n");
    return 0;
}
