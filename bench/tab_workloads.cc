/// Workload characterization table — the analogue of STAMP's Table 1
/// and the evidential basis for the Fig. 10 discussion (§6.3): which
/// workloads have long transactions, large read sets, high contention,
/// and big read-only fractions. Shapes to check against the paper's
/// narrative: ssca2 = huge count of tiny low-contention transactions;
/// labyrinth/yada = long transactions with real conflicts; genome and
/// intruder = large read-only fractions; kmeans = short transactions
/// on a hot set.
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "sim/stamp_sim.h"
#include "sim/trace_stats.h"

using namespace rococo;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"scale", "seed", "contention"});
    stamp::WorkloadParams params;
    params.scale = static_cast<unsigned>(cli.get_int("scale", 2));
    params.seed = static_cast<uint64_t>(cli.get_int("seed", 7));
    params.high_contention = cli.get("contention", "high") != "low";

    std::printf("Workload characterization (STAMP Table-1 analogue, "
                "scale=%u, %s contention inputs)\n\n",
                params.scale,
                params.high_contention ? "high" : "low");

    Table table({"workload", "txns", "ro %", "|R| mean/p95/max",
                 "|W| mean/p95/max", "pair conflict", "length",
                 "contention"});
    for (const std::string& workload : stamp::workload_names()) {
        const stamp::SimTrace trace =
            sim::capture_workload_trace(workload, params);
        const sim::TraceCharacterization c = sim::characterize(trace);
        char reads[48], writes[48];
        std::snprintf(reads, sizeof(reads), "%.1f / %llu / %llu",
                      c.reads.mean,
                      static_cast<unsigned long long>(c.reads.p95),
                      static_cast<unsigned long long>(c.reads.max));
        std::snprintf(writes, sizeof(writes), "%.1f / %llu / %llu",
                      c.writes.mean,
                      static_cast<unsigned long long>(c.writes.p95),
                      static_cast<unsigned long long>(c.writes.max));
        table.row()
            .cell(workload)
            .num(c.txns)
            .num(c.read_only_fraction * 100.0, 0)
            .cell(reads)
            .cell(writes)
            .num(c.pairwise_conflict, 4)
            .cell(c.length_class)
            .cell(c.contention_class);
    }
    table.print();
    return 0;
}
