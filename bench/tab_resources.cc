/// Reproduces the §6.5 resource-consumption report: FPGA resources of
/// the ROCoCoTM validation engine on the Arria 10 (10AX115), at the
/// paper's configuration and across window/signature sweeps (including
/// the 1024-bit-signature experiment the paper describes: feasible
/// under the resource budget but at a lower clock).
#include <cstdio>

#include "common/table.h"
#include "fpga/resource_model.h"

using namespace rococo;

int
main()
{
    std::printf("Resource consumption of the ROCoCoTM engine "
                "(first-order area model, calibrated at the paper's "
                "design point)\n\n");

    const fpga::ResourceEstimate paper = fpga::estimate_resources({});
    std::printf("Paper configuration (W=64, m=512, k=4):\n  %s\n",
                fpga::to_string(paper).c_str());
    std::printf("  (paper reports: 113485 (62.9%%) registers, 249442 "
                "(58.39%%) ALMs,\n   223 (14.7%%) DSPs, 2055802 (3.7%%) "
                "BRAM bits @ 200 MHz)\n\n");

    std::printf("Window sweep (m=512, k=4):\n");
    Table window_table({"W", "registers", "ALMs", "DSPs", "BRAM bits",
                        "clock MHz"});
    for (unsigned w : {16u, 32u, 64u, 128u, 256u}) {
        fpga::ResourceParams p;
        p.window = w;
        const auto e = fpga::estimate_resources(p);
        window_table.row()
            .num(static_cast<int>(w))
            .num(e.registers)
            .num(e.alms)
            .num(e.dsps)
            .num(e.bram_bits)
            .num(e.clock_mhz, 0);
    }
    window_table.print();

    std::printf("\nSignature sweep (W=64, k=4):\n");
    Table sig_table({"m", "registers", "ALMs", "DSPs", "BRAM bits",
                     "clock MHz", "ALM util %"});
    for (unsigned m : {256u, 512u, 1024u, 2048u}) {
        fpga::ResourceParams p;
        p.signature_bits = m;
        const auto e = fpga::estimate_resources(p);
        sig_table.row()
            .num(static_cast<int>(m))
            .num(e.registers)
            .num(e.alms)
            .num(e.dsps)
            .num(e.bram_bits)
            .num(e.clock_mhz, 0)
            .num(e.alms_pct, 1);
    }
    sig_table.print();
    std::printf("\n1024-bit signatures fit the device but cost clock "
                "frequency, matching §6.5's observation that widening "
                "the filter gave no net abort-rate improvement worth "
                "the slower pipeline.\n");
    return 0;
}
