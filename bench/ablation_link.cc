/// Ablation of the CPU-FPGA link latency (footnote 8): the paper
/// measures <600 ns round trips over HARP2's in-package CCI/QPI
/// channel and notes that "the de facto PCIe interconnect for ASIC
/// accelerators incur[s] a round-trip latency of over 1 us" — arguing
/// that in-package integration is what makes fine-grained TM offload
/// viable. This bench sweeps the round-trip latency from 100 ns to
/// 4 us on the STAMP traces and reports where ROCoCoTM stops beating
/// TinySTM.
///
/// Expected shape: the geomean advantage decays monotonically with
/// latency; short-transaction workloads (ssca2, intruder) fall off
/// first; somewhere between 1 and 2 us (PCIe territory) the geomean
/// crosses below TinySTM — reproducing the paper's platform argument.
#include <cstdio>

#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/sim_lsa.h"
#include "sim/sim_rococo.h"
#include "sim/stamp_sim.h"

using namespace rococo;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"scale", "seed", "threads"});
    stamp::WorkloadParams params;
    params.scale = static_cast<unsigned>(cli.get_int("scale", 2));
    params.seed = static_cast<uint64_t>(cli.get_int("seed", 7));
    const unsigned threads =
        static_cast<unsigned>(cli.get_int("threads", 14));

    std::printf("CPU-FPGA link-latency ablation (%u modelled threads).\n"
                "HARP2 CCI is ~600 ns round trip; PCIe accelerators are "
                ">1 us (footnote 8).\n\n",
                threads);

    // Capture all traces once.
    std::vector<std::pair<std::string, stamp::SimTrace>> traces;
    for (const std::string& workload : stamp::workload_names()) {
        traces.emplace_back(workload,
                            sim::capture_workload_trace(workload, params));
    }

    // TinySTM reference per workload.
    std::vector<double> tinystm_seconds;
    for (const auto& [name, trace] : traces) {
        sim::LsaSimBackend backend;
        sim::SimConfig config;
        config.threads = threads;
        tinystm_seconds.push_back(
            sim::simulate(trace, backend, config).seconds);
    }

    Table table({"round trip ns", "geomean vs TinySTM", "ssca2 ratio",
                 "labyrinth ratio", "mean validation us"});
    for (double round_trip : {100.0, 300.0, 600.0, 1000.0, 2000.0,
                              4000.0}) {
        fpga::LinkParams link;
        link.read_hit_ns = round_trip / 3.0;
        link.write_back_ns = round_trip * 2.0 / 3.0;

        std::vector<double> ratios;
        double ssca2_ratio = 0, labyrinth_ratio = 0;
        RunningStat validation_us;
        for (size_t w = 0; w < traces.size(); ++w) {
            sim::RococoSimBackend backend(64, link);
            sim::SimConfig config;
            config.threads = threads;
            const double seconds =
                sim::simulate(traces[w].second, backend, config).seconds;
            const double ratio =
                seconds > 0 ? tinystm_seconds[w] / seconds : 0;
            ratios.push_back(ratio);
            validation_us.add(backend.mean_offload_latency_ns() / 1000.0);
            if (traces[w].first == "ssca2") ssca2_ratio = ratio;
            if (traces[w].first == "labyrinth") labyrinth_ratio = ratio;
        }
        table.row()
            .num(round_trip, 0)
            .num(geomean(ratios), 2)
            .num(ssca2_ratio, 2)
            .num(labyrinth_ratio, 2)
            .num(validation_us.mean(), 2);
    }
    table.print();
    std::printf("\nAt HARP2's 600 ns the offload wins; at PCIe-class "
                "latencies the advantage evaporates for short "
                "transactions first — the paper's case for in-package "
                "CPU-FPGA integration.\n");
    return 0;
}
