/// Reproduces Fig. 11: amortized per-transaction validation overhead
/// (microseconds) for TinySTM and ROCoCoTM on the STAMP workloads.
///
/// TinySTM's commit-time validation walks every timestamped object in
/// the read set, so its overhead grows with read-set size (labyrinth's
/// huge read sets make it the worst case). ROCoCoTM's validation is a
/// pipelined offload: per-transaction overhead is the CCI round trip
/// plus pipeline latency plus queueing — bounded and insensitive to
/// read-set size. The paper's claim to check: ROCoCoTM stays below one
/// microsecond everywhere.
///
/// Two measurements are reported for ROCoCoTM:
///   * modelled: the discrete-event simulator's mean offload latency at
///     14 threads (link + pipeline occupancy + queueing);
///   * functional engine: actual wall-clock cost of the software
///     ValidationEngine processing the same requests (sanity check that
///     the functional model itself is cheap).
#include <chrono>
#include <cstdio>

#include "common/cli.h"
#include "common/table.h"
#include "fpga/validation_engine.h"
#include "obs/telemetry.h"
#include "sim/sim_rococo.h"
#include "sim/stamp_sim.h"

using namespace rococo;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"scale", "seed", "threads", "telemetry-out"});
    obs::TelemetrySession telemetry(cli.get("telemetry-out", ""));
    stamp::WorkloadParams params;
    params.scale = static_cast<unsigned>(cli.get_int("scale", 2));
    params.seed = static_cast<uint64_t>(cli.get_int("seed", 7));
    const unsigned threads =
        static_cast<unsigned>(cli.get_int("threads", 14));

    std::printf("Figure 11: amortized per-transaction validation "
                "overhead in microseconds (%u modelled threads)\n\n",
                threads);

    const sim::BackendCosts tinystm = sim::tinystm_costs();

    Table table({"workload", "mean |R| (writers)", "TinySTM us",
                 "ROCoCoTM us (model)", "ROCoCoTM us (engine)"});
    for (const std::string& workload : stamp::workload_names()) {
        const stamp::SimTrace trace =
            sim::capture_workload_trace(workload, params);

        // TinySTM: validate_per_read per read-set entry of every
        // writing transaction (read-only transactions skip validation
        // in the commit-time-locking configuration).
        double reads_sum = 0;
        uint64_t writers = 0;
        for (const auto& txn : trace.txns) {
            if (txn.read_only()) continue;
            reads_sum += static_cast<double>(txn.reads.size());
            ++writers;
        }
        const double mean_reads =
            writers ? reads_sum / static_cast<double>(writers) : 0;
        const double tinystm_us =
            mean_reads * tinystm.validate_per_read_ns / 1000.0;

        // ROCoCoTM modelled: mean offload latency from the simulator.
        sim::RococoSimBackend rococo;
        sim::SimConfig config;
        config.threads = threads;
        sim::simulate(trace, rococo, config);
        const double rococo_model_us =
            rococo.mean_offload_latency_ns() / 1000.0;

        // ROCoCoTM functional engine wall time per request.
        fpga::ValidationEngine engine;
        uint64_t requests = 0;
        const auto t0 = std::chrono::steady_clock::now();
        uint64_t snapshot = 0;
        for (const auto& txn : trace.txns) {
            if (txn.read_only()) continue;
            fpga::OffloadRequest request{txn.reads, txn.writes,
                                         engine.next_cid()};
            (void)snapshot;
            engine.process(request);
            ++requests;
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double engine_us =
            requests ? std::chrono::duration<double, std::micro>(t1 - t0)
                               .count() /
                           static_cast<double>(requests)
                     : 0;

        table.row()
            .cell(workload)
            .num(mean_reads, 1)
            .num(tinystm_us, 3)
            .num(rococo_model_us, 3)
            .num(engine_us, 3);
    }
    table.print();
    std::printf(
        "\nPaper check: ROCoCoTM's modelled validation overhead stays "
        "below ~1 us and is insensitive to read-set size, while "
        "TinySTM's grows linearly with |R| (vacation and yada carry "
        "the largest read sets in this scaled suite; the paper's "
        "worst case is labyrinth, whose full-size read sets reach "
        "thousands of entries). The 'engine' column is the wall-clock "
        "cost of the bit-accurate software engine on this machine — a "
        "functional sanity check, naturally slower than the modelled "
        "hardware.\n");
    return telemetry.finish() ? 0 : 1;
}
