/// Ablation of the sharded validation tier (src/shard): validation
/// throughput of the ShardRouter swept over the shard count S x the
/// cross-shard transaction fraction. This is the scaling axis the tier
/// exists for: every shard is an independent engine (its own window,
/// its own lock), so single-shard traffic validates in parallel across
/// engines, while cross-shard traffic pays the two-phase coordinator
/// (it occupies every touched shard for its whole reserve+commit, plus
/// the conservative CS1 no-forward-dependency rule — docs/SHARDING.md).
///
/// Methodology. Like the rest of the bench suite, the parallelism is
/// *modelled*, not scheduled: the host the suite must run on can be a
/// single core, where S engines cannot be observed running
/// concurrently by wall clock. The bench drives the router from one
/// thread, times every validation, and attributes the elapsed service
/// time to each shard the request occupied (all touched shards for a
/// cross-shard transaction — they hold their locks for the whole
/// coordinated pass). S engines run slices in parallel, so the modelled
/// makespan of the run is the *busiest single shard's* total service
/// time, and modelled throughput = requests / makespan. For S = 1 this
/// degenerates to exactly the measured serial throughput.
///
/// Expected shape: at a 0-1% cross fraction throughput rises with S
/// (near-ideal split of the busy time, minus hash imbalance); as the
/// cross fraction grows, each cross transaction bills its full latency
/// to several shards at once and the speedup flattens — by 50% cross
/// traffic sharding buys little. The committed numbers live in
/// BENCH_shard.json (scripts/bench_summary.py) and docs/SHARDING.md.
///
/// Usage: ablation_shards [--requests=40000] [--pool=256] [--seed=1]
///                        [--csv=PATH]
///   --requests is the total per sweep cell. --csv writes one header
///   row then one row per cell — the input scripts/bench_summary.py
///   distills.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "shard/router.h"

using namespace rococo;

namespace {

/// Per-shard address pools under an S-shard partitioner: pool[s] holds
/// @p per_shard addresses owned by shard s, so workloads can dial the
/// cross-shard fraction exactly instead of relying on hash luck.
std::vector<std::vector<uint64_t>>
build_pools(const shard::Partitioner& partitioner, size_t per_shard)
{
    std::vector<std::vector<uint64_t>> pools(partitioner.shards());
    size_t filled = 0;
    for (uint64_t address = 0; filled < pools.size(); ++address) {
        auto& pool = pools[partitioner.shard_of(address)];
        if (pool.size() >= per_shard) continue;
        pool.push_back(address);
        if (pool.size() == per_shard) ++filled;
    }
    return pools;
}

struct CellResult
{
    double serial_seconds = 0;  ///< sum of per-request service times
    double modeled_seconds = 0; ///< busiest shard's total service time
    uint64_t requests = 0;
    uint64_t commits = 0;
    uint64_t cross = 0;
    double imbalance = 0;
};

CellResult
run_cell(uint32_t shards, double cross_fraction, uint64_t requests,
         size_t pool_size, uint64_t seed)
{
    shard::ShardConfig config;
    config.shards = shards;
    shard::ShardRouter router(config);
    const auto pools = build_pools(router.partitioner(), pool_size);

    std::vector<uint64_t> busy_ns(shards, 0);
    std::vector<uint32_t> touched; // touched shards of this request
    Xoshiro256 rng(seed);
    for (uint64_t i = 0; i < requests; ++i) {
        fpga::OffloadRequest request;
        touched.clear();
        if (shards > 1 && rng.chance(cross_fraction)) {
            // Deliberately cross-shard: one read + one write on each
            // of two distinct shards (same total work as the
            // single-shard shape below).
            const uint32_t a = uint32_t(rng.below(shards));
            const uint32_t b =
                (a + 1 + uint32_t(rng.below(shards - 1))) % shards;
            for (uint32_t s : {a, b}) {
                request.reads.push_back(pools[s][rng.below(pool_size)]);
                request.writes.push_back(pools[s][rng.below(pool_size)]);
            }
            touched.assign({a, b});
        } else {
            // Single-shard: all accesses from one shard's pool.
            const uint32_t s = uint32_t(rng.below(shards));
            const auto& pool = pools[s];
            for (int r = 0; r < 2; ++r) {
                request.reads.push_back(pool[rng.below(pool_size)]);
            }
            for (int w = 0; w < 2; ++w) {
                request.writes.push_back(pool[rng.below(pool_size)]);
            }
            touched.assign({s});
        }
        request.snapshot_cid = router.global_commits();
        const auto start = std::chrono::steady_clock::now();
        (void)router.validate(std::move(request));
        const auto stop = std::chrono::steady_clock::now();
        const uint64_t ns = uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop -
                                                                 start)
                .count());
        // The request occupied every touched shard for its whole pass.
        for (uint32_t s : touched) busy_ns[s] += ns;
    }

    const CounterBag stats = router.stats();
    obs::Registry exported;
    router.export_metrics(exported);
    CellResult result;
    uint64_t total_ns = 0, max_ns = 0;
    for (uint64_t ns : busy_ns) {
        total_ns += ns;
        if (ns > max_ns) max_ns = ns;
    }
    result.serial_seconds = double(total_ns) * 1e-9;
    result.modeled_seconds = double(max_ns) * 1e-9;
    result.requests = requests;
    result.commits = stats.get("commit");
    result.cross = stats.get("shard.cross");
    result.imbalance = exported.gauge("shard.imbalance").value();
    return result;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"requests", "pool", "seed", "csv"});
    const uint64_t requests =
        static_cast<uint64_t>(cli.get_int("requests", 40000));
    const size_t pool_size =
        static_cast<size_t>(cli.get_int("pool", 256));
    const uint64_t seed = static_cast<uint64_t>(cli.get_int("seed", 1));
    const std::string csv_path = cli.get("csv", "");

    std::printf("Sharded-validation ablation: %llu requests per cell, "
                "%zu addresses per shard pool. Modelled parallel "
                "engines: makespan = busiest shard's service time.\n\n",
                static_cast<unsigned long long>(requests), pool_size);

    std::ofstream csv;
    if (!csv_path.empty()) {
        csv.open(csv_path);
        csv << "shards,cross_fraction,requests,serial_seconds,"
               "modeled_seconds,modeled_throughput_per_s,speedup_vs_1,"
               "commit_fraction,cross_observed,imbalance\n";
    }

    Table table({"shards", "cross %", "Mvalidations/s", "speedup",
                 "commit %", "cross observed %", "imbalance"});
    double base_throughput = 0; // S=1 at the current cross fraction
    for (double cross : {0.0, 0.01, 0.10, 0.50}) {
        for (uint32_t shards : {1u, 2u, 4u, 8u}) {
            const CellResult cell =
                run_cell(shards, cross, requests, pool_size, seed);
            const double throughput =
                cell.modeled_seconds > 0
                    ? double(cell.requests) / cell.modeled_seconds
                    : 0;
            if (shards == 1) base_throughput = throughput;
            const double speedup =
                base_throughput > 0 ? throughput / base_throughput : 0;
            table.row()
                .num(shards, 0)
                .num(cross * 100, 0)
                .num(throughput / 1e6, 2)
                .num(speedup, 2)
                .num(100.0 * double(cell.commits) /
                         double(cell.requests),
                     1)
                .num(100.0 * double(cell.cross) / double(cell.requests),
                     1)
                .num(cell.imbalance, 2);
            if (csv.is_open()) {
                csv << shards << ',' << cross << ',' << cell.requests
                    << ',' << cell.serial_seconds << ','
                    << cell.modeled_seconds << ',' << throughput << ','
                    << speedup << ','
                    << double(cell.commits) / double(cell.requests)
                    << ','
                    << double(cell.cross) / double(cell.requests) << ','
                    << cell.imbalance << '\n';
            }
        }
    }
    table.print();
    std::printf("\nSingle-shard traffic splits the busy time across "
                "independent engines (speedup tracks S minus hash "
                "imbalance); a cross-shard transaction occupies every "
                "touched shard for its whole two-phase pass, so the "
                "speedup flattens as the cross fraction grows.\n");
    if (csv.is_open()) {
        std::printf("CSV written to %s\n", csv_path.c_str());
    }
    return 0;
}
