/// Ablation of the paper's §7 outlook: "it is worth trying to apply
/// ROCoCo to transactional systems with a centralized control unit,
/// such as directory-based HTMs."
///
/// We model such a system by driving the ROCoCo validator from an
/// on-chip directory (tens of ns of arbitration, hardware-speed
/// accesses) instead of the out-of-core FPGA, and compare it against
/// the best-effort TSX model and the FPGA-attached ROCoCoTM on the
/// STAMP traces. Expected shape: HTM+ROCoCo keeps TSX's low per-access
/// costs but replaces its conflict avalanche with ROCoCo's
/// cycle-only aborts — dominating both at high thread counts (no
/// best-effort fallback, no phantom ordering), while ROCoCoTM pays the
/// CCI latency on short transactions.
#include <cstdio>
#include <map>

#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/stamp_sim.h"

using namespace rococo;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"scale", "seed", "threads"});
    stamp::WorkloadParams params;
    params.scale = static_cast<unsigned>(cli.get_int("scale", 2));
    params.seed = static_cast<uint64_t>(cli.get_int("seed", 7));
    const std::vector<int> threads =
        cli.get_int_list("threads", {4, 14, 28});

    std::printf("Directory-HTM deployment of ROCoCo (§7 outlook), "
                "vs best-effort TSX and FPGA-attached ROCoCoTM\n\n");

    std::map<std::string, std::map<unsigned, std::vector<double>>> speedups;
    for (const std::string& workload : stamp::workload_names()) {
        const stamp::SimTrace trace =
            sim::capture_workload_trace(workload, params);
        const auto rows = sim::simulate_grid(
            workload, trace, {"tsx", "rococo", "htm-rococo"}, threads);
        Table table({"backend", "threads", "speedup", "abort_rate"});
        std::printf("%s:\n", workload.c_str());
        for (const auto& row : rows) {
            table.row()
                .cell(row.backend)
                .num(static_cast<int>(row.threads))
                .num(row.speedup, 2)
                .num(row.abort_rate, 3);
            speedups[row.backend][row.threads].push_back(row.speedup);
        }
        table.print();
        std::printf("\n");
    }

    std::printf("Geomean speedups\n");
    Table summary({"backend", "4", "14", "28"});
    for (const auto& [backend, by_threads] : speedups) {
        Table& row = summary.row();
        row.cell(backend);
        for (int t : threads) {
            auto it = by_threads.find(static_cast<unsigned>(t));
            row.num(it == by_threads.end() ? 0.0 : geomean(it->second), 2);
        }
    }
    summary.print();
    std::printf("\nA centralized on-chip ROCoCo unit inherits the HTM's "
                "per-access speed without its best-effort fragility — "
                "the upside the paper's conclusion points at.\n");
    return 0;
}
