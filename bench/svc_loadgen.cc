/// Multi-process load generator for the networked validation service
/// (src/svc): the parent owns one Server (one engine, one sliding
/// window) and forks N genuine client *processes* — separate address
/// spaces, as in the paper's one-FPGA-many-executors deployment — each
/// keeping a window of pipelined requests in flight. Children report
/// their throughput and latency distribution back over a pipe; the
/// parent prints one table row per (clients, batch) configuration.
///
/// The sweep demonstrates the batching claim: past a handful of
/// concurrent clients, a batched engine pass (one poll()/send() per
/// coalesced group) sustains strictly higher validation throughput than
/// batch=1, the software analogue of amortizing CCI link latency with
/// packed cachelines (§5.3). Results are recorded in docs/SERVICE.md.
///
/// Usage:
///   svc_loadgen [--clients=1,2,4,8] [--batch=1,8,32]
///               [--requests=20000] [--outstanding=16] [--reads=4]
///               [--writes=2] [--keys=4096]
///               [--socket=/tmp/rococo_loadgen.sock] [--csv=FILE]
#include <sys/wait.h>
#include <algorithm>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/table.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "svc/client.h"
#include "svc/server.h"

namespace rococo {
namespace {

/// One child's report, shipped raw over its pipe.
struct ClientReport
{
    uint64_t completed = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;   ///< engine aborts (cycle + window overflow)
    uint64_t timeouts = 0;
    uint64_t rejected = 0;
    uint64_t p50_ns = 0;
    uint64_t p99_ns = 0;
};

struct LoadConfig
{
    std::string socket_path;
    uint64_t requests = 0;
    size_t outstanding = 16;
    unsigned reads = 4;
    unsigned writes = 2;
    uint64_t keys = 4096;
};

/// Child body: closed-loop with a pipelined window of in-flight
/// requests, so the server actually has something to batch.
ClientReport
run_client(const LoadConfig& config, unsigned seed)
{
    svc::ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    svc::ValidationClient client(client_config);
    ClientReport report;
    if (!client.connected()) return report;

    Xoshiro256 rng(seed);
    obs::LatencyHistogram latency;

    struct InFlight
    {
        std::future<core::ValidationResult> future;
        uint64_t sent_ns;
    };
    std::vector<InFlight> window;
    window.reserve(config.outstanding);

    auto account = [&](InFlight& flight) {
        const core::ValidationResult result = flight.future.get();
        latency.record(obs::now_ns() - flight.sent_ns);
        ++report.completed;
        switch (result.verdict) {
          case core::Verdict::kCommit: ++report.commits; break;
          case core::Verdict::kTimeout: ++report.timeouts; break;
          case core::Verdict::kRejected: ++report.rejected; break;
          default: ++report.aborts; break;
        }
    };

    for (uint64_t i = 0; i < config.requests; ++i) {
        fpga::OffloadRequest request;
        request.reads.reserve(config.reads);
        for (unsigned r = 0; r < config.reads; ++r) {
            request.reads.push_back(rng.below(config.keys));
        }
        for (unsigned w = 0; w < config.writes; ++w) {
            request.writes.push_back(rng.below(config.keys));
        }
        // "Current" snapshot: conflicts come from signature overlap.
        request.snapshot_cid = ~uint64_t{0} >> 1;

        const uint64_t sent = obs::now_ns();
        window.push_back({client.submit(std::move(request)), sent});
        if (window.size() >= config.outstanding) {
            account(window.front());
            window.erase(window.begin());
        }
    }
    for (InFlight& flight : window) account(flight);
    client.stop();

    report.p50_ns = latency.quantile(0.50);
    report.p99_ns = latency.quantile(0.99);
    return report;
}

struct SweepRow
{
    size_t clients;
    size_t batch;
    uint64_t completed = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t timeouts = 0;
    uint64_t rejected = 0;
    double elapsed_ms = 0;
    double kreq_s = 0;
    uint64_t p50_ns = 0;
    uint64_t p99_ns = 0;
};

SweepRow
run_one(const LoadConfig& load, size_t clients, size_t batch)
{
    svc::ServerConfig server_config;
    server_config.socket_path = load.socket_path;
    server_config.max_batch = batch;
    svc::Server server(server_config);
    if (!server.start()) {
        std::fprintf(stderr, "svc_loadgen: cannot bind %s\n",
                     load.socket_path.c_str());
        std::exit(1);
    }

    std::vector<pid_t> pids;
    std::vector<int> pipes;
    const uint64_t start_ns = obs::now_ns();
    for (size_t c = 0; c < clients; ++c) {
        int fds[2];
        if (pipe(fds) != 0) std::exit(1);
        const pid_t pid = fork();
        if (pid == 0) {
            close(fds[0]);
            const ClientReport report =
                run_client(load, static_cast<unsigned>(1000 + c));
            ssize_t n = write(fds[1], &report, sizeof(report));
            _exit(n == sizeof(report) ? 0 : 1);
        }
        close(fds[1]);
        pids.push_back(pid);
        pipes.push_back(fds[0]);
    }

    SweepRow row{clients, batch};
    std::vector<uint64_t> p50s, p99s;
    for (size_t c = 0; c < clients; ++c) {
        ClientReport report{};
        ssize_t n = read(pipes[c], &report, sizeof(report));
        if (n != sizeof(report)) report = {};
        close(pipes[c]);
        int status = 0;
        waitpid(pids[c], &status, 0);
        row.completed += report.completed;
        row.commits += report.commits;
        row.aborts += report.aborts;
        row.timeouts += report.timeouts;
        row.rejected += report.rejected;
        p50s.push_back(report.p50_ns);
        p99s.push_back(report.p99_ns);
    }
    const uint64_t elapsed = obs::now_ns() - start_ns;
    server.stop();

    // Accounting cross-check between the two sides of the wire.
    const CounterBag stats = server.stats();
    const uint64_t answered = stats.get("svc.verdict.commit") +
                              stats.get("svc.verdict.abort-cycle") +
                              stats.get("svc.verdict.window-overflow") +
                              stats.get("svc.timeout") +
                              stats.get("svc.rejected");
    if (answered != stats.get("svc.requests")) {
        std::fprintf(stderr,
                     "svc_loadgen: accounting mismatch: %" PRIu64
                     " answered vs %" PRIu64 " requests\n",
                     answered, stats.get("svc.requests"));
        std::exit(1);
    }

    row.elapsed_ms = double(elapsed) / 1e6;
    row.kreq_s = double(row.completed) / (double(elapsed) / 1e9) / 1e3;
    // Median of the per-client medians is a fair summary; max of the
    // p99s is the honest tail.
    std::sort(p50s.begin(), p50s.end());
    std::sort(p99s.begin(), p99s.end());
    row.p50_ns = p50s.empty() ? 0 : p50s[p50s.size() / 2];
    row.p99_ns = p99s.empty() ? 0 : p99s.back();
    return row;
}

} // namespace
} // namespace rococo

int
main(int argc, char** argv)
{
    using namespace rococo;

    Cli cli(argc, argv,
            {"clients", "batch", "requests", "outstanding", "reads",
             "writes", "keys", "socket", "csv"});
    LoadConfig load;
    load.socket_path = cli.get("socket", "/tmp/rococo_loadgen_" +
                                             std::to_string(getpid()) +
                                             ".sock");
    load.requests = static_cast<uint64_t>(cli.get_int("requests", 20000));
    load.outstanding =
        static_cast<size_t>(cli.get_int("outstanding", 16));
    load.reads = static_cast<unsigned>(cli.get_int("reads", 4));
    load.writes = static_cast<unsigned>(cli.get_int("writes", 2));
    load.keys = static_cast<uint64_t>(cli.get_int("keys", 4096));
    const std::vector<int> client_counts =
        cli.get_int_list("clients", {1, 2, 4, 8});
    const std::vector<int> batches = cli.get_int_list("batch", {1, 8, 32});

    Table table({"clients", "batch", "kreq/s", "p50_us", "p99_us",
                 "commit%", "abort%", "elapsed_ms"});
    std::vector<SweepRow> rows;
    for (int clients : client_counts) {
        for (int batch : batches) {
            const SweepRow row = run_one(load, static_cast<size_t>(clients),
                                         static_cast<size_t>(batch));
            rows.push_back(row);
            const double done =
                double(std::max<uint64_t>(row.completed, 1));
            table.row()
                .num(static_cast<uint64_t>(row.clients))
                .num(static_cast<uint64_t>(row.batch))
                .num(row.kreq_s, 1)
                .num(double(row.p50_ns) / 1e3, 1)
                .num(double(row.p99_ns) / 1e3, 1)
                .num(100.0 * double(row.commits) / done, 1)
                .num(100.0 * double(row.aborts) / done, 1)
                .num(row.elapsed_ms, 1);
        }
    }
    table.print();

    const std::string csv_path = cli.get("csv", "");
    if (!csv_path.empty()) {
        CsvWriter csv(csv_path,
                      {"clients", "batch", "kreq_s", "p50_ns", "p99_ns",
                       "commits", "aborts", "timeouts", "rejected"});
        for (const SweepRow& row : rows) {
            csv.write_row({std::to_string(row.clients),
                           std::to_string(row.batch),
                           std::to_string(row.kreq_s),
                           std::to_string(row.p50_ns),
                           std::to_string(row.p99_ns),
                           std::to_string(row.commits),
                           std::to_string(row.aborts),
                           std::to_string(row.timeouts),
                           std::to_string(row.rejected)});
        }
    }
    return 0;
}
