/// Multi-process load generator for the networked validation service
/// (src/svc): the parent owns one Server (one engine, one sliding
/// window) and forks N genuine client *processes* — separate address
/// spaces, as in the paper's one-FPGA-many-executors deployment — each
/// keeping a window of pipelined requests in flight. Children report
/// their throughput, latency distribution and per-stage breakdown back
/// over a pipe; the parent prints one table row per (clients, batch)
/// configuration.
///
/// The sweep demonstrates the batching claim: past a handful of
/// concurrent clients, a batched engine pass (one poll()/send() per
/// coalesced group) sustains strictly higher validation throughput than
/// batch=1, the software analogue of amortizing CCI link latency with
/// packed cachelines (§5.3). Results are recorded in docs/SERVICE.md.
///
/// Stage attribution (--stages=1): every v2 response carries the
/// server-side stage durations, and the client derives the wire stage
/// as the residual of the measured round trip — so the stage *means*
/// sum to the e2e mean by construction (the modeled CCI link latency is
/// reported alongside but never part of the wall-clock sum). The
/// breakdown table shows where a validation RPC spends its time:
/// client_queue (socket-mutex contention between submitters), wire
/// (socket + reader/poller scheduling), server_queue (arrival to engine
/// pass), batch_wait (skew within one coalesced batch), engine (the
/// validation itself).
///
/// --tm-threads=N runs the full RococoTm runtime (one process, N
/// threads — the cid-ordered commit log supports a single client
/// process per server) over the socket instead of raw validation RPCs:
/// the e2e distributed-tracing path exercised by the trace-check ctest.
/// Latency is then per *transaction* (including retries and commit
/// ordering), and abort% is a retry rate that can exceed 100.
///
/// --telemetry-server=FILE / --telemetry-client=FILE narrow the sweep
/// to its first (clients, batch) cell and write TelemetrySession JSON
/// envelopes from the server (parent) process and the first client
/// (child) process; scripts/merge_trace_json.py splices them into one
/// causal trace for Perfetto / scripts/check_trace_json.py.
///
/// Conflict forensics (docs/OBSERVABILITY.md):
///   --zipf=THETA skews key choice to a Zipf(theta) distribution
///   (inverse-CDF table per client, no pow() in the request loop), so
///   the conflict hot set is a handful of planted keys — the workload
///   `svcctl top` is meant to expose. --hot-keys=N forces an abort
///   spike: every key is drawn from [0, N) and requests carry
///   snapshot_cid=0 (a maximally stale snapshot), so nearly every
///   validation collides with the window and aborts. --recorder-out=P
///   arms the server's flight recorder (incident files P-<seq>.json)
///   with --abort-rate-trigger=X as the firing threshold; the run then
///   narrows to its first sweep cell and svc_loadgen exits 1 if the
///   recorder was armed with a trigger but no incident fired — the
///   contract the incident-dump ctest fixture pins down.
///
/// Continuous monitoring (docs/OBSERVABILITY.md § Continuous
/// monitoring): the server's health monitor is on by default
/// (--monitor=0 turns it off for A/B overhead runs). --slo-abort-rate=X
/// overrides the abort-rate burn-rate threshold and --slo-fast-ms /
/// --slo-slow-ms shrink the SLO windows so short runs can walk the
/// ok -> warn -> critical ladder; with a recorder armed
/// (--recorder-out) a critical SLO dumps an incident with trigger
/// "slo:abort-rate". --prom-out=FILE writes the server's final metrics
/// snapshot in Prometheus text exposition format (the node-exporter
/// textfile-collector shape) and narrows the sweep to its first cell.
///
/// Server threading (--server-threads=0,N,...): each value spawns the
/// server with that many engine workers (0 = the single-threaded
/// inline mode) and sweeps it like clients/batch, so one run compares
/// the threading modes directly. --assert-mt-speedup=X turns the run
/// into a perf canary: the best multi-threaded cell must beat the best
/// single-threaded cell by factor X, or the process exits 1. On a host
/// without at least 2 CPUs the comparison is meaningless and the run
/// exits 77 (the ctest skip code) instead — the same skip-not-fail
/// convention the YCSB canary uses for its multicore claim.
///
/// Usage:
///   svc_loadgen [--clients=1,2,4,8] [--batch=1,8,32] [--shards=1]
///               [--server-threads=0] [--assert-mt-speedup=X]
///               [--requests=20000] [--outstanding=16] [--reads=4]
///               [--writes=2] [--keys=4096] [--stages=1]
///               [--tm-threads=N] [--zipf=THETA] [--hot-keys=N]
///               [--recorder-out=PREFIX] [--abort-rate-trigger=X]
///               [--monitor=1] [--prom-out=FILE] [--slo-abort-rate=X]
///               [--slo-fast-ms=N] [--slo-slow-ms=N]
///               [--telemetry-server=FILE] [--telemetry-client=FILE]
///               [--socket=/tmp/rococo_loadgen.sock] [--csv=FILE]
#include <sys/wait.h>
#include <algorithm>
#include <unistd.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/zipf.h"
#include "obs/clock.h"
#include "obs/registry.h"
#include "obs/telemetry.h"
#include "svc/client.h"
#include "svc/server.h"
#include "tm/rococo_tm.h"

namespace rococo {
namespace {

/// Client-side stage histograms, in wire order. "link" is the modeled
/// CCI round trip — reported, but excluded from the wall-clock sum.
constexpr const char* kStageNames[] = {
    "client_queue", "wire", "server_queue", "batch_wait", "engine", "link",
};
constexpr size_t kStageCount = sizeof(kStageNames) / sizeof(kStageNames[0]);
constexpr size_t kLinkStage = kStageCount - 1;

/// One stage's summary, shipped raw over the child's pipe.
struct StageStat
{
    uint64_t count = 0;
    uint64_t sum_ns = 0; ///< count * mean — exact aggregate means
    uint64_t p50_ns = 0;
    uint64_t p95_ns = 0;
    uint64_t p99_ns = 0;
};

/// One child's report, shipped raw over its pipe.
struct ClientReport
{
    uint64_t completed = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;   ///< engine aborts (cycle + window overflow)
    uint64_t timeouts = 0;
    uint64_t rejected = 0;
    uint64_t p50_ns = 0;
    uint64_t p95_ns = 0;
    uint64_t p99_ns = 0;
    uint64_t rpc_count = 0;  ///< svc.client.rpc_ns samples
    uint64_t rpc_sum_ns = 0; ///< their sum: the e2e mean numerator
    StageStat stages[kStageCount];
};

struct LoadConfig
{
    std::string socket_path;
    uint64_t requests = 0;
    size_t outstanding = 16;
    unsigned reads = 4;
    unsigned writes = 2;
    uint64_t keys = 4096;
    unsigned tm_threads = 0; ///< 0 = raw validation RPCs
    uint32_t shards = 1;     ///< server-side validation shards
    double zipf = 0;         ///< Zipf theta; 0 = uniform keys
    uint64_t hot_keys = 0;   ///< > 0: abort spike over [0, hot_keys)
    std::string recorder_out;        ///< arm the server flight recorder
    double abort_rate_trigger = 0;   ///< recorder firing threshold
    bool monitor = true;             ///< server health monitor on/off
    std::string prom_out;            ///< Prometheus textfile snapshot
    double slo_abort_rate = 0;       ///< override abort-rate SLO threshold
    uint64_t slo_fast_ms = 0;        ///< override SLO fast window
    uint64_t slo_slow_ms = 0;        ///< override SLO slow window
};

void
harvest_stages(obs::Registry& registry, ClientReport& report)
{
    // histogram() registers on miss, which is fine: the stat keeps
    // count == 0 and the table shows the stage as absent.
    for (size_t s = 0; s < kStageCount; ++s) {
        const obs::LatencyHistogram& h =
            registry.histogram(std::string("svc.stage.") + kStageNames[s]);
        StageStat& stat = report.stages[s];
        stat.count = h.count();
        stat.sum_ns =
            static_cast<uint64_t>(h.mean() * double(h.count()) + 0.5);
        stat.p50_ns = h.quantile(0.50);
        stat.p95_ns = h.quantile(0.95);
        stat.p99_ns = h.quantile(0.99);
    }
    const obs::LatencyHistogram& rpc =
        registry.histogram("svc.client.rpc_ns");
    report.rpc_count = rpc.count();
    report.rpc_sum_ns =
        static_cast<uint64_t>(rpc.mean() * double(rpc.count()) + 0.5);
}

/// Child body: closed-loop with a pipelined window of in-flight
/// requests, so the server actually has something to batch.
ClientReport
run_client(const LoadConfig& config, unsigned seed,
           const std::string& telemetry_path)
{
    // Construct the session before the client so the reader thread's
    // rpc spans and flow events land in an active tracer.
    obs::TelemetrySession session(telemetry_path);
    svc::ClientConfig client_config;
    client_config.socket_path = config.socket_path;
    svc::ValidationClient client(client_config);
    ClientReport report;
    if (!client.connected()) return report;

    Xoshiro256 rng(seed);
    obs::LatencyHistogram latency;
    const std::unique_ptr<ZipfSampler> zipf =
        config.zipf > 0
            ? std::make_unique<ZipfSampler>(config.keys, config.zipf)
            : nullptr;
    auto draw_key = [&]() -> uint64_t {
        if (config.hot_keys > 0) return rng.below(config.hot_keys);
        if (zipf) return zipf->draw(rng);
        return rng.below(config.keys);
    };

    struct InFlight
    {
        std::future<core::ValidationResult> future;
        uint64_t sent_ns;
    };
    std::vector<InFlight> window;
    window.reserve(config.outstanding);

    auto account = [&](InFlight& flight) {
        const core::ValidationResult result = flight.future.get();
        latency.record(obs::now_ns() - flight.sent_ns);
        ++report.completed;
        switch (result.verdict) {
          case core::Verdict::kCommit: ++report.commits; break;
          case core::Verdict::kTimeout: ++report.timeouts; break;
          case core::Verdict::kRejected: ++report.rejected; break;
          default: ++report.aborts; break;
        }
    };

    for (uint64_t i = 0; i < config.requests; ++i) {
        fpga::OffloadRequest request;
        request.reads.reserve(config.reads);
        for (unsigned r = 0; r < config.reads; ++r) {
            request.reads.push_back(draw_key());
        }
        for (unsigned w = 0; w < config.writes; ++w) {
            request.writes.push_back(draw_key());
        }
        // "Current" snapshot: conflicts come from signature overlap.
        // The hot-keys spike instead claims a maximally stale snapshot,
        // so every overlap with the window is a forward/backward pair —
        // a cycle abort — and the abort-rate trigger has something to
        // fire on.
        request.snapshot_cid =
            config.hot_keys > 0 ? 0 : ~uint64_t{0} >> 1;

        const uint64_t sent = obs::now_ns();
        window.push_back({client.submit(std::move(request)), sent});
        if (window.size() >= config.outstanding) {
            account(window.front());
            window.erase(window.begin());
        }
    }
    for (InFlight& flight : window) account(flight);
    client.stop();

    report.p50_ns = latency.quantile(0.50);
    report.p95_ns = latency.quantile(0.95);
    report.p99_ns = latency.quantile(0.99);

    // The per-stage breakdown lives in the client's metric registry
    // (fed by every v2 response); pull it into the flat report.
    obs::Registry metrics;
    client.export_metrics(metrics);
    harvest_stages(metrics, report);
    if (session.active()) {
        // The telemetry envelope should carry the client metrics too,
        // not just the trace events.
        obs::Registry::global().merge(metrics);
        session.finish();
    }
    return report;
}

/// Child body for --tm-threads: the full RococoTm runtime over the
/// socket — transfer transactions whose conservation the svc tests
/// already verify; here we only measure.
ClientReport
run_tm_client(const LoadConfig& config, unsigned seed,
              const std::string& telemetry_path)
{
    obs::TelemetrySession session(telemetry_path);
    ClientReport report;
    obs::LatencyHistogram latency;
    {
        tm::RococoTmConfig tm_config;
        tm_config.validation_service = config.socket_path;
        tm_config.validation_timeout_ns = 500'000'000;
        tm::RococoTm runtime(tm_config);

        std::vector<tm::TmCell> cells(
            std::max<uint64_t>(2, std::min<uint64_t>(config.keys, 4096)));
        const unsigned threads = std::max(1u, config.tm_threads);
        const uint64_t per_thread =
            std::max<uint64_t>(1, config.requests / threads);
        std::vector<std::thread> workers;
        for (unsigned t = 0; t < threads; ++t) {
            workers.emplace_back([&, t] {
                runtime.thread_init(t);
                Xoshiro256 rng(seed + t);
                for (uint64_t i = 0; i < per_thread; ++i) {
                    const size_t a = rng.below(cells.size());
                    const size_t b =
                        (a + 1 + rng.below(cells.size() - 1)) % cells.size();
                    const uint64_t start = obs::now_ns();
                    runtime.execute([&](tm::Tx& tx) {
                        const tm::Word va = tx.load(cells[a]);
                        const tm::Word vb = tx.load(cells[b]);
                        tx.store(cells[a], va - 1);
                        tx.store(cells[b], vb + 1);
                    });
                    latency.record(obs::now_ns() - start);
                }
                runtime.thread_fini();
            });
        }
        for (auto& worker : workers) worker.join();

        const CounterBag stats = runtime.stats();
        report.completed = per_thread * threads;
        report.commits = stats.get(tm::stat::kCommits);
        report.aborts = stats.get(tm::stat::kAborts);
        report.timeouts = stats.get(tm::stat::kTimeoutAborts);
        report.rejected = stats.get(tm::stat::kRejectedAborts);
        if (session.active()) {
            // TM-layer counters (tm.abort.* accounting) for the
            // envelope; ~RococoTm (below) adds the validation client's
            // metrics — including the svc.stage.* breakdown.
            obs::Registry::global().merge(runtime.registry());
        }
    }
    report.p50_ns = latency.quantile(0.50);
    report.p95_ns = latency.quantile(0.95);
    report.p99_ns = latency.quantile(0.99);
    if (session.active()) {
        harvest_stages(obs::Registry::global(), report);
        session.finish();
    }
    return report;
}

struct SweepRow
{
    size_t clients;
    size_t batch;
    uint32_t server_threads = 0; ///< engine workers (0 = inline mode)
    uint64_t completed = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t timeouts = 0;
    uint64_t rejected = 0;
    double elapsed_ms = 0;
    double kreq_s = 0;
    uint64_t p50_ns = 0;
    uint64_t p95_ns = 0;
    uint64_t p99_ns = 0;
    uint64_t rpc_count = 0;
    uint64_t rpc_sum_ns = 0;
    StageStat stages[kStageCount];
};

SweepRow
run_one(const LoadConfig& load, size_t clients, size_t batch,
        uint32_t server_threads, const std::string& telemetry_client)
{
    svc::ServerConfig server_config;
    server_config.socket_path = load.socket_path;
    server_config.max_batch = batch;
    server_config.shards = load.shards;
    server_config.worker_threads = server_threads;
    if (!load.recorder_out.empty()) {
        server_config.recorder.enabled = true;
        server_config.recorder.output_prefix = load.recorder_out;
        server_config.recorder.abort_rate_threshold =
            load.abort_rate_trigger;
        // Loadgen runs are short (hundreds of ms); sample fast enough
        // that a spike is seen in several consecutive windows.
        server_config.recorder.sample_period_ns = 2'000'000;
        server_config.recorder.include_trace = obs::telemetry_active();
    }
    server_config.monitor.enabled = load.monitor;
    if (load.slo_abort_rate > 0) {
        server_config.monitor.abort_rate_threshold = load.slo_abort_rate;
    }
    if (load.slo_fast_ms > 0) {
        server_config.monitor.fast_window_ns = load.slo_fast_ms * 1'000'000;
    }
    if (load.slo_slow_ms > 0) {
        server_config.monitor.slow_window_ns = load.slo_slow_ms * 1'000'000;
    }
    if (load.slo_fast_ms > 0 || load.slo_slow_ms > 0) {
        // Shrunk windows mean a short run: sample fast enough that the
        // fast window holds several points (otherwise one sample is the
        // whole burn-rate estimate).
        server_config.monitor.sample_period_ns = std::max<uint64_t>(
            1'000'000, server_config.monitor.fast_window_ns / 8);
    }
    svc::Server server(server_config);
    if (!server.start()) {
        std::fprintf(stderr, "svc_loadgen: cannot bind %s\n",
                     load.socket_path.c_str());
        std::exit(1);
    }

    std::vector<pid_t> pids;
    std::vector<int> pipes;
    const uint64_t start_ns = obs::now_ns();
    for (size_t c = 0; c < clients; ++c) {
        int fds[2];
        if (pipe(fds) != 0) std::exit(1);
        const pid_t pid = fork();
        if (pid == 0) {
            close(fds[0]);
            // Only the first child writes the client telemetry file.
            const std::string& telemetry =
                c == 0 ? telemetry_client : std::string();
            const unsigned seed = static_cast<unsigned>(1000 + c);
            const ClientReport report =
                load.tm_threads > 0
                    ? run_tm_client(load, seed, telemetry)
                    : run_client(load, seed, telemetry);
            ssize_t n = write(fds[1], &report, sizeof(report));
            _exit(n == sizeof(report) ? 0 : 1);
        }
        close(fds[1]);
        pids.push_back(pid);
        pipes.push_back(fds[0]);
    }

    SweepRow row;
    row.clients = clients;
    row.batch = batch;
    row.server_threads = server_threads;
    std::vector<uint64_t> p50s, p95s, p99s;
    std::vector<uint64_t> stage_p50s[kStageCount];
    for (size_t c = 0; c < clients; ++c) {
        ClientReport report{};
        ssize_t n = read(pipes[c], &report, sizeof(report));
        if (n != sizeof(report)) report = {};
        close(pipes[c]);
        int status = 0;
        waitpid(pids[c], &status, 0);
        row.completed += report.completed;
        row.commits += report.commits;
        row.aborts += report.aborts;
        row.timeouts += report.timeouts;
        row.rejected += report.rejected;
        row.rpc_count += report.rpc_count;
        row.rpc_sum_ns += report.rpc_sum_ns;
        p50s.push_back(report.p50_ns);
        p95s.push_back(report.p95_ns);
        p99s.push_back(report.p99_ns);
        for (size_t s = 0; s < kStageCount; ++s) {
            row.stages[s].count += report.stages[s].count;
            row.stages[s].sum_ns += report.stages[s].sum_ns;
            stage_p50s[s].push_back(report.stages[s].p50_ns);
            // Tail quantiles aggregate as the worst client's tail.
            row.stages[s].p95_ns =
                std::max(row.stages[s].p95_ns, report.stages[s].p95_ns);
            row.stages[s].p99_ns =
                std::max(row.stages[s].p99_ns, report.stages[s].p99_ns);
        }
    }
    const uint64_t elapsed = obs::now_ns() - start_ns;

    // Textfile-collector snapshot (Prometheus text exposition) of the
    // server's final state, written before stop() so the gauges still
    // show the live run, not the drained shutdown.
    if (!load.prom_out.empty()) {
        obs::Registry prom_registry;
        server.export_metrics(prom_registry);
        if (!prom_registry.export_prom_file(load.prom_out)) {
            std::fprintf(stderr, "svc_loadgen: cannot write %s\n",
                         load.prom_out.c_str());
            std::exit(1);
        }
    }
    server.stop();

    // Accounting cross-check between the two sides of the wire.
    const CounterBag stats = server.stats();
    const uint64_t answered = stats.get("svc.verdict.commit") +
                              stats.get("svc.verdict.abort-cycle") +
                              stats.get("svc.verdict.window-overflow") +
                              stats.get("svc.timeout") +
                              stats.get("svc.rejected");
    if (answered != stats.get("svc.requests")) {
        std::fprintf(stderr,
                     "svc_loadgen: accounting mismatch: %" PRIu64
                     " answered vs %" PRIu64 " requests\n",
                     answered, stats.get("svc.requests"));
        std::exit(1);
    }

    row.elapsed_ms = double(elapsed) / 1e6;
    row.kreq_s = double(row.completed) / (double(elapsed) / 1e9) / 1e3;
    // Median of the per-client medians is a fair summary; max of the
    // tail quantiles is the honest tail.
    std::sort(p50s.begin(), p50s.end());
    row.p50_ns = p50s.empty() ? 0 : p50s[p50s.size() / 2];
    row.p95_ns = p95s.empty() ? 0 : *std::max_element(p95s.begin(),
                                                      p95s.end());
    row.p99_ns = p99s.empty() ? 0 : *std::max_element(p99s.begin(),
                                                      p99s.end());
    for (size_t s = 0; s < kStageCount; ++s) {
        std::sort(stage_p50s[s].begin(), stage_p50s[s].end());
        row.stages[s].p50_ns = stage_p50s[s].empty()
                                   ? 0
                                   : stage_p50s[s][stage_p50s[s].size() / 2];
    }
    return row;
}

double
stage_mean_us(const StageStat& stat)
{
    return stat.count == 0 ? 0.0
                           : double(stat.sum_ns) / double(stat.count) / 1e3;
}

/// Long-format per-stage breakdown for one sweep cell, with the sum /
/// e2e cross-check rows that make the attribution auditable.
void
print_stage_table(const SweepRow& row)
{
    std::printf("\nstage breakdown (clients=%zu, batch=%zu), client-side:\n",
                row.clients, row.batch);
    Table table({"stage", "count", "mean_us", "p50_us", "p95_us", "p99_us"});
    double sum_mean_us = 0;
    for (size_t s = 0; s < kStageCount; ++s) {
        const StageStat& stat = row.stages[s];
        const double mean_us = stage_mean_us(stat);
        if (s != kLinkStage) sum_mean_us += mean_us;
        table.row()
            .cell(s == kLinkStage ? "link (modeled)" : kStageNames[s])
            .num(stat.count)
            .num(mean_us, 2)
            .num(double(stat.p50_ns) / 1e3, 2)
            .num(double(stat.p95_ns) / 1e3, 2)
            .num(double(stat.p99_ns) / 1e3, 2);
    }
    const double e2e_mean_us =
        row.rpc_count == 0
            ? 0.0
            : double(row.rpc_sum_ns) / double(row.rpc_count) / 1e3;
    table.row().cell("sum (excl. link)").cell("").num(sum_mean_us, 2)
        .cell("").cell("").cell("");
    table.row().cell("e2e rpc").num(row.rpc_count).num(e2e_mean_us, 2)
        .cell("").cell("").cell("");
    table.print();
}

} // namespace
} // namespace rococo

int
main(int argc, char** argv)
{
    using namespace rococo;

    Cli cli(argc, argv,
            {"clients", "batch", "shards", "server-threads",
             "assert-mt-speedup", "requests", "outstanding",
             "reads", "writes", "keys", "socket", "csv", "stages",
             "tm-threads", "telemetry-server", "telemetry-client",
             "zipf", "hot-keys", "recorder-out", "abort-rate-trigger",
             "monitor", "prom-out", "slo-abort-rate", "slo-fast-ms",
             "slo-slow-ms"});
    LoadConfig load;
    load.socket_path = cli.get("socket", "/tmp/rococo_loadgen_" +
                                             std::to_string(getpid()) +
                                             ".sock");
    load.requests = static_cast<uint64_t>(cli.get_int("requests", 20000));
    load.outstanding =
        static_cast<size_t>(cli.get_int("outstanding", 16));
    load.reads = static_cast<unsigned>(cli.get_int("reads", 4));
    load.writes = static_cast<unsigned>(cli.get_int("writes", 2));
    load.keys = static_cast<uint64_t>(cli.get_int("keys", 4096));
    load.tm_threads =
        static_cast<unsigned>(cli.get_int("tm-threads", 0));
    load.shards = static_cast<uint32_t>(
        std::max<int64_t>(1, cli.get_int("shards", 1)));
    load.zipf = cli.get_double("zipf", 0.0);
    load.hot_keys = static_cast<uint64_t>(
        std::max<int64_t>(0, cli.get_int("hot-keys", 0)));
    load.recorder_out = cli.get("recorder-out", "");
    load.abort_rate_trigger = cli.get_double("abort-rate-trigger", 0.0);
    load.monitor = cli.get_bool("monitor", true);
    load.prom_out = cli.get("prom-out", "");
    load.slo_abort_rate = cli.get_double("slo-abort-rate", 0.0);
    load.slo_fast_ms = static_cast<uint64_t>(
        std::max<int64_t>(0, cli.get_int("slo-fast-ms", 0)));
    load.slo_slow_ms = static_cast<uint64_t>(
        std::max<int64_t>(0, cli.get_int("slo-slow-ms", 0)));
    const bool stages = cli.get_bool("stages", false);
    const std::string telemetry_server = cli.get("telemetry-server", "");
    const std::string telemetry_client = cli.get("telemetry-client", "");
    std::vector<int> client_counts =
        cli.get_int_list("clients", {1, 2, 4, 8});
    std::vector<int> batches = cli.get_int_list("batch", {1, 8, 32});
    std::vector<int> server_threads = cli.get_int_list("server-threads",
                                                       {0});
    const double assert_mt_speedup =
        cli.get_double("assert-mt-speedup", 0.0);
    if (assert_mt_speedup > 0 &&
        std::thread::hardware_concurrency() < 2) {
        // A worker pool cannot beat the inline mode with one CPU to
        // run both on; the multicore claim is untestable here. 77 is
        // ctest's skip code (SKIP_RETURN_CODE), mirroring the YCSB
        // canary's single-core convention.
        std::fprintf(stderr,
                     "svc_loadgen: single-core host, skipping the"
                     " multi-threaded speedup assertion\n");
        return 77;
    }
    if (load.tm_threads > 0) {
        // One RococoTm process per server: the cid-ordered commit log
        // is per-process state (see docs/SERVICE.md § Limitations).
        client_counts = {1};
    }
    if (!telemetry_server.empty() || !telemetry_client.empty() ||
        !load.recorder_out.empty() || !load.prom_out.empty()) {
        // A telemetry capture (or an armed flight recorder, whose
        // incident files are numbered per server; or a Prometheus
        // snapshot, which is one file per server) wants one clean
        // measured region, not a sweep: keep the first cell only.
        client_counts.resize(1);
        batches.resize(1);
    }

    Table table({"sthreads", "clients", "batch", "kreq/s", "p50_us",
                 "p95_us", "p99_us", "commit%", "abort%", "elapsed_ms"});
    std::vector<SweepRow> rows;
    for (int sthreads : server_threads) {
        for (int clients : client_counts) {
            for (int batch : batches) {
                // Inert when the path is empty; resets + collects the
                // server-side (parent process) half of the capture.
                obs::TelemetrySession server_session(telemetry_server);
                const SweepRow row = run_one(
                    load, static_cast<size_t>(clients),
                    static_cast<size_t>(batch),
                    static_cast<uint32_t>(std::max(0, sthreads)),
                    telemetry_client);
                if (!server_session.finish()) return 1;
                rows.push_back(row);
                const double done =
                    double(std::max<uint64_t>(row.completed, 1));
                table.row()
                    .num(static_cast<uint64_t>(row.server_threads))
                    .num(static_cast<uint64_t>(row.clients))
                    .num(static_cast<uint64_t>(row.batch))
                    .num(row.kreq_s, 1)
                    .num(double(row.p50_ns) / 1e3, 1)
                    .num(double(row.p95_ns) / 1e3, 1)
                    .num(double(row.p99_ns) / 1e3, 1)
                    .num(100.0 * double(row.commits) / done, 1)
                    .num(100.0 * double(row.aborts) / done, 1)
                    .num(row.elapsed_ms, 1);
            }
        }
    }
    table.print();
    if (stages) {
        for (const SweepRow& row : rows) print_stage_table(row);
    }

    const std::string csv_path = cli.get("csv", "");
    if (!csv_path.empty()) {
        std::vector<std::string> header = {
            "server_threads", "clients", "batch",    "kreq_s",
            "p50_ns",         "p95_ns",  "p99_ns",   "commits",
            "aborts",         "timeouts", "rejected"};
        for (size_t s = 0; s < kStageCount; ++s) {
            header.push_back(std::string("stage_") + kStageNames[s] +
                             "_mean_ns");
        }
        CsvWriter csv(csv_path, header);
        for (const SweepRow& row : rows) {
            std::vector<std::string> cells = {
                std::to_string(row.server_threads),
                std::to_string(row.clients),
                std::to_string(row.batch),
                std::to_string(row.kreq_s),
                std::to_string(row.p50_ns),
                std::to_string(row.p95_ns),
                std::to_string(row.p99_ns),
                std::to_string(row.commits),
                std::to_string(row.aborts),
                std::to_string(row.timeouts),
                std::to_string(row.rejected)};
            for (size_t s = 0; s < kStageCount; ++s) {
                cells.push_back(std::to_string(
                    static_cast<uint64_t>(stage_mean_us(row.stages[s]) *
                                          1e3)));
            }
            csv.write_row(cells);
        }
    }

    // Multi-threaded perf canary: the best multi-threaded cell must
    // beat the best single-threaded cell by the asserted factor. Both
    // bests, not cell-by-cell — the claim is about the modes, and the
    // fairest representative of each mode is its own best cell.
    if (assert_mt_speedup > 0) {
        double best_st = 0, best_mt = 0;
        for (const SweepRow& row : rows) {
            double& best = row.server_threads > 0 ? best_mt : best_st;
            best = std::max(best, row.kreq_s);
        }
        if (best_st <= 0 || best_mt <= 0) {
            std::fprintf(stderr,
                         "svc_loadgen: --assert-mt-speedup needs both a"
                         " --server-threads=0 cell and a > 0 cell\n");
            return 1;
        }
        const double ratio = best_mt / best_st;
        std::printf("mt speedup: %.2fx (floor %.2fx) %s\n", ratio,
                    assert_mt_speedup,
                    ratio >= assert_mt_speedup ? "OK" : "REGRESSION");
        if (ratio < assert_mt_speedup) return 1;
    }

    // An armed trigger that never fired is a failed run: the incident
    // fixture (tests/) relies on this exit code, and interactively it
    // catches a threshold set above the spike actually produced.
    if (!load.recorder_out.empty() && load.abort_rate_trigger > 0) {
        const std::string incident = load.recorder_out + "-1.json";
        if (access(incident.c_str(), F_OK) != 0) {
            std::fprintf(stderr,
                         "svc_loadgen: recorder armed (threshold %.3f) but"
                         " no incident was dumped (%s missing)\n",
                         load.abort_rate_trigger, incident.c_str());
            return 1;
        }
        std::printf("incident: %s\n", incident.c_str());
    }
    return 0;
}
