/// Ablation of greedy vs non-greedy ROCoCo (§4.1: "committing a
/// transaction may cause more future transactions to abort.
/// Optimizations on ROCoCo are possible if the validation phase has a
/// global view" — explored as future work in §7).
///
/// The batched validator rehearses every ordered subset of a small
/// decision window and commits the schedule with the most commits,
/// sacrificing individually-committable transactions when that saves
/// several others. Expected shape: abort rate decreases monotonically
/// with the batch size, with diminishing returns — the greedy
/// validator is already close to optimal at low contention, and the
/// win concentrates where dependency cycles are frequent.
#include <cstdio>

#include "cc/nongreedy.h"
#include "cc/trace_generator.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"

using namespace rococo;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv, {"txns", "seeds", "concurrency"});
    const size_t txns = static_cast<size_t>(cli.get_int("txns", 600));
    const int seeds = static_cast<int>(cli.get_int("seeds", 10));
    const int concurrency =
        static_cast<int>(cli.get_int("concurrency", 16));

    std::printf("Non-greedy (batched) ROCoCo ablation "
                "(micro-benchmark, T=%d, %d seeds; batch=1 is greedy)\n\n",
                concurrency, seeds);

    Table table({"N", "collision", "batch=1 (greedy)", "batch=2",
                 "batch=4", "sacrificed@4"});
    for (unsigned accesses : {8u, 16u, 24u, 32u}) {
        RunningStat rate1, rate2, rate4;
        uint64_t sacrificed = 0;
        for (int seed = 1; seed <= seeds; ++seed) {
            cc::UniformTraceParams params;
            params.locations = 1024;
            params.accesses = accesses;
            params.txns = txns;
            params.seed = static_cast<uint64_t>(seed);
            const cc::Trace trace = cc::generate_uniform_trace(params);
            rate1.add(
                cc::batch_replay(trace, concurrency, 1).abort_rate());
            rate2.add(
                cc::batch_replay(trace, concurrency, 2).abort_rate());
            const auto b4 = cc::batch_replay(trace, concurrency, 4);
            rate4.add(b4.abort_rate());
            sacrificed += b4.sacrificed;
        }
        table.row()
            .num(static_cast<int>(accesses))
            .num(cc::uniform_collision_rate(1024, accesses), 3)
            .num(rate1.mean(), 4)
            .num(rate2.mean(), 4)
            .num(rate4.mean(), 4)
            .num(sacrificed);
    }
    table.print();
    std::printf("\nBatching buys a modest further abort reduction over "
                "greedy ROCoCo by reordering and occasionally "
                "sacrificing transactions inside the decision window — "
                "the paper's non-greedy future-work direction (§7).\n");
    return 0;
}
