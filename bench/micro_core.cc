/// google-benchmark micro-benchmarks of the hot primitives: bloom
/// signature operations, reachability-matrix probe/insert, exact
/// validation, redo-log access, and commit-log snapshot scans. These
/// quantify the per-operation costs the simulator's cost model
/// abstracts (src/sim/cost_model.cc).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/reachability_matrix.h"
#include "core/rococo_validator.h"
#include "sig/bloom_signature.h"
#include "tm/commit_log.h"
#include "fpga/validation_engine.h"
#include "tm/redo_log.h"

using namespace rococo;

namespace {

std::shared_ptr<const sig::SignatureConfig>
sig_config(unsigned m = 512, unsigned k = 4)
{
    return std::make_shared<const sig::SignatureConfig>(m, k);
}

void
BM_BloomInsert(benchmark::State& state)
{
    sig::BloomSignature s(sig_config(state.range(0)));
    Xoshiro256 rng(1);
    for (auto _ : state) {
        s.insert(rng());
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_BloomInsert)->Arg(512)->Arg(1024);

void
BM_BloomQuery(benchmark::State& state)
{
    sig::BloomSignature s(sig_config(state.range(0)));
    Xoshiro256 rng(2);
    for (int i = 0; i < 8; ++i) s.insert(rng());
    uint64_t key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(s.query(key++));
    }
}
BENCHMARK(BM_BloomQuery)->Arg(512)->Arg(1024);

void
BM_BloomIntersect(benchmark::State& state)
{
    auto cfg = sig_config(state.range(0));
    sig::BloomSignature a(cfg), b(cfg);
    Xoshiro256 rng(3);
    for (int i = 0; i < 8; ++i) {
        a.insert(rng());
        b.insert(rng());
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.intersects(b));
    }
}
BENCHMARK(BM_BloomIntersect)->Arg(512)->Arg(1024);

void
BM_MatrixProbe(benchmark::State& state)
{
    const size_t window = state.range(0);
    core::ReachabilityMatrix m(window);
    Xoshiro256 rng(4);
    // Fill the window with a random DAG via sequential inserts.
    for (size_t slot = 0; slot < window; ++slot) {
        BitVector f(window), b(window);
        for (size_t j = 0; j < slot; ++j) {
            if (rng.chance(0.05)) b.set(j);
        }
        auto probe = m.probe(f, b);
        m.insert(slot, probe);
    }
    BitVector f(window), b(window);
    f.set(rng.below(window));
    b.set(rng.below(window));
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.probe(f, b));
    }
}
BENCHMARK(BM_MatrixProbe)->Arg(64)->Arg(128)->Arg(256);

void
BM_ValidatorCommit(benchmark::State& state)
{
    core::SlidingWindowValidator v(64);
    Xoshiro256 rng(5);
    for (auto _ : state) {
        core::ValidationRequest req;
        for (uint64_t c = v.window_start(); c < v.next_cid(); ++c) {
            if (rng.chance(0.05)) req.backward.push_back(c);
        }
        benchmark::DoNotOptimize(v.validate_and_commit(req));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValidatorCommit);

void
BM_ExactValidate(benchmark::State& state)
{
    core::ExactRococoValidator v(64);
    Xoshiro256 rng(6);
    const size_t set_size = state.range(0);
    for (auto _ : state) {
        std::vector<uint64_t> reads, writes;
        for (size_t i = 0; i < set_size; ++i) {
            reads.push_back(rng.below(4096));
            writes.push_back(rng.below(4096));
        }
        benchmark::DoNotOptimize(
            v.validate(reads, writes, v.next_cid()));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactValidate)->Arg(4)->Arg(16)->Arg(64);

void
BM_RedoLogPutGet(benchmark::State& state)
{
    tm::RedoLog log;
    std::vector<tm::TmCell> cells(64);
    Xoshiro256 rng(7);
    for (auto _ : state) {
        log.clear();
        for (int i = 0; i < 16; ++i) {
            log.put(&cells[rng.below(64)], rng());
        }
        tm::Word v;
        benchmark::DoNotOptimize(log.get(&cells[rng.below(64)], v));
    }
}
BENCHMARK(BM_RedoLogPutGet);

void
BM_CommitLogCollect(benchmark::State& state)
{
    auto cfg = sig_config();
    tm::CommitLog log(cfg, 1 << 12);
    sig::BloomSignature sig(cfg);
    Xoshiro256 rng(8);
    for (int i = 0; i < 8; ++i) sig.insert(rng());
    const uint64_t lag = state.range(0);
    for (uint64_t cid = 0; cid < lag; ++cid) {
        log.publish(cid, sig);
        log.advance(cid);
    }
    sig::BloomSignature temp(cfg);
    for (auto _ : state) {
        temp.clear();
        benchmark::DoNotOptimize(log.collect(0, lag, temp));
    }
}
BENCHMARK(BM_CommitLogCollect)->Arg(1)->Arg(8)->Arg(64);

void
BM_DetectorClassify(benchmark::State& state)
{
    auto cfg = sig_config();
    fpga::ConflictDetector detector(64, cfg);
    Xoshiro256 rng(9);
    for (uint64_t cid = 0; cid < 64; ++cid) {
        fpga::OffloadRequest commit;
        for (int i = 0; i < 8; ++i) commit.reads.push_back(rng.below(4096));
        for (int i = 0; i < 4; ++i) {
            commit.writes.push_back(rng.below(4096));
        }
        detector.record_commit(cid, commit);
    }
    fpga::OffloadRequest request;
    for (int i = 0; i < state.range(0); ++i) {
        request.reads.push_back(rng.below(4096));
    }
    request.writes.push_back(rng.below(4096));
    request.snapshot_cid = 32;
    for (auto _ : state) {
        benchmark::DoNotOptimize(detector.classify(request));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorClassify)->Arg(4)->Arg(16)->Arg(64);

void
BM_EngineProcess(benchmark::State& state)
{
    fpga::ValidationEngine engine;
    Xoshiro256 rng(10);
    for (auto _ : state) {
        fpga::OffloadRequest request;
        for (int i = 0; i < 8; ++i) {
            request.reads.push_back(rng.below(1 << 20));
        }
        for (int i = 0; i < 4; ++i) {
            request.writes.push_back(rng.below(1 << 20));
        }
        request.snapshot_cid = engine.next_cid();
        benchmark::DoNotOptimize(engine.process(request));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineProcess);

} // namespace

BENCHMARK_MAIN();
