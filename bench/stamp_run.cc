/// Real-thread STAMP runs with full telemetry: executes the selected
/// workloads on actual threads under a chosen TM runtime and (with
/// --telemetry-out=FILE) records the complete transaction-lifecycle
/// trace — per-attempt spans, validation/commit spans with cids, typed
/// per-reason abort counters, retry-latency histograms and pipeline
/// occupancy gauges — into one Perfetto-loadable JSON file.
///
/// This is the observability companion of fig10_stamp: fig10 reports
/// modelled scalability from the trace-driven simulator; this binary
/// runs the same workloads for real (functional timing on this
/// machine, not the paper's Xeon) so the spans and counters describe
/// actual concurrent executions.
///
///   ./build/bench/stamp_run --workloads=vacation,kmeans --threads=8 \
///       --runtime=rococo --telemetry-out=stamp.json
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/global_lock_tm.h"
#include "baselines/htm_tsx.h"
#include "baselines/sequential_tm.h"
#include "baselines/tinystm_lsa.h"
#include "common/cli.h"
#include "common/table.h"
#include "obs/telemetry.h"
#include "stamp/harness.h"
#include "tm/rococo_tm.h"

using namespace rococo;

namespace {

std::unique_ptr<tm::TmRuntime>
make_runtime(const std::string& name)
{
    if (name == "sequential") {
        return std::make_unique<baselines::SequentialTm>();
    }
    if (name == "globallock") {
        return std::make_unique<baselines::GlobalLockTm>();
    }
    if (name == "tinystm") return std::make_unique<baselines::TinyStmLsa>();
    if (name == "tsx") return std::make_unique<baselines::HtmTsxSim>();
    if (name == "rococo") return std::make_unique<tm::RococoTm>();
    std::fprintf(stderr,
                 "unknown --runtime=%s (sequential|globallock|tinystm|"
                 "tsx|rococo)\n",
                 name.c_str());
    std::exit(2);
}

std::vector<std::string>
split_list(const std::string& spec)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        out.push_back(spec.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv,
            {"workloads", "runtime", "threads", "scale", "seed",
             "contention", "telemetry-out"});
    stamp::WorkloadParams params;
    params.scale = static_cast<unsigned>(cli.get_int("scale", 1));
    params.seed = static_cast<uint64_t>(cli.get_int("seed", 7));
    params.high_contention = cli.get("contention", "high") != "low";
    const unsigned threads =
        static_cast<unsigned>(cli.get_int("threads", 4));
    const std::string runtime_name = cli.get("runtime", "rococo");

    std::vector<std::string> workloads = stamp::workload_names();
    if (cli.has("workloads")) {
        workloads = split_list(cli.get("workloads", ""));
    }

    obs::TelemetrySession telemetry(cli.get("telemetry-out", ""));

    std::printf("STAMP real-thread runs: runtime=%s, %u threads, "
                "scale=%u%s\n\n",
                runtime_name.c_str(), threads, params.scale,
                telemetry.active() ? ", telemetry on" : "");

    Table table({"workload", "seconds", "commits", "aborts", "abort rate",
                 "verified"});
    bool all_verified = true;
    for (const std::string& name : workloads) {
        auto workload = stamp::make_workload(name, params);
        auto runtime = make_runtime(runtime_name);
        const stamp::RunResult result =
            stamp::run_workload(*workload, *runtime, threads);
        all_verified = all_verified && result.verified;
        table.row()
            .cell(name)
            .num(result.seconds, 3)
            .num(result.tm_stats.get("commits"))
            .num(result.tm_stats.get("aborts"))
            .num(result.abort_rate(), 3)
            .cell(result.verified ? "yes" : "NO");
    }
    table.print();

    const bool written = telemetry.finish();
    if (telemetry.active() && written) {
        std::printf("\ntelemetry written to %s (load in Perfetto or "
                    "check with scripts/check_trace_json.py)\n",
                    telemetry.path().c_str());
    }
    return all_verified && written ? 0 : 1;
}
