#!/usr/bin/env python3
"""Validate a telemetry JSON file written by obs::TelemetrySession
(or merged from several of them by merge_trace_json.py).

Checks, in order:

1. Schema: the file is a JSON object with a "traceEvents" array in
   Chrome trace-event format (every event has name/ph/ts/pid/tid;
   complete "X" events carry a duration; flow events "s"/"f" carry the
   binding "id" and flow ends bind to their enclosing slice) and a
   "metrics" object with counters/gauges/histograms.

2. Abort accounting: for every layer prefix that reports aborts
   (tm., cc., sim.), the per-reason counters "<p>.abort.<reason>" sum
   exactly to the "<p>.abort" total. The instrumentation bumps both at
   the same attribution site, so any mismatch means a code path lost
   its typed AbortReason.

3. KV-layer accounting: when the file carries "kv.ops.*" counters (a
   trace from a process hosting a kv::KvStore / KvStore2pl), every
   operation is exactly one committed transaction —
   sum(kv.ops.*) == kv.txn.commits — and each "kv.latency.<op>"
   histogram holds exactly kv.ops.<op> samples (the histogram is
   recorded at the same site that bumps the counter).

4. Validation-service accounting: when the file carries "svc.*"
   counters (a trace from a process hosting svc::Server), every
   well-formed request must be answered exactly once:
   svc.requests == sum(svc.verdict.*) + svc.timeout + svc.rejected.
   Client-side counters ("svc.client.*") are excluded — the
   "svc.verdict." prefix does not match them. Stats snapshots
   ("svc.stats") are answered outside the request path and excluded by
   design.

5. Span chains (skippable with --no-chain, for metrics-only files from
   replay/simulator benches): every "tx.commit" span must sit inside a
   "tx.attempt" span on the same (pid, tid) that also contains a
   "tx.validate" span — the begin -> validate -> commit lifecycle of a
   committed offloaded transaction — and at least one complete chain
   must exist. Per-thread ring buffers overwrite their oldest events,
   so up to --max-orphans (default 2) broken chains per thread are
   tolerated at the wraparound boundary.

6. Distributed-trace linkage (runs when the file contains
   "svc.server.validate" spans; mandatory with --require-flows): every
   server validation span carries args.parent_span_id, and — in a
   merged client+server file — that id must name the trace_id of a
   client "svc.rpc" span, with the matching flow-start ("s") and
   flow-end ("f") events sharing the same id so Perfetto draws the
   arrow. Up to --max-orphans unmatched ids per side are tolerated
   (ring wraparound can drop one half of a pair). With --require-flows
   the check also demands at least one fully linked client/server pair,
   failing single-process files where the other half is missing.

The tracer's ring buffers drop oldest events silently; the session
surfaces the total as the "obs.trace.dropped" counter plus the
always-exported "obs.trace.dropped_total" gauge, and this script prints
a warning when they are non-zero (the tolerances above exist precisely
because of it). With --strict that warning becomes a FAILURE — and so
does a file without the gauge at all, since "nobody measured" must not
pass as "no drops".

--incident switches to validating a flight-recorder incident file
(obs/flight_recorder.h) instead of a telemetry envelope: the "incident"
header (trigger in {abort-rate, p99, manual}, pid, seq >= 1, t_ns), a
non-empty "samples" ring with monotone timestamps and abort_rate in
[0, 1], the "metrics" registry snapshot, the "topk" hot-key table
(entries sorted by count, error <= count), and a "traceEvents" list
(possibly empty) in the usual Chrome shape.

Exit status 0 if all checks pass; 1 with a message on stderr otherwise.

Usage: check_trace_json.py FILE [--no-chain] [--require-flows]
                                [--max-orphans=N] [--strict]
                                [--incident]
"""

import json
import sys

REASON_PREFIXES = ("tm", "cc", "sim")


def fail(message):
    print(f"check_trace_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_events(events):
    for i, event in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(f"traceEvents[{i}] lacks required key {key!r}")
        if event["ph"] == "X" and "dur" not in event:
            fail(f'traceEvents[{i}] is a complete event without "dur"')
        if event["ph"] in ("s", "f"):
            if "id" not in event:
                fail(f"traceEvents[{i}] is a flow event without an id")
            if event["ph"] == "f" and event.get("bp") != "e":
                fail(
                    f"traceEvents[{i}] is a flow end without "
                    f'"bp":"e" (the arrow would bind to the wrong slice)'
                )
        if event["ph"] not in ("X", "C", "i", "s", "f"):
            fail(f"traceEvents[{i}] has unknown phase {event['ph']!r}")


def check_metrics_shape(doc):
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail('missing "metrics" object')
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f'metrics lacks the "{section}" object')
    return metrics


def check_schema(doc):
    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" array')
    check_events(events)
    return events, check_metrics_shape(doc)


def check_abort_sums(counters):
    checked = 0
    for prefix in REASON_PREFIXES:
        total_name = f"{prefix}.abort"
        if total_name not in counters:
            continue
        total = counters[total_name]
        by_reason = sum(
            value
            for name, value in counters.items()
            if name.startswith(f"{prefix}.abort.")
        )
        if by_reason != total:
            fail(
                f"per-reason counters under {prefix}.abort.* sum to "
                f"{by_reason}, but {total_name} = {total}"
            )
        checked += 1
    return checked


def check_svc_accounting(counters):
    """svc.requests == sum(svc.verdict.*) + svc.timeout + svc.rejected.

    The server bumps svc.requests once per well-formed frame and exactly
    one of the answer counters per request (stop() counts still-queued
    requests as rejected), so an imbalance means a request was dropped
    or double-answered. Stats snapshots bump svc.stats instead of
    svc.requests, so introspection never unbalances the ledger.
    """
    if "svc.requests" not in counters:
        return False
    answered = sum(
        value
        for name, value in counters.items()
        if name.startswith("svc.verdict.")
    ) + counters.get("svc.timeout", 0) + counters.get("svc.rejected", 0)
    if answered != counters["svc.requests"]:
        fail(
            f"svc answer counters sum to {answered}, but "
            f"svc.requests = {counters['svc.requests']}"
        )
    return True


def check_kv_accounting(counters, histograms):
    """sum(kv.ops.*) == kv.txn.commits, and each kv.latency.<op>
    histogram holds exactly kv.ops.<op> samples.

    kv::HotMetrics::finish_op bumps the op counter, the commit counter
    and the latency histogram at one site, so any mismatch means an
    operation path skipped its accounting (or double-counted).
    """
    ops = {
        name: value
        for name, value in counters.items()
        if name.startswith("kv.ops.")
    }
    if not ops:
        return False
    total = sum(ops.values())
    commits = counters.get("kv.txn.commits")
    if commits != total:
        fail(
            f"kv.ops.* counters sum to {total}, but kv.txn.commits = "
            f"{commits}"
        )
    for name, value in sorted(ops.items()):
        op = name[len("kv.ops."):]
        hist = histograms.get(f"kv.latency.{op}")
        if hist is None:
            fail(f"{name} = {value} but no kv.latency.{op} histogram")
        if hist.get("count") != value:
            fail(
                f"kv.latency.{op} holds {hist.get('count')} samples, "
                f"but {name} = {value}"
            )
    return True


def check_span_chains(events, max_orphans):
    spans = [e for e in events if e["ph"] == "X"]
    by_thread = {}
    for span in spans:
        # Merged files interleave processes: a thread is (pid, tid).
        by_thread.setdefault((span["pid"], span["tid"]), []).append(span)

    def contains(outer, inner):
        outer_end = outer["ts"] + outer["dur"]
        inner_end = inner["ts"] + inner["dur"]
        return outer["ts"] <= inner["ts"] and inner_end <= outer_end

    complete = 0
    orphan_report = []
    for thread, thread_spans in sorted(by_thread.items()):
        attempts = [s for s in thread_spans if s["name"] == "tx.attempt"]
        validates = [s for s in thread_spans if s["name"] == "tx.validate"]
        commits = [s for s in thread_spans if s["name"] == "tx.commit"]
        orphans = 0
        for commit in commits:
            enclosing = [a for a in attempts if contains(a, commit)]
            chained = any(
                contains(a, v)
                for a in enclosing
                for v in validates
            )
            if chained:
                complete += 1
            else:
                orphans += 1
        if orphans > max_orphans:
            orphan_report.append(
                f"pid {thread[0]} tid {thread[1]}: {orphans} tx.commit "
                f"spans without an enclosing tx.attempt containing "
                f"tx.validate (tolerance {max_orphans} for ring "
                f"wraparound)"
            )
    if orphan_report:
        fail("; ".join(orphan_report))
    if complete == 0:
        fail(
            "no complete begin -> validate -> commit span chain found "
            "(expected at least one; use --no-chain for metrics-only "
            "files)"
        )
    return complete


def check_flows(events, max_orphans, require):
    """Cross-process causality: server spans point at client spans.

    Returns the number of linked client/server span pairs (0 when the
    file carries no distributed-tracing material and require is False).
    """
    client_ids = {
        e["args"]["trace_id"]
        for e in events
        if e["ph"] == "X"
        and e["name"] == "svc.rpc"
        and "trace_id" in e.get("args", {})
    }
    server_spans = [
        e
        for e in events
        if e["ph"] == "X" and e["name"] == "svc.server.validate"
    ]
    flow_starts = {e["id"] for e in events if e["ph"] == "s"}
    flow_ends = {e["id"] for e in events if e["ph"] == "f"}

    if not server_spans and not flow_starts and not flow_ends:
        if require:
            fail(
                "no distributed-tracing events found "
                "(--require-flows expects svc.server.validate spans and "
                "s/f flow events; was the capture made with "
                "ROCOCO_TRACE=ON through the validation service?)"
            )
        return 0

    for i, span in enumerate(server_spans):
        if "parent_span_id" not in span.get("args", {}):
            fail(
                f"svc.server.validate span #{i} lacks "
                f"args.parent_span_id"
            )

    # Every server span must reference a client span that exists in the
    # merged file (tolerating ring wraparound on either side).
    unmatched_spans = sum(
        1
        for span in server_spans
        if span["args"]["parent_span_id"] not in client_ids
    )
    linked = len(server_spans) - unmatched_spans
    if client_ids and unmatched_spans > max_orphans:
        fail(
            f"{unmatched_spans} svc.server.validate spans reference a "
            f"parent_span_id with no matching client svc.rpc span "
            f"(tolerance {max_orphans})"
        )

    # Flow arrows need both halves to render.
    dangling_ends = len(flow_ends - flow_starts)
    if flow_starts and dangling_ends > max_orphans:
        fail(
            f"{dangling_ends} flow ends have no matching flow start "
            f"(tolerance {max_orphans})"
        )

    if require:
        if linked == 0 or not client_ids:
            fail(
                "no linked client/server span pair (server "
                "parent_span_id matching a client svc.rpc trace_id); "
                "merge the client and server telemetry files first"
            )
        if not (flow_starts & flow_ends):
            fail("no flow start/end pair sharing an id")
    return linked


INCIDENT_TRIGGERS = ("abort-rate", "p99", "manual")
# SLO-triggered incidents (obs/health.cc) use "slo:<rule-name>".
SLO_TRIGGER_PREFIX = "slo:"
SAMPLE_KEYS = (
    "t_ns", "aborts", "total", "abort_rate", "p99_ns", "queue_depth",
    "imbalance",
)


def check_incident(doc):
    """Validate a flight-recorder incident file (obs/flight_recorder.cc
    dump_locked writes it; svcctl dump / the trigger rules produce it).
    """
    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    header = doc.get("incident")
    if not isinstance(header, dict):
        fail('missing "incident" header object')
    trigger = header.get("trigger")
    is_slo = isinstance(trigger, str) and trigger.startswith(
        SLO_TRIGGER_PREFIX) and len(trigger) > len(SLO_TRIGGER_PREFIX)
    if trigger not in INCIDENT_TRIGGERS and not is_slo:
        fail(f"incident.trigger {trigger!r} not in {INCIDENT_TRIGGERS} "
             f"and not '{SLO_TRIGGER_PREFIX}<rule>'")
    for key in ("pid", "seq", "t_ns"):
        if not isinstance(header.get(key), int):
            fail(f"incident.{key} missing or not an integer")
    if header["seq"] < 1:
        fail(f"incident.seq = {header['seq']} (numbered from 1)")

    samples = doc.get("samples")
    if not isinstance(samples, list) or not samples:
        fail('missing or empty "samples" array (the recorder ring '
             "always holds the triggering sample)")
    last_t = None
    for i, sample in enumerate(samples):
        for key in SAMPLE_KEYS:
            if key not in sample:
                fail(f"samples[{i}] lacks required key {key!r}")
        if not 0 <= sample["abort_rate"] <= 1:
            fail(f"samples[{i}].abort_rate = {sample['abort_rate']} "
                 f"outside [0, 1]")
        if last_t is not None and sample["t_ns"] < last_t:
            fail(f"samples[{i}].t_ns goes backwards (ring rotation "
                 f"must preserve time order)")
        last_t = sample["t_ns"]

    check_metrics_shape(doc)

    topk = doc.get("topk")
    if not isinstance(topk, dict) or not isinstance(
            topk.get("shards"), list):
        fail('missing "topk" object with a "shards" array')
    for s, shard in enumerate(topk["shards"]):
        entries = shard.get("entries")
        if "shard" not in shard or "offered" not in shard or not isinstance(
                entries, list):
            fail(f"topk.shards[{s}] lacks shard/offered/entries")
        prev_count = None
        for e, entry in enumerate(entries):
            for key in ("key", "count", "error"):
                if key not in entry:
                    fail(f"topk.shards[{s}].entries[{e}] lacks {key!r}")
            if entry["error"] > entry["count"]:
                fail(f"topk.shards[{s}].entries[{e}]: error "
                     f"{entry['error']} > count {entry['count']}")
            if prev_count is not None and entry["count"] > prev_count:
                fail(f"topk.shards[{s}].entries[{e}] not sorted by "
                     f"descending count")
            prev_count = entry["count"]

    health = doc.get("health")
    if not isinstance(health, dict):
        fail('missing "health" object ({} when no monitor is attached)')
    if is_slo:
        # An SLO-triggered dump always comes from a live HealthMonitor,
        # so the embedded status must carry the verdict that fired.
        if health.get("enabled") is not True:
            fail("slo-triggered incident lacks health.enabled: true")
        verdict = health.get("health")
        if not isinstance(verdict, dict) or "state" not in verdict:
            fail("slo-triggered incident lacks health.health.state")
        if not isinstance(health.get("samples"), dict):
            fail("slo-triggered incident lacks health.samples (the "
             "breaching series rings)")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" array (empty is fine)')
    check_events(events)

    print(
        f"check_trace_json: OK: incident ({trigger}, seq "
        f"{header['seq']}), {len(samples)} samples, "
        f"{sum(len(s.get('entries', [])) for s in topk['shards'])} "
        f"hot keys, {len(events)} events"
    )
    return 0


def dropped_events(metrics):
    """Trace-ring overwrites, and whether they were measured at all.

    The counter only appears when non-zero (historical shape); the
    gauge is exported always, including the zero, so its absence means
    the capture predates the measurement — which --strict refuses.
    """
    counters = metrics["counters"]
    gauge = metrics["gauges"].get("obs.trace.dropped_total")
    measured = gauge is not None
    dropped = counters.get("obs.trace.dropped", 0)
    if gauge is not None:
        # Merged files: merge_gauge keeps the max across inputs, so a
        # drop in any input stays visible even when the last one is 0.
        dropped = max(dropped, gauge.get("max", 0), gauge.get("last", 0))
    return dropped, measured


def main(argv):
    path = None
    no_chain = False
    require_flows = False
    strict = False
    incident = False
    max_orphans = 2
    for arg in argv[1:]:
        if arg == "--no-chain":
            no_chain = True
        elif arg == "--require-flows":
            require_flows = True
        elif arg == "--strict":
            strict = True
        elif arg == "--incident":
            incident = True
        elif arg.startswith("--max-orphans="):
            max_orphans = int(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            fail(f"unknown flag {arg}")
        elif path is None:
            path = arg
        else:
            fail("more than one input file")
    if path is None:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {path}: {error}")

    if incident:
        return check_incident(doc)

    events, metrics = check_schema(doc)
    counters = metrics["counters"]
    dropped, measured = dropped_events(metrics)
    if strict and not measured:
        fail(
            'no "obs.trace.dropped_total" gauge in the file; --strict '
            "requires a capture that measured ring overwrites "
            "(re-capture with a current build)"
        )
    if dropped:
        if strict:
            fail(
                f"{dropped} trace events were overwritten in the ring "
                f"buffers before export (--strict forbids a truncated "
                f"trace; raise the ring capacity or shorten the capture)"
            )
        print(
            f"check_trace_json: WARNING: {dropped} trace events were "
            f"overwritten in the ring buffers before export; span-chain "
            f"and flow checks run with wraparound tolerances "
            f"(raise the ring capacity or shorten the capture for a "
            f"complete trace)",
            file=sys.stderr,
        )
    layers = check_abort_sums(counters)
    kv_checked = check_kv_accounting(counters, metrics["histograms"])
    svc_checked = check_svc_accounting(counters)
    chains = 0 if no_chain else check_span_chains(events, max_orphans)
    flows = check_flows(events, max_orphans, require_flows)

    print(
        f"check_trace_json: OK: {len(events)} events, "
        f"{len(counters)} counters "
        f"({layers} abort layer(s) consistent, "
        + ("kv accounting balanced, " if kv_checked else "")
        + "svc accounting "
        + ("balanced), " if svc_checked else "absent), ")
        + (f"{chains} complete span chains" if not no_chain
           else "chain check skipped")
        + (f", {flows} flow-linked client/server pairs" if flows else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
