#!/usr/bin/env python3
"""Validate a telemetry JSON file written by obs::TelemetrySession.

Checks, in order:

1. Schema: the file is a JSON object with a "traceEvents" array in
   Chrome trace-event format (every event has name/ph/ts/pid/tid;
   complete "X" events carry a duration) and a "metrics" object with
   counters/gauges/histograms.

2. Abort accounting: for every layer prefix that reports aborts
   (tm., cc., sim.), the per-reason counters "<p>.abort.<reason>" sum
   exactly to the "<p>.abort" total. The instrumentation bumps both at
   the same attribution site, so any mismatch means a code path lost
   its typed AbortReason.

3. Validation-service accounting: when the file carries "svc.*"
   counters (a trace from a process hosting svc::Server), every
   well-formed request must be answered exactly once:
   svc.requests == sum(svc.verdict.*) + svc.timeout + svc.rejected.
   Client-side counters ("svc.client.*") are excluded — the
   "svc.verdict." prefix does not match them.

4. Span chains (skippable with --no-chain, for metrics-only files from
   replay/simulator benches): every "tx.commit" span must sit inside a
   "tx.attempt" span on the same thread that also contains a
   "tx.validate" span — the begin -> validate -> commit lifecycle of a
   committed offloaded transaction — and at least one complete chain
   must exist. Per-thread ring buffers overwrite their oldest events,
   so up to --max-orphans (default 2) broken chains per thread are
   tolerated at the wraparound boundary.

Exit status 0 if all checks pass; 1 with a message on stderr otherwise.

Usage: check_trace_json.py FILE [--no-chain] [--max-orphans=N]
"""

import json
import sys

REASON_PREFIXES = ("tm", "cc", "sim")


def fail(message):
    print(f"check_trace_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_schema(doc):
    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" array')
    for i, event in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(f"traceEvents[{i}] lacks required key {key!r}")
        if event["ph"] == "X" and "dur" not in event:
            fail(f'traceEvents[{i}] is a complete event without "dur"')
        if event["ph"] not in ("X", "C", "i"):
            fail(f"traceEvents[{i}] has unknown phase {event['ph']!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        fail('missing "metrics" object')
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            fail(f'metrics lacks the "{section}" object')
    return events, metrics


def check_abort_sums(counters):
    checked = 0
    for prefix in REASON_PREFIXES:
        total_name = f"{prefix}.abort"
        if total_name not in counters:
            continue
        total = counters[total_name]
        by_reason = sum(
            value
            for name, value in counters.items()
            if name.startswith(f"{prefix}.abort.")
        )
        if by_reason != total:
            fail(
                f"per-reason counters under {prefix}.abort.* sum to "
                f"{by_reason}, but {total_name} = {total}"
            )
        checked += 1
    return checked


def check_svc_accounting(counters):
    """svc.requests == sum(svc.verdict.*) + svc.timeout + svc.rejected.

    The server bumps svc.requests once per well-formed frame and exactly
    one of the answer counters per request (stop() counts still-queued
    requests as rejected), so an imbalance means a request was dropped
    or double-answered.
    """
    if "svc.requests" not in counters:
        return False
    answered = sum(
        value
        for name, value in counters.items()
        if name.startswith("svc.verdict.")
    ) + counters.get("svc.timeout", 0) + counters.get("svc.rejected", 0)
    if answered != counters["svc.requests"]:
        fail(
            f"svc answer counters sum to {answered}, but "
            f"svc.requests = {counters['svc.requests']}"
        )
    return True


def check_span_chains(events, max_orphans):
    spans = [e for e in events if e["ph"] == "X"]
    by_tid = {}
    for span in spans:
        by_tid.setdefault(span["tid"], []).append(span)

    def contains(outer, inner):
        outer_end = outer["ts"] + outer["dur"]
        inner_end = inner["ts"] + inner["dur"]
        return outer["ts"] <= inner["ts"] and inner_end <= outer_end

    complete = 0
    orphan_report = []
    for tid, tid_spans in sorted(by_tid.items()):
        attempts = [s for s in tid_spans if s["name"] == "tx.attempt"]
        validates = [s for s in tid_spans if s["name"] == "tx.validate"]
        commits = [s for s in tid_spans if s["name"] == "tx.commit"]
        orphans = 0
        for commit in commits:
            enclosing = [a for a in attempts if contains(a, commit)]
            chained = any(
                contains(a, v)
                for a in enclosing
                for v in validates
            )
            if chained:
                complete += 1
            else:
                orphans += 1
        if orphans > max_orphans:
            orphan_report.append(
                f"tid {tid}: {orphans} tx.commit spans without an "
                f"enclosing tx.attempt containing tx.validate "
                f"(tolerance {max_orphans} for ring wraparound)"
            )
    if orphan_report:
        fail("; ".join(orphan_report))
    if complete == 0:
        fail(
            "no complete begin -> validate -> commit span chain found "
            "(expected at least one; use --no-chain for metrics-only "
            "files)"
        )
    return complete


def main(argv):
    path = None
    no_chain = False
    max_orphans = 2
    for arg in argv[1:]:
        if arg == "--no-chain":
            no_chain = True
        elif arg.startswith("--max-orphans="):
            max_orphans = int(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            fail(f"unknown flag {arg}")
        elif path is None:
            path = arg
        else:
            fail("more than one input file")
    if path is None:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {path}: {error}")

    events, metrics = check_schema(doc)
    layers = check_abort_sums(metrics["counters"])
    svc_checked = check_svc_accounting(metrics["counters"])
    chains = 0 if no_chain else check_span_chains(events, max_orphans)

    print(
        f"check_trace_json: OK: {len(events)} events, "
        f"{len(metrics['counters'])} counters "
        f"({layers} abort layer(s) consistent, svc accounting "
        + ("balanced), " if svc_checked else "absent), ")
        + (f"{chains} complete span chains" if not no_chain
           else "chain check skipped")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
