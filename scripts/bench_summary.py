#!/usr/bin/env python3
"""Distill bench outputs into one committed JSON summary.

Three modes, selected by which input CSV is given (exactly one):

  * --shards-csv: the CSV written by `bench/ablation_shards --csv=...`
    — one row per (shards, cross_fraction) sweep cell with modelled
    throughput and speedup. Optionally --loadgen-json adds a
    server-side telemetry file written by `bench/svc_loadgen
    --shards=N --telemetry-server=...`, from which the service-level
    shard counters and stage histograms are lifted. Output:
    BENCH_shard.json. Exits nonzero if S=4 stops beating S=1 at <= 1%
    cross-shard traffic (the scaling canary).

  * --hotpath-csv: the CSV written by `bench/micro_validate --csv=...`
    — one row per (signature/window geometry, match kernel) with the
    bit-sliced vs scalar classify latency and the steady-state pipeline
    allocations/validation. Output: BENCH_hotpath.json. Exits nonzero
    if, on the paper geometry (W=64, 512-bit), the bit-sliced scalar
    kernel's speedup over the row-major walk falls below --min-speedup
    (default 2.0), allocations/validation exceed --max-allocs (default
    0.0), or — when any SIMD kernel row is present — the best SIMD
    kernel's speedup over the bit-sliced scalar kernel falls below
    --min-simd-speedup (default 1.5). Hosts without AVX2 emit no SIMD
    rows and the SIMD gate skips rather than fails, mirroring the
    single-core convention of the ycsb canary.

  * --ycsb-csv: the CSV written by `bench/ycsb_run --csv=...` — one
    row per (workload, zipf, engine) with throughput, transaction
    outcomes and per-op latency quantiles for the OCC store and the
    2PL baseline under identical traffic. Output: BENCH_ycsb.json.
    The canary checks the read-heavy workload (--workload, default b)
    at its most skewed zipf cell: the OCC/2PL throughput ratio must
    stay >= --min-occ-ratio and the OCC abort rate <= --max-abort-rate
    (the "low contention" premise, asserted rather than assumed).
    --min-occ-ratio defaults to 1.0 — OCC beats 2PL, the multicore
    expectation (invisible readers vs. hot stripe mutexes); single-core
    CI boxes cannot express reader parallelism, so the ctest wiring
    pins the measured hot-path cost ratio with a documented floor
    instead (tests/CMakeLists.txt).

Usage:
  bench_summary.py --shards-csv CSV [--loadgen-json FILE] --out FILE
  bench_summary.py --hotpath-csv CSV [--min-speedup X] [--max-allocs N]
                   --out FILE
  bench_summary.py --ycsb-csv CSV [--workload W] [--min-occ-ratio X]
                   [--max-abort-rate X] --out FILE
"""

import argparse
import csv
import json
import sys


def load_sweep(path):
    cells = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            cells.append(
                {
                    "shards": int(row["shards"]),
                    "cross_fraction": float(row["cross_fraction"]),
                    "requests": int(row["requests"]),
                    "modeled_throughput_per_s": float(
                        row["modeled_throughput_per_s"]
                    ),
                    "speedup_vs_1": float(row["speedup_vs_1"]),
                    "commit_fraction": float(row["commit_fraction"]),
                    "cross_observed": float(row["cross_observed"]),
                    "imbalance": float(row["imbalance"]),
                }
            )
    if not cells:
        raise SystemExit(f"{path}: no sweep rows")
    return cells


def headline(cells):
    """The acceptance numbers: S=4 vs S=1 at <= 1% cross traffic."""

    def cell(shards, max_cross):
        best = None
        for c in cells:
            if c["shards"] == shards and c["cross_fraction"] <= max_cross:
                if best is None or c["cross_fraction"] > best["cross_fraction"]:
                    best = c
        return best

    s1 = cell(1, 0.01)
    s4 = cell(4, 0.01)
    if s1 is None or s4 is None:
        raise SystemExit("sweep lacks S=1 / S=4 cells at <= 1% cross")
    return {
        "cross_fraction": s4["cross_fraction"],
        "s1_throughput_per_s": s1["modeled_throughput_per_s"],
        "s4_throughput_per_s": s4["modeled_throughput_per_s"],
        "s4_speedup": s4["speedup_vs_1"],
        "s4_beats_s1": s4["modeled_throughput_per_s"]
        > s1["modeled_throughput_per_s"],
    }


def find_section(doc, key):
    """Depth-first search for the first dict holding `key` (the
    telemetry envelope nests the registry export)."""
    if isinstance(doc, dict):
        if key in doc and isinstance(doc[key], dict):
            return doc[key]
        for value in doc.values():
            found = find_section(value, key)
            if found is not None:
                return found
    elif isinstance(doc, list):
        for value in doc:
            found = find_section(value, key)
            if found is not None:
                return found
    return None


def load_service(path):
    with open(path) as f:
        doc = json.load(f)
    counters = find_section(doc, "counters") or {}
    histograms = find_section(doc, "histograms") or {}
    picked = {
        name: int(value)
        for name, value in sorted(counters.items())
        if name.startswith(("svc.", "shard."))
    }
    stages = {
        name: histograms[name]
        for name in ("svc.stage.shard_route", "svc.stage.shard_coord")
        if name in histograms
    }
    answered = (
        sum(v for k, v in picked.items() if k.startswith("svc.verdict."))
        + picked.get("svc.timeout", 0)
        + picked.get("svc.rejected", 0)
    )
    return {
        "counters": picked,
        "stage_histograms": stages,
        "accounting_balanced": picked.get("svc.requests", -1) == answered,
    }


def load_hotpath(path):
    rows = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            rows.append(
                {
                    "window": int(row["window"]),
                    "sig_bits": int(row["sig_bits"]),
                    "hashes": int(row["hashes"]),
                    "reads": int(row["reads"]),
                    "writes": int(row["writes"]),
                    "iters": int(row["iters"]),
                    "kernel": row["kernel"],
                    "sliced_ns": float(row["sliced_ns"]),
                    "scalar_ns": float(row["scalar_ns"]),
                    "speedup": float(row["speedup"]),
                    "pipeline_validate_ns": float(
                        row["pipeline_validate_ns"]
                    ),
                    "allocs_per_validation": float(
                        row["allocs_per_validation"]
                    ),
                }
            )
    if not rows:
        raise SystemExit(f"{path}: no hot-path rows")
    return rows


def hotpath_headline(rows, min_speedup, max_allocs, min_simd_speedup):
    """The acceptance numbers: the paper geometry W=64 / 512-bit.

    Two gated ratios on that geometry: the bit-sliced *scalar* kernel
    against the row-major walk (the layout win, --min-speedup), and the
    best SIMD kernel against the bit-sliced scalar kernel (the explicit
    vectorization win, --min-simd-speedup). The SIMD gate only arms
    when the sweep actually produced SIMD rows — micro_validate emits
    one row per runtime-available kernel, so their absence means the
    host cannot run them, not that they regressed.
    """
    canary = None
    for row in rows:
        if (row["window"] == 64 and row["sig_bits"] == 512
                and row["kernel"] == "scalar"):
            canary = row
    if canary is None:
        raise SystemExit(
            "hot-path sweep lacks the W=64 / 512-bit scalar-kernel row"
        )
    simd = [
        r for r in rows
        if r["window"] == 64 and r["sig_bits"] == 512
        and r["kernel"] != "scalar"
    ]
    best_simd = min(simd, key=lambda r: r["sliced_ns"]) if simd else None
    worst_allocs = max(r["allocs_per_validation"] for r in rows)
    headline = {
        "window": canary["window"],
        "sig_bits": canary["sig_bits"],
        "sliced_ns": canary["sliced_ns"],
        "scalar_ns": canary["scalar_ns"],
        "speedup": canary["speedup"],
        "pipeline_validate_ns": canary["pipeline_validate_ns"],
        "allocs_per_validation": worst_allocs,
        "speedup_ok": canary["speedup"] >= min_speedup,
        "allocs_ok": worst_allocs <= max_allocs,
    }
    if best_simd is None:
        headline["simd_kernel"] = None
        headline["simd_ok"] = True  # skip-not-fail: no SIMD on this host
    else:
        ratio = (canary["sliced_ns"] / best_simd["sliced_ns"]
                 if best_simd["sliced_ns"] > 0 else 0.0)
        headline["simd_kernel"] = best_simd["kernel"]
        headline["simd_sliced_ns"] = best_simd["sliced_ns"]
        headline["simd_speedup_vs_sliced_scalar"] = ratio
        headline["simd_floor"] = min_simd_speedup
        headline["simd_ok"] = ratio >= min_simd_speedup
    return headline


def run_hotpath(args):
    rows = load_hotpath(args.hotpath_csv)
    summary = {
        "bench": "validation-hot-path",
        "tool": "scripts/bench_summary.py",
        "sweep": rows,
        "headline": hotpath_headline(rows, args.min_speedup,
                                     args.max_allocs,
                                     args.min_simd_speedup),
    }
    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=False)
        f.write("\n")

    h = summary["headline"]
    print(
        f"W={h['window']} m={h['sig_bits']}: bit-sliced "
        f"{h['sliced_ns']:.1f} ns vs scalar {h['scalar_ns']:.1f} ns "
        f"({h['speedup']:.2f}x, floor {args.min_speedup:.2f}x) "
        f"{'OK' if h['speedup_ok'] else 'REGRESSION'}; "
        f"allocs/validation {h['allocs_per_validation']:.3f} "
        f"{'OK' if h['allocs_ok'] else 'REGRESSION'}"
    )
    if h["simd_kernel"] is None:
        print("simd: no SIMD kernel rows (host lacks AVX2) — gate skipped")
    else:
        print(
            f"simd: {h['simd_kernel']} {h['simd_sliced_ns']:.1f} ns vs "
            f"sliced-scalar {h['sliced_ns']:.1f} ns "
            f"({h['simd_speedup_vs_sliced_scalar']:.2f}x, floor "
            f"{h['simd_floor']:.2f}x) "
            f"{'OK' if h['simd_ok'] else 'REGRESSION'}"
        )
    return 0 if h["speedup_ok"] and h["allocs_ok"] and h["simd_ok"] else 1


OPS = ("get", "put", "delete", "scan", "rmw")


def load_ycsb(path):
    rows = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            parsed = {
                "workload": row["workload"],
                "engine": row["engine"],
                "zipf": float(row["zipf"]),
                "threads": int(row["threads"]),
                "keys": int(row["keys"]),
                "capacity": int(row["capacity"]),
                "ops": int(row["ops"]),
                "elapsed_ms": float(row["elapsed_ms"]),
                "kops_s": float(row["kops_s"]),
                "commits": int(row["commits"]),
                "aborts": int(row["aborts"]),
                "retries": int(row["retries"]),
                "abort_rate": float(row["abort_rate"]),
                "key_collisions": int(row["key_collisions"]),
            }
            for op in OPS:
                if int(row[f"{op}_count"]) == 0:
                    continue
                parsed[op] = {
                    field: int(row[f"{op}_{field}"])
                    for field in ("count", "mean_ns", "p50_ns",
                                  "p95_ns", "p99_ns")
                }
            rows.append(parsed)
    if not rows:
        raise SystemExit(f"{path}: no ycsb rows")
    return rows


def ycsb_comparison(rows):
    """OCC vs 2PL per (workload, zipf) cell where both engines ran."""
    cells = {}
    for row in rows:
        cells.setdefault((row["workload"], row["zipf"]), {})[
            row["engine"]
        ] = row
    comparison = []
    for (workload, zipf), engines in sorted(cells.items()):
        if "occ" not in engines or "2pl" not in engines:
            continue
        occ, pl = engines["occ"], engines["2pl"]
        comparison.append(
            {
                "workload": workload,
                "zipf": zipf,
                "occ_kops_s": occ["kops_s"],
                "2pl_kops_s": pl["kops_s"],
                "occ_over_2pl": occ["kops_s"] / pl["kops_s"]
                if pl["kops_s"] > 0
                else 0.0,
                "occ_abort_rate": occ["abort_rate"],
                "occ_retries": occ["retries"],
            }
        )
    return comparison


def ycsb_headline(comparison, workload, min_ratio, max_abort_rate):
    """The canary cell: the required workload at its most skewed zipf."""
    candidates = [c for c in comparison if c["workload"] == workload]
    if not candidates:
        raise SystemExit(
            f"ycsb sweep lacks an occ+2pl cell for workload {workload!r}"
        )
    cell = max(candidates, key=lambda c: c["zipf"])
    return {
        "workload": cell["workload"],
        "zipf": cell["zipf"],
        "occ_kops_s": cell["occ_kops_s"],
        "2pl_kops_s": cell["2pl_kops_s"],
        "occ_over_2pl": cell["occ_over_2pl"],
        "occ_abort_rate": cell["occ_abort_rate"],
        "occ_beats_2pl": cell["occ_over_2pl"] > 1.0,
        "ratio_floor": min_ratio,
        "ratio_ok": cell["occ_over_2pl"] >= min_ratio,
        "low_contention_ok": cell["occ_abort_rate"] <= max_abort_rate,
    }


def run_ycsb(args):
    rows = load_ycsb(args.ycsb_csv)
    comparison = ycsb_comparison(rows)
    summary = {
        "bench": "ycsb-kv",
        "tool": "scripts/bench_summary.py",
        "rows": rows,
        "comparison": comparison,
        "headline": ycsb_headline(
            comparison, args.workload, args.min_occ_ratio,
            args.max_abort_rate
        ),
    }
    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=False)
        f.write("\n")

    h = summary["headline"]
    print(
        f"YCSB-{h['workload'].upper()} zipf={h['zipf']:.2f}: "
        f"occ {h['occ_kops_s']:.0f} kops/s vs 2pl "
        f"{h['2pl_kops_s']:.0f} kops/s "
        f"(ratio {h['occ_over_2pl']:.2f}, floor {h['ratio_floor']:.2f}) "
        f"{'OK' if h['ratio_ok'] else 'REGRESSION'}; "
        f"occ abort rate {h['occ_abort_rate']:.4f} "
        f"{'OK' if h['low_contention_ok'] else 'CONTENDED'}"
    )
    return 0 if h["ratio_ok"] and h["low_contention_ok"] else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards-csv")
    parser.add_argument("--hotpath-csv")
    parser.add_argument("--ycsb-csv")
    parser.add_argument("--loadgen-json")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-simd-speedup", type=float, default=1.5)
    parser.add_argument("--max-allocs", type=float, default=0.0)
    parser.add_argument("--workload", default="b")
    parser.add_argument("--min-occ-ratio", type=float, default=1.0)
    parser.add_argument("--max-abort-rate", type=float, default=0.05)
    parser.add_argument("--out", required=True)
    args = parser.parse_args()

    given = [
        name
        for name, value in (
            ("--shards-csv", args.shards_csv),
            ("--hotpath-csv", args.hotpath_csv),
            ("--ycsb-csv", args.ycsb_csv),
        )
        if value
    ]
    if len(given) != 1:
        parser.error(
            "give exactly one of --shards-csv / --hotpath-csv / --ycsb-csv"
        )
    if args.hotpath_csv:
        return run_hotpath(args)
    if args.ycsb_csv:
        return run_ycsb(args)

    cells = load_sweep(args.shards_csv)
    summary = {
        "bench": "sharded-validation-tier",
        "tool": "scripts/bench_summary.py",
        "sweep": cells,
        "headline": headline(cells),
    }
    if args.loadgen_json:
        summary["service"] = load_service(args.loadgen_json)

    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=False)
        f.write("\n")

    h = summary["headline"]
    print(
        f"S=4 vs S=1 at cross={h['cross_fraction']:.2%}: "
        f"{h['s4_speedup']:.2f}x "
        f"({'OK' if h['s4_beats_s1'] else 'REGRESSION'})"
    )
    if not h["s4_beats_s1"]:
        return 1
    service = summary.get("service")
    if service is not None and not service["accounting_balanced"]:
        print("service accounting unbalanced", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
