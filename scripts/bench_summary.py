#!/usr/bin/env python3
"""Distill bench outputs into one committed JSON summary.

Two modes, selected by which input CSV is given (exactly one):

  * --shards-csv: the CSV written by `bench/ablation_shards --csv=...`
    — one row per (shards, cross_fraction) sweep cell with modelled
    throughput and speedup. Optionally --loadgen-json adds a
    server-side telemetry file written by `bench/svc_loadgen
    --shards=N --telemetry-server=...`, from which the service-level
    shard counters and stage histograms are lifted. Output:
    BENCH_shard.json. Exits nonzero if S=4 stops beating S=1 at <= 1%
    cross-shard traffic (the scaling canary).

  * --hotpath-csv: the CSV written by `bench/micro_validate --csv=...`
    — one row per signature/window geometry with the bit-sliced vs
    scalar classify latency and the steady-state pipeline
    allocations/validation. Output: BENCH_hotpath.json. Exits nonzero
    if, on the paper geometry (W=64, 512-bit), the bit-sliced kernel's
    speedup falls below --min-speedup (default 2.0) or
    allocations/validation exceed --max-allocs (default 0.0) — the
    hot-path perf canary ctest runs on every build.

Usage:
  bench_summary.py --shards-csv CSV [--loadgen-json FILE] --out FILE
  bench_summary.py --hotpath-csv CSV [--min-speedup X] [--max-allocs N]
                   --out FILE
"""

import argparse
import csv
import json
import sys


def load_sweep(path):
    cells = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            cells.append(
                {
                    "shards": int(row["shards"]),
                    "cross_fraction": float(row["cross_fraction"]),
                    "requests": int(row["requests"]),
                    "modeled_throughput_per_s": float(
                        row["modeled_throughput_per_s"]
                    ),
                    "speedup_vs_1": float(row["speedup_vs_1"]),
                    "commit_fraction": float(row["commit_fraction"]),
                    "cross_observed": float(row["cross_observed"]),
                    "imbalance": float(row["imbalance"]),
                }
            )
    if not cells:
        raise SystemExit(f"{path}: no sweep rows")
    return cells


def headline(cells):
    """The acceptance numbers: S=4 vs S=1 at <= 1% cross traffic."""

    def cell(shards, max_cross):
        best = None
        for c in cells:
            if c["shards"] == shards and c["cross_fraction"] <= max_cross:
                if best is None or c["cross_fraction"] > best["cross_fraction"]:
                    best = c
        return best

    s1 = cell(1, 0.01)
    s4 = cell(4, 0.01)
    if s1 is None or s4 is None:
        raise SystemExit("sweep lacks S=1 / S=4 cells at <= 1% cross")
    return {
        "cross_fraction": s4["cross_fraction"],
        "s1_throughput_per_s": s1["modeled_throughput_per_s"],
        "s4_throughput_per_s": s4["modeled_throughput_per_s"],
        "s4_speedup": s4["speedup_vs_1"],
        "s4_beats_s1": s4["modeled_throughput_per_s"]
        > s1["modeled_throughput_per_s"],
    }


def find_section(doc, key):
    """Depth-first search for the first dict holding `key` (the
    telemetry envelope nests the registry export)."""
    if isinstance(doc, dict):
        if key in doc and isinstance(doc[key], dict):
            return doc[key]
        for value in doc.values():
            found = find_section(value, key)
            if found is not None:
                return found
    elif isinstance(doc, list):
        for value in doc:
            found = find_section(value, key)
            if found is not None:
                return found
    return None


def load_service(path):
    with open(path) as f:
        doc = json.load(f)
    counters = find_section(doc, "counters") or {}
    histograms = find_section(doc, "histograms") or {}
    picked = {
        name: int(value)
        for name, value in sorted(counters.items())
        if name.startswith(("svc.", "shard."))
    }
    stages = {
        name: histograms[name]
        for name in ("svc.stage.shard_route", "svc.stage.shard_coord")
        if name in histograms
    }
    answered = (
        sum(v for k, v in picked.items() if k.startswith("svc.verdict."))
        + picked.get("svc.timeout", 0)
        + picked.get("svc.rejected", 0)
    )
    return {
        "counters": picked,
        "stage_histograms": stages,
        "accounting_balanced": picked.get("svc.requests", -1) == answered,
    }


def load_hotpath(path):
    rows = []
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            rows.append(
                {
                    "window": int(row["window"]),
                    "sig_bits": int(row["sig_bits"]),
                    "hashes": int(row["hashes"]),
                    "reads": int(row["reads"]),
                    "writes": int(row["writes"]),
                    "iters": int(row["iters"]),
                    "sliced_ns": float(row["sliced_ns"]),
                    "scalar_ns": float(row["scalar_ns"]),
                    "speedup": float(row["speedup"]),
                    "pipeline_validate_ns": float(
                        row["pipeline_validate_ns"]
                    ),
                    "allocs_per_validation": float(
                        row["allocs_per_validation"]
                    ),
                }
            )
    if not rows:
        raise SystemExit(f"{path}: no hot-path rows")
    return rows


def hotpath_headline(rows, min_speedup, max_allocs):
    """The acceptance numbers: the paper geometry W=64 / 512-bit."""
    canary = None
    for row in rows:
        if row["window"] == 64 and row["sig_bits"] == 512:
            canary = row
    if canary is None:
        raise SystemExit("hot-path sweep lacks the W=64 / 512-bit row")
    worst_allocs = max(r["allocs_per_validation"] for r in rows)
    return {
        "window": canary["window"],
        "sig_bits": canary["sig_bits"],
        "sliced_ns": canary["sliced_ns"],
        "scalar_ns": canary["scalar_ns"],
        "speedup": canary["speedup"],
        "pipeline_validate_ns": canary["pipeline_validate_ns"],
        "allocs_per_validation": worst_allocs,
        "speedup_ok": canary["speedup"] >= min_speedup,
        "allocs_ok": worst_allocs <= max_allocs,
    }


def run_hotpath(args):
    rows = load_hotpath(args.hotpath_csv)
    summary = {
        "bench": "validation-hot-path",
        "tool": "scripts/bench_summary.py",
        "sweep": rows,
        "headline": hotpath_headline(rows, args.min_speedup,
                                     args.max_allocs),
    }
    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=False)
        f.write("\n")

    h = summary["headline"]
    print(
        f"W={h['window']} m={h['sig_bits']}: bit-sliced "
        f"{h['sliced_ns']:.1f} ns vs scalar {h['scalar_ns']:.1f} ns "
        f"({h['speedup']:.2f}x, floor {args.min_speedup:.2f}x) "
        f"{'OK' if h['speedup_ok'] else 'REGRESSION'}; "
        f"allocs/validation {h['allocs_per_validation']:.3f} "
        f"{'OK' if h['allocs_ok'] else 'REGRESSION'}"
    )
    return 0 if h["speedup_ok"] and h["allocs_ok"] else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards-csv")
    parser.add_argument("--hotpath-csv")
    parser.add_argument("--loadgen-json")
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--max-allocs", type=float, default=0.0)
    parser.add_argument("--out", required=True)
    args = parser.parse_args()

    if bool(args.shards_csv) == bool(args.hotpath_csv):
        parser.error("give exactly one of --shards-csv / --hotpath-csv")
    if args.hotpath_csv:
        return run_hotpath(args)

    cells = load_sweep(args.shards_csv)
    summary = {
        "bench": "sharded-validation-tier",
        "tool": "scripts/bench_summary.py",
        "sweep": cells,
        "headline": headline(cells),
    }
    if args.loadgen_json:
        summary["service"] = load_service(args.loadgen_json)

    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=False)
        f.write("\n")

    h = summary["headline"]
    print(
        f"S=4 vs S=1 at cross={h['cross_fraction']:.2%}: "
        f"{h['s4_speedup']:.2f}x "
        f"({'OK' if h['s4_beats_s1'] else 'REGRESSION'})"
    )
    if not h["s4_beats_s1"]:
        return 1
    service = summary.get("service")
    if service is not None and not service["accounting_balanced"]:
        print("service accounting unbalanced", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
