#!/usr/bin/env python3
"""Join conflict top-K output back to string KV keys.

`svcctl top --json` (and the "topk" section of flight-recorder
incident files) reports conflicting *wire addresses* — opaque numbers
for KV traffic. `bench/ycsb_run --key-map-out=FILE` dumps the
key→slot/address dictionary of the same run: every key's slot plus its
two slot-derived wire addresses (KeyMapper::meta_addr = slot*2,
value_addr = slot*2+1). This script joins the two, so a hot-key
investigation reads "user37 (value cell)" instead of "address 9134".

Inputs:
  --keymap FILE   JSON from ycsb_run --key-map-out
                  ({"capacity":..., "mode": "resolved"|"home",
                    "entries":[{"key","slot","meta_addr","value_addr"}]})
  --topk FILE     either the raw `svcctl top --json` reply
                  ({"shards":[{"shard","offered","entries":[...]}]})
                  or a flight-recorder incident file (its "topk"
                  object is used).

Output: one table row per top-K entry — shard, address, the resolved
key and which of its cells (meta/value) the address names, count and
error — plus, with --json FILE, the same rows as JSON for scripting.

Exit status: 0 on success; 1 if the top-K table has entries but not a
single address resolved against the key map (almost always a capacity
mismatch between the dump and the run — the mapping depends on the
table capacity).

Usage: resolve_topk.py --keymap FILE --topk FILE [--json FILE]
"""

import argparse
import json
import sys


def load_keymap(path):
    with open(path) as f:
        doc = json.load(f)
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise SystemExit(f"{path}: no 'entries' array (not a key map?)")
    by_addr = {}
    for entry in entries:
        by_addr[entry["meta_addr"]] = (entry["key"], "meta")
        by_addr[entry["value_addr"]] = (entry["key"], "value")
    return doc, by_addr


def load_topk(path):
    with open(path) as f:
        doc = json.load(f)
    # Incident files nest the table under "topk"; svcctl top --json is
    # the table itself.
    table = doc.get("topk", doc)
    shards = table.get("shards")
    if not isinstance(shards, list):
        raise SystemExit(f"{path}: no 'shards' array (not a top-K table?)")
    return shards


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keymap", required=True)
    parser.add_argument("--topk", required=True)
    parser.add_argument("--json", dest="json_out")
    args = parser.parse_args()

    keymap_doc, by_addr = load_keymap(args.keymap)
    shards = load_topk(args.topk)

    rows = []
    total = resolved = 0
    for shard in shards:
        for entry in shard.get("entries", []):
            total += 1
            addr = entry["key"]
            key, cell = by_addr.get(addr, (None, None))
            if key is not None:
                resolved += 1
            rows.append(
                {
                    "shard": shard.get("shard"),
                    "addr": addr,
                    "key": key,
                    "cell": cell,
                    "count": entry.get("count"),
                    "error": entry.get("error"),
                }
            )

    print(f"{'shard':>5} {'addr':>12} {'key':>16} {'cell':>6} "
          f"{'count':>10} {'error':>8}")
    for row in rows:
        print(
            f"{row['shard']:>5} {row['addr']:>12} "
            f"{row['key'] or '?':>16} {row['cell'] or '?':>6} "
            f"{row['count']:>10} {row['error']:>8}"
        )
    print(
        f"resolved {resolved}/{total} addresses against "
        f"{args.keymap} (mode {keymap_doc.get('mode', '?')}, capacity "
        f"{keymap_doc.get('capacity', '?')})"
    )

    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump({"entries": rows}, f, indent=2)
            f.write("\n")

    if total > 0 and resolved == 0:
        print(
            "resolve_topk: no address resolved — key map and top-K "
            "table almost certainly come from different --capacity "
            "runs",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
