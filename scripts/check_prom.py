#!/usr/bin/env python3
"""Lint a Prometheus text exposition (svcctl prom / --prom-out).

Usage: check_prom.py SCRAPE1 [SCRAPE2]

Single-scrape checks:

1. Every non-comment line parses as `name{labels} value` or
   `name value` with metric and label names matching the Prometheus
   charset [a-zA-Z_:][a-zA-Z0-9_:]*.
2. Every sample belongs to a family announced by exactly one preceding
   `# TYPE <family> <kind>` line with kind in {counter, gauge,
   summary}. Companion samples of a summary (`_sum`, `_count`) bind to
   their base family; exact-extreme companions (`_min`, `_max`) are
   exported as their own gauge families.
3. Counter samples end in `_total` and are non-negative; `quantile`
   label values lie in [0, 1].

Two-scrape check:

4. Counters are monotone: for every counter family present in both
   files, value(SCRAPE2) >= value(SCRAPE1). SCRAPE2 must be the later
   scrape of the same process.

Exit 0 and print a summary on success; exit 1 with a message naming
the offending line otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[^{\s]+)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$")
LABEL_RE = re.compile(r'^(?P<key>[^=]+)="(?P<val>[^"]*)"$')
VALID_TYPES = ("counter", "gauge", "summary")


def fail(msg):
    print(f"check_prom: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_scrape(path):
    """Return (types, values): family -> type, and sample name (with
    sorted labels) -> float value. Fails on any lint violation."""
    types = {}
    values = {}
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")
    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    fail(f"{where}: malformed TYPE line: {line!r}")
                family, kind = parts[2], parts[3]
                if not NAME_RE.match(family):
                    fail(f"{where}: bad family name {family!r}")
                if kind not in VALID_TYPES:
                    fail(f"{where}: TYPE {kind!r} not in {VALID_TYPES}")
                if family in types:
                    fail(f"{where}: duplicate TYPE for {family!r}")
                types[family] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{where}: unparseable sample line: {line!r}")
        name = m.group("name")
        if not NAME_RE.match(name):
            fail(f"{where}: bad metric name {name!r}")
        labels = {}
        if m.group("labels"):
            for part in m.group("labels").split(","):
                lm = LABEL_RE.match(part)
                if not lm:
                    fail(f"{where}: bad label pair {part!r}")
                key = lm.group("key")
                if not NAME_RE.match(key):
                    fail(f"{where}: bad label name {key!r}")
                labels[key] = lm.group("val")
        try:
            value = float(m.group("value"))
        except ValueError:
            fail(f"{where}: non-numeric value {m.group('value')!r}")

        # Bind the sample to its announcing family: exact name, or the
        # base family for summary companions.
        family = name
        if family not in types:
            for suffix in ("_sum", "_count"):
                if name.endswith(suffix) and name[:-len(suffix)] in types:
                    family = name[:-len(suffix)]
                    break
        kind = types.get(family)
        if kind is None:
            fail(f"{where}: sample {name!r} has no preceding # TYPE")
        if kind == "counter":
            if not name.endswith("_total"):
                fail(f"{where}: counter sample {name!r} does not end "
                     f"in _total")
            if value < 0:
                fail(f"{where}: counter {name!r} is negative ({value})")
        if "quantile" in labels:
            if kind != "summary":
                fail(f"{where}: quantile label on non-summary {name!r}")
            try:
                q = float(labels["quantile"])
            except ValueError:
                fail(f"{where}: non-numeric quantile "
                     f"{labels['quantile']!r}")
            if not 0.0 <= q <= 1.0:
                fail(f"{where}: quantile {q} outside [0, 1]")

        key = name + "".join(
            f'|{k}={v}' for k, v in sorted(labels.items()))
        values[key] = (value, kind, family)
    if not types:
        fail(f"{path}: no # TYPE lines (empty exposition?)")
    return types, values


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    types1, values1 = parse_scrape(sys.argv[1])
    msg = (f"check_prom: OK: {sys.argv[1]}: {len(types1)} families, "
           f"{len(values1)} samples")
    if len(sys.argv) == 3:
        _, values2 = parse_scrape(sys.argv[2])
        checked = 0
        for key, (v1, kind, family) in values1.items():
            if kind != "counter" or key not in values2:
                continue
            v2 = values2[key][0]
            if v2 < v1:
                fail(f"counter {family!r} went backwards between "
                     f"scrapes: {v1} -> {v2}")
            checked += 1
        if checked == 0:
            fail("no counter family present in both scrapes — "
                 "monotonicity unverifiable (wrong files?)")
        msg += f"; {checked} counters monotone across scrapes"
    print(msg)


if __name__ == "__main__":
    main()
