#!/usr/bin/env bash
# Rebuild and regenerate every paper figure/table plus the ablations,
# collecting outputs under results/. Used to refresh EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/*; do
    name="$(basename "$bench")"
    echo "=== $name ==="
    "$bench" | tee "results/$name.txt"
done
echo "outputs written to results/"
