#!/usr/bin/env python3
"""Merge telemetry JSON files from several processes of one run.

Each input is an envelope written by obs::TelemetrySession:

  { "traceEvents": [...], "metrics": {...},
    "meta": {"pid": P, "base_time_ns": B, "export_seq": S} }

The exporter rebases every timestamp to the process's own first event
and always writes pid 1, so files from different processes cannot be
overlaid as-is. This script splices them into one Perfetto-loadable
trace:

  * Timestamps are re-aligned on the shared monotonic clock: the
    earliest "base_time_ns" across the inputs becomes time zero and
    every event is shifted by its file's offset from it. All processes
    must come from the same host and boot (CLOCK_MONOTONIC is
    host-wide), which holds for the svc server + clients of one run.
  * Every event gets its file's real pid, so Perfetto renders one
    process track group per input and flow arrows (ph "s"/"f" with a
    shared id — trace ids embed the client pid, so they never collide
    across files) connect client and server spans across them.
  * Metrics merge by name: counters sum; gauges pool their sample
    statistics (the "last" of the last input wins); histogram summaries
    combine conservatively (counts sum, means weight by count, max and
    quantiles take the worst input — exact bucket merges would need the
    raw buckets, which the envelope does not carry).

Inputs are sanity-checked before merging: each process stamps its
envelopes with a strictly increasing "export_seq" (telemetry.cc), so
two files from the same pid must carry distinct, in-order sequence
numbers — a duplicate or out-of-order pair means a stale file from an
earlier run (or the same capture passed twice) is about to be summed
into the metrics, and the merge is refused. Files without the stamp
(older captures) skip the check with a warning.

The merged file keeps the envelope shape, so check_trace_json.py can
validate it like any single-process capture; "meta" records the merged
pids.

Usage: merge_trace_json.py OUTPUT INPUT [INPUT...]

Exit status 0 on success; 1 with a message on stderr otherwise.
"""

import json
import sys


def fail(message):
    print(f"merge_trace_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {path}: {error}")
    meta = doc.get("meta")
    if not isinstance(meta, dict) or "base_time_ns" not in meta:
        fail(f'{path} lacks the "meta" envelope (base_time_ns); '
             f"re-capture with a current build")
    if not isinstance(doc.get("traceEvents"), list):
        fail(f'{path} lacks the "traceEvents" array')
    return doc


def merge_gauge(into, add):
    samples = into.get("samples", 0) + add.get("samples", 0)
    if samples:
        into["mean"] = (
            into.get("mean", 0) * into.get("samples", 0)
            + add.get("mean", 0) * add.get("samples", 0)
        ) / samples
    into["min"] = min(into.get("min", 0), add.get("min", 0))
    into["max"] = max(into.get("max", 0), add.get("max", 0))
    into["last"] = add.get("last", 0)
    into["samples"] = samples


def merge_histogram(into, add):
    count = into.get("count", 0) + add.get("count", 0)
    if count:
        into["mean"] = (
            into.get("mean", 0) * into.get("count", 0)
            + add.get("mean", 0) * add.get("count", 0)
        ) / count
    for key in ("max", "p50", "p90", "p99"):
        into[key] = max(into.get(key, 0), add.get(key, 0))
    into["count"] = count


def merge_metrics(into, add):
    for name, value in add.get("counters", {}).items():
        counters = into.setdefault("counters", {})
        counters[name] = counters.get(name, 0) + value
    for name, value in add.get("gauges", {}).items():
        gauges = into.setdefault("gauges", {})
        if name in gauges:
            merge_gauge(gauges[name], value)
        else:
            gauges[name] = dict(value)
    for name, value in add.get("histograms", {}).items():
        histograms = into.setdefault("histograms", {})
        if name in histograms:
            merge_histogram(histograms[name], value)
        else:
            histograms[name] = dict(value)


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    out_path, in_paths = argv[1], argv[2:]

    docs = [load(path) for path in in_paths]
    base = min(doc["meta"]["base_time_ns"] for doc in docs)

    # Per-pid export_seq must be unique and in order: anything else
    # means a stale or duplicated per-process file.
    last_seq = {}
    for doc, path in zip(docs, in_paths):
        meta = doc["meta"]
        pid = meta.get("pid", 0)
        seq = meta.get("export_seq")
        if seq is None:
            print(
                f"merge_trace_json: WARNING: {path} carries no "
                f"export_seq (older capture); duplicate detection "
                f"skipped for it",
                file=sys.stderr,
            )
            continue
        if pid in last_seq:
            prev_seq, prev_path = last_seq[pid]
            if seq == prev_seq:
                fail(
                    f"{path} and {prev_path} are the same export "
                    f"(pid {pid}, export_seq {seq}); remove the "
                    f"duplicate"
                )
            if seq < prev_seq:
                fail(
                    f"{path} (pid {pid}, export_seq {seq}) is older "
                    f"than {prev_path} (export_seq {prev_seq}); pass "
                    f"per-process files in export order"
                )
        last_seq[pid] = (seq, path)

    events = []
    metrics = {"counters": {}, "gauges": {}, "histograms": {}}
    pids = []
    for doc, path in zip(docs, in_paths):
        meta = doc["meta"]
        pid = meta.get("pid", 0)
        pids.append(pid)
        # ts is microseconds (Chrome convention); the offset is ns.
        shift_us = (meta["base_time_ns"] - base) / 1e3
        for event in doc["traceEvents"]:
            event = dict(event)
            event["pid"] = pid
            if "ts" in event:
                event["ts"] = event["ts"] + shift_us
            events.append(event)
        merge_metrics(metrics, doc.get("metrics", {}))

    events.sort(key=lambda e: e.get("ts", 0))
    merged = {
        "traceEvents": events,
        "metrics": metrics,
        "meta": {"pid": 0, "base_time_ns": base, "merged_pids": pids},
    }
    try:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(merged, handle, indent=1)
            handle.write("\n")
    except OSError as error:
        fail(f"cannot write {out_path}: {error}")
    print(
        f"merge_trace_json: OK: {len(events)} events from "
        f"{len(in_paths)} file(s) (pids {pids}) -> {out_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
