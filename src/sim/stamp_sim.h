/// @file
/// Glue between the STAMP workloads and the trace simulator: capture a
/// workload's trace, build backends by name, and run the full Fig. 10
/// grid (workload x backend x thread count).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/event_sim.h"
#include "stamp/harness.h"
#include "stamp/trace_capture.h"

namespace rococo::sim {

/// Run @p workload once single-threaded under the recording runtime
/// and return its transaction trace.
stamp::SimTrace capture_workload_trace(const std::string& workload,
                                       const stamp::WorkloadParams& params);

/// Backend factory. Names: "seq", "lock", "tinystm", "tsx", "rococo",
/// "htm-rococo" (the §7 directory-HTM deployment of the validator).
std::unique_ptr<SimBackend> make_backend(const std::string& name);

/// One cell of the Fig. 10 grid.
struct StampSimRow
{
    std::string workload;
    std::string backend;
    unsigned threads = 1;
    double seconds = 0;
    double speedup = 0; ///< vs the 1-thread sequential baseline
    double abort_rate = 0;
    double offload_abort_rate = 0; ///< FPGA-side aborts / all attempts
    bool livelocked = false;
};

/// Simulate @p trace under @p backend_name at every thread count; the
/// speedup baseline is the sequential backend at 1 thread on the same
/// trace.
std::vector<StampSimRow> simulate_grid(const std::string& workload,
                                       const stamp::SimTrace& trace,
                                       const std::vector<std::string>& backends,
                                       const std::vector<int>& thread_counts,
                                       const MachineModel& machine = {});

} // namespace rococo::sim
