#include "sim/trace_stats.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace rococo::sim {
namespace {

SetSizeStats
summarize(std::vector<uint64_t> sizes)
{
    SetSizeStats out;
    if (sizes.empty()) return out;
    uint64_t total = 0;
    for (uint64_t s : sizes) total += s;
    out.mean = static_cast<double>(total) /
               static_cast<double>(sizes.size());
    std::sort(sizes.begin(), sizes.end());
    out.p50 = sizes[sizes.size() / 2];
    out.p95 = sizes[std::min(sizes.size() - 1,
                             sizes.size() * 95 / 100)];
    out.max = sizes.back();
    return out;
}

bool
sorted_overlap(const std::vector<uint64_t>& a,
               const std::vector<uint64_t>& b)
{
    size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            return true;
        }
    }
    return false;
}

bool
conflicts(const stamp::SimTxn& a, const stamp::SimTxn& b)
{
    return sorted_overlap(a.reads, b.writes) ||
           sorted_overlap(a.writes, b.reads) ||
           sorted_overlap(a.writes, b.writes);
}

} // namespace

TraceCharacterization
characterize(const stamp::SimTrace& trace, size_t sample_pairs,
             uint64_t seed)
{
    TraceCharacterization out;
    out.txns = trace.txns.size();
    if (trace.txns.empty()) return out;

    std::vector<uint64_t> read_sizes, write_sizes;
    read_sizes.reserve(out.txns);
    write_sizes.reserve(out.txns);
    uint64_t read_only = 0;
    for (const auto& txn : trace.txns) {
        read_sizes.push_back(txn.reads.size());
        write_sizes.push_back(txn.writes.size());
        read_only += txn.read_only() ? 1 : 0;
    }
    out.reads = summarize(std::move(read_sizes));
    out.writes = summarize(std::move(write_sizes));
    out.read_only_fraction =
        static_cast<double>(read_only) / static_cast<double>(out.txns);

    Xoshiro256 rng(seed);
    uint64_t hits = 0;
    const size_t pairs = trace.txns.size() < 2 ? 0 : sample_pairs;
    for (size_t p = 0; p < pairs; ++p) {
        const size_t a = rng.below(trace.txns.size());
        size_t b = rng.below(trace.txns.size());
        if (a == b) b = (b + 1) % trace.txns.size();
        hits += conflicts(trace.txns[a], trace.txns[b]) ? 1 : 0;
    }
    out.pairwise_conflict =
        pairs ? static_cast<double>(hits) / static_cast<double>(pairs)
              : 0.0;

    const double footprint = out.reads.mean + out.writes.mean;
    out.length_class =
        footprint < 8 ? "short" : (footprint < 32 ? "medium" : "long");
    out.contention_class = out.pairwise_conflict < 0.01
                               ? "low"
                               : (out.pairwise_conflict < 0.10 ? "medium"
                                                               : "high");
    return out;
}

} // namespace rococo::sim
