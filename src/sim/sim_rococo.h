/// @file
/// ROCoCoTM simulator backend: eager CPU-side detection + real ROCoCo
/// validation offloaded to the FPGA timing model.
///
/// The commit decision path runs the *actual* sliding-window
/// reachability algorithm (core/rococo_validator.h) — the simulator
/// models timing, not the algorithm. Per attempt:
///  1. LSA snapshot: if no read was invalidated, ValidTS is the current
///     commit count and validation sees no forward edges.
///  2. If reads were invalidated, ValidTS freezes at the first
///     invalidating commit; reading a *newer* version after that point
///     is the MissSet abort — eager, CPU-side, before any offload
///     (the fast-fail path of §5.1).
///  3. Otherwise the read/write sets + ValidTS go to the modelled FPGA
///     pipeline: CCI round trip + pipeline occupancy queueing, verdict
///     by the exact ROCoCo validator (commit / cycle / window
///     overflow).
/// Read-only transactions commit directly on the CPU (§5.3).
#pragma once

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "core/rococo_validator.h"
#include "fpga/cci_link.h"
#include "sim/sim_backend.h"

namespace rococo::sim {

class RococoSimBackend final : public SimBackend
{
  public:
    /// @param pipelined true models the fully-pipelined FPGA engine
    ///     (Fig. 6 (d)): a request only occupies the address stream.
    ///     false models centralized validation on an exclusive core
    ///     (Fig. 6 (c)): the validator is busy for the whole request
    ///     latency, serializing validations.
    explicit RococoSimBackend(size_t window = 64,
                              fpga::LinkParams link = {},
                              bool pipelined = true)
        : window_(window), link_(link), pipelined_(pipelined),
          name_("ROCoCoTM"), costs_(rococo_costs())
    {
    }

    /// Fully parameterized variant, used to model other deployments of
    /// the ROCoCo validator (e.g. a directory-based HTM, §7).
    RococoSimBackend(std::string name, BackendCosts costs, size_t window,
                     fpga::LinkParams link, bool pipelined = true)
        : window_(window), link_(link), pipelined_(pipelined),
          name_(std::move(name)), costs_(costs)
    {
    }

    std::string name() const override { return name_; }
    BackendCosts costs() const override { return costs_; }

    void
    reset(unsigned threads) override
    {
        verdict_due_.assign(threads, 0.0);
        validator_ = std::make_unique<core::ExactRococoValidator>(
            window_, /*strict_read_only=*/false);
        versions_.clear();
        fpga_free_ = 0;
        counters_ = CounterBag();
        total_offload_ns_ = 0;
        offload_requests_ = 0;
    }

    SimDecision
    decide(const AttemptInfo& info) override
    {
        const auto& txn = *info.txn;

        // 1-2: LSA snapshot reconstruction from the version table.
        uint64_t valid_ts = validator_->next_cid();
        double freeze_time = -1;
        for (size_t i = 0; i < txn.reads.size(); ++i) {
            auto it = versions_.find(txn.reads[i]);
            if (it == versions_.end()) continue;
            const Version& v = it->second;
            if (v.time > (*info.read_times)[i]) {
                // Read the pre-v version: snapshot must predate v.
                if (v.cid < valid_ts) {
                    valid_ts = v.cid;
                    freeze_time = v.time;
                }
            }
        }
        if (freeze_time >= 0) {
            // MissSet check: a read of a version committed at/after the
            // frozen snapshot cannot be serialized — eager abort at
            // that read.
            double miss_time = -1;
            for (size_t i = 0; i < txn.reads.size(); ++i) {
                auto it = versions_.find(txn.reads[i]);
                if (it == versions_.end()) continue;
                const Version& v = it->second;
                if (v.cid >= valid_ts &&
                    v.time <= (*info.read_times)[i]) {
                    miss_time = miss_time < 0
                                    ? (*info.read_times)[i]
                                    : std::min(miss_time,
                                               (*info.read_times)[i]);
                }
            }
            if (miss_time >= 0) {
                SimDecision d;
                d.commit = false;
                d.abort_time = std::max(miss_time, info.start_time);
                d.abort_kind = "eager_miss";
                counters_.bump("cpu_eager_aborts");
                return d;
            }
        }

        // Read-only fast path.
        if (txn.writes.empty()) {
            counters_.bump("read_only_commits");
            return {};
        }

        // 3: offload through the meta-pipeline (Fig. 6): the executor
        // overlaps the previous transaction's validation with this
        // transaction's execution, so the thread only stalls if it
        // finishes executing before the previous verdict returned
        // (depth-1 software pipelining; the paper's "communication
        // latency amortized by overlapped transactions", §5.1).
        const double submit =
            std::max(info.commit_time, verdict_due_[info.thread]);
        const double submit_wait = submit - info.commit_time;

        const double half_link = link_.round_trip_ns() / 2.0;
        const double arrive = submit + half_link;
        const double service_start = std::max(arrive, fpga_free_);
        const double occupancy =
            pipelined_
                ? link_.service_interval_ns(txn.reads.size(),
                                            txn.writes.size())
                : link_.pipeline_latency_ns(txn.reads.size(),
                                            txn.writes.size());
        fpga_free_ = service_start + occupancy;
        const double verdict_at =
            service_start +
            link_.pipeline_latency_ns(txn.reads.size(),
                                      txn.writes.size()) +
            half_link;
        verdict_due_[info.thread] = verdict_at;
        total_offload_ns_ += verdict_at - submit;
        ++offload_requests_;

        const core::ValidationResult verdict =
            validator_->validate(txn.reads, txn.writes, valid_ts);
        if (verdict.verdict != core::Verdict::kCommit) {
            // An aborted transaction cannot be overlapped: the thread
            // must learn the verdict before re-executing.
            SimDecision d;
            d.commit = false;
            d.abort_time = info.commit_time;
            d.commit_extra_ns = verdict_at - info.commit_time;
            d.offload_abort = true;
            d.abort_kind = verdict.verdict == core::Verdict::kAbortCycle
                               ? "fpga_cycle"
                               : "fpga_overflow";
            return d;
        }

        for (uint64_t addr : txn.writes) {
            // Visibility at the decision instant: the FPGA serializes
            // decisions, and a reader hitting the not-yet-written-back
            // address stalls on the update set (Algorithm 1 line 5)
            // and then observes the new version — the in-flight window
            // causes waits, not stale reads.
            versions_[addr] = Version{info.commit_time, verdict.cid};
        }
        SimDecision d;
        d.commit_extra_ns = submit_wait;
        return d;
    }

    CounterBag detail() const override { return counters_; }

    /// Mean end-to-end offload latency per validated request (ns),
    /// including pipeline queueing — the ROCoCoTM series of Fig. 11.
    double
    mean_offload_latency_ns() const
    {
        return offload_requests_
                   ? total_offload_ns_ / static_cast<double>(offload_requests_)
                   : 0.0;
    }

  private:
    struct Version
    {
        double time = 0; ///< when the write became visible
        uint64_t cid = 0;
    };

    size_t window_;
    fpga::CciLinkModel link_;
    bool pipelined_;
    std::string name_;
    BackendCosts costs_;
    std::unique_ptr<core::ExactRococoValidator> validator_;
    std::unordered_map<uint64_t, Version> versions_;
    double fpga_free_ = 0;
    std::vector<double> verdict_due_; ///< per-thread pending verdict
    CounterBag counters_;
    double total_offload_ns_ = 0;
    uint64_t offload_requests_ = 0;
};

} // namespace rococo::sim
