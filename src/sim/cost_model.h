/// @file
/// Cost and machine models for the trace-driven simulator.
///
/// Per-operation costs are first-order constants chosen to match the
/// relative overheads reported for each system class (raw hardware
/// speed for HTM, per-access lock/metadata costs for the STM, bloom
/// costs + offload latency for ROCoCoTM — §6.2-6.4); the machine model
/// reproduces the HARP2 topology: 14 physical cores, hyper-threading
/// up to 28 with a cache-thrashing penalty that hits
/// metadata-heavy runtimes harder (the paper's explanation for
/// TinySTM's 14 -> 28 behaviour, §6.3).
#pragma once

#include <cstdint>

namespace rococo::sim {

/// Per-operation costs (ns) of one TM backend.
struct BackendCosts
{
    double begin_ns = 10;
    double read_ns = 4;
    double write_ns = 4;
    /// Computation per traced op (identical across backends).
    double work_per_op_ns = 6;
    double commit_fixed_ns = 20;
    double commit_per_write_ns = 5;
    /// Commit-time validation per read-set entry (the Fig. 11 term).
    double validate_per_read_ns = 0;
    double abort_penalty_ns = 80;
    /// How strongly hyper-threaded cache thrashing inflates this
    /// backend's per-access costs (1 = baseline memory footprint).
    double metadata_sensitivity = 1.0;
};

/// Execution platform model (defaults: HARP2's Xeon).
struct MachineModel
{
    unsigned physical_cores = 14;
    unsigned hyper_threads = 28;
    /// Per-access inflation when all threads share a physical core's
    /// resources (threads > physical_cores).
    double ht_base_penalty = 1.25;
    /// Additional inflation per unit of metadata_sensitivity above 1.
    double ht_metadata_penalty = 0.35;
    /// Per-core coherence cost of shared per-location metadata: every
    /// additional active core bouncing lock-table lines inflates a
    /// metadata-heavy runtime's accesses (ROCoCoTM's global signatures
    /// avoid this — "fast paths ... without any atomic operation",
    /// §5.1).
    double coherence_penalty = 0.045;

    /// Cost multiplier at @p threads for a backend with sensitivity
    /// @p metadata_sensitivity.
    double
    inflation(unsigned threads, double metadata_sensitivity) const
    {
        const double active =
            threads < physical_cores ? threads : physical_cores;
        const double sens =
            metadata_sensitivity > 1.0 ? metadata_sensitivity - 1.0 : 0.0;
        const double coherence =
            1.0 + coherence_penalty * sens * (active - 1.0);
        if (threads <= physical_cores) return coherence;
        const double ht = ht_base_penalty + ht_metadata_penalty * sens;
        return coherence * ht;
    }

    /// Effective parallelism: hyper-threads beyond the physical cores
    /// only contribute partially.
    double
    effective_cores(unsigned threads) const
    {
        if (threads <= physical_cores) return threads;
        const double ht = threads - physical_cores;
        return physical_cores + 0.6 * ht;
    }
};

/// Reference cost sets per backend family.
BackendCosts sequential_costs();
BackendCosts global_lock_costs();
BackendCosts tinystm_costs();
BackendCosts htm_costs();
BackendCosts rococo_costs();

} // namespace rococo::sim
