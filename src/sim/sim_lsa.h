/// @file
/// TinySTM/LSA simulator backend: lazy conflict detection with
/// snapshot extension. A transaction aborts iff one of its reads was
/// overwritten (by a commit) after the read happened — LSA's extension
/// forgives writes that landed before the read. Write-write conflicts
/// are serialized by commit-time locking and need no abort. Detection
/// is lazy: the abort is noticed at commit time, and the commit-time
/// read-set validation cost (validate_per_read_ns) is the Fig. 11
/// overhead term.
#pragma once

#include <unordered_map>

#include "sim/sim_backend.h"

namespace rococo::sim {

class LsaSimBackend final : public SimBackend
{
  public:
    std::string name() const override { return "TinySTM"; }
    BackendCosts costs() const override { return tinystm_costs(); }

    void
    reset(unsigned) override
    {
        last_write_.clear();
    }

    SimDecision
    decide(const AttemptInfo& info) override
    {
        const auto& txn = *info.txn;
        for (size_t i = 0; i < txn.reads.size(); ++i) {
            auto it = last_write_.find(txn.reads[i]);
            if (it != last_write_.end() &&
                it->second > (*info.read_times)[i]) {
                SimDecision abort;
                abort.commit = false;
                abort.abort_time = info.commit_time; // lazy detection
                abort.abort_kind = "read_invalidated";
                return abort;
            }
        }
        for (uint64_t addr : txn.writes) {
            last_write_[addr] = info.commit_time;
        }
        return {};
    }

  private:
    std::unordered_map<uint64_t, double> last_write_;
};

} // namespace rococo::sim
