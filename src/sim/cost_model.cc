#include "sim/cost_model.h"

namespace rococo::sim {

BackendCosts
sequential_costs()
{
    BackendCosts c;
    c.begin_ns = 0;
    c.read_ns = 1.5;
    c.write_ns = 1.5;
    c.commit_fixed_ns = 0;
    c.commit_per_write_ns = 0;
    c.abort_penalty_ns = 0;
    c.metadata_sensitivity = 1.0;
    return c;
}

BackendCosts
global_lock_costs()
{
    BackendCosts c;
    c.begin_ns = 40; // lock acquisition under contention handled by queueing
    c.read_ns = 1.5;
    c.write_ns = 1.5;
    c.commit_fixed_ns = 20;
    c.metadata_sensitivity = 1.0;
    return c;
}

BackendCosts
tinystm_costs()
{
    BackendCosts c;
    c.begin_ns = 15;
    // Two lock-word loads + version compare per read; redo-log insert
    // per write.
    c.read_ns = 9;
    c.write_ns = 7;
    c.commit_fixed_ns = 40;
    c.commit_per_write_ns = 18; // CAS per write stripe
    c.validate_per_read_ns = 12; // commit-time read-set validation walk
    c.abort_penalty_ns = 120;
    // Per-location lock table: large metadata footprint.
    c.metadata_sensitivity = 2.0;
    return c;
}

BackendCosts
htm_costs()
{
    BackendCosts c;
    // Hardware-speed accesses; begin/commit are the XBEGIN/XEND costs.
    c.begin_ns = 45;
    c.read_ns = 1.8;
    c.write_ns = 1.8;
    c.commit_fixed_ns = 35;
    c.commit_per_write_ns = 0;
    c.abort_penalty_ns = 150;
    c.metadata_sensitivity = 1.3; // txn footprint pinned in private cache
    return c;
}

BackendCosts
rococo_costs()
{
    BackendCosts c;
    c.begin_ns = 15;
    // Update-set query (a few loads) + signature insert per read;
    // signature + redo insert per write. No per-location metadata.
    c.read_ns = 7;
    c.write_ns = 6;
    c.commit_fixed_ns = 25;       // request marshalling
    c.commit_per_write_ns = 6;    // write-back
    c.validate_per_read_ns = 0;   // validation offloaded (Fig. 11)
    c.abort_penalty_ns = 100;
    // Global signatures only: small metadata footprint.
    c.metadata_sensitivity = 1.15;
    return c;
}

} // namespace rococo::sim
