#include "sim/event_sim.h"

#include <queue>

#include "common/check.h"
#include "obs/registry.h"
#include "obs/telemetry.h"

namespace rococo::sim {
namespace {

struct ThreadState
{
    size_t txn_index = SIZE_MAX; ///< current transaction, SIZE_MAX = none
    unsigned attempt = 0;
    double start_time = 0;
    std::vector<double> read_times;
};

struct CommitEvent
{
    double time;
    unsigned thread;
    bool operator>(const CommitEvent& other) const
    {
        return time > other.time;
    }
};

} // namespace

SimResult
simulate(const stamp::SimTrace& trace, SimBackend& backend,
         const SimConfig& config)
{
    ROCOCO_CHECK(config.threads >= 1);
    backend.reset(config.threads);

    const BackendCosts costs = backend.costs();
    const double inflation =
        config.machine.inflation(config.threads, costs.metadata_sensitivity) *
        (config.threads > config.machine.physical_cores
             ? static_cast<double>(config.threads) /
                   config.machine.effective_cores(config.threads)
             : 1.0);

    auto execution_span = [&](const stamp::SimTxn& txn) {
        const double body =
            costs.read_ns * static_cast<double>(txn.reads.size()) +
            costs.write_ns * static_cast<double>(txn.writes.size()) +
            costs.work_per_op_ns * static_cast<double>(txn.ops);
        return (costs.begin_ns + body) * inflation;
    };
    auto commit_cost = [&](const stamp::SimTxn& txn) {
        return (costs.commit_fixed_ns +
                costs.commit_per_write_ns *
                    static_cast<double>(txn.writes.size()) +
                costs.validate_per_read_ns *
                    static_cast<double>(txn.reads.size())) *
               inflation;
    };

    SimResult result;
    if (trace.txns.empty()) return result;

    // Per-kind abort attribution for the telemetry export below;
    // maintained only while a TelemetrySession records.
    const bool telemetry = obs::telemetry_active();
    CounterBag abort_kinds;

    std::vector<ThreadState> threads(config.threads);
    std::priority_queue<CommitEvent, std::vector<CommitEvent>,
                        std::greater<CommitEvent>>
        events;

    size_t next_txn = 0;
    uint64_t total_attempts = 0;
    const double attempt_budget =
        config.max_attempt_factor * static_cast<double>(trace.txns.size());
    double makespan = 0;

    // Begin an attempt of thread t at ready_time; pushes its commit
    // event. Returns false if no work is left.
    auto start_attempt = [&](unsigned t, double ready_time) {
        ThreadState& ts = threads[t];
        if (ts.txn_index == SIZE_MAX) {
            if (next_txn >= trace.txns.size()) return false;
            ts.txn_index = next_txn++;
            ts.attempt = 0;
        }
        const stamp::SimTxn& txn = trace.txns[ts.txn_index];
        const double span = execution_span(txn);
        ts.start_time =
            backend.acquire_start(t, ready_time, span + commit_cost(txn));
        ts.read_times.assign(txn.reads.size(), 0);
        for (size_t i = 0; i < txn.reads.size(); ++i) {
            ts.read_times[i] =
                ts.start_time + span * static_cast<double>(i + 1) /
                                    static_cast<double>(txn.reads.size() + 1);
        }
        events.push({ts.start_time + span, t});
        ++total_attempts;
        return true;
    };

    for (unsigned t = 0; t < config.threads; ++t) {
        if (!start_attempt(t, 0.0)) break;
    }

    while (!events.empty()) {
        const CommitEvent event = events.top();
        events.pop();
        ThreadState& ts = threads[event.thread];
        const stamp::SimTxn& txn = trace.txns[ts.txn_index];

        AttemptInfo info;
        info.txn = &txn;
        info.thread = event.thread;
        info.start_time = ts.start_time;
        info.commit_time = event.time;
        info.read_times = &ts.read_times;
        info.attempt = ts.attempt;

        const SimDecision decision = backend.decide(info);
        double free_at;
        if (decision.commit) {
            ++result.commits;
            free_at =
                event.time + commit_cost(txn) + decision.commit_extra_ns;
            ts.txn_index = SIZE_MAX;
        } else {
            ++result.aborts;
            if (decision.offload_abort) ++result.offload_aborts;
            if (decision.abort_kind) result.detail.bump(decision.abort_kind);
            if (telemetry) {
                abort_kinds.bump(decision.abort_kind ? decision.abort_kind
                                                     : "unknown");
            }
            const double noticed =
                decision.abort_time > 0 ? decision.abort_time : event.time;
            free_at = noticed + decision.commit_extra_ns +
                      costs.abort_penalty_ns * inflation;
            ++ts.attempt;
        }
        makespan = std::max(makespan, free_at);

        if (static_cast<double>(total_attempts) > attempt_budget) {
            result.livelocked = true;
            break;
        }
        start_attempt(event.thread, free_at);
    }

    result.seconds = makespan * 1e-9;
    result.detail.add(backend.detail());
    if (telemetry) {
        // "sim.abort.<kind>" sums to "sim.abort" by construction (every
        // abort bumped exactly one kind above).
        auto& registry = obs::Registry::global();
        registry.counter("sim.commit").add(result.commits);
        registry.counter("sim.abort").add(result.aborts);
        registry.counter("sim.offload_abort").add(result.offload_aborts);
        for (const auto& [kind, count] : abort_kinds.counters()) {
            registry.counter("sim.abort." + kind).add(count);
        }
        registry.gauge("sim.makespan_s").set(result.seconds);
    }
    return result;
}

} // namespace rococo::sim
