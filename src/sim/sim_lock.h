/// @file
/// Trivial simulator backends: the always-commit sequential reference
/// and the single-global-lock TM (execution fully serialized).
#pragma once

#include "sim/sim_backend.h"

namespace rococo::sim {

/// Always commits, no serialization: pair with threads=1 for the
/// sequential baseline every speedup is measured against.
class SequentialSimBackend final : public SimBackend
{
  public:
    std::string name() const override { return "Sequential"; }
    BackendCosts costs() const override { return sequential_costs(); }
    void reset(unsigned) override {}
    SimDecision
    decide(const AttemptInfo&) override
    {
        return {};
    }
};

/// Global-lock TM: attempts queue on one lock; never aborts.
class GlobalLockSimBackend final : public SimBackend
{
  public:
    std::string name() const override { return "GlobalLock"; }
    BackendCosts costs() const override { return global_lock_costs(); }

    void
    reset(unsigned) override
    {
        lock_free_ = 0;
    }

    double
    acquire_start(unsigned, double ready_time, double duration_hint) override
    {
        const double start =
            ready_time > lock_free_ ? ready_time : lock_free_;
        lock_free_ = start + duration_hint;
        return start;
    }

    SimDecision
    decide(const AttemptInfo&) override
    {
        return {};
    }

  private:
    double lock_free_ = 0;
};

} // namespace rococo::sim
