/// @file
/// Simulated-TSX backend for the trace simulator: eager (2PL-like)
/// conflict detection against concurrently committed transactions,
/// capacity aborts, and the 4-retry global-lock fallback that gives
/// the 83.3% abort-rate ceiling (footnote 10). Eager detection makes
/// any R-W / W-R / W-W overlap with a concurrent committer fatal —
/// the root of the abort avalanche the paper observes at high thread
/// counts (§6.3).
#pragma once

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "sim/sim_backend.h"

namespace rococo::sim {

class HtmSimBackend final : public SimBackend
{
  public:
    /// @param retries speculative attempts before the lock fallback
    /// @param capacity footprint limit in accessed locations
    explicit HtmSimBackend(unsigned retries = 4, size_t capacity = 2048)
        : retries_(retries), capacity_(capacity)
    {
    }

    std::string name() const override { return "TSX"; }
    BackendCosts costs() const override { return htm_costs(); }

    /// Spurious-abort probability per speculative attempt once
    /// hyper-threading shares the private caches (threads > physical
    /// cores): sibling evictions kill transactional lines regardless of
    /// true conflicts. This drives the paper's 28-thread TSX collapse,
    /// "especially for 28-thread ssca2" (§6.3).
    static constexpr unsigned kPhysicalCores = 14;
    static constexpr double kHtSpuriousAbort = 0.45;

    void
    reset(unsigned threads) override
    {
        threads_ = threads;
        pending_fallback_.assign(threads, false);
        last_write_.clear();
        last_read_commit_.clear();
        aborted_write_.clear();
        aborted_access_.clear();
        fallback_lock_free_ = 0;
        last_fallback_commit_ = 0;
        rng_ = Xoshiro256(0xcafef00d);
    }

    double
    acquire_start(unsigned thread, double ready_time,
                  double duration_hint) override
    {
        if (!pending_fallback_[thread]) return ready_time;
        // Fallback attempts serialize on the global lock.
        const double start = std::max(ready_time, fallback_lock_free_);
        fallback_lock_free_ = start + duration_hint;
        return start;
    }

    SimDecision
    decide(const AttemptInfo& info) override
    {
        const auto& txn = *info.txn;
        const bool fallback = info.attempt > retries_;
        pending_fallback_[info.thread] = info.attempt + 1 > retries_;

        if (!fallback) {
            // Micro-architectural (spurious) aborts: cache-set
            // aliasing, interrupts and shared-cache evictions kill a
            // best-effort transaction with a probability that grows
            // with its footprint and with system activity; with
            // hyper-threading the sibling shares the L1 and the rate
            // jumps (the paper's "various indeterministic
            // micro-architectural conditions", §6.2, and the 28-thread
            // avalanche of §6.3).
            const double footprint = static_cast<double>(
                txn.reads.size() + txn.writes.size());
            double spurious =
                std::min(0.8, 0.0009 * threads_ * footprint);
            if (threads_ > kPhysicalCores) {
                const double footprint_factor =
                    std::min(1.0, footprint / 16.0 + 0.25);
                spurious = std::min(
                    0.9, spurious + kHtSpuriousAbort * footprint_factor);
            }
            if (rng_.chance(spurious)) {
                return abort_at(info.commit_time, "spurious");
            }
            // Doomed by a fallback transaction that ran during us.
            if (info.start_time < last_fallback_commit_) {
                return abort_at(
                    std::min(last_fallback_commit_, info.commit_time),
                    "fallback_doomed");
            }
            // Capacity: the footprint exceeds the private cache.
            const size_t cap_footprint =
                txn.reads.size() + txn.writes.size();
            if (cap_footprint > capacity_) {
                const double frac = static_cast<double>(capacity_) /
                                    static_cast<double>(cap_footprint);
                const double t = info.start_time +
                                 (info.commit_time - info.start_time) * frac;
                return abort_at(t, "capacity");
            }
            // Eager conflicts with concurrently committed transactions:
            // any overlap aborts, noticed at the conflicting commit.
            double conflict_time = -1;
            auto check = [&](const std::unordered_map<uint64_t, double>& tab,
                             uint64_t addr) {
                auto it = tab.find(addr);
                if (it != tab.end() && it->second > info.start_time) {
                    conflict_time = conflict_time < 0
                                        ? it->second
                                        : std::min(conflict_time,
                                                   it->second);
                }
            };
            for (uint64_t a : txn.reads) {
                check(last_write_, a);
                check(aborted_write_, a);
            }
            for (uint64_t a : txn.writes) {
                check(last_write_, a);
                check(last_read_commit_, a);
                check(aborted_access_, a);
            }
            if (conflict_time >= 0) {
                // Chain effect: this doomed attempt was itself holding
                // cache lines that invalidate others — record its
                // footprint so concurrent transactions see the abort
                // cascade ("an aborted transaction will cause more
                // transactions to abort in a chain", §6.3).
                const double t = std::min(conflict_time, info.commit_time);
                for (uint64_t a : txn.writes) {
                    aborted_write_[a] = t;
                    aborted_access_[a] = t;
                }
                for (uint64_t a : txn.reads) aborted_access_[a] = t;
                return abort_at(t, "conflict");
            }
        }

        // Commit (speculative or fallback).
        for (uint64_t a : txn.writes) last_write_[a] = info.commit_time;
        for (uint64_t a : txn.reads) {
            last_read_commit_[a] = info.commit_time;
        }
        if (fallback) {
            last_fallback_commit_ = info.commit_time;
            fallbacks_.bump("fallback_commits");
        }
        pending_fallback_[info.thread] = false;
        return {};
    }

    CounterBag detail() const override { return fallbacks_; }

  private:
    static SimDecision
    abort_at(double time, const char* kind)
    {
        SimDecision d;
        d.commit = false;
        d.abort_time = time;
        d.abort_kind = kind;
        return d;
    }

    unsigned retries_;
    size_t capacity_;
    std::unordered_map<uint64_t, double> last_write_;
    std::unordered_map<uint64_t, double> last_read_commit_;
    /// Footprints of aborted speculative attempts (chain-abort model).
    std::unordered_map<uint64_t, double> aborted_write_;
    std::unordered_map<uint64_t, double> aborted_access_;
    double fallback_lock_free_ = 0;
    double last_fallback_commit_ = 0;
    unsigned threads_ = 1;
    Xoshiro256 rng_{0xcafef00d};
    std::vector<bool> pending_fallback_;
    CounterBag fallbacks_;
};

} // namespace rococo::sim
