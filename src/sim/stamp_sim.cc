#include "sim/stamp_sim.h"

#include "common/check.h"
#include "sim/sim_htm.h"
#include "sim/sim_lock.h"
#include "sim/sim_lsa.h"
#include "sim/sim_rococo.h"

namespace rococo::sim {

namespace {

/// Non-transactional computation per TM access, calibrated to STAMP's
/// published transaction lengths. The recorder only sees TM accesses;
/// the real benchmarks do substantial private work per access (grid
/// search in labyrinth, geometry in yada, distance kernels in kmeans,
/// string digesting in genome/intruder), which determines how well the
/// fixed offload latency amortizes.
double
work_scale_for(const std::string& workload)
{
    if (workload == "labyrinth") return 30.0; // private-grid expansion
    if (workload == "yada") return 15.0;      // cavity geometry
    if (workload == "kmeans") return 10.0;    // distance kernel
    if (workload == "vacation") return 5.0;   // request parsing/logic
    if (workload == "genome") return 8.0;     // segment digesting
    if (workload == "intruder") return 8.0;   // packet decoding
    if (workload == "ssca2") return 2.0;      // nearly pure accesses
    return 3.0;
}

} // namespace

stamp::SimTrace
capture_workload_trace(const std::string& workload,
                       const stamp::WorkloadParams& params)
{
    auto instance = stamp::make_workload(workload, params);
    stamp::TraceCaptureTm recorder;
    stamp::run_workload(*instance, recorder, /*threads=*/1);
    stamp::SimTrace trace = recorder.take_trace();
    const double scale = work_scale_for(workload);
    for (auto& txn : trace.txns) {
        txn.ops = static_cast<uint64_t>(
            static_cast<double>(txn.ops) * scale);
    }
    return trace;
}

std::unique_ptr<SimBackend>
make_backend(const std::string& name)
{
    if (name == "seq") return std::make_unique<SequentialSimBackend>();
    if (name == "lock") return std::make_unique<GlobalLockSimBackend>();
    if (name == "tinystm") return std::make_unique<LsaSimBackend>();
    if (name == "tsx") return std::make_unique<HtmSimBackend>();
    if (name == "rococo") return std::make_unique<RococoSimBackend>();
    if (name == "htm-rococo") {
        // §7 future work: ROCoCo serialization inside a directory-based
        // HTM (OmniOrder-style). Same reachability validator, but the
        // "link" is the on-chip directory (tens of ns, not hundreds)
        // and per-access costs are hardware-speed. Conflicts become
        // dependencies instead of aborts.
        fpga::LinkParams directory;
        directory.read_hit_ns = 20;
        directory.write_back_ns = 20;
        directory.pipeline_depth = 6;
        directory.clock_mhz = 1000;
        BackendCosts costs = htm_costs();
        costs.commit_fixed_ns = 25;
        return std::make_unique<RococoSimBackend>(
            "HTM+ROCoCo", costs, /*window=*/64, directory);
    }
    ROCOCO_CHECK(false && "unknown simulator backend");
    return nullptr;
}

std::vector<StampSimRow>
simulate_grid(const std::string& workload, const stamp::SimTrace& trace,
              const std::vector<std::string>& backends,
              const std::vector<int>& thread_counts,
              const MachineModel& machine)
{
    // Sequential baseline.
    SimConfig base_config;
    base_config.threads = 1;
    base_config.machine = machine;
    auto seq = make_backend("seq");
    const SimResult base = simulate(trace, *seq, base_config);

    std::vector<StampSimRow> rows;
    for (const std::string& backend_name : backends) {
        for (int threads : thread_counts) {
            auto backend = make_backend(backend_name);
            SimConfig config;
            config.threads = static_cast<unsigned>(threads);
            config.machine = machine;
            const SimResult r = simulate(trace, *backend, config);

            StampSimRow row;
            row.workload = workload;
            row.backend = backend->name();
            row.threads = config.threads;
            row.seconds = r.seconds;
            row.speedup = r.seconds > 0 ? base.seconds / r.seconds : 0;
            row.abort_rate = r.abort_rate();
            const uint64_t total = r.commits + r.aborts;
            row.offload_abort_rate =
                total ? static_cast<double>(r.offload_aborts) /
                            static_cast<double>(total)
                      : 0;
            row.livelocked = r.livelocked;
            rows.push_back(row);
        }
    }
    return rows;
}

} // namespace rococo::sim
