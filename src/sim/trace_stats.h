/// @file
/// Workload characterization from captured traces — the analogue of
/// STAMP's Table 1 ("qualitative summary of each application's
/// runtime transactional characteristics"): transaction counts,
/// read/write-set size distributions, read-only fraction, and an
/// estimated pairwise conflict probability, per workload. Printed by
/// bench/tab_workloads; also the sanity layer the Fig. 10 calibration
/// rests on.
#pragma once

#include <cstdint>
#include <string>

#include "stamp/trace_capture.h"

namespace rococo::sim {

/// Distribution summary of one per-transaction quantity.
struct SetSizeStats
{
    double mean = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t max = 0;
};

/// The characterization row for one workload trace.
struct TraceCharacterization
{
    uint64_t txns = 0;
    double read_only_fraction = 0;
    SetSizeStats reads;
    SetSizeStats writes;
    /// Estimated probability that two random transactions of the trace
    /// conflict (R-W or W-W overlap), from a bounded sample of pairs.
    double pairwise_conflict = 0;
    /// Length class per STAMP's taxonomy, derived from mean footprint:
    /// "short" (< 8), "medium" (< 32) or "long".
    std::string length_class;
    /// Contention class from the pairwise conflict estimate:
    /// "low" (< 1%), "medium" (< 10%) or "high".
    std::string contention_class;
};

/// Characterize @p trace; @p sample_pairs bounds the conflict
/// estimation work.
TraceCharacterization characterize(const stamp::SimTrace& trace,
                                   size_t sample_pairs = 20000,
                                   uint64_t seed = 1);

} // namespace rococo::sim
