/// @file
/// Discrete-event trace-replay engine.
///
/// Transactions are pulled from a shared queue by T modelled threads
/// (dynamic load balance, like the workloads' own work distribution).
/// A thread's attempt occupies [start, commit]; commit requests are
/// processed in global time order; an aborted attempt retries after
/// the backend's abort penalty. Hyper-threading inflation and
/// effective-core scaling come from the machine model.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "sim/sim_backend.h"

namespace rococo::sim {

struct SimConfig
{
    unsigned threads = 1;
    MachineModel machine;
    /// Abort a run that exceeds this many attempts per transaction on
    /// average (livelock guard).
    double max_attempt_factor = 200.0;
};

struct SimResult
{
    double seconds = 0.0; ///< modelled makespan
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t offload_aborts = 0; ///< decided by the validation engine
    CounterBag detail;
    bool livelocked = false;

    double
    abort_rate() const
    {
        const uint64_t total = commits + aborts;
        return total ? static_cast<double>(aborts) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/// Replay @p trace on @p backend with @p config.
SimResult simulate(const stamp::SimTrace& trace, SimBackend& backend,
                   const SimConfig& config);

} // namespace rococo::sim
