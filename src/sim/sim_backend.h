/// @file
/// Backend interface of the discrete-event TM simulator.
///
/// The engine (event_sim.h) replays a captured trace on T modelled
/// threads: each thread executes its transaction (execution time from
/// the cost model), then asks the backend for a commit decision at its
/// commit instant. Decisions are requested in global commit-time order,
/// so a backend sees a linear history of decision points — exactly the
/// vantage of a centralized validator — and keeps whatever version /
/// footprint bookkeeping its concurrency control needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/cost_model.h"
#include "stamp/trace_capture.h"

namespace rococo::sim {

/// Everything the backend may need about the attempt being decided.
struct AttemptInfo
{
    const stamp::SimTxn* txn = nullptr;
    unsigned thread = 0;
    double start_time = 0;  ///< ns, begin of this attempt
    double commit_time = 0; ///< ns, instant of the commit request
    /// Modelled time of each read (parallel to txn->reads).
    const std::vector<double>* read_times = nullptr;
    /// Retry number of this transaction on this thread (0 = first).
    unsigned attempt = 0;
};

/// Backend verdict for one attempt.
struct SimDecision
{
    bool commit = true;
    /// When aborting: the time at which the thread notices (eager
    /// detection can be earlier than commit_time; must be >= start and
    /// <= commit_time).
    double abort_time = 0;
    /// Extra latency charged on the commit path (e.g. FPGA round trip,
    /// lock queueing); thread resumes at commit_time + commit_extra_ns.
    double commit_extra_ns = 0;
    /// Counter key describing the abort cause (nullptr = generic).
    const char* abort_kind = nullptr;
    /// True when the abort was decided by the offload engine rather
    /// than CPU-side eager detection (the dotted line of Fig. 10).
    bool offload_abort = false;
};

class SimBackend
{
  public:
    virtual ~SimBackend() = default;

    virtual std::string name() const = 0;
    virtual BackendCosts costs() const = 0;

    /// Reset all state for a fresh run with @p threads threads.
    virtual void reset(unsigned threads) = 0;

    /// Adjust the start of an attempt for backends that serialize
    /// execution (global lock); default: no delay. @p duration_hint is
    /// the modelled execution+commit span of the attempt, so a
    /// serializing backend can reserve its resource.
    virtual double
    acquire_start(unsigned thread, double ready_time, double duration_hint)
    {
        (void)thread;
        (void)duration_hint;
        return ready_time;
    }

    /// Decide the attempt; on commit the backend records the
    /// transaction's footprint in its version tables.
    virtual SimDecision decide(const AttemptInfo& info) = 0;

    /// Backend-specific counters accumulated during the run.
    virtual CounterBag detail() const { return {}; }
};

} // namespace rococo::sim
