#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace rococo {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
}

Table&
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table&
Table::cell(const std::string& text)
{
    ROCOCO_CHECK(!rows_.empty());
    rows_.back().push_back(text);
    return *this;
}

Table&
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return cell(buf);
}

Table&
Table::num(uint64_t value)
{
    return cell(std::to_string(value));
}

Table&
Table::num(int value)
{
    return cell(std::to_string(value));
}

std::string
Table::to_string() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto render_row = [&](const std::vector<std::string>& row) {
        std::string line;
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string& text = c < row.size() ? row[c] : std::string();
            line += text;
            if (c + 1 < widths.size()) {
                line.append(widths[c] - text.size() + 2, ' ');
            }
        }
        line.push_back('\n');
        return line;
    };

    std::string out = render_row(header_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out.append(total, '-');
    out.push_back('\n');
    for (const auto& row : rows_) out += render_row(row);
    return out;
}

void
Table::print() const
{
    const std::string text = to_string();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
}

} // namespace rococo
