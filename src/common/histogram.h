/// @file
/// Fixed-bucket histogram used to report latency distributions
/// (e.g. per-transaction validation time in bench/fig11_validation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rococo {

/// Linear-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram
{
  public:
    /// @param lo lower bound of the first bucket
    /// @param hi upper bound of the last bucket
    /// @param buckets number of equal-width buckets between lo and hi
    Histogram(double lo, double hi, size_t buckets);

    void add(double x);

    uint64_t total() const { return total_; }

    /// Value below which @p q (in [0,1]) of samples fall, estimated by
    /// linear interpolation within the containing bucket.
    double quantile(double q) const;

    double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

    /// Multi-line ASCII rendering, one bucket per line with a '#' bar.
    std::string to_string(size_t max_bar = 40) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_; // [underflow, b0..bn-1, overflow]
    uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace rococo
