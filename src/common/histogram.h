/// @file
/// Fixed-bucket histogram used to report latency distributions
/// (e.g. per-transaction validation time in bench/fig11_validation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rococo {

/// Linear-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram
{
  public:
    /// @param lo lower bound of the first bucket
    /// @param hi upper bound of the last bucket
    /// @param buckets number of equal-width buckets between lo and hi
    Histogram(double lo, double hi, size_t buckets);

    void add(double x);

    uint64_t total() const { return total_; }

    /// Smallest / largest sample added (0 before any sample). Samples
    /// outside [lo, hi) are included, so these bound the quantiles.
    double min() const { return total_ ? min_ : 0.0; }
    double max() const { return total_ ? max_ : 0.0; }

    /// Value below which fraction @p q of samples fall, estimated by
    /// linear interpolation within the containing bucket. @p q is
    /// clamped to [0, 1]. The estimate is clamped to the observed
    /// [min(), max()], so quantiles that land in the underflow or
    /// overflow bucket report the true extreme rather than the bucket
    /// boundary (lo / hi). Returns lo with no samples.
    double quantile(double q) const;

    double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

    /// Multi-line ASCII rendering, one bucket per line with a '#' bar.
    std::string to_string(size_t max_bar = 40) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_; // [underflow, b0..bn-1, overflow]
    uint64_t total_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace rococo
