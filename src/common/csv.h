/// @file
/// Minimal CSV writer so bench binaries can emit machine-readable
/// series (--csv=<path>) next to their human-readable tables — the
/// file format downstream plotting scripts consume.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace rococo {

/// Append-style CSV writer with a fixed header.
class CsvWriter
{
  public:
    /// Opens @p path for writing and emits the header row. A failed
    /// open leaves ok() false and turns writes into no-ops.
    CsvWriter(const std::string& path, std::vector<std::string> header)
        : out_(path), columns_(header.size())
    {
        if (!out_) return;
        write_row(std::vector<std::string>(header.begin(), header.end()));
    }

    bool ok() const { return static_cast<bool>(out_); }

    /// Write one row; the cell count must match the header.
    void
    write_row(const std::vector<std::string>& cells)
    {
        if (!out_ || cells.size() != columns_) return;
        for (size_t i = 0; i < cells.size(); ++i) {
            if (i) out_ << ',';
            out_ << escape(cells[i]);
        }
        out_ << '\n';
    }

  private:
    static std::string
    escape(const std::string& cell)
    {
        if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
        std::string quoted = "\"";
        for (char c : cell) {
            if (c == '"') quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    }

    std::ofstream out_;
    size_t columns_;
};

} // namespace rococo
