/// @file
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (trace generators, workloads,
/// hash seeding) draw from Xoshiro256StarStar so that every experiment is
/// reproducible from a single 64-bit seed. We deliberately avoid
/// std::mt19937 in hot paths: xoshiro is ~4x faster and has a trivially
/// splittable seeding scheme (SplitMix64).
#pragma once

#include <cstdint>

namespace rococo {

/// SplitMix64 step; used to expand a single seed into xoshiro state and to
/// derive independent child seeds.
inline uint64_t
splitmix64(uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** generator (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256
{
  public:
    using result_type = uint64_t;

    explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        uint64_t sm = seed;
        for (auto& word : s_) word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~uint64_t{0}; }

    result_type
    operator()()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). Lemire's multiply-shift reduction
    /// (slightly biased for astronomically large bounds; fine for
    /// simulation workloads).
    uint64_t
    below(uint64_t bound)
    {
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
    }

    /// Uniform double in [0, 1).
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// True with probability p.
    bool chance(double p) { return uniform() < p; }

    /// Derive an independent child generator (for per-thread streams).
    Xoshiro256
    split()
    {
        return Xoshiro256((*this)() ^ 0xd1b54a32d192ed03ULL);
    }

  private:
    static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    uint64_t s_[4];
};

} // namespace rococo
