#include "common/cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace rococo {

Cli::Cli(int argc, char** argv, const std::vector<std::string>& known)
{
    auto is_known = [&](const std::string& name) {
        return std::find(known.begin(), known.end(), name) != known.end();
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            std::fprintf(stderr, "unexpected positional argument: %s\n",
                         arg.c_str());
            std::exit(2);
        }
        arg = arg.substr(2);
        std::string name, value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        if (!is_known(name)) {
            std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
            std::exit(2);
        }
        values_[name] = value;
    }
}

bool
Cli::has(const std::string& name) const
{
    return values_.count(name) != 0;
}

std::string
Cli::get(const std::string& name, const std::string& def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

int64_t
Cli::get_int(const std::string& name, int64_t def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoll(it->second.c_str(),
                                                    nullptr, 10);
}

double
Cli::get_double(const std::string& name, double def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool
Cli::get_bool(const std::string& name, bool def) const
{
    auto it = values_.find(name);
    if (it == values_.end()) return def;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<int>
Cli::get_int_list(const std::string& name, const std::vector<int>& def) const
{
    auto it = values_.find(name);
    if (it == values_.end()) return def;
    std::vector<int> out;
    const std::string& text = it->second;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos) comma = text.size();
        out.push_back(std::atoi(text.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
    }
    return out;
}

} // namespace rococo
