/// @file
/// Bounded blocking queues used as the software stand-in for the
/// pull/push message queues between CPU and FPGA (Fig. 6).
///
/// The real HARP2 queues are lock-free rings over the CCI link; for the
/// software model a mutex-based MPMC queue is sufficient — the *latency*
/// of the link is modelled separately by fpga/cci_link.h, not by queue
/// contention.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace rococo {

/// Bounded multi-producer multi-consumer blocking queue.
template <typename T>
class BlockingQueue
{
  public:
    explicit BlockingQueue(size_t capacity = SIZE_MAX)
        : capacity_(capacity)
    {
    }

    /// Block until space is available, then enqueue. Returns false if the
    /// queue was closed.
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock,
                       [&] { return closed_ || items_.size() < capacity_; });
        if (closed_) return false;
        items_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /// Enqueue without blocking; returns false if full or closed.
    bool
    try_push(T item)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_ || items_.size() >= capacity_) return false;
        items_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /// Block until an item is available or the queue is closed and
    /// drained; nullopt means closed-and-empty.
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        not_full_.notify_one();
        return item;
    }

    /// Block until at least one item is available, then greedily drain
    /// up to @p max items without further waiting — the adaptive
    /// batching primitive: the batch is whatever has accumulated while
    /// the consumer was busy, never an artificial delay. An empty
    /// vector means closed-and-empty.
    std::vector<T>
    pop_batch(size_t max)
    {
        std::vector<T> batch;
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        const size_t take = std::min(max, items_.size());
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        if (take > 0) not_full_.notify_all();
        return batch;
    }

    /// Dequeue without blocking.
    std::optional<T>
    try_pop()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        not_full_.notify_one();
        return item;
    }

    /// Close the queue: pending pops drain remaining items then return
    /// nullopt; pushes fail.
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    /// Close the queue AND hand the undrained items back to the caller:
    /// pending pops return nullopt immediately, pushes fail, and the
    /// returned items are no longer visible to consumers. This is the
    /// shutdown path for queues whose items carry promises — the owner
    /// resolves each pending item (e.g. with an aborted verdict) rather
    /// than destroying its promise unfulfilled, which would surface to
    /// waiters as std::future_error (broken_promise) instead of a typed
    /// abort.
    std::deque<T>
    close_now()
    {
        std::deque<T> pending;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
            pending.swap(items_);
            not_empty_.notify_all();
            not_full_.notify_all();
        }
        return pending;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    size_t capacity_;
    bool closed_ = false;
};

} // namespace rococo
