/// @file
/// Small statistics helpers shared by the benchmark harnesses:
/// running mean/variance, geometric mean, and a named-counter bag used to
/// report TM-runtime statistics (commits, aborts, abort causes...).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rococo {

/// Welford running mean / variance accumulator.
class RunningStat
{
  public:
    void add(double x);

    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    double variance() const;
    double stddev() const;

    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Geometric mean of strictly positive values; returns 0 on empty input.
double geomean(const std::vector<double>& values);

/// A bag of named monotonically increasing counters. Not thread-safe;
/// per-thread instances are merged with add().
class CounterBag
{
  public:
    void bump(const std::string& name, uint64_t by = 1) { counters_[name] += by; }
    uint64_t get(const std::string& name) const;

    /// Merge another bag into this one.
    void add(const CounterBag& other);

    const std::map<std::string, uint64_t>& counters() const { return counters_; }

    /// "name=value name=value ..." rendering.
    std::string to_string() const;

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace rococo
