/// @file
/// Reusable thread barrier.
///
/// The paper (footnote 9) replaces STAMP's log2 barrier with a pthread
/// barrier to run 14/28 threads; our real-thread harness uses this
/// condition-variable barrier for the same purpose.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace rococo {

/// A cyclic barrier for a fixed number of participants.
class Barrier
{
  public:
    explicit Barrier(size_t parties);

    /// Block until all parties have arrived; then all are released and the
    /// barrier resets for the next phase.
    void arrive_and_wait();

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    size_t parties_;
    size_t waiting_ = 0;
    size_t generation_ = 0;
};

} // namespace rococo
