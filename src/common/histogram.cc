#include "common/histogram.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace rococo {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets + 2, 0)
{
    ROCOCO_CHECK(hi > lo);
    ROCOCO_CHECK(buckets > 0);
}

void
Histogram::add(double x)
{
    size_t idx;
    if (x < lo_) {
        idx = 0;
    } else if (x >= hi_) {
        idx = counts_.size() - 1;
    } else {
        idx = 1 + static_cast<size_t>((x - lo_) / width_);
        idx = std::min(idx, counts_.size() - 2);
    }
    ++counts_[idx];
    ++total_;
    sum_ += x;
    min_ = total_ == 1 ? x : std::min(min_, x);
    max_ = total_ == 1 ? x : std::max(max_, x);
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0) return lo_;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double seen = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        const double next = seen + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            // Underflow bucket: every sample here is < lo, so lo would
            // overstate — report the smallest sample instead. Likewise
            // the overflow bucket reports the largest sample, not hi.
            if (i == 0) return min_;
            if (i == counts_.size() - 1) return max_;
            const double frac = (target - seen) / static_cast<double>(counts_[i]);
            const double estimate =
                lo_ + width_ * (static_cast<double>(i - 1) + frac);
            return std::clamp(estimate, min_, max_);
        }
        seen = next;
    }
    return max_;
}

std::string
Histogram::to_string(size_t max_bar) const
{
    uint64_t peak = 1;
    for (auto c : counts_) peak = std::max(peak, c);

    std::string out;
    char line[160];
    for (size_t i = 0; i < counts_.size(); ++i) {
        double b_lo, b_hi;
        const char* tag = "";
        if (i == 0) {
            if (counts_[i] == 0) continue;
            b_lo = b_hi = lo_;
            tag = "<";
        } else if (i == counts_.size() - 1) {
            if (counts_[i] == 0) continue;
            b_lo = b_hi = hi_;
            tag = ">=";
        } else {
            b_lo = lo_ + width_ * static_cast<double>(i - 1);
            b_hi = b_lo + width_;
        }
        const size_t bar =
            static_cast<size_t>(static_cast<double>(counts_[i]) /
                                static_cast<double>(peak) *
                                static_cast<double>(max_bar));
        std::snprintf(line, sizeof(line), "%2s[%10.4g, %10.4g) %8llu |", tag,
                      b_lo, b_hi,
                      static_cast<unsigned long long>(counts_[i]));
        out += line;
        out.append(bar, '#');
        out.push_back('\n');
    }
    return out;
}

} // namespace rococo
