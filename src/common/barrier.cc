#include "common/barrier.h"

#include "common/check.h"

namespace rococo {

Barrier::Barrier(size_t parties)
    : parties_(parties)
{
    ROCOCO_CHECK(parties > 0);
}

void
Barrier::arrive_and_wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const size_t gen = generation_;
    if (++waiting_ == parties_) {
        ++generation_;
        waiting_ = 0;
        cv_.notify_all();
        return;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
}

} // namespace rococo
