#include "common/bitmatrix.h"

namespace rococo {

BitMatrix::BitMatrix(size_t n)
{
    rows_.reserve(n);
    for (size_t i = 0; i < n; ++i) rows_.emplace_back(n);
}

BitVector
BitMatrix::column(size_t c) const
{
    BitVector out(size());
    for (size_t r = 0; r < size(); ++r) {
        if (rows_[r].test(c)) out.set(r);
    }
    return out;
}

void
BitMatrix::set_diagonal()
{
    for (size_t i = 0; i < size(); ++i) rows_[i].set(i);
}

BitMatrix
BitMatrix::transposed() const
{
    BitMatrix out(size());
    for (size_t r = 0; r < size(); ++r) {
        for (size_t c = rows_[r].find_first(); c < size();
             c = rows_[r].find_next(c)) {
            out.set(c, r);
        }
    }
    return out;
}

std::string
BitMatrix::to_string() const
{
    std::string out;
    for (const auto& row : rows_) {
        out += row.to_string();
        out.push_back('\n');
    }
    return out;
}

} // namespace rococo
