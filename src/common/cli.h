/// @file
/// Minimal command-line flag parser for bench/example binaries.
/// Flags have the form --name=value or --name value; unknown flags are a
/// hard error so typos in sweep scripts don't silently run defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rococo {

/// Parses argv into a flag map and exposes typed accessors with defaults.
class Cli
{
  public:
    /// @param argc,argv as passed to main
    /// @param known the set of accepted flag names (without "--")
    Cli(int argc, char** argv, const std::vector<std::string>& known);

    bool has(const std::string& name) const;

    std::string get(const std::string& name, const std::string& def) const;
    int64_t get_int(const std::string& name, int64_t def) const;
    double get_double(const std::string& name, double def) const;
    bool get_bool(const std::string& name, bool def) const;

    /// Comma-separated integer list, e.g. --threads=1,4,8.
    std::vector<int> get_int_list(const std::string& name,
                                  const std::vector<int>& def) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace rococo
