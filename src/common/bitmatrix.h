/// @file
/// Square bit matrix used for transitive-closure computations
/// (graph/transitive_closure.h) and as the reference model the
/// hardware-shaped reachability matrix is checked against in tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bitvector.h"

namespace rococo {

/// An n x n matrix of bits stored as n BitVector rows.
class BitMatrix
{
  public:
    BitMatrix() = default;

    /// Construct an @p n x @p n zero matrix.
    explicit BitMatrix(size_t n);

    size_t size() const { return rows_.size(); }

    bool test(size_t row, size_t col) const { return rows_[row].test(col); }
    void set(size_t row, size_t col, bool v = true) { rows_[row].set(col, v); }

    BitVector& row(size_t r) { return rows_[r]; }
    const BitVector& row(size_t r) const { return rows_[r]; }

    /// Column @p c materialized as a BitVector (O(n)).
    BitVector column(size_t c) const;

    /// Set every bit on the main diagonal (reflexive closure).
    void set_diagonal();

    /// Matrix transpose (O(n^2)).
    BitMatrix transposed() const;

    bool operator==(const BitMatrix& other) const = default;

    /// Multi-line "0101\n..." rendering for test failure messages.
    std::string to_string() const;

  private:
    std::vector<BitVector> rows_;
};

} // namespace rococo
