/// @file
/// ASCII table renderer. Every bench binary prints its figure/table as an
/// aligned text table so outputs are diffable and greppable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rococo {

/// Column-aligned text table with a header row.
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /// Begin a new row; fill it with cell()/num() calls.
    Table& row();

    Table& cell(const std::string& text);
    Table& num(double value, int precision = 3);
    Table& num(uint64_t value);
    Table& num(int value);

    /// Render with 2-space column padding and a separator under the header.
    std::string to_string() const;

    /// Render and write to stdout.
    void print() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rococo
