/// @file
/// FunctionRef: a non-owning, trivially copyable reference to a
/// callable — two words, no allocation, no virtual dispatch. The KV
/// hot path takes read-modify-write bodies through this instead of
/// std::function so arbitrarily large closures never force a heap
/// allocation inside a transaction (std::function's small-buffer
/// optimisation only covers trivially-copyable captures of at most
/// two words on libstdc++).
///
/// The referenced callable must outlive every call — like
/// std::string_view, FunctionRef is a parameter type, not a storage
/// type.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace rococo {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                 std::is_invocable_r_v<R, F&, Args...>)
    FunctionRef(F&& f) noexcept // NOLINT(google-explicit-constructor)
        : obj_(const_cast<void*>(
              static_cast<const void*>(std::addressof(f)))),
          call_([](void* obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(obj))(
                  std::forward<Args>(args)...);
          })
    {
    }

    R
    operator()(Args... args) const
    {
        return call_(obj_, std::forward<Args>(args)...);
    }

  private:
    void* obj_;
    R (*call_)(void*, Args...);
};

} // namespace rococo
