/// @file
/// Shared Zipf(theta) key sampler for the skewed-workload drivers
/// (bench/svc_loadgen, bench/ycsb_run, tests).
///
/// Inverse-CDF sampling: the normalized CDF over ranks [0, n) is built
/// once (the only place pow() runs), and every draw is one uniform
/// double plus a binary search — so a skewed workload costs the request
/// loop nothing beyond the RNG it already pays for. theta = 0
/// degenerates to the uniform distribution exactly (every rank weight
/// 1), and YCSB's canonical skew is theta = 0.99.
///
/// Ranks are popularity order: rank 0 is the hottest key. Drivers that
/// want hot keys scattered over the key space should permute the rank
/// with a fixed bijection (e.g. multiply by an odd constant mod n);
/// the YCSB drivers here deliberately keep rank == key id so hot sets
/// are recognizable in top-K output.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace rococo {

/// Zipf(theta) sampler over [0, n): one binary search per draw against
/// a CDF table built once, so the skewed workload costs the request
/// loop nothing extra.
class ZipfSampler
{
  public:
    /// @param n key-space size (>= 1)
    /// @param theta skew exponent (>= 0; 0 = uniform, 0.99 = YCSB)
    ZipfSampler(uint64_t n, double theta)
        : cdf_(n)
    {
        ROCOCO_CHECK(n >= 1 && "ZipfSampler needs a non-empty key space");
        ROCOCO_CHECK(theta >= 0.0 && "negative skew is not a distribution");
        double sum = 0;
        for (uint64_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(double(i + 1), theta);
            cdf_[i] = sum;
        }
        for (double& c : cdf_) c /= sum;
        // Guard against floating-point shortfall: the last CDF entry is
        // 1 by construction, so every uniform draw lands in range.
        cdf_.back() = 1.0;
    }

    uint64_t n() const { return cdf_.size(); }

    /// Rank in [0, n()); rank 0 is the most popular.
    uint64_t
    draw(Xoshiro256& rng) const
    {
        const double u = rng.uniform();
        return static_cast<uint64_t>(
            std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    }

    /// P[rank < k]: the head mass of the k hottest ranks (diagnostics
    /// and distribution tests).
    double
    head_mass(uint64_t k) const
    {
        if (k == 0) return 0.0;
        return cdf_[std::min<uint64_t>(k, cdf_.size()) - 1];
    }

  private:
    std::vector<double> cdf_;
};

} // namespace rococo
