/// @file
/// Small-size-optimized vector for the validation hot path.
///
/// OffloadRequest address sets are typically a handful of words (the
/// paper's workloads average < 10 accesses per transaction), yet every
/// request used to carry two std::vector heap blocks through the
/// submit queue. SmallVector keeps up to N elements inline — a request
/// whose sets fit is built, moved through the pipeline and recycled
/// without touching the heap — and degrades to a heap buffer beyond N
/// with the usual doubling growth.
///
/// Move semantics are tuned for slot reuse (fpga/validation_pipeline.h
/// keeps a slab of request slots): move-assignment from an inline
/// source *copies into the destination's existing storage* instead of
/// discarding it, so a warm slot keeps whatever capacity it has already
/// grown; only a heap-backed source transfers its buffer.
///
/// Restricted to trivially copyable element types — everything the data
/// path ships is raw 64-bit words.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <type_traits>
#include <vector>

namespace rococo {

template <typename T, size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector is for POD payloads (addresses, words)");
    static_assert(N > 0);

  public:
    using value_type = T;
    using iterator = T*;
    using const_iterator = const T*;

    SmallVector() = default;

    SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

    /// Implicit on purpose: OffloadRequest stays aggregate-initializable
    /// from the std::vector address sets the layers above produce.
    SmallVector(const std::vector<T>& other)
    {
        assign(other.begin(), other.end());
    }

    SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

    SmallVector(SmallVector&& other) noexcept { steal(std::move(other)); }

    SmallVector&
    operator=(const SmallVector& other)
    {
        if (this != &other) assign(other.begin(), other.end());
        return *this;
    }

    SmallVector&
    operator=(SmallVector&& other) noexcept
    {
        if (this == &other) return *this;
        if (other.on_heap()) {
            // Take the buffer; large sets move by pointer swap.
            release();
            data_ = other.data_;
            size_ = other.size_;
            capacity_ = other.capacity_;
            other.reset_to_inline();
        } else {
            // Inline source: copy into whatever storage this already
            // owns — a warm slot keeps its grown capacity.
            assign(other.begin(), other.end());
            other.size_ = 0;
        }
        return *this;
    }

    SmallVector&
    operator=(const std::vector<T>& other)
    {
        assign(other.begin(), other.end());
        return *this;
    }

    SmallVector&
    operator=(std::initializer_list<T> init)
    {
        assign(init.begin(), init.end());
        return *this;
    }

    ~SmallVector() { release(); }

    size_t size() const { return size_; }
    size_t capacity() const { return capacity_; }
    bool empty() const { return size_ == 0; }

    T* data() { return data_; }
    const T* data() const { return data_; }

    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }
    const_iterator cbegin() const { return data_; }
    const_iterator cend() const { return data_ + size_; }

    T& operator[](size_t i) { return data_[i]; }
    const T& operator[](size_t i) const { return data_[i]; }
    T& front() { return data_[0]; }
    const T& front() const { return data_[0]; }
    T& back() { return data_[size_ - 1]; }
    const T& back() const { return data_[size_ - 1]; }

    void clear() { size_ = 0; }

    void
    reserve(size_t capacity)
    {
        if (capacity > capacity_) grow(capacity);
    }

    void
    push_back(const T& value)
    {
        if (size_ == capacity_) grow(capacity_ * 2);
        data_[size_++] = value;
    }

    void
    resize(size_t size, const T& value = T{})
    {
        reserve(size);
        for (size_t i = size_; i < size; ++i) data_[i] = value;
        size_ = size;
    }

    template <typename It>
    void
    assign(It first, It last)
    {
        size_ = 0;
        const size_t count = static_cast<size_t>(std::distance(first, last));
        reserve(count);
        for (; first != last; ++first) data_[size_++] = *first;
    }

    void
    assign(size_t count, const T& value)
    {
        size_ = 0;
        reserve(count);
        for (size_t i = 0; i < count; ++i) data_[i] = value;
        size_ = count;
    }

    operator std::span<const T>() const { return {data_, size_}; }

    friend bool
    operator==(const SmallVector& a, const SmallVector& b)
    {
        return a.size_ == b.size_ &&
               std::equal(a.begin(), a.end(), b.begin());
    }

    friend bool
    operator==(const SmallVector& a, const std::vector<T>& b)
    {
        return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
    }

    friend bool
    operator==(const std::vector<T>& a, const SmallVector& b)
    {
        return b == a;
    }

  private:
    bool on_heap() const { return data_ != inline_; }

    void
    release()
    {
        if (on_heap()) delete[] data_;
    }

    void
    reset_to_inline()
    {
        data_ = inline_;
        size_ = 0;
        capacity_ = N;
    }

    void
    steal(SmallVector&& other) noexcept
    {
        if (other.on_heap()) {
            data_ = other.data_;
            size_ = other.size_;
            capacity_ = other.capacity_;
            other.reset_to_inline();
        } else {
            std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
            size_ = other.size_;
            other.size_ = 0;
        }
    }

    void
    grow(size_t capacity)
    {
        capacity = std::max(capacity, capacity_ * 2);
        T* heap = new T[capacity];
        std::memcpy(heap, data_, size_ * sizeof(T));
        release();
        data_ = heap;
        capacity_ = capacity;
    }

    T inline_[N];
    T* data_ = inline_;
    size_t size_ = 0;
    size_t capacity_ = N;
};

} // namespace rococo
