#include "common/bitvector.h"

#include <bit>

#include "common/check.h"

namespace rococo {

void
BitVector::clear()
{
    for (auto& word : words_) word = 0;
}

bool
BitVector::none() const
{
    for (auto word : words_) {
        if (word != 0) return false;
    }
    return true;
}

size_t
BitVector::count() const
{
    size_t total = 0;
    for (auto word : words_) total += std::popcount(word);
    return total;
}

BitVector&
BitVector::operator|=(const BitVector& other)
{
    ROCOCO_CHECK(size_ == other.size_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
    return *this;
}

BitVector&
BitVector::operator&=(const BitVector& other)
{
    ROCOCO_CHECK(size_ == other.size_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
    return *this;
}

bool
BitVector::intersects(const BitVector& other) const
{
    ROCOCO_CHECK(size_ == other.size_);
    for (size_t w = 0; w < words_.size(); ++w) {
        if (words_[w] & other.words_[w]) return true;
    }
    return false;
}

size_t
BitVector::find_first() const
{
    for (size_t w = 0; w < words_.size(); ++w) {
        if (words_[w] != 0) {
            return w * 64 + std::countr_zero(words_[w]);
        }
    }
    return size_;
}

size_t
BitVector::find_next(size_t i) const
{
    ++i;
    if (i >= size_) return size_;
    size_t w = i >> 6;
    uint64_t masked = words_[w] & (~uint64_t{0} << (i & 63));
    while (true) {
        if (masked != 0) {
            const size_t bit = w * 64 + std::countr_zero(masked);
            return bit < size_ ? bit : size_;
        }
        if (++w == words_.size()) return size_;
        masked = words_[w];
    }
}

std::string
BitVector::to_string() const
{
    std::string out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) out.push_back(test(i) ? '1' : '0');
    return out;
}

} // namespace rococo
