#include "common/stats.h"

#include <cmath>

namespace rococo {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
geomean(const std::vector<double>& values)
{
    if (values.empty()) return 0.0;
    double log_sum = 0.0;
    for (double v : values) log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

uint64_t
CounterBag::get(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
CounterBag::add(const CounterBag& other)
{
    for (const auto& [name, value] : other.counters_) counters_[name] += value;
}

std::string
CounterBag::to_string() const
{
    std::string out;
    for (const auto& [name, value] : counters_) {
        if (!out.empty()) out.push_back(' ');
        out += name + "=" + std::to_string(value);
    }
    return out;
}

} // namespace rococo
