/// @file
/// Lightweight runtime-check macros used across the library.
///
/// ROCOCO_CHECK is always on (cheap invariants on hot-but-not-critical
/// paths); ROCOCO_DCHECK compiles out in NDEBUG builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rococo {

[[noreturn]] inline void
check_failed(const char* file, int line, const char* expr)
{
    std::fprintf(stderr, "%s:%d: check failed: %s\n", file, line, expr);
    std::abort();
}

} // namespace rococo

#define ROCOCO_CHECK(expr)                                                   \
    do {                                                                     \
        if (!(expr)) ::rococo::check_failed(__FILE__, __LINE__, #expr);      \
    } while (0)

#ifdef NDEBUG
#define ROCOCO_DCHECK(expr) ((void)0)
#else
#define ROCOCO_DCHECK(expr) ROCOCO_CHECK(expr)
#endif
