/// @file
/// Dynamic bit vector with the bulk boolean operations the ROCoCo data
/// path is made of (or / and / and-reduce / any / none).
///
/// The FPGA implementation of ROCoCo operates on W-bit registers; the
/// software model uses this type for the general case and raw uint64_t
/// for the W <= 64 fast path (see core/reachability_matrix.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rococo {

/// A fixed-size-at-construction vector of bits packed into 64-bit words.
class BitVector
{
  public:
    BitVector() = default;

    /// Construct with @p size bits, all zero.
    explicit BitVector(size_t size)
        : size_(size), words_((size + 63) / 64, 0)
    {
    }

    size_t size() const { return size_; }

    bool
    test(size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(size_t i, bool value = true)
    {
        const uint64_t mask = uint64_t{1} << (i & 63);
        if (value) {
            words_[i >> 6] |= mask;
        } else {
            words_[i >> 6] &= ~mask;
        }
    }

    void reset(size_t i) { set(i, false); }

    /// Set all bits to zero.
    void clear();

    /// True iff no bit is set.
    bool none() const;

    /// True iff at least one bit is set.
    bool any() const { return !none(); }

    /// Number of set bits.
    size_t count() const;

    /// this |= other. Sizes must match.
    BitVector& operator|=(const BitVector& other);

    /// this &= other. Sizes must match.
    BitVector& operator&=(const BitVector& other);

    /// True iff (this & other) has at least one set bit.
    bool intersects(const BitVector& other) const;

    /// Index of the lowest set bit, or size() if none.
    size_t find_first() const;

    /// Index of the lowest set bit strictly greater than @p i,
    /// or size() if none.
    size_t find_next(size_t i) const;

    bool operator==(const BitVector& other) const = default;

    /// "0101..." rendering, index 0 first (for tests and debugging).
    std::string to_string() const;

    /// Raw word access (word w holds bits [64w, 64w+63]).
    uint64_t word(size_t w) const { return words_[w]; }
    size_t word_count() const { return words_.size(); }

  private:
    size_t size_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace rococo
