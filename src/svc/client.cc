#include "svc/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "obs/clock.h"
#include "obs/tracer.h"

namespace rococo::svc {
namespace {

#if ROCOCO_TRACE_ENABLED
/// Trace ids must be unique across every client object of every process
/// feeding one merged trace: high bits are the pid, low bits a
/// process-wide sequence (never 0 — 0 means "no trace context").
uint64_t
next_trace_id()
{
    static std::atomic<uint64_t> sequence{0};
    const uint64_t seq = sequence.fetch_add(1, std::memory_order_relaxed) + 1;
    return (static_cast<uint64_t>(getpid()) << 40) | (seq & 0xFFFFFFFFFF);
}
#endif

core::ValidationResult
rejected_result()
{
    return {core::Verdict::kRejected, 0, obs::AbortReason::kBackpressure};
}

std::future<core::ValidationResult>
resolved(const core::ValidationResult& result)
{
    std::promise<core::ValidationResult> promise;
    promise.set_value(result);
    return promise.get_future();
}

} // namespace

ValidationClient::ValidationClient(const ClientConfig& config)
    : config_(config),
      sig_config_(std::make_shared<const sig::SignatureConfig>(
          config.engine.signature_bits, config.engine.signature_hashes,
          config.engine.hash_seed))
{
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        closed_ = true;
        return;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
        close(fd);
        closed_ = true;
        return;
    }
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        close(fd);
        closed_ = true;
        return;
    }
    fd_ = fd;
    reader_ = std::thread([this] { reader_loop(); });
}

ValidationClient::~ValidationClient()
{
    stop();
}

bool
ValidationClient::connected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !closed_;
}

std::future<core::ValidationResult>
ValidationClient::submit(fpga::OffloadRequest request)
{
    return submit_with_deadline(std::move(request), 0, nullptr);
}

std::future<core::ValidationResult>
ValidationClient::submit_with_deadline(fpga::OffloadRequest request,
                                       uint64_t deadline_ns,
                                       uint64_t* id_out)
{
    // client_queue starts before the lock: contention on the socket
    // mutex between concurrent submitters is exactly what that stage is
    // supposed to show.
    const uint64_t enter_ns = obs::now_ns();
    std::vector<uint8_t> frame;
    std::unique_lock<std::mutex> lock(mutex_);
    registry_.bump("svc.client.submitted");
    if (request.reads.size() > kMaxAddresses ||
        request.writes.size() > kMaxAddresses) {
        // The server's decoder would treat the frame as malformed and
        // drop the whole connection; reject the one oversized request
        // locally instead of poisoning every outstanding one.
        registry_.bump("svc.client.oversized");
        registry_.bump("svc.client.rejected");
        return resolved(rejected_result());
    }
    if (closed_) {
        registry_.bump("svc.client.rejected");
        return resolved(rejected_result());
    }
    const uint64_t id = next_id_++;
    uint64_t trace_id = 0;
#if ROCOCO_TRACE_ENABLED
    if (obs::Tracer::instance().active()) trace_id = next_trace_id();
#endif
    encode_request(frame,
                   {id, deadline_ns, trace_id, trace_id,
                    std::move(request)});

    Outstanding& entry = outstanding_[id];
    entry.enter_ns = enter_ns;
    std::future<core::ValidationResult> future = entry.promise.get_future();
    if (id_out != nullptr) *id_out = id;

    // Write the whole frame under the lock: frames from concurrent
    // submitters must not interleave on the stream. The socket is
    // blocking, so a full send buffer throttles submitters here — the
    // transport-level half of the backpressure story.
    size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
            outstanding_.erase(id);
            closed_ = true;
            registry_.bump("svc.client.rejected");
            return resolved(rejected_result());
        }
        off += static_cast<size_t>(n);
    }
    // Still under the lock, so the reader cannot have resolved the
    // entry yet.
    const uint64_t sent_ns = obs::now_ns();
    entry.sent_ns = sent_ns;
#if ROCOCO_TRACE_ENABLED
    if (trace_id != 0) {
        // The local half of the distributed trace: the span the server
        // span will point back at, and the flow-start event the arrow
        // leaves from. (cat, name, id) must match the server's flow-end.
        obs::TraceEvent span;
        span.name = "svc.rpc";
        span.cat = "svc";
        span.arg_name = "trace_id";
        span.arg_value = trace_id;
        span.ts_ns = enter_ns;
        span.dur_ns = sent_ns - enter_ns;
        span.phase = obs::EventPhase::kComplete;
        obs::Tracer::instance().record(span);
        obs::Tracer::instance().flow(obs::EventPhase::kFlowStart, "svc",
                                     "svc.validate_flow", trace_id,
                                     enter_ns + (sent_ns - enter_ns) / 2);
    }
#endif
    return future;
}

core::ValidationResult
ValidationClient::validate(fpga::OffloadRequest request)
{
    return submit(std::move(request)).get();
}

core::ValidationResult
ValidationClient::validate(fpga::OffloadRequest request,
                           std::chrono::nanoseconds timeout)
{
    const uint64_t deadline_ns =
        static_cast<uint64_t>(std::max<int64_t>(timeout.count(), 1));
    uint64_t id = 0;
    std::future<core::ValidationResult> future =
        submit_with_deadline(std::move(request), deadline_ns, &id);
    if (future.wait_for(timeout) == std::future_status::ready) {
        return future.get();
    }
    {
        // Abandon the entry so a late verdict is discarded; if the
        // reader resolved it between wait_for and here, the future won.
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = outstanding_.find(id);
        if (it == outstanding_.end()) return future.get();
        it->second.promise.set_value(
            {core::Verdict::kTimeout, 0, obs::AbortReason::kTimeout});
        outstanding_.erase(it);
        registry_.bump("svc.client.timeout");
    }
    return future.get();
}

void
ValidationClient::reader_loop()
{
    FrameReader reader;
    uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break; // EOF / error / shutdown()
        reader.append(buf, static_cast<size_t>(n));
        bool malformed = false;
        while (auto frame = reader.next(&malformed)) {
            if (frame->type != MsgType::kResponse &&
                frame->type != MsgType::kResponseV2) {
                continue;
            }
            auto response = decode_response(frame->type, frame->payload,
                                            frame->size);
            if (!response) continue;
            std::unique_lock<std::mutex> lock(mutex_);
            auto it = outstanding_.find(response->request_id);
            if (it == outstanding_.end()) {
                // Caller already timed out locally; drop the verdict.
                registry_.bump("svc.client.late");
                continue;
            }
            Outstanding entry = std::move(it->second);
            outstanding_.erase(it);
            lock.unlock();
            registry_.bump(std::string("svc.client.verdict.") +
                           core::to_string(response->result.verdict));
            const uint64_t rtt_ns = obs::now_ns() - entry.enter_ns;
            registry_.histogram("svc.client.rpc_ns").record(rtt_ns);
            if (response->has_stages) {
                // Stage attribution: client_queue is measured here,
                // server stages travel in the response, and wire is the
                // residual — so the stage means sum to the measured
                // round trip by construction (link is modeled, never
                // part of the sum).
                const StageTimestamps& s = response->stages;
                const uint64_t client_queue_ns =
                    entry.sent_ns - entry.enter_ns;
                const uint64_t server_ns = s.server_queue_ns +
                                           s.batch_wait_ns + s.engine_ns;
                const uint64_t wire_ns =
                    rtt_ns > client_queue_ns + server_ns
                        ? rtt_ns - client_queue_ns - server_ns
                        : 0;
                registry_.histogram("svc.stage.client_queue")
                    .record(client_queue_ns);
                registry_.histogram("svc.stage.wire").record(wire_ns);
                registry_.histogram("svc.stage.server_queue")
                    .record(s.server_queue_ns);
                registry_.histogram("svc.stage.batch_wait")
                    .record(s.batch_wait_ns);
                registry_.histogram("svc.stage.engine").record(s.engine_ns);
                registry_.histogram("svc.stage.link").record(s.link_ns);
            }
            entry.promise.set_value(response->result);
        }
        if (malformed) break; // server speaking garbage: disconnect
    }
    fail_outstanding();
}

void
ValidationClient::fail_outstanding()
{
    std::unordered_map<uint64_t, Outstanding> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        orphans.swap(outstanding_);
        registry_.counter("svc.client.rejected").add(orphans.size());
    }
    for (auto& [id, entry] : orphans) {
        entry.promise.set_value(rejected_result());
    }
}

void
ValidationClient::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        // Wake the reader; fd stays open until the reader has exited so
        // the descriptor cannot be recycled under it.
        if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
    }
    if (reader_.joinable()) reader_.join();
    fail_outstanding();
    if (fd_ >= 0) {
        close(fd_);
        fd_ = -1;
    }
}

CounterBag
ValidationClient::stats() const
{
    // Same bare keys as ValidationPipeline::stats() so callers can swap
    // backends without re-learning counter names.
    static constexpr char kPrefix[] = "svc.client.";
    CounterBag bag;
    const CounterBag raw = registry_.to_counter_bag();
    for (const auto& [name, value] : raw.counters()) {
        std::string key = name.substr(sizeof(kPrefix) - 1);
        if (key.rfind("verdict.", 0) == 0) key = key.substr(8);
        bag.bump(key, value);
    }
    return bag;
}

void
ValidationClient::export_metrics(obs::Registry& registry) const
{
    registry.merge(registry_);
}

std::shared_ptr<const sig::SignatureConfig>
ValidationClient::signature_config() const
{
    return sig_config_;
}

} // namespace rococo::svc
