#include "svc/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "obs/clock.h"
#include "obs/tracer.h"

namespace rococo::svc {
namespace {

#if ROCOCO_TRACE_ENABLED
/// Trace ids must be unique across every client object of every process
/// feeding one merged trace: high bits are the pid, low bits a
/// process-wide sequence (never 0 — 0 means "no trace context").
uint64_t
next_trace_id()
{
    static std::atomic<uint64_t> sequence{0};
    const uint64_t seq = sequence.fetch_add(1, std::memory_order_relaxed) + 1;
    return (static_cast<uint64_t>(getpid()) << 40) | (seq & 0xFFFFFFFFFF);
}
#endif

core::ValidationResult
rejected_result()
{
    return {core::Verdict::kRejected, 0, obs::AbortReason::kBackpressure};
}

std::future<core::ValidationResult>
resolved(const core::ValidationResult& result)
{
    std::promise<core::ValidationResult> promise;
    promise.set_value(result);
    return promise.get_future();
}

} // namespace

ValidationClient::ValidationClient(const ClientConfig& config)
    : config_(config),
      sig_config_(std::make_shared<const sig::SignatureConfig>(
          config.engine.signature_bits, config.engine.signature_hashes,
          config.engine.hash_seed)),
      submitted_(registry_.counter("svc.client.submitted")),
      oversized_(registry_.counter("svc.client.oversized")),
      rejected_(registry_.counter("svc.client.rejected")),
      timeout_(registry_.counter("svc.client.timeout")),
      late_(registry_.counter("svc.client.late")),
      conflict_attributed_(
          registry_.counter("svc.client.conflict.attributed")),
      rpc_ns_(registry_.histogram("svc.client.rpc_ns")),
      stage_client_queue_(registry_.histogram("svc.stage.client_queue")),
      stage_wire_(registry_.histogram("svc.stage.wire")),
      stage_server_queue_(registry_.histogram("svc.stage.server_queue")),
      stage_batch_wait_(registry_.histogram("svc.stage.batch_wait")),
      stage_engine_(registry_.histogram("svc.stage.engine")),
      stage_link_(registry_.histogram("svc.stage.link"))
{
    for (size_t i = 0; i < core::kVerdictCount; ++i) {
        verdict_[i] = &registry_.counter(
            std::string("svc.client.verdict.") +
            core::to_string(static_cast<core::Verdict>(i)));
    }
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        closed_ = true;
        return;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
        close(fd);
        closed_ = true;
        return;
    }
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        close(fd);
        closed_ = true;
        return;
    }
    fd_ = fd;
    reader_ = std::thread([this] { reader_loop(); });
}

ValidationClient::~ValidationClient()
{
    stop();
}

bool
ValidationClient::connected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !closed_;
}

uint32_t
ValidationClient::acquire_index_locked()
{
    if (!free_.empty()) {
        const uint32_t index = free_.back();
        free_.pop_back();
        return index;
    }
    ROCOCO_CHECK(slab_.size() < (size_t{1} << kSlotBits));
    slab_.emplace_back();
    return static_cast<uint32_t>(slab_.size() - 1);
}

void
ValidationClient::release_slot_locked(Slot* slot)
{
    slot->state = Slot::State::kFree;
    slot->promised = false;
    // Every acquired slot had its id assigned in send_locked() before
    // any release path can run, so the id's low bits are the index.
    free_.push_back(static_cast<uint32_t>(slot->id & kSlotMask));
}

ValidationClient::Slot*
ValidationClient::send_locked(fpga::OffloadRequest&& request,
                              uint64_t deadline_ns, uint64_t enter_ns)
{
    submitted_.add(1);
    if (request.reads.size() > kMaxAddresses ||
        request.writes.size() > kMaxAddresses) {
        // The server's decoder would treat the frame as malformed and
        // drop the whole connection; reject the one oversized request
        // locally instead of poisoning every outstanding one.
        oversized_.add(1);
        rejected_.add(1);
        return nullptr;
    }
    if (closed_) {
        rejected_.add(1);
        return nullptr;
    }
    const uint32_t index = acquire_index_locked();
    Slot* slot = &slab_[index];
    const uint64_t id = (next_seq_++ << kSlotBits) | index;
    uint64_t trace_id = 0;
#if ROCOCO_TRACE_ENABLED
    if (obs::Tracer::instance().active()) trace_id = next_trace_id();
#endif
    frame_.clear();
    encode_request(frame_,
                   {id, deadline_ns, trace_id, trace_id,
                    std::move(request)});

    slot->state = Slot::State::kWaiting;
    slot->id = id;
    slot->enter_ns = enter_ns;
    // Stamp before the first byte leaves: the client_queue stage must
    // end before the server can possibly start its stages, or the
    // per-stage durations overlap and their sum exceeds the measured
    // round trip. Time spent blocked in send() lands in the wire
    // residual instead.
    const uint64_t sent_ns = obs::now_ns();
    slot->sent_ns = sent_ns;

    // Write the whole frame under the lock: frames from concurrent
    // submitters must not interleave on the stream. The socket is
    // blocking, so a full send buffer throttles submitters here — the
    // transport-level half of the backpressure story.
    size_t off = 0;
    while (off < frame_.size()) {
        const ssize_t n = send(fd_, frame_.data() + off,
                               frame_.size() - off, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
            release_slot_locked(slot);
            closed_ = true;
            rejected_.add(1);
            return nullptr;
        }
        off += static_cast<size_t>(n);
    }
#if ROCOCO_TRACE_ENABLED
    if (trace_id != 0) {
        // The local half of the distributed trace: the span the server
        // span will point back at, and the flow-start event the arrow
        // leaves from. (cat, name, id) must match the server's flow-end.
        obs::TraceEvent span;
        span.name = "svc.rpc";
        span.cat = "svc";
        span.arg_name = "trace_id";
        span.arg_value = trace_id;
        span.ts_ns = enter_ns;
        span.dur_ns = sent_ns - enter_ns;
        span.phase = obs::EventPhase::kComplete;
        obs::Tracer::instance().record(span);
        obs::Tracer::instance().flow(obs::EventPhase::kFlowStart, "svc",
                                     "svc.validate_flow", trace_id,
                                     enter_ns + (sent_ns - enter_ns) / 2);
    }
#endif
    return slot;
}

std::future<core::ValidationResult>
ValidationClient::submit(fpga::OffloadRequest request)
{
    // client_queue starts before the lock: contention on the socket
    // mutex between concurrent submitters is exactly what that stage is
    // supposed to show.
    const uint64_t enter_ns = obs::now_ns();
    std::lock_guard<std::mutex> lock(mutex_);
    Slot* slot = send_locked(std::move(request), 0, enter_ns);
    if (slot == nullptr) return resolved(rejected_result());
    slot->promised = true;
    slot->promise = std::promise<core::ValidationResult>{};
    return slot->promise.get_future();
}

core::ValidationResult
ValidationClient::validate(fpga::OffloadRequest request)
{
    const uint64_t enter_ns = obs::now_ns();
    std::unique_lock<std::mutex> lock(mutex_);
    Slot* slot = send_locked(std::move(request), 0, enter_ns);
    if (slot == nullptr) return rejected_result();
    slot->cv.wait(lock, [slot] { return slot->state == Slot::State::kDone; });
    const core::ValidationResult result = slot->result;
    release_slot_locked(slot);
    return result;
}

core::ValidationResult
ValidationClient::validate(fpga::OffloadRequest request,
                           std::chrono::nanoseconds timeout)
{
    const uint64_t enter_ns = obs::now_ns();
    const uint64_t deadline_ns =
        static_cast<uint64_t>(std::max<int64_t>(timeout.count(), 1));
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lock(mutex_);
    Slot* slot = send_locked(std::move(request), deadline_ns, enter_ns);
    if (slot == nullptr) return rejected_result();
    while (slot->state != Slot::State::kDone) {
        if (slot->cv.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
            if (slot->state == Slot::State::kDone) break; // verdict won
            // Abandon the slot so the reader discards (and recycles)
            // the late verdict.
            slot->state = Slot::State::kAbandoned;
            timeout_.add(1);
            return {core::Verdict::kTimeout, 0, obs::AbortReason::kTimeout};
        }
    }
    const core::ValidationResult result = slot->result;
    release_slot_locked(slot);
    return result;
}

void
ValidationClient::reader_loop()
{
    FrameReader reader;
    uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break; // EOF / error / shutdown()
        reader.append(buf, static_cast<size_t>(n));
        bool malformed = false;
        while (auto frame = reader.next(&malformed)) {
            if (frame->type != MsgType::kResponse &&
                frame->type != MsgType::kResponseV2) {
                continue;
            }
            auto response = decode_response(frame->type, frame->payload,
                                            frame->size);
            if (!response) continue;
            const size_t index = response->request_id & kSlotMask;
            std::unique_lock<std::mutex> lock(mutex_);
            if (index >= slab_.size()) {
                late_.add(1);
                continue;
            }
            Slot* slot = &slab_[index];
            if (slot->state == Slot::State::kFree ||
                slot->id != response->request_id) {
                // Stale response for a recycled or unknown slot.
                late_.add(1);
                continue;
            }
            if (slot->state == Slot::State::kAbandoned) {
                // Caller already timed out locally; drop the verdict.
                release_slot_locked(slot);
                late_.add(1);
                continue;
            }
            const uint64_t enter_ns = slot->enter_ns;
            const uint64_t sent_ns = slot->sent_ns;
            // Record metrics before the waiter can observe the verdict:
            // the moment the last validate() returns, the caller may
            // export_metrics(), and every answered request must already
            // be in the histograms. The instruments are atomic, so the
            // extra work under the mutex is a few counter bumps.
            verdict_[static_cast<size_t>(response->result.verdict)]->add(1);
            if (response->result.conflict_cid != core::kNoConflictCid) {
                // Abort provenance arrived over the wire: the verdict
                // names the committed cid it collided with.
                conflict_attributed_.add(1);
            }
            const uint64_t rtt_ns = obs::now_ns() - enter_ns;
            rpc_ns_.record(rtt_ns);
            if (response->has_stages) {
                // Stage attribution: client_queue is measured here,
                // server stages travel in the response, and wire is the
                // residual — so the stage means sum to the measured
                // round trip by construction (link is modeled, never
                // part of the sum).
                const StageTimestamps& s = response->stages;
                const uint64_t client_queue_ns = sent_ns - enter_ns;
                const uint64_t server_ns = s.server_queue_ns +
                                           s.batch_wait_ns + s.engine_ns;
                const uint64_t wire_ns =
                    rtt_ns > client_queue_ns + server_ns
                        ? rtt_ns - client_queue_ns - server_ns
                        : 0;
                stage_client_queue_.record(client_queue_ns);
                stage_wire_.record(wire_ns);
                stage_server_queue_.record(s.server_queue_ns);
                stage_batch_wait_.record(s.batch_wait_ns);
                stage_engine_.record(s.engine_ns);
                stage_link_.record(s.link_ns);
            }
            bool promised = false;
            std::promise<core::ValidationResult> promise;
            if (slot->promised) {
                promised = true;
                promise = std::move(slot->promise);
                release_slot_locked(slot);
            } else {
                slot->result = response->result;
                slot->state = Slot::State::kDone;
                slot->cv.notify_one();
            }
            lock.unlock();
            if (promised) promise.set_value(response->result);
        }
        if (malformed) break; // server speaking garbage: disconnect
    }
    fail_outstanding();
}

void
ValidationClient::fail_outstanding()
{
    std::vector<std::promise<core::ValidationResult>> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        for (Slot& slot : slab_) {
            if (slot.state == Slot::State::kWaiting) {
                rejected_.add(1);
                if (slot.promised) {
                    orphans.push_back(std::move(slot.promise));
                    release_slot_locked(&slot);
                } else {
                    slot.result = rejected_result();
                    slot.state = Slot::State::kDone;
                    slot.cv.notify_one();
                }
            } else if (slot.state == Slot::State::kAbandoned) {
                release_slot_locked(&slot);
            }
        }
    }
    for (auto& promise : orphans) {
        promise.set_value(rejected_result());
    }
}

void
ValidationClient::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        // Wake the reader; fd stays open until the reader has exited so
        // the descriptor cannot be recycled under it.
        if (fd_ >= 0) shutdown(fd_, SHUT_RDWR);
    }
    if (reader_.joinable()) reader_.join();
    fail_outstanding();
    if (fd_ >= 0) {
        close(fd_);
        fd_ = -1;
    }
}

CounterBag
ValidationClient::stats() const
{
    // Same bare keys as ValidationPipeline::stats() so callers can swap
    // backends without re-learning counter names.
    static constexpr char kPrefix[] = "svc.client.";
    CounterBag bag;
    const CounterBag raw = registry_.to_counter_bag();
    for (const auto& [name, value] : raw.counters()) {
        if (name.rfind(kPrefix, 0) != 0) continue;
        std::string key = name.substr(sizeof(kPrefix) - 1);
        if (key.rfind("verdict.", 0) == 0) key = key.substr(8);
        bag.bump(key, value);
    }
    return bag;
}

void
ValidationClient::export_metrics(obs::Registry& registry) const
{
    registry.merge(registry_);
}

std::shared_ptr<const sig::SignatureConfig>
ValidationClient::signature_config() const
{
    return sig_config_;
}

} // namespace rococo::svc
