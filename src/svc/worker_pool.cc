#include "svc/worker_pool.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>

#include "common/check.h"
#include "obs/clock.h"

namespace rococo::svc {

WorkerPool::WorkerPool(shard::ShardRouter& router, size_t threads,
                       size_t capacity,
                       std::vector<obs::Counter*> validations)
    : router_(router), validation_counters_(std::move(validations))
{
    ROCOCO_CHECK(threads >= 1 && capacity >= 1);
    ROCOCO_CHECK(validation_counters_.empty() ||
                 validation_counters_.size() >= threads);
    slab_.resize(capacity);
    free_.reserve(capacity);
    for (WorkerJob& job : slab_) free_.push_back(&job);
    completions_.reserve(capacity);
    drained_.reserve(capacity);
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
        auto worker = std::make_unique<Worker>();
        // Every in-flight job fits in every feed, so the ring is full
        // before the slab runs out and push never wraps onto a live
        // entry.
        worker->ring.resize(capacity);
        if (!validation_counters_.empty()) {
            worker->validations = validation_counters_[i];
        }
        workers_.push_back(std::move(worker));
    }
}

WorkerPool::~WorkerPool()
{
    stop();
    for (int& fd : completion_fds_) {
        if (fd >= 0) close(fd);
        fd = -1;
    }
}

bool
WorkerPool::start()
{
    if (pipe(completion_fds_) != 0) return false;
    for (int fd : completion_fds_) {
        const int flags = fcntl(fd, F_GETFL, 0);
        if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
            for (int& f : completion_fds_) {
                close(f);
                f = -1;
            }
            return false;
        }
    }
    running_.store(true, std::memory_order_release);
    for (auto& worker : workers_) {
        worker->thread = std::thread([this, w = worker.get()] { run(*w); });
    }
    return true;
}

void
WorkerPool::stop()
{
    if (!running_.exchange(false, std::memory_order_acq_rel)) return;
    for (auto& worker : workers_) {
        {
            // The lock pairs the flag flip with the cv wait: a worker
            // between its predicate check and its sleep must observe
            // either the old flag (and be notified) or the new one.
            std::lock_guard<std::mutex> lock(worker->mutex);
        }
        worker->cv.notify_all();
    }
    for (auto& worker : workers_) {
        if (worker->thread.joinable()) worker->thread.join();
    }
}

WorkerJob*
WorkerPool::acquire()
{
    if (free_.empty()) return nullptr;
    WorkerJob* job = free_.back();
    free_.pop_back();
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    return job;
}

void
WorkerPool::release(WorkerJob* job)
{
    // Reset only what the next use would otherwise inherit; the
    // OffloadRequest keeps its SmallVector storage for reuse.
    job->offload.reads.clear();
    job->offload.writes.clear();
    job->timed_out = false;
    job->stages = StageTimestamps{};
    job->route = shard::RouteInfo{};
    free_.push_back(job);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

size_t
WorkerPool::home_worker(const fpga::OffloadRequest& request) const
{
    const shard::Partitioner& partitioner = router_.partitioner();
    uint32_t home = partitioner.shards();
    for (uint64_t addr : request.reads) {
        home = std::min(home, partitioner.shard_of(addr));
    }
    for (uint64_t addr : request.writes) {
        home = std::min(home, partitioner.shard_of(addr));
    }
    if (home == partitioner.shards()) home = 0; // address-free request
    return home % workers_.size();
}

void
WorkerPool::submit(WorkerJob* job)
{
    Worker& worker = *workers_[home_worker(job->offload)];
    worker.depth.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(worker.mutex);
        worker.ring[(worker.head + worker.count) % worker.ring.size()] =
            job;
        ++worker.count;
    }
    worker.cv.notify_one();
}

void
WorkerPool::run(Worker& worker)
{
    for (;;) {
        WorkerJob* job = nullptr;
        {
            std::unique_lock<std::mutex> lock(worker.mutex);
            worker.cv.wait(lock, [&] {
                return worker.count != 0 ||
                       !running_.load(std::memory_order_acquire);
            });
            // Stopping: drain the remaining feed with real engine
            // passes — every accepted job gets its true verdict, and
            // the final drain_completions() closes the ledger.
            if (worker.count == 0) return;
            job = worker.ring[worker.head];
            worker.head = (worker.head + 1) % worker.ring.size();
            --worker.count;
        }
        const uint64_t start = obs::now_ns();
        job->stages.server_queue_ns = start - job->arrival_ns;
        if (job->deadline_ns != 0 &&
            start - job->arrival_ns > job->deadline_ns) {
            // Expired while queued: the client has already given up —
            // an engine pass would only burn window slots for a
            // verdict nobody applies (same rule as process_batch).
            job->timed_out = true;
            job->result = {core::Verdict::kTimeout, 0,
                           obs::AbortReason::kTimeout};
        } else {
            job->engine_start_ns = start;
            job->result = router_.process(job->offload, &job->route);
            job->engine_end_ns = obs::now_ns();
            job->stages.engine_ns = job->engine_end_ns - start;
            // What the same pass would cost over the paper's CCI link
            // — modeled, never part of the wall-clock sum.
            job->stages.link_ns = static_cast<uint64_t>(
                router_.isolated_latency_ns(job->offload));
            if (worker.validations != nullptr) worker.validations->add(1);
        }
        worker.depth.fetch_sub(1, std::memory_order_relaxed);
        complete(job);
    }
}

void
WorkerPool::complete(WorkerJob* job)
{
    bool was_empty = false;
    {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        was_empty = completions_.empty();
        completions_.push_back(job);
    }
    if (was_empty) {
        // Coalesced wake: only the empty -> non-empty transition costs
        // a write(); the IO thread's next drain covers every completion
        // that piles up behind it.
        const char byte = 0;
        [[maybe_unused]] ssize_t n = write(completion_fds_[1], &byte, 1);
    }
}

size_t
WorkerPool::drain_completions(std::vector<WorkerJob*>& out)
{
    char drain[16];
    while (read(completion_fds_[0], drain, sizeof(drain)) > 0) {}
    drained_.clear();
    {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        completions_.swap(drained_);
    }
    out.insert(out.end(), drained_.begin(), drained_.end());
    return drained_.size();
}

} // namespace rococo::svc
