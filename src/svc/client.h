/// @file
/// Client side of the networked validation service: a
/// fpga::ValidationBackend whose engine lives in the server process
/// (svc/server.h), so many client processes share one sliding window —
/// exactly the API the in-process ValidationPipeline offers, which is
/// what lets RococoTm switch deployment shapes via config.
///
/// Concurrency model: submit() encodes and sends the request under one
/// mutex (writes to a SOCK_STREAM socket must not interleave) and parks
/// a promise in the outstanding map keyed by request id; a reader
/// thread decodes responses and resolves promises in arrival order.
/// Many TM threads can be in submit()/validate() at once — the service
/// batches whatever they have in flight.
///
/// Failure contract (mirrors ValidationPipeline): no caller ever sees a
/// broken promise. Disconnect or stop() resolves every outstanding
/// future as Verdict::kRejected / AbortReason::kBackpressure, and
/// submit() on a dead client returns an already-resolved rejected
/// future. A request whose address sets exceed wire.h's kMaxAddresses
/// is likewise resolved rejected locally ("oversized") — sending it
/// would make the server drop the connection as malformed, taking every
/// outstanding request down with it. validate(timeout) additionally
/// ships the deadline on the wire (so the server can drop the request
/// from its queue) and, on local expiry, abandons the outstanding entry
/// — a late verdict is then discarded by the reader.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "fpga/validation_backend.h"
#include "fpga/validation_engine.h"
#include "obs/registry.h"
#include "svc/wire.h"

namespace rococo::svc {

struct ClientConfig
{
    /// Unix-domain socket path of the server.
    std::string socket_path = "/tmp/rococo-validation.sock";
    /// Engine geometry the server was started with; only the signature
    /// fields matter client-side (CPU-side eager detection must hash
    /// like the server's Detector).
    fpga::EngineConfig engine;
};

class ValidationClient final : public fpga::ValidationBackend
{
  public:
    explicit ValidationClient(const ClientConfig& config = {});
    ~ValidationClient() override;

    /// True if the constructor's connect succeeded and no disconnect
    /// has been observed since.
    bool connected() const;

    std::future<core::ValidationResult> submit(
        fpga::OffloadRequest request) override;

    core::ValidationResult validate(fpga::OffloadRequest request) override;

    core::ValidationResult validate(
        fpga::OffloadRequest request,
        std::chrono::nanoseconds timeout) override;

    /// Client-side counters: per-verdict counts as seen over the wire,
    /// "submitted", "timeout" (local deadline expiries), "rejected"
    /// (backpressure verdicts, disconnect and oversized resolutions)
    /// and "oversized" (requests beyond kMaxAddresses, a subset of
    /// "rejected").
    CounterBag stats() const override;

    /// Merge client metrics ("svc.client.*", including the
    /// svc.client.rpc_ns round-trip histogram and the client-observed
    /// per-stage breakdown svc.stage.{client_queue,wire,server_queue,
    /// batch_wait,engine,link} fed from v2 responses) into @p registry.
    /// client_queue and the wire residual are measured here; the server
    /// stages are the durations the server shipped back.
    void export_metrics(obs::Registry& registry) const override;

    std::shared_ptr<const sig::SignatureConfig> signature_config()
        const override;

    /// Close the connection; outstanding futures resolve as rejected.
    /// Idempotent.
    void stop() override;

  private:
    struct Outstanding
    {
        std::promise<core::ValidationResult> promise;
        uint64_t enter_ns = 0; ///< submit() entry (rpc_ns starts here)
        uint64_t sent_ns = 0;  ///< last frame byte handed to the kernel
    };

    /// Send with the wire deadline field set (0 = none).
    std::future<core::ValidationResult> submit_with_deadline(
        fpga::OffloadRequest request, uint64_t deadline_ns,
        uint64_t* id_out);

    void reader_loop();

    /// Resolve every outstanding future as rejected (called on
    /// disconnect and from stop()).
    void fail_outstanding();

    ClientConfig config_;
    std::shared_ptr<const sig::SignatureConfig> sig_config_;

    mutable std::mutex mutex_; ///< socket writes + outstanding_ + next_id_
    int fd_ = -1;
    bool closed_ = false;
    uint64_t next_id_ = 1;
    std::unordered_map<uint64_t, Outstanding> outstanding_;

    std::thread reader_;
    obs::Registry registry_; ///< svc.client.* metrics
};

} // namespace rococo::svc
