/// @file
/// Client side of the networked validation service: a
/// fpga::ValidationBackend whose engine lives in the server process
/// (svc/server.h), so many client processes share one sliding window —
/// exactly the API the in-process ValidationPipeline offers, which is
/// what lets RococoTm switch deployment shapes via config.
///
/// Concurrency model: submit() encodes and sends the request under one
/// mutex (writes to a SOCK_STREAM socket must not interleave) and parks
/// the request in a completion slot keyed by request id; a reader
/// thread decodes responses and resolves slots in arrival order. Many
/// TM threads can be in submit()/validate() at once — the service
/// batches whatever they have in flight.
///
/// The request path is allocation-free in steady state: outstanding
/// requests live in a slab of reusable slots (the slot index is packed
/// into the low bits of the request id, so the reader resolves a
/// response in O(1) with no map), the encode buffer is reused across
/// calls, and synchronous validate() waits on the slot's condition
/// variable instead of a heap-allocated promise. submit() still hands
/// out a std::future (allocating its shared state).
///
/// Failure contract (mirrors ValidationPipeline): no caller ever sees a
/// broken promise. Disconnect or stop() resolves every outstanding
/// future as Verdict::kRejected / AbortReason::kBackpressure, and
/// submit() on a dead client returns an already-resolved rejected
/// future. A request whose address sets exceed wire.h's kMaxAddresses
/// is likewise resolved rejected locally ("oversized") — sending it
/// would make the server drop the connection as malformed, taking every
/// outstanding request down with it. validate(timeout) additionally
/// ships the deadline on the wire (so the server can drop the request
/// from its queue) and, on local expiry, abandons the slot — a late
/// verdict is then discarded by the reader.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fpga/validation_backend.h"
#include "fpga/validation_engine.h"
#include "obs/registry.h"
#include "svc/wire.h"

namespace rococo::svc {

struct ClientConfig
{
    /// Unix-domain socket path of the server.
    std::string socket_path = "/tmp/rococo-validation.sock";
    /// Engine geometry the server was started with; only the signature
    /// fields matter client-side (CPU-side eager detection must hash
    /// like the server's Detector).
    fpga::EngineConfig engine;
};

class ValidationClient final : public fpga::ValidationBackend
{
  public:
    explicit ValidationClient(const ClientConfig& config = {});
    ~ValidationClient() override;

    /// True if the constructor's connect succeeded and no disconnect
    /// has been observed since.
    bool connected() const;

    std::future<core::ValidationResult> submit(
        fpga::OffloadRequest request) override;

    core::ValidationResult validate(fpga::OffloadRequest request) override;

    core::ValidationResult validate(
        fpga::OffloadRequest request,
        std::chrono::nanoseconds timeout) override;

    /// Client-side counters: per-verdict counts as seen over the wire,
    /// "submitted", "timeout" (local deadline expiries), "rejected"
    /// (backpressure verdicts, disconnect and oversized resolutions)
    /// and "oversized" (requests beyond kMaxAddresses, a subset of
    /// "rejected").
    CounterBag stats() const override;

    /// Merge client metrics ("svc.client.*", including the
    /// svc.client.rpc_ns round-trip histogram and the client-observed
    /// per-stage breakdown svc.stage.{client_queue,wire,server_queue,
    /// batch_wait,engine,link} fed from v2 responses) into @p registry.
    /// client_queue and the wire residual are measured here; the server
    /// stages are the durations the server shipped back.
    void export_metrics(obs::Registry& registry) const override;

    std::shared_ptr<const sig::SignatureConfig> signature_config()
        const override;

    /// Close the connection; outstanding futures resolve as rejected.
    /// Idempotent.
    void stop() override;

  private:
    /// Low bits of a request id address the slot; high bits are a
    /// sequence number, so a late response for a recycled slot never
    /// matches the slot's current id.
    static constexpr unsigned kSlotBits = 20;
    static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;

    /// A reusable outstanding-request slot (see the file comment).
    struct Slot
    {
        enum class State : uint8_t
        {
            kFree,      ///< on the free list
            kWaiting,   ///< sent; awaiting the server's response
            kDone,      ///< result ready; sync waiter will release
            kAbandoned, ///< sync waiter timed out; reader releases
        };

        State state = State::kFree;
        /// True when a future was handed out (submit() path): the
        /// reader resolves the promise and releases the slot itself.
        bool promised = false;
        std::promise<core::ValidationResult> promise;
        core::ValidationResult result;
        uint64_t id = 0;       ///< full request id of the current use
        uint64_t enter_ns = 0; ///< submit() entry (rpc_ns starts here)
        uint64_t sent_ns = 0;  ///< last frame byte handed to the kernel
        std::condition_variable cv; ///< signals kDone to a sync waiter
    };

    /// Acquire a slot, encode and send the request; requires mutex_.
    /// Returns nullptr when the request was rejected locally (closed,
    /// oversized, send failure) — the caller resolves it rejected.
    Slot* send_locked(fpga::OffloadRequest&& request, uint64_t deadline_ns,
                      uint64_t enter_ns);
    uint32_t acquire_index_locked();
    void release_slot_locked(Slot* slot);

    void reader_loop();

    /// Resolve every outstanding request as rejected (called on
    /// disconnect and from stop()).
    void fail_outstanding();

    ClientConfig config_;
    std::shared_ptr<const sig::SignatureConfig> sig_config_;

    mutable std::mutex mutex_; ///< socket writes + slab/free list + seq
    int fd_ = -1;
    bool closed_ = false;
    uint64_t next_seq_ = 1;
    std::deque<Slot> slab_;       ///< all slots ever created
    std::vector<uint32_t> free_;  ///< recycled slot indices
    std::vector<uint8_t> frame_;  ///< reused encode buffer

    std::thread reader_;
    obs::Registry registry_; ///< svc.client.* metrics

    /// Metric handles hoisted out of the request path and reader loop:
    /// Registry lookup takes a mutex and builds a name string; the
    /// references stay valid for the registry's lifetime.
    obs::Counter& submitted_;
    obs::Counter& oversized_;
    obs::Counter& rejected_;
    obs::Counter& timeout_;
    obs::Counter& late_;
    /// Wire verdicts carrying abort provenance (a non-sentinel
    /// conflict_cid in a v2 response).
    obs::Counter& conflict_attributed_;
    obs::Counter* verdict_[core::kVerdictCount];
    obs::LatencyHistogram& rpc_ns_;
    obs::LatencyHistogram& stage_client_queue_;
    obs::LatencyHistogram& stage_wire_;
    obs::LatencyHistogram& stage_server_queue_;
    obs::LatencyHistogram& stage_batch_wait_;
    obs::LatencyHistogram& stage_engine_;
    obs::LatencyHistogram& stage_link_;
};

} // namespace rococo::svc
