/// @file
/// Engine worker pool of the multi-threaded validation server: N
/// threads that run ShardRouter::process() concurrently, fed by the
/// IO thread and answered back over an MPSC completion queue — the
/// piece that makes S shards actually validate in parallel instead of
/// being serialized behind the single service thread's batch loop.
///
/// Division of labor (see docs/SERVICE.md, "Threading model"):
///
///   IO thread (Server::loop) — accept/read/decode, the inline
///       introspection ops, respond()/flush(), every svc.* accounting
///       counter, trace spans, recorder/monitor ticks. Sole writer of
///       all connection state and the accounting invariant.
///   workers — deadline check + router_.process() only. A worker
///       touches the router (whose counters are its own lock-free
///       atomics and whose shards carry their own locks) and its job;
///       it never sees a socket, a connection, or a svc.* counter.
///
/// Job flow. Jobs live in a fixed slab (capacity = max_pending) with a
/// free list; acquire() returning nullptr IS the backpressure signal —
/// the IO thread answers kRejected without queueing, exactly like the
/// single-threaded server's bounded pending_ deque. submit() routes a
/// job to worker home_shard(request) % N: every single-shard request
/// for shard s lands on the same worker, so the per-shard mutex in
/// ShardRouter::process() is uncontended in the common case — the lock
/// acquisition the single-threaded caller paid on its own thread
/// becomes a handoff to the shard's owning worker (shard/router.h,
/// "Threading"). Cross-shard requests still take their ascending lock
/// sets and may contend; correctness never depends on affinity.
///
/// Completions. Workers push finished jobs onto one mutex-guarded MPSC
/// vector and write a single wake byte to a self-pipe only on the
/// empty -> non-empty transition (coalesced wake: one poll() wakeup
/// drains any number of completions). The IO thread polls the read end
/// next to its sockets and calls drain_completions() — so verdict
/// accounting, stage histograms and respond() all stay on the IO
/// thread, single-writer.
///
/// Shutdown. stop() wakes every worker; each drains its remaining feed
/// (processing every job normally — real verdicts, never dropped work)
/// and exits. The caller then drains the completion queue one last
/// time, which is what keeps svc.requests == sum(svc.verdict.*) +
/// svc.timeout + svc.rejected exact across a stop with requests in
/// flight.
///
/// Steady state allocates nothing: jobs recycle through the slab, the
/// per-worker feeds are fixed rings sized to that slab (a deque would
/// allocate a fresh block every ~64 FIFO rotations), the completion
/// vectors keep their capacity, and the OffloadRequest SmallVectors
/// reuse their inline/heap storage (tests/hotpath_alloc_test.cc counts
/// this at exactly zero).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque> // job slab: stable addresses without one big mmap
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "shard/router.h"
#include "svc/wire.h"

namespace rococo::svc {

/// One in-flight validation: request context written by the IO thread,
/// result written by the worker, accounting consumed by the IO thread.
/// A job is owned by exactly one side at a time (IO -> feed -> worker
/// -> completions -> IO), so none of its fields need atomicity.
struct WorkerJob
{
    // -- filled by the IO thread before submit() --
    int fd = -1;             ///< originating connection
    uint64_t generation = 0; ///< guards against fd reuse after close
    uint64_t request_id = 0;
    uint64_t arrival_ns = 0;
    uint64_t deadline_ns = 0;    ///< relative to arrival; 0 = none
    uint64_t trace_id = 0;       ///< flow-event binding id (0 = none)
    uint64_t parent_span_id = 0; ///< client span this request came from
    bool v2 = false;             ///< reply version mirrors the request
    fpga::OffloadRequest offload;

    // -- filled by the worker before completion --
    bool timed_out = false; ///< deadline elapsed before the engine pass
    core::ValidationResult result;
    StageTimestamps stages;
    shard::RouteInfo route;
    uint64_t engine_start_ns = 0; ///< absolute, for the server span
    uint64_t engine_end_ns = 0;
};

class WorkerPool
{
  public:
    /// @param router shared validation tier; process() is thread-safe
    ///        under its per-shard locks
    /// @param threads engine workers N (>= 1)
    /// @param capacity job slab size — the in-flight bound that
    ///        replaces the single-threaded server's max_pending
    /// @param validations optional per-worker obs counters (size >=
    ///        threads when non-empty); each is written by exactly one
    ///        worker (svc.worker.<i>.validations)
    WorkerPool(shard::ShardRouter& router, size_t threads, size_t capacity,
               std::vector<obs::Counter*> validations = {});
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /// Create the completion self-pipe and spawn the workers. False if
    /// the pipe cannot be created. Not idempotent; call once.
    bool start();

    /// Wake every worker, let each drain its remaining feed with real
    /// engine passes, and join. Finished jobs stay in the completion
    /// queue — the caller must drain_completions() afterwards to close
    /// the accounting ledger. Idempotent.
    void stop();

    size_t threads() const { return workers_.size(); }

    /// Read end of the completion self-pipe: poll it with POLLIN next
    /// to the sockets; one readable byte means drain_completions() has
    /// work (coalesced — one byte may cover many completions).
    int completion_fd() const { return completion_fds_[0]; }

    /// Take a free job from the slab (IO thread only). nullptr when
    /// all capacity is in flight — the backpressure signal.
    WorkerJob* acquire();

    /// Recycle a finished job (IO thread only).
    void release(WorkerJob* job);

    /// Hand a filled job to its home-shard worker (IO thread only).
    void submit(WorkerJob* job);

    /// Move every finished job into @p out (appended), draining the
    /// wake pipe first (IO thread only). Returns the number appended.
    size_t drain_completions(std::vector<WorkerJob*>& out);

    /// Jobs currently between acquire() and release().
    size_t in_flight() const
    {
        return in_flight_.load(std::memory_order_relaxed);
    }

    /// Jobs waiting in (or running on) worker @p i. Readable from any
    /// thread (monitor callbacks).
    size_t
    worker_queue_depth(size_t i) const
    {
        return workers_[i]->depth.load(std::memory_order_relaxed);
    }

    /// Worker @p i of @p request's home shard: the shard that owns the
    /// request's lowest-numbered touched shard, so all single-shard
    /// traffic for one shard serializes on one worker (lock handoff,
    /// not contention). Address-free requests go to worker 0.
    size_t home_worker(const fpga::OffloadRequest& request) const;

  private:
    struct Worker
    {
        std::mutex mutex;
        std::condition_variable cv;
        /// Fixed-capacity FIFO ring, guarded by mutex. At most
        /// slab-capacity jobs exist, so the ring sized to the slab can
        /// never overflow and a steady-state push/pop never allocates.
        std::vector<WorkerJob*> ring;
        size_t head = 0;  ///< next pop slot
        size_t count = 0; ///< occupied slots
        /// feed.size() plus the job being processed, maintained
        /// relaxed — a monitoring value, not a synchronization point.
        std::atomic<size_t> depth{0};
        obs::Counter* validations = nullptr; ///< this worker only
        std::thread thread;
    };

    void run(Worker& worker);
    void complete(WorkerJob* job);

    shard::ShardRouter& router_;
    std::vector<obs::Counter*> validation_counters_;
    std::deque<WorkerJob> slab_; ///< stable addresses; never resized
    std::vector<WorkerJob*> free_;
    std::atomic<size_t> in_flight_{0};
    std::vector<std::unique_ptr<Worker>> workers_;

    std::mutex completion_mutex_;
    std::vector<WorkerJob*> completions_; ///< guarded by completion_mutex_
    std::vector<WorkerJob*> drained_;     ///< IO thread swap target
    int completion_fds_[2] = {-1, -1};
    std::atomic<bool> running_{false};
};

} // namespace rococo::svc
