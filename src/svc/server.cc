#include "svc/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/clock.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace rococo::svc {
namespace {

bool
set_nonblocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

shard::ShardConfig
router_config(const ServerConfig& config)
{
    shard::ShardConfig sharded;
    sharded.shards = std::max<uint32_t>(1, config.shards);
    sharded.engine = config.engine;
    return sharded;
}

} // namespace

Server::Server(const ServerConfig& config)
    : config_(config), router_(router_config(config)),
      requests_(registry_.counter("svc.requests")),
      rejected_(registry_.counter("svc.rejected")),
      timeout_(registry_.counter("svc.timeout")),
      stats_polls_(registry_.counter("svc.stats")),
      topk_polls_(registry_.counter("svc.topk")),
      dump_requests_(registry_.counter("svc.dump")),
      series_polls_(registry_.counter("svc.series")),
      prom_polls_(registry_.counter("svc.prom")),
      overflow_(registry_.counter("svc.overflow")),
      malformed_(registry_.counter("svc.malformed")),
      disconnects_(registry_.counter("svc.disconnects")),
      accepts_(registry_.counter("svc.connections")),
      queue_depth_(registry_.gauge("svc.queue_depth")),
      window_occupancy_(registry_.gauge("svc.window_occupancy")),
      connections_open_(registry_.gauge("svc.connections_open")),
      rpc_ns_(registry_.histogram("svc.rpc_ns")),
      batch_size_(registry_.histogram("svc.batch_size")),
      stage_server_queue_(registry_.histogram("svc.stage.server_queue")),
      stage_batch_wait_(registry_.histogram("svc.stage.batch_wait")),
      stage_engine_(registry_.histogram("svc.stage.engine")),
      stage_link_(registry_.histogram("svc.stage.link")),
      stage_shard_route_(registry_.histogram("svc.stage.shard_route")),
      stage_shard_coord_(registry_.histogram("svc.stage.shard_coord"))
{
    for (size_t i = 0; i < core::kVerdictCount; ++i) {
        verdict_[i] = &registry_.counter(
            std::string("svc.verdict.") +
            core::to_string(static_cast<core::Verdict>(i)));
    }
    if (config_.max_batch == 0) config_.max_batch = 1;
    if (config_.max_out_bytes == 0) config_.max_out_bytes = 1 << 20;
    config_.max_out_bytes =
        std::max(config_.max_out_bytes, kResponseFrameBytes);

    if (config_.worker_threads > 0) {
        // The job slab is the in-flight bound: acquire() failing is
        // exactly the pending_-full backpressure of the inline mode.
        for (uint32_t i = 0; i < config_.worker_threads; ++i) {
            const std::string prefix =
                "svc.worker." + std::to_string(i);
            worker_validations_.push_back(
                &registry_.counter(prefix + ".validations"));
            worker_queue_gauges_.push_back(
                &registry_.gauge(prefix + ".queue_depth"));
        }
        const size_t capacity = std::max<size_t>(1, config_.max_pending);
        workers_ = std::make_unique<WorkerPool>(
            router_, config_.worker_threads, capacity,
            worker_validations_);
        finished_.reserve(capacity);
    }

    if (config_.recorder.enabled) {
        // Empty watch lists default to the service series.
        obs::FlightRecorderConfig rec = config_.recorder;
        if (rec.abort_counters.empty()) {
            rec.abort_counters = {"svc.verdict.abort-cycle"};
        }
        if (rec.total_counters.empty()) rec.total_counters = {"svc.requests"};
        if (rec.watch_histogram.empty()) rec.watch_histogram = "svc.rpc_ns";
        if (rec.queue_gauge.empty()) rec.queue_gauge = "svc.queue_depth";
        if (rec.imbalance_gauge.empty()) {
            rec.imbalance_gauge = "shard.imbalance";
        }
        recorder_ = std::make_unique<obs::FlightRecorder>(
            std::move(rec), [this](obs::Registry& out) {
                out.merge(registry_);
                router_.export_metrics(out);
            });
        recorder_->set_topk_source(
            [this](std::string* out) { router_.topk_json(out); });
    }

    if (config_.monitor.enabled) {
        const obs::MonitorConfig& mon = config_.monitor;
        obs::MetricSamplerConfig sampler;
        sampler.sample_period_ns = mon.sample_period_ns;
        sampler.ring_capacity = mon.ring_capacity;

        // The sampled service series. Sources are the hoisted handles
        // above (counter reads are lock-free) plus callbacks into
        // service-thread state — safe because the sampler only ever
        // ticks on the service thread.
        obs::SeriesSpec requests;
        requests.name = "svc.requests";
        requests.kind = obs::SeriesKind::kCounter;
        requests.counters = {&requests_};
        sampler.series.push_back(std::move(requests));

        obs::SeriesSpec abort_rate;
        abort_rate.name = "svc.abort_rate";
        abort_rate.kind = obs::SeriesKind::kRatio;
        abort_rate.counters = {
            verdict_[static_cast<size_t>(core::Verdict::kAbortCycle)],
            verdict_[static_cast<size_t>(core::Verdict::kWindowOverflow)]};
        abort_rate.denominators = {&requests_};
        sampler.series.push_back(std::move(abort_rate));

        obs::SeriesSpec rpc_p99;
        rpc_p99.name = "svc.rpc_p99_ns";
        rpc_p99.kind = obs::SeriesKind::kQuantile;
        rpc_p99.histogram = &rpc_ns_;
        sampler.series.push_back(std::move(rpc_p99));

        obs::SeriesSpec engine_p99;
        engine_p99.name = "svc.stage.engine_p99_ns";
        engine_p99.kind = obs::SeriesKind::kQuantile;
        engine_p99.histogram = &stage_engine_;
        sampler.series.push_back(std::move(engine_p99));

        obs::SeriesSpec queue;
        queue.name = "svc.queue_depth";
        queue.kind = obs::SeriesKind::kCallback;
        queue.callback = [this] {
            return static_cast<double>(
                workers_ ? workers_->in_flight() : pending_.size());
        };
        sampler.series.push_back(std::move(queue));

        obs::SeriesSpec occupancy;
        occupancy.name = "svc.window_occupancy";
        occupancy.kind = obs::SeriesKind::kCallback;
        occupancy.callback = [this] {
            return static_cast<double>(router_.occupancy());
        };
        sampler.series.push_back(std::move(occupancy));

        obs::SeriesSpec conns;
        conns.name = "svc.connections_open";
        conns.kind = obs::SeriesKind::kCallback;
        conns.callback = [this] {
            return static_cast<double>(connections_.size());
        };
        sampler.series.push_back(std::move(conns));

        obs::SeriesSpec imbalance;
        imbalance.name = "shard.imbalance";
        imbalance.kind = obs::SeriesKind::kCallback;
        imbalance.callback = [this] { return router_.imbalance(); };
        sampler.series.push_back(std::move(imbalance));

        // Worker mode: one validations + one queue-depth series per
        // engine worker, so `svcctl monitor` shows where the load
        // lands (the generic series renderer picks these up by name).
        if (workers_) {
            for (size_t i = 0; i < workers_->threads(); ++i) {
                const std::string prefix =
                    "svc.worker." + std::to_string(i);
                obs::SeriesSpec validations;
                validations.name = prefix + ".validations";
                validations.kind = obs::SeriesKind::kCounter;
                validations.counters = {worker_validations_[i]};
                sampler.series.push_back(std::move(validations));

                obs::SeriesSpec depth;
                depth.name = prefix + ".queue_depth";
                depth.kind = obs::SeriesKind::kCallback;
                depth.callback = [this, i] {
                    return static_cast<double>(
                        workers_->worker_queue_depth(i));
                };
                sampler.series.push_back(std::move(depth));
            }
        }

        obs::SloEngineConfig slo;
        const auto rule = [&mon](const char* name, const char* series,
                                 double threshold, double min_weight) {
            obs::SloRule r;
            r.name = name;
            r.series = series;
            r.threshold = threshold;
            r.fast_window_ns = mon.fast_window_ns;
            r.slow_window_ns = mon.slow_window_ns;
            r.min_weight = min_weight;
            r.recovery_samples = mon.recovery_samples;
            return r;
        };
        // Aborts need real traffic behind them (min 16 requests per
        // fast window, matching the recorder's min_delta_total).
        slo.rules.push_back(
            rule("abort-rate", "svc.abort_rate",
                 mon.abort_rate_threshold, 16.0));
        slo.rules.push_back(
            rule("engine-p99", "svc.stage.engine_p99_ns",
                 static_cast<double>(mon.p99_threshold_ns), 1.0));
        const double queue_threshold =
            mon.queue_threshold > 0.0
                ? mon.queue_threshold
                : 0.9 * static_cast<double>(config_.max_pending);
        slo.rules.push_back(
            rule("queue-depth", "svc.queue_depth", queue_threshold, 1.0));
        slo.rules.push_back(rule("shard-imbalance", "shard.imbalance",
                                 mon.imbalance_threshold, 1.0));

        monitor_ = std::make_unique<obs::HealthMonitor>(std::move(sampler),
                                                        std::move(slo));
        if (recorder_) monitor_->set_incident_recorder(recorder_.get());
    }
}

Server::~Server()
{
    stop();
}

bool
Server::start()
{
    if (running_) return true;

    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return false;

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
        close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    unlink(config_.socket_path.c_str());

    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
        listen(listen_fd_, SOMAXCONN) != 0 || !set_nonblocking(listen_fd_) ||
        pipe(wake_fds_) != 0) {
        close(listen_fd_);
        listen_fd_ = -1;
        unlink(config_.socket_path.c_str());
        return false;
    }
    set_nonblocking(wake_fds_[0]);

    if (workers_ && !workers_->start()) {
        close(listen_fd_);
        listen_fd_ = -1;
        for (int& fd : wake_fds_) {
            close(fd);
            fd = -1;
        }
        unlink(config_.socket_path.c_str());
        return false;
    }

    running_ = true;
    thread_ = std::thread([this] { loop(); });
    return true;
}

void
Server::stop()
{
    if (!running_.exchange(false)) return;
    // Wake the poll() so the loop observes running_ == false.
    const char byte = 0;
    [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
    if (thread_.joinable()) thread_.join();

    // Worker mode: the workers drain their feeds with real engine
    // passes before joining, then the final completion drain books
    // every in-flight verdict — the responses die with the
    // connections below, but the accounting ledger closes exactly.
    if (workers_) {
        workers_->stop();
        finished_.clear();
        workers_->drain_completions(finished_);
        for (WorkerJob* job : finished_) {
            finish_job(job);
            workers_->release(job);
        }
        finished_.clear();
    }

    // Every still-queued request gets its answer for the accounting
    // invariant; the bytes die with the connections below.
    if (!pending_.empty()) {
        rejected_.add(pending_.size());
        pending_.clear();
    }

    for (auto& [fd, conn] : connections_) close(fd);
    connections_.clear();
    if (listen_fd_ >= 0) close(listen_fd_);
    listen_fd_ = -1;
    for (int& fd : wake_fds_) {
        if (fd >= 0) close(fd);
        fd = -1;
    }
    unlink(config_.socket_path.c_str());

    if (obs::telemetry_active()) {
        obs::Registry::global().merge(registry_);
        router_.export_metrics(obs::Registry::global());
    }
}

void
Server::loop()
{
    std::vector<pollfd> fds;
    std::vector<int> readable, unsent;
    // Connection entries start after the fixed fds: listen, wake, and
    // (worker mode) the pool's completion pipe.
    const size_t first_conn = workers_ ? 3 : 2;
    while (running_) {
        fds.clear();
        fds.push_back({listen_fd_, POLLIN, 0});
        fds.push_back({wake_fds_[0], POLLIN, 0});
        if (workers_) {
            fds.push_back({workers_->completion_fd(), POLLIN, 0});
        }
        for (const auto& [fd, conn] : connections_) {
            short events = POLLIN;
            if (conn.out_off < conn.out.size()) events |= POLLOUT;
            fds.push_back({fd, events, 0});
        }

        // Block only when idle: with work queued, poll() is a
        // zero-timeout drain of whatever arrived during the last batch
        // — that accumulation IS the adaptive batch. With a flight
        // recorder attached the idle block is capped at its sampling
        // period, so the ring keeps recording through traffic pauses.
        int timeout_ms = pending_.empty() ? -1 : 0;
        if (recorder_ && timeout_ms < 0) {
            timeout_ms = static_cast<int>(std::clamp<uint64_t>(
                recorder_->config().sample_period_ns / 1'000'000, 1, 1000));
        }
        if (monitor_ && timeout_ms < 0) {
            // Same idle-wakeup cap for the sampler: the rings (and the
            // SLO recovery path) keep moving through traffic pauses.
            timeout_ms = static_cast<int>(std::clamp<uint64_t>(
                monitor_->sampler().config().sample_period_ns / 1'000'000, 1,
                1000));
        }
        const int ready = poll(fds.data(), fds.size(), timeout_ms);
        if (!running_) break;
        if (ready < 0 && errno != EINTR) break;

        readable.clear();
        for (size_t i = first_conn; i < fds.size(); ++i) {
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                readable.push_back(fds[i].fd);
            }
        }
        if (fds[0].revents & POLLIN) accept_clients();
        if (fds[1].revents & POLLIN) {
            char drain[16];
            while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {}
        }
        for (int fd : readable) read_client(fd);
        // Inline mode runs the engine batch here; worker mode instead
        // collects whatever the engine workers finished (the
        // completion pipe's POLLIN is what woke us) and does their
        // accounting + responses on this thread.
        if (workers_) {
            drain_workers();
        } else {
            process_batch();
        }
        // Responses produced this pass leave in one send() per
        // connection — the syscall amortization batching buys. (Collect
        // fds first: flush() may erase the connection.)
        unsent.clear();
        for (const auto& [fd, conn] : connections_) {
            if (conn.out_off < conn.out.size()) unsent.push_back(fd);
        }
        for (int fd : unsent) flush(fd);
        queue_depth_.set(static_cast<double>(
            workers_ ? workers_->in_flight() : pending_.size()));
        refresh_worker_gauges();
        const uint64_t tick_ns = obs::now_ns();
        if (recorder_) recorder_->tick(tick_ns);
        if (monitor_) monitor_->tick(tick_ns);
    }
}

void
Server::accept_clients()
{
    for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;
        if (!set_nonblocking(fd)) {
            close(fd);
            continue;
        }
        connections_[fd].generation = ++next_generation_;
        accepts_.add(1);
    }
}

void
Server::read_client(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = it->second;

    // Bounded read per pass: a peer that writes faster than the service
    // drains would otherwise never let recv() hit EAGAIN, capturing the
    // service thread in this loop forever — decode, the engine, and
    // every other connection (including kStats pollers) starve while
    // the frame buffer grows without bound. Leftover bytes stay in the
    // kernel; level-triggered poll() re-reports the fd next pass.
    uint8_t buf[64 * 1024];
    size_t read_budget = 4 * sizeof(buf);
    while (read_budget > 0) {
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.reader.append(buf, static_cast<size_t>(n));
            read_budget -= std::min(read_budget, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        close_client(fd); // EOF or hard error
        return;
    }

    const uint64_t now = obs::now_ns();
    const uint64_t generation = conn.generation;
    bool malformed = false;
    while (auto frame = conn.reader.next(&malformed)) {
        if (frame->type == MsgType::kStats) {
            // Introspection path: answered inline, never queued, never
            // an engine pass — a stats poll cannot perturb the
            // accounting invariant or evict window slots.
            if (frame->size != 0) {
                malformed = true;
                break;
            }
            if (!handle_stats(fd)) {
                return; // connection closed (outbound cap); conn dangles
            }
            continue;
        }
        if (frame->type == MsgType::kTopK || frame->type == MsgType::kDump ||
            frame->type == MsgType::kSeries ||
            frame->type == MsgType::kProm) {
            // Same inline contract as kStats: answered from here, never
            // queued, never an engine pass.
            if (frame->size != 0) {
                malformed = true;
                break;
            }
            bool ok = false;
            switch (frame->type) {
            case MsgType::kTopK: ok = handle_topk(fd); break;
            case MsgType::kDump: ok = handle_dump(fd); break;
            case MsgType::kSeries: ok = handle_series(fd); break;
            default: ok = handle_prom(fd); break;
            }
            if (!ok) {
                return; // connection closed (outbound cap); conn dangles
            }
            continue;
        }
        if (frame->type != MsgType::kRequest &&
            frame->type != MsgType::kRequestV2) {
            malformed = true;
            break;
        }
        auto request = decode_request(frame->type, frame->payload,
                                      frame->size);
        if (!request) {
            malformed = true;
            break;
        }
        const bool v2 = frame->type == MsgType::kRequestV2;
        requests_.add(1);
        if (workers_) {
            // Worker mode: the job slab is the pending bound — an
            // exhausted slab is the same backpressure the inline
            // mode's full pending_ deque signals.
            WorkerJob* job = workers_->acquire();
            if (job == nullptr) {
                rejected_.add(1);
                if (!respond(fd, generation, request->request_id,
                             {core::Verdict::kRejected, 0,
                              obs::AbortReason::kBackpressure},
                             v2, {})) {
                    return; // connection closed; conn dangles
                }
                continue;
            }
            job->fd = fd;
            job->generation = generation;
            job->request_id = request->request_id;
            job->arrival_ns = now;
            job->deadline_ns = request->deadline_ns;
            job->trace_id = request->trace_id;
            job->parent_span_id = request->parent_span_id;
            job->v2 = v2;
            job->offload = std::move(request->offload);
            workers_->submit(job);
            continue;
        }
        if (pending_.size() >= config_.max_pending) {
            rejected_.add(1);
            if (!respond(fd, generation, request->request_id,
                         {core::Verdict::kRejected, 0,
                          obs::AbortReason::kBackpressure},
                         v2, {})) {
                return; // connection closed (outbound cap); conn dangles
            }
            continue;
        }
        pending_.push_back({fd, generation, request->request_id, now,
                            request->deadline_ns, request->trace_id,
                            request->parent_span_id, v2,
                            std::move(request->offload)});
    }
    if (malformed) {
        malformed_.add(1);
        close_client(fd);
    }
}

bool
Server::handle_stats(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end()) return false;
    Connection& conn = it->second;
    stats_polls_.add(1);
    // Refresh the live gauges so the snapshot reflects *now*, not the
    // last engine pass.
    queue_depth_.set(static_cast<double>(
        workers_ ? workers_->in_flight() : pending_.size()));
    window_occupancy_.set(static_cast<double>(router_.occupancy()));
    connections_open_.set(static_cast<double>(connections_.size()));
    refresh_worker_gauges();
    // Snapshot service and shard metrics together, so svcctl sees the
    // shard.* keys next to the svc.* keys (merging the router into
    // registry_ itself would double-count counters on every poll).
    obs::Registry snapshot;
    snapshot.merge(registry_);
    router_.export_metrics(snapshot);
    std::ostringstream json;
    snapshot.to_json(json);
    encode_stats_reply(conn.out, json.str());
    if (conn.out.size() - conn.out_off > config_.max_out_bytes) {
        overflow_.add(1);
        close_client(fd);
        return false;
    }
    return true;
}

bool
Server::handle_topk(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end()) return false;
    Connection& conn = it->second;
    topk_polls_.add(1);
    std::string json;
    router_.topk_json(&json);
    encode_topk_reply(conn.out, json);
    if (conn.out.size() - conn.out_off > config_.max_out_bytes) {
        overflow_.add(1);
        close_client(fd);
        return false;
    }
    return true;
}

bool
Server::handle_dump(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end()) return false;
    Connection& conn = it->second;
    dump_requests_.add(1);
    std::string json;
    if (recorder_ == nullptr) {
        json = "{\"ok\": false, \"error\": \"recorder disabled\"}";
    } else {
        // Runs on the service thread — the sole server-side span
        // writer, so a trace-including dump is race-free here.
        const std::string path = recorder_->dump("manual");
        if (path.empty()) {
            json = "{\"ok\": false, \"error\": \"dump failed\"}";
        } else {
            json = "{\"ok\": true, \"path\": \"" + path + "\"}";
        }
    }
    encode_dump_reply(conn.out, json);
    if (conn.out.size() - conn.out_off > config_.max_out_bytes) {
        overflow_.add(1);
        close_client(fd);
        return false;
    }
    return true;
}

bool
Server::handle_series(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end()) return false;
    Connection& conn = it->second;
    series_polls_.add(1);
    std::string json;
    if (monitor_) {
        // Refresh before reporting so a poll against an idle server
        // reads "now", not the last traffic-driven sample; the regular
        // cadence is unaffected (tick() keys off elapsed time).
        monitor_->tick(obs::now_ns());
        monitor_->status_json(&json);
    } else {
        json = "{\"enabled\": false, \"health\": {\"state\": \"ok\", "
               "\"rules\": []}, \"samples\": {\"now_ns\": 0, "
               "\"period_ns\": 0, \"series\": []}}";
    }
    encode_series_reply(conn.out, json);
    if (conn.out.size() - conn.out_off > config_.max_out_bytes) {
        overflow_.add(1);
        close_client(fd);
        return false;
    }
    return true;
}

bool
Server::handle_prom(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end()) return false;
    Connection& conn = it->second;
    prom_polls_.add(1);
    // Same snapshot the kStats path exposes, in exposition format.
    queue_depth_.set(static_cast<double>(
        workers_ ? workers_->in_flight() : pending_.size()));
    window_occupancy_.set(static_cast<double>(router_.occupancy()));
    connections_open_.set(static_cast<double>(connections_.size()));
    refresh_worker_gauges();
    obs::Registry snapshot;
    snapshot.merge(registry_);
    router_.export_metrics(snapshot);
    std::ostringstream text;
    snapshot.export_prom(text);
    encode_prom_reply(conn.out, text.str());
    if (conn.out.size() - conn.out_off > config_.max_out_bytes) {
        overflow_.add(1);
        close_client(fd);
        return false;
    }
    return true;
}

void
Server::close_client(int fd)
{
    // Queued requests of this connection stay queued: they are answered
    // (and counted) normally, and respond() drops the bytes — the
    // generation check keeps them from reaching a future connection
    // that recycles this fd number.
    connections_.erase(fd);
    close(fd);
    disconnects_.add(1);
}

bool
Server::respond(int fd, uint64_t generation, uint64_t request_id,
                const core::ValidationResult& result, bool v2,
                const StageTimestamps& stages)
{
    auto it = connections_.find(fd);
    if (it == connections_.end() || it->second.generation != generation) {
        return false; // client gone (or fd recycled); answer dropped
    }
    Connection& conn = it->second;
    encode_response(conn.out, {request_id, result, stages, v2}, v2);
    if (conn.out.size() - conn.out_off > config_.max_out_bytes) {
        // The peer keeps submitting but is not reading its responses;
        // disconnecting it is the only alternative to unbounded
        // buffering (the wire.h memory guarantee).
        overflow_.add(1);
        close_client(fd);
        return false;
    }
    return true;
}

void
Server::process_batch()
{
    if (pending_.empty()) return;
    const size_t take = std::min(config_.max_batch, pending_.size());
    const uint64_t pass_start = obs::now_ns();
    size_t engine_passes = 0;
    for (size_t i = 0; i < take; ++i) {
        Pending pending = std::move(pending_.front());
        pending_.pop_front();
        StageTimestamps stages;
        stages.server_queue_ns = pass_start - pending.arrival_ns;
        core::ValidationResult result;
        if (pending.deadline_ns != 0 &&
            pass_start - pending.arrival_ns > pending.deadline_ns) {
            // Expired while queued: the client has already given up —
            // an engine pass would only burn window slots for a verdict
            // nobody applies.
            result = {core::Verdict::kTimeout, 0,
                      obs::AbortReason::kTimeout};
            timeout_.add(1);
        } else {
            const uint64_t engine_start = obs::now_ns();
            shard::RouteInfo route;
            result = router_.process(pending.offload, &route);
            const uint64_t engine_end = obs::now_ns();
            stages.batch_wait_ns = engine_start - pass_start;
            stages.engine_ns = engine_end - engine_start;
            // What the same pass would cost over the paper's CCI link —
            // modeled, reported next to the measured stages, never part
            // of the wall-clock sum.
            stages.link_ns = static_cast<uint64_t>(
                router_.isolated_latency_ns(pending.offload));
            if (config_.shards > 1) {
                stage_shard_route_.record(route.route_ns);
                if (route.shards_touched > 1) {
                    stage_shard_coord_.record(route.coord_ns);
                }
            }
            verdict_[static_cast<size_t>(result.verdict)]->add(1);
            stage_server_queue_.record(stages.server_queue_ns);
            stage_batch_wait_.record(stages.batch_wait_ns);
            stage_engine_.record(stages.engine_ns);
            stage_link_.record(stages.link_ns);
            ++engine_passes;
#if ROCOCO_TRACE_ENABLED
            // The remote half of the distributed trace: a server span
            // pointing back at the client span it validates for, plus
            // the flow-end event Perfetto draws the arrow into. Both
            // halves of the arrow share (cat, name, id).
            if (pending.trace_id != 0 && obs::Tracer::instance().active()) {
                obs::TraceEvent span;
                span.name = "svc.server.validate";
                span.cat = "svc";
                span.arg_name = "parent_span_id";
                span.arg_value = pending.parent_span_id;
                span.ts_ns = engine_start;
                span.dur_ns = engine_end - engine_start;
                span.phase = obs::EventPhase::kComplete;
                obs::Tracer::instance().record(span);
                obs::Tracer::instance().flow(
                    obs::EventPhase::kFlowEnd, "svc", "svc.validate_flow",
                    pending.trace_id,
                    engine_start + (engine_end - engine_start) / 2);
            }
#endif
        }
        respond(pending.fd, pending.generation, pending.request_id, result,
                pending.v2, stages);
        rpc_ns_.record(pass_start - pending.arrival_ns);
    }
    if (engine_passes > 0) {
        batch_size_.record(engine_passes);
        window_occupancy_.set(static_cast<double>(router_.occupancy()));
    }
}

void
Server::drain_workers()
{
    finished_.clear();
    workers_->drain_completions(finished_);
    if (finished_.empty()) return;
    size_t engine_passes = 0;
    for (WorkerJob* job : finished_) {
        if (!job->timed_out) ++engine_passes;
        finish_job(job);
        workers_->release(job);
    }
    finished_.clear();
    if (engine_passes > 0) {
        // The completion drain is this mode's "batch": how many engine
        // results one IO pass shipped out together.
        batch_size_.record(engine_passes);
        window_occupancy_.set(static_cast<double>(router_.occupancy()));
    }
}

void
Server::finish_job(WorkerJob* job)
{
    // All accounting on the IO thread: workers only computed the
    // verdict, so svc.requests == sum(svc.verdict.*) + svc.timeout +
    // svc.rejected stays a single-writer invariant.
    if (job->timed_out) {
        timeout_.add(1);
    } else {
        if (config_.shards > 1) {
            stage_shard_route_.record(job->route.route_ns);
            if (job->route.shards_touched > 1) {
                stage_shard_coord_.record(job->route.coord_ns);
            }
        }
        verdict_[static_cast<size_t>(job->result.verdict)]->add(1);
        stage_server_queue_.record(job->stages.server_queue_ns);
        stage_batch_wait_.record(job->stages.batch_wait_ns);
        stage_engine_.record(job->stages.engine_ns);
        stage_link_.record(job->stages.link_ns);
#if ROCOCO_TRACE_ENABLED
        // Span written here, not on the worker: the IO thread stays
        // the sole server-side span writer, which is what keeps
        // trace-including recorder dumps race-free.
        if (job->trace_id != 0 && obs::Tracer::instance().active()) {
            obs::TraceEvent span;
            span.name = "svc.server.validate";
            span.cat = "svc";
            span.arg_name = "parent_span_id";
            span.arg_value = job->parent_span_id;
            span.ts_ns = job->engine_start_ns;
            span.dur_ns = job->engine_end_ns - job->engine_start_ns;
            span.phase = obs::EventPhase::kComplete;
            obs::Tracer::instance().record(span);
            obs::Tracer::instance().flow(
                obs::EventPhase::kFlowEnd, "svc", "svc.validate_flow",
                job->trace_id,
                job->engine_start_ns +
                    (job->engine_end_ns - job->engine_start_ns) / 2);
        }
#endif
    }
    respond(job->fd, job->generation, job->request_id, job->result,
            job->v2, job->stages);
    rpc_ns_.record(obs::now_ns() - job->arrival_ns);
}

void
Server::refresh_worker_gauges()
{
    for (size_t i = 0; i < worker_queue_gauges_.size(); ++i) {
        worker_queue_gauges_[i]->set(
            static_cast<double>(workers_->worker_queue_depth(i)));
    }
}

void
Server::flush(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = it->second;
    while (conn.out_off < conn.out.size()) {
        const ssize_t n = send(fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        close_client(fd); // client gone mid-response
        return;
    }
    conn.out.clear();
    conn.out_off = 0;
}

CounterBag
Server::stats() const
{
    CounterBag bag = registry_.to_counter_bag();
    bag.add(router_.stats());
    return bag;
}

void
Server::export_metrics(obs::Registry& registry) const
{
    registry.merge(registry_);
    router_.export_metrics(registry);
}

} // namespace rococo::svc
