/// @file
/// The networked validation service: a server-owned validation tier
/// (one cid space) shared by every connected client process — the
/// deployment shape of the paper's Fig. 6 (b) with the CCI link
/// replaced by a local socket. With ServerConfig::shards == 1 that
/// tier is a single ValidationEngine (one sliding window); with more,
/// a shard::ShardRouter spreads the address space across several
/// engines while keeping the wire contract and the global cid space
/// unchanged (src/shard/router.h). Where the
/// hardware amortizes link latency by packing requests into cacheline
/// writes (§5.3), the server amortizes syscall cost by *adaptive
/// batching*: each pass over the engine drains whatever requests
/// accumulated while the previous pass ran (up to max_batch), and all
/// responses of a pass leave in one send() per connection. No batching
/// timer exists — a lone request is processed immediately, so batching
/// never adds idle latency.
///
/// Service contract:
///   * bounded queue — at most max_pending requests wait for the
///     engine; beyond that the server answers Verdict::kRejected /
///     AbortReason::kBackpressure immediately instead of queueing
///     (explicit backpressure, never unbounded growth);
///   * deadlines — a request whose relative wire deadline elapses while
///     it waits is answered Verdict::kTimeout without an engine pass;
///   * accounting — every well-formed request is answered exactly once,
///     so svc.requests == sum(svc.verdict.*) + svc.timeout +
///     svc.rejected at all times (scripts/check_trace_json.py checks
///     this invariant on exported telemetry);
///   * a malformed frame closes the connection; its already-queued
///     requests are still answered (responses to a closed connection
///     are dropped after accounting);
///   * bounded output — at most max_out_bytes of unsent responses are
///     buffered per connection; a peer that floods requests without
///     reading responses is disconnected (svc.overflow) instead of
///     growing the buffer without bound;
///   * bounded input — each service pass reads a fixed byte budget per
///     connection, so a peer that writes faster than the engine drains
///     cannot capture the service thread in its recv loop or grow the
///     frame buffer without bound; the remainder waits in the kernel
///     and other connections (including kStats pollers) stay live.
///
/// Every connection carries a monotonically increasing generation id,
/// and queued requests are answered against (fd, generation): when the
/// kernel recycles a closed connection's fd number for a new accept(),
/// the old connection's still-queued verdicts are dropped (after
/// accounting) rather than delivered to the new client.
///
/// Introspection: a kStats frame is answered inline from read_client()
/// with a kStatsReply carrying a JSON snapshot of the service registry
/// — no engine pass, never queued, never counted in svc.requests (it
/// bumps svc.stats instead), so live inspection cannot perturb the
/// accounting invariant or evict window slots. kTopK (the conflict
/// hot-key table, svc.topk) and kDump (manual flight-recorder incident,
/// svc.dump) follow the same inline contract. Per-stage latency is
/// attributed into svc.stage.{server_queue,batch_wait,engine,link}
/// histograms and shipped back to v2 clients in every response
/// (wire.h StageTimestamps); when a v2 request carries a trace id and
/// a tracer is active, the engine pass emits a server-side span plus a
/// Perfetto flow-end event binding it to the client's span.
///
/// Threading: start() spawns one IO thread running a poll() loop that
/// does accept/read/decode, the inline introspection ops, response
/// writes, all svc.* accounting, and the recorder/monitor ticks. With
/// ServerConfig::worker_threads == 0 (the default) that thread also
/// runs the engine batch inline — the original single-threaded server.
/// With worker_threads == N > 0 the engine passes move to a
/// svc::WorkerPool of N threads with shard affinity, fed by the IO
/// thread and answered back over an MPSC completion queue + self-pipe,
/// so S shards validate genuinely concurrently while every socket
/// write, (fd, generation) check, and accounting counter stays
/// single-writer on the IO thread (see worker_pool.h for the full
/// division of labor). The public API (start/stop/stats/
/// export_metrics) is thread-safe either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/registry.h"
#include "shard/router.h"
#include "svc/wire.h"
#include "svc/worker_pool.h"

namespace rococo::svc {

struct ServerConfig
{
    /// Filesystem path of the Unix-domain listening socket (unlinked
    /// and re-bound on start).
    std::string socket_path = "/tmp/rococo-validation.sock";
    /// Engine geometry; clients must be configured identically so their
    /// locally derived SignatureConfig agrees with the server's.
    fpga::EngineConfig engine;
    /// Validation shards (>= 1). 1 keeps the single-engine service;
    /// > 1 hash-partitions the address space across that many engines
    /// behind a shard::ShardRouter (each with its own window and the
    /// cross-shard two-phase coordinator), multiplying window capacity.
    /// Clients are unaffected: the wire contract and the global cid
    /// space are identical either way.
    uint32_t shards = 1;
    /// Engine worker threads. 0 (the default) keeps the original
    /// single-threaded server: engine passes run inline on the IO
    /// thread via the adaptive batch loop. N > 0 spawns a
    /// svc::WorkerPool of N engine workers with shard affinity
    /// (worker_pool.h): the IO thread decodes and hands each request
    /// to its home shard's worker, so with shards >= N the S engines
    /// validate genuinely concurrently. All accounting, socket writes
    /// and introspection stay on the IO thread in both modes; the
    /// service contract above (bounded queue, deadlines, exact
    /// accounting) is identical. Values above shards still work —
    /// excess workers just share shards.
    uint32_t worker_threads = 0;
    /// Max requests per engine pass (>= 1). 1 disables batching.
    /// Ignored when worker_threads > 0 (workers pull one job at a
    /// time; batching exists to amortize the IO thread's syscalls,
    /// which the completion drain already does).
    size_t max_batch = 16;
    /// Bound on requests waiting for the engine; overflow is answered
    /// kRejected (backpressure) instead of queued.
    size_t max_pending = 1024;
    /// Bound on unsent response bytes buffered per connection. A peer
    /// that submits requests but stops reading responses is closed when
    /// its buffer would exceed this (clamped to at least one response
    /// frame; 0 selects the default).
    size_t max_out_bytes = 1 << 20;
    /// Flight recorder (obs/flight_recorder.h). recorder.enabled = true
    /// turns it on; empty watch lists default to the service series
    /// (svc.verdict.abort-cycle / svc.requests / svc.rpc_ns /
    /// svc.queue_depth / shard.imbalance). The recorder ticks on the
    /// service thread, which is also the sole server-side span writer,
    /// so recorder.include_trace is safe here.
    obs::FlightRecorderConfig recorder;
    /// Continuous monitoring (obs/health.h): a MetricSampler over the
    /// service series (request rate, abort ratio, engine p99, queue
    /// depth, window occupancy, connections, shard.imbalance) plus the
    /// SLO burn-rate rules, ticked on the service thread and served by
    /// the kSeries wire op. On by default — turning the *service* on is
    /// the opt-in. A queue_threshold of 0 defaults to 90% of
    /// max_pending; SLO breaches dump incidents only when the flight
    /// recorder is armed too.
    obs::MonitorConfig monitor;
};

/// Single-accelerator validation server.
class Server
{
  public:
    explicit Server(const ServerConfig& config = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind, listen and spawn the service thread. False (with the
    /// socket cleaned up) if the path cannot be bound.
    bool start();

    /// Stop the service thread, close every connection and answer all
    /// still-queued requests as kRejected (the answers are dropped with
    /// the connections, but the accounting invariant holds). Idempotent.
    void stop();

    bool running() const { return running_; }
    const std::string& socket_path() const { return config_.socket_path; }

    /// Counters-only snapshot of the service metrics (svc.* keys).
    CounterBag stats() const;

    /// Merge the full service registry (counters, svc.queue_depth
    /// gauge, svc.batch_size / svc.rpc_ns histograms) into @p registry.
    void export_metrics(obs::Registry& registry) const;

  private:
    struct Connection
    {
        uint64_t generation = 0; ///< unique per accept(); outlives fd reuse
        FrameReader reader;
        std::vector<uint8_t> out; ///< encoded responses not yet sent
        size_t out_off = 0;       ///< bytes of out already sent
    };

    /// A well-formed request waiting for the engine.
    struct Pending
    {
        int fd = -1; ///< originating connection (may close before reply)
        uint64_t generation = 0; ///< guards against fd reuse after close
        uint64_t request_id = 0;
        uint64_t arrival_ns = 0;
        uint64_t deadline_ns = 0; ///< relative to arrival; 0 = none
        uint64_t trace_id = 0;       ///< flow-event binding id (0 = none)
        uint64_t parent_span_id = 0; ///< client span this request came from
        bool v2 = false; ///< reply version mirrors the request version
        fpga::OffloadRequest offload;
    };

    void loop();
    void accept_clients();
    void read_client(int fd);
    void close_client(int fd);
    /// Answer a kStats frame inline with a registry-snapshot JSON.
    /// False if the connection had to be closed (outbound cap).
    bool handle_stats(int fd);
    /// Answer a kTopK frame inline with the router's conflict top-K
    /// table. Same contract as handle_stats().
    bool handle_topk(int fd);
    /// Answer a kDump frame inline: trigger a manual flight-recorder
    /// incident dump and reply with its path (or an error when the
    /// recorder is disabled). Same contract as handle_stats().
    bool handle_dump(int fd);
    /// Answer a kSeries frame inline with the monitor's rings + health
    /// verdicts (or {"enabled": false} without a monitor). Same
    /// contract as handle_stats().
    bool handle_series(int fd);
    /// Answer a kProm frame inline with the Prometheus exposition of a
    /// fresh registry snapshot. Same contract as handle_stats().
    bool handle_prom(int fd);
    /// Queue @p result on the connection currently at @p fd iff its
    /// generation matches. False if the answer was dropped (connection
    /// gone or fd recycled) or the connection was closed for exceeding
    /// the outbound cap — either way @p fd must not be touched again.
    /// @p stages rides along in a v2 response when @p v2.
    bool respond(int fd, uint64_t generation, uint64_t request_id,
                 const core::ValidationResult& result, bool v2,
                 const StageTimestamps& stages);
    void process_batch();
    /// Worker mode: pull every finished job off the completion queue,
    /// do its accounting (verdict counters, stage histograms, trace
    /// span) on this — the IO — thread, respond, and recycle the job.
    void drain_workers();
    /// Accounting + response for one worker-finished job (IO thread).
    void finish_job(WorkerJob* job);
    /// Refresh the svc.worker.<i>.queue_depth gauges from the pool.
    void refresh_worker_gauges();
    void flush(int fd);

    ServerConfig config_;
    shard::ShardRouter router_;
    /// Present iff config_.recorder.enabled; ticked from the service
    /// loop, dumped from kDump handling (both on the service thread).
    std::unique_ptr<obs::FlightRecorder> recorder_;
    /// Present iff config_.monitor.enabled; ticked from the service
    /// loop right after the recorder. Its gauge/callback series read
    /// service-thread state (pending_, connections_, the router), which
    /// is safe because every tick happens on the service thread.
    std::unique_ptr<obs::HealthMonitor> monitor_;

    /// Present iff config_.worker_threads > 0; fed from read_client(),
    /// drained (accounting + responses) on the IO thread.
    std::unique_ptr<WorkerPool> workers_;
    /// IO-thread scratch for drain_workers(); keeps its capacity.
    std::vector<WorkerJob*> finished_;
    /// Per-worker validation counters (svc.worker.<i>.validations),
    /// each written by exactly one worker thread.
    std::vector<obs::Counter*> worker_validations_;
    /// Per-worker queue-depth gauges, set on the IO thread only.
    std::vector<obs::Gauge*> worker_queue_gauges_;

    int listen_fd_ = -1;
    int wake_fds_[2] = {-1, -1}; ///< self-pipe: stop() wakes poll()
    std::map<int, Connection> connections_;
    std::deque<Pending> pending_; ///< inline mode only (worker_threads == 0)
    uint64_t next_generation_ = 0;

    std::atomic<bool> running_{false};
    std::thread thread_;

    obs::Registry registry_; ///< svc.* metrics (thread-safe)

    /// Metric handles hoisted out of the service loop: Registry lookup
    /// takes a mutex and builds a name string per call; the references
    /// stay valid for the registry's lifetime (obs/registry.h), so
    /// resolve each metric once at construction.
    obs::Counter& requests_;
    obs::Counter& rejected_;
    obs::Counter& timeout_;
    obs::Counter& stats_polls_;
    obs::Counter& topk_polls_;
    obs::Counter& dump_requests_;
    obs::Counter& series_polls_;
    obs::Counter& prom_polls_;
    obs::Counter& overflow_;
    obs::Counter& malformed_;
    obs::Counter& disconnects_;
    obs::Counter& accepts_;
    obs::Counter* verdict_[core::kVerdictCount];
    obs::Gauge& queue_depth_;
    obs::Gauge& window_occupancy_;
    obs::Gauge& connections_open_;
    obs::LatencyHistogram& rpc_ns_;
    obs::LatencyHistogram& batch_size_;
    obs::LatencyHistogram& stage_server_queue_;
    obs::LatencyHistogram& stage_batch_wait_;
    obs::LatencyHistogram& stage_engine_;
    obs::LatencyHistogram& stage_link_;
    obs::LatencyHistogram& stage_shard_route_;
    obs::LatencyHistogram& stage_shard_coord_;
};

} // namespace rococo::svc
