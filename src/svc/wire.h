/// @file
/// Binary wire protocol of the networked validation service: the
/// software analogue of the cacheline-formatted messages the paper
/// ships over the CCI pull/push queues (§5.3). One request frame
/// carries what OffloadRequest carries in-process — the read/write
/// address sets (from which the server-side Detector builds bloom
/// signatures, exactly as the hardware does) plus the snapshot metadata
/// (ValidTS) — and one response frame carries a core::ValidationResult:
/// verdict, cid, typed obs::AbortReason.
///
/// Layout (all integers little-endian, no padding):
///
///   frame      := u32 payload_len | u8 type | payload
///   request    := u64 request_id | u64 snapshot_cid | u64 deadline_ns
///                 | u32 n_reads | u32 n_writes
///                 | u64 reads[n_reads] | u64 writes[n_writes]
///   request2   := u64 request_id | u64 snapshot_cid | u64 deadline_ns
///                 | u64 trace_id | u64 parent_span_id
///                 | u32 n_reads | u32 n_writes
///                 | u64 reads[n_reads] | u64 writes[n_writes]
///   response   := u64 request_id | u8 verdict | u8 reason | u64 cid
///   response2  := response | u64 server_queue_ns | u64 batch_wait_ns
///                 | u64 engine_ns | u64 link_ns | u64 conflict_cid
///   stats      := (empty)
///   statsreply := raw JSON bytes (a Registry snapshot)
///   topk       := (empty)
///   topkreply  := raw JSON bytes (the router's conflict top-K table)
///   dump       := (empty)
///   dumpreply  := raw JSON bytes ({"ok": bool, "path"|"error": str})
///   series     := (empty)
///   seriesreply:= raw JSON bytes (HealthMonitor status: sampler rings
///                 + SLO health verdicts; {"enabled": false, ...} when
///                 the server runs without a monitor)
///   prom       := (empty)
///   promreply  := raw text bytes (Prometheus exposition format)
///
/// Versioning: v1 frames (kRequest/kResponse) remain fully supported —
/// a pre-trace-context client keeps working against a v2 server, which
/// mirrors the request's version in its response so old decoders never
/// see a frame type they don't know. The introspection ops (kStats
/// through kPromReply) are strictly opt-in request/reply pairs: a
/// server only ever sends a reply type the peer just asked for, so a
/// pre-series client never sees a kSeriesReply; a pre-series *server*
/// treats an incoming kSeries as an unknown type and closes the
/// connection cleanly (the standard malformed-frame path), which the
/// tooling reports as "not supported" rather than wedging. v2 adds the trace context
/// (trace_id/parent_span_id, 0 = none) used to flow-link client and
/// server spans across the process boundary, the per-stage server-side
/// timing breakdown (StageTimestamps) in the response, and the abort
/// provenance field (conflict_cid — the committed transaction a
/// kAbortCycle verdict collided with; core::kNoConflictCid when the
/// abort names no commit or the frame is v1).
///
/// deadline_ns is *relative* to server arrival (0 = none): processes on
/// the same host share the monotonic clock, but a relative deadline
/// also survives clock-domain changes if the transport ever crosses
/// hosts, so absolute timestamps never go on the wire. The same rule
/// holds for StageTimestamps: durations only, never wall-clock points.
///
/// The decoder is defensive: a frame that is malformed (bad type,
/// payload length disagreeing with the counts, oversized address sets)
/// yields nullopt and the server closes the connection — a misbehaving
/// client can never make the server allocate unbounded memory (the
/// other half of that guarantee is the server's per-connection outbound
/// cap, ServerConfig::max_out_bytes). The client library enforces
/// kMaxAddresses before encoding: an oversized request is resolved as
/// rejected locally instead of being sent as a frame the server would
/// treat as malformed, which would poison the whole connection.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/sliding_window.h"
#include "fpga/detector.h"

namespace rococo::svc {

/// Frame type tags.
enum class MsgType : uint8_t
{
    kRequest = 1,    ///< v1 request (no trace context)
    kResponse = 2,   ///< v1 response (no stage breakdown)
    kRequestV2 = 3,  ///< request + trace context
    kResponseV2 = 4, ///< response + StageTimestamps
    kStats = 5,      ///< metrics-snapshot request (empty payload)
    kStatsReply = 6, ///< metrics-snapshot reply (raw JSON payload)
    kTopK = 7,       ///< conflict top-K request (empty payload)
    kTopKReply = 8,  ///< conflict top-K reply (raw JSON payload)
    kDump = 9,       ///< flight-recorder dump request (empty payload)
    kDumpReply = 10, ///< dump reply (raw JSON: ok + path or error)
    kSeries = 11,    ///< time-series + health request (empty payload)
    kSeriesReply = 12, ///< series reply (raw JSON: rings + verdicts)
    kProm = 13,      ///< Prometheus exposition request (empty payload)
    kPromReply = 14, ///< exposition reply (raw text payload)
};

/// Fixed header preceding every payload.
inline constexpr size_t kFrameHeaderBytes = 5; // u32 len + u8 type

/// Upper bound on addresses per set — a sanity bound far above any real
/// transaction footprint, protecting the server from garbage lengths.
inline constexpr uint32_t kMaxAddresses = 1u << 20;

/// Largest payload a well-formed frame can carry (two maximal address
/// sets plus the fixed v2 request fields).
inline constexpr size_t kMaxPayloadBytes =
    8 + 8 + 8 + 8 + 8 + 4 + 4 + 2 * size_t{kMaxAddresses} * 8;

/// Where each nanosecond of a remote validation went, measured by the
/// server and shipped back in a v2 response. All four are durations
/// (never timestamps — see the clock-domain note above):
///
///   server_queue — socket read → start of the engine pass that took it
///   batch_wait   — pass start → this request's engine.process() call
///   engine       — the engine.process() call itself
///   link         — *modeled* CCI round trip (CciLinkModel), reported
///                  alongside the measured stages for paper-Fig.8-style
///                  comparison; not part of the wall-clock sum
struct StageTimestamps
{
    uint64_t server_queue_ns = 0;
    uint64_t batch_wait_ns = 0;
    uint64_t engine_ns = 0;
    uint64_t link_ns = 0;
};

/// Encoded size of one v2 response frame (fixed-size payload + header)
/// — the unit the server's outbound-buffer cap is expressed in.
inline constexpr size_t kResponseFrameBytes =
    kFrameHeaderBytes + 8 + 1 + 1 + 8 + 5 * 8;

/// A decoded request frame.
struct WireRequest
{
    uint64_t request_id = 0;
    /// Relative deadline in ns (0 = none): the server drops the request
    /// with Verdict::kTimeout if it is still queued this long after
    /// arrival.
    uint64_t deadline_ns = 0;
    /// Trace context (v2 only, 0 = none): the id binding the client's
    /// flow-start event to the server's flow-end event in a merged
    /// trace, and the client-side span the server span points back to.
    uint64_t trace_id = 0;
    uint64_t parent_span_id = 0;
    fpga::OffloadRequest offload;
};

/// A decoded response frame.
struct WireResponse
{
    uint64_t request_id = 0;
    core::ValidationResult result;
    /// Valid only when has_stages (i.e. the frame was a kResponseV2).
    StageTimestamps stages;
    bool has_stages = false;
};

/// Append one encoded v2 request frame to @p out.
void encode_request(std::vector<uint8_t>& out, const WireRequest& request);

/// Append one encoded v1 request frame to @p out (drops trace context).
void encode_request_v1(std::vector<uint8_t>& out, const WireRequest& request);

/// Append one encoded response frame to @p out: a kResponseV2 carrying
/// response.stages when @p v2, else a kResponse (stages dropped) so a
/// v1 client's decoder never sees an unknown frame type.
void encode_response(std::vector<uint8_t>& out, const WireResponse& response,
                     bool v2 = true);

/// Append one encoded kStats frame (empty payload) to @p out.
void encode_stats_request(std::vector<uint8_t>& out);

/// Append one encoded kStatsReply frame carrying @p json to @p out.
void encode_stats_reply(std::vector<uint8_t>& out, std::string_view json);

/// Append one encoded kTopK frame (empty payload) to @p out.
void encode_topk_request(std::vector<uint8_t>& out);

/// Append one encoded kTopKReply frame carrying @p json to @p out.
void encode_topk_reply(std::vector<uint8_t>& out, std::string_view json);

/// Append one encoded kDump frame (empty payload) to @p out.
void encode_dump_request(std::vector<uint8_t>& out);

/// Append one encoded kDumpReply frame carrying @p json to @p out.
void encode_dump_reply(std::vector<uint8_t>& out, std::string_view json);

/// Append one encoded kSeries frame (empty payload) to @p out.
void encode_series_request(std::vector<uint8_t>& out);

/// Append one encoded kSeriesReply frame carrying @p json to @p out.
void encode_series_reply(std::vector<uint8_t>& out, std::string_view json);

/// Append one encoded kProm frame (empty payload) to @p out.
void encode_prom_request(std::vector<uint8_t>& out);

/// Append one encoded kPromReply frame carrying @p text to @p out.
void encode_prom_reply(std::vector<uint8_t>& out, std::string_view text);

/// Decode a request payload (the bytes after the frame header).
/// @p type selects the v1 or v2 layout; other types yield nullopt.
std::optional<WireRequest> decode_request(MsgType type,
                                          const uint8_t* payload,
                                          size_t size);

/// Decode a response payload; @p type selects the v1 or v2 layout.
std::optional<WireResponse> decode_response(MsgType type,
                                            const uint8_t* payload,
                                            size_t size);

/// Incremental frame extractor over a connection's receive buffer.
/// Feed bytes with append(); next() yields complete frames in order.
class FrameReader
{
  public:
    struct Frame
    {
        MsgType type;
        const uint8_t* payload; ///< valid until the next append()
        size_t size;
    };

    /// Append @p size raw bytes from the socket.
    void append(const uint8_t* data, size_t size);

    /// Extract the next complete frame, or nullopt if more bytes are
    /// needed. Sets @p malformed (when non-null) and returns nullopt if
    /// the stream is unrecoverably corrupt (unknown type / oversized
    /// payload) — the caller should drop the connection.
    std::optional<Frame> next(bool* malformed = nullptr);

    size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    std::vector<uint8_t> buffer_;
    size_t consumed_ = 0; ///< bytes of buffer_ already handed out
};

} // namespace rococo::svc
