/// @file
/// Binary wire protocol of the networked validation service: the
/// software analogue of the cacheline-formatted messages the paper
/// ships over the CCI pull/push queues (§5.3). One request frame
/// carries what OffloadRequest carries in-process — the read/write
/// address sets (from which the server-side Detector builds bloom
/// signatures, exactly as the hardware does) plus the snapshot metadata
/// (ValidTS) — and one response frame carries a core::ValidationResult:
/// verdict, cid, typed obs::AbortReason.
///
/// Layout (all integers little-endian, no padding):
///
///   frame    := u32 payload_len | u8 type | payload
///   request  := u64 request_id | u64 snapshot_cid | u64 deadline_ns
///               | u32 n_reads | u32 n_writes
///               | u64 reads[n_reads] | u64 writes[n_writes]
///   response := u64 request_id | u8 verdict | u8 reason | u64 cid
///
/// deadline_ns is *relative* to server arrival (0 = none): processes on
/// the same host share the monotonic clock, but a relative deadline
/// also survives clock-domain changes if the transport ever crosses
/// hosts, so absolute timestamps never go on the wire.
///
/// The decoder is defensive: a frame that is malformed (bad type,
/// payload length disagreeing with the counts, oversized address sets)
/// yields nullopt and the server closes the connection — a misbehaving
/// client can never make the server allocate unbounded memory (the
/// other half of that guarantee is the server's per-connection outbound
/// cap, ServerConfig::max_out_bytes). The client library enforces
/// kMaxAddresses before encoding: an oversized request is resolved as
/// rejected locally instead of being sent as a frame the server would
/// treat as malformed, which would poison the whole connection.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/sliding_window.h"
#include "fpga/detector.h"

namespace rococo::svc {

/// Frame type tags.
enum class MsgType : uint8_t
{
    kRequest = 1,
    kResponse = 2,
};

/// Fixed header preceding every payload.
inline constexpr size_t kFrameHeaderBytes = 5; // u32 len + u8 type

/// Upper bound on addresses per set — a sanity bound far above any real
/// transaction footprint, protecting the server from garbage lengths.
inline constexpr uint32_t kMaxAddresses = 1u << 20;

/// Largest payload a well-formed frame can carry (two maximal address
/// sets plus the fixed request fields).
inline constexpr size_t kMaxPayloadBytes =
    8 + 8 + 8 + 4 + 4 + 2 * size_t{kMaxAddresses} * 8;

/// Encoded size of one response frame (fixed-size payload + header) —
/// the unit the server's outbound-buffer cap is expressed in.
inline constexpr size_t kResponseFrameBytes =
    kFrameHeaderBytes + 8 + 1 + 1 + 8;

/// A decoded request frame.
struct WireRequest
{
    uint64_t request_id = 0;
    /// Relative deadline in ns (0 = none): the server drops the request
    /// with Verdict::kTimeout if it is still queued this long after
    /// arrival.
    uint64_t deadline_ns = 0;
    fpga::OffloadRequest offload;
};

/// A decoded response frame.
struct WireResponse
{
    uint64_t request_id = 0;
    core::ValidationResult result;
};

/// Append one encoded request frame to @p out.
void encode_request(std::vector<uint8_t>& out, const WireRequest& request);

/// Append one encoded response frame to @p out.
void encode_response(std::vector<uint8_t>& out, const WireResponse& response);

/// Decode a request payload (the bytes after the frame header).
std::optional<WireRequest> decode_request(const uint8_t* payload,
                                          size_t size);

/// Decode a response payload (the bytes after the frame header).
std::optional<WireResponse> decode_response(const uint8_t* payload,
                                            size_t size);

/// Incremental frame extractor over a connection's receive buffer.
/// Feed bytes with append(); next() yields complete frames in order.
class FrameReader
{
  public:
    struct Frame
    {
        MsgType type;
        const uint8_t* payload; ///< valid until the next append()
        size_t size;
    };

    /// Append @p size raw bytes from the socket.
    void append(const uint8_t* data, size_t size);

    /// Extract the next complete frame, or nullopt if more bytes are
    /// needed. Sets @p malformed (when non-null) and returns nullopt if
    /// the stream is unrecoverably corrupt (unknown type / oversized
    /// payload) — the caller should drop the connection.
    std::optional<Frame> next(bool* malformed = nullptr);

    size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    std::vector<uint8_t> buffer_;
    size_t consumed_ = 0; ///< bytes of buffer_ already handed out
};

} // namespace rococo::svc
