#include "svc/wire.h"

#include <cstring>

namespace rococo::svc {
namespace {

// Explicit little-endian packing: byte-order independent and free of
// alignment assumptions (the receive buffer offsets are arbitrary).

void
put_u8(std::vector<uint8_t>& out, uint8_t v)
{
    out.push_back(v);
}

void
put_u32(std::vector<uint8_t>& out, uint32_t v)
{
    for (int i = 0; i < 4; ++i) out.push_back(uint8_t(v >> (8 * i)));
}

void
put_u64(std::vector<uint8_t>& out, uint64_t v)
{
    for (int i = 0; i < 8; ++i) out.push_back(uint8_t(v >> (8 * i)));
}

uint32_t
get_u32(const uint8_t* p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(p[i]) << (8 * i);
    return v;
}

uint64_t
get_u64(const uint8_t* p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
    return v;
}

/// Reserve the header, returning the offset where the length goes.
size_t
begin_frame(std::vector<uint8_t>& out, MsgType type)
{
    const size_t at = out.size();
    put_u32(out, 0); // patched by end_frame
    put_u8(out, static_cast<uint8_t>(type));
    return at;
}

void
end_frame(std::vector<uint8_t>& out, size_t at)
{
    const uint32_t len =
        static_cast<uint32_t>(out.size() - at - kFrameHeaderBytes);
    for (int i = 0; i < 4; ++i) out[at + i] = uint8_t(len >> (8 * i));
}

void
put_address_sets(std::vector<uint8_t>& out, const fpga::OffloadRequest& off)
{
    put_u32(out, static_cast<uint32_t>(off.reads.size()));
    put_u32(out, static_cast<uint32_t>(off.writes.size()));
    for (uint64_t addr : off.reads) put_u64(out, addr);
    for (uint64_t addr : off.writes) put_u64(out, addr);
}

/// Validate the counts at @p p against the remaining payload and fill
/// the address sets. Returns false on a malformed length.
bool
get_address_sets(const uint8_t* p, size_t remaining,
                 fpga::OffloadRequest& off)
{
    if (remaining < 8) return false;
    const uint32_t n_reads = get_u32(p);
    const uint32_t n_writes = get_u32(p + 4);
    if (n_reads > kMaxAddresses || n_writes > kMaxAddresses) return false;
    if (remaining != 8 + (size_t{n_reads} + n_writes) * 8) return false;
    p += 8;
    off.reads.reserve(n_reads);
    for (uint32_t i = 0; i < n_reads; ++i, p += 8) {
        off.reads.push_back(get_u64(p));
    }
    off.writes.reserve(n_writes);
    for (uint32_t i = 0; i < n_writes; ++i, p += 8) {
        off.writes.push_back(get_u64(p));
    }
    return true;
}

} // namespace

void
encode_request(std::vector<uint8_t>& out, const WireRequest& request)
{
    out.reserve(out.size() + kFrameHeaderBytes + 5 * 8 + 8 +
                (request.offload.reads.size() +
                 request.offload.writes.size()) *
                    8);
    const size_t at = begin_frame(out, MsgType::kRequestV2);
    put_u64(out, request.request_id);
    put_u64(out, request.offload.snapshot_cid);
    put_u64(out, request.deadline_ns);
    put_u64(out, request.trace_id);
    put_u64(out, request.parent_span_id);
    put_address_sets(out, request.offload);
    end_frame(out, at);
}

void
encode_request_v1(std::vector<uint8_t>& out, const WireRequest& request)
{
    out.reserve(out.size() + kFrameHeaderBytes + 3 * 8 + 8 +
                (request.offload.reads.size() +
                 request.offload.writes.size()) *
                    8);
    const size_t at = begin_frame(out, MsgType::kRequest);
    put_u64(out, request.request_id);
    put_u64(out, request.offload.snapshot_cid);
    put_u64(out, request.deadline_ns);
    put_address_sets(out, request.offload);
    end_frame(out, at);
}

void
encode_response(std::vector<uint8_t>& out, const WireResponse& response,
                bool v2)
{
    out.reserve(out.size() + kFrameHeaderBytes + 8 + 2 + 8 +
                (v2 ? 5 * 8 : 0));
    const size_t at = begin_frame(
        out, v2 ? MsgType::kResponseV2 : MsgType::kResponse);
    put_u64(out, response.request_id);
    put_u8(out, static_cast<uint8_t>(response.result.verdict));
    put_u8(out, static_cast<uint8_t>(response.result.reason));
    put_u64(out, response.result.cid);
    if (v2) {
        put_u64(out, response.stages.server_queue_ns);
        put_u64(out, response.stages.batch_wait_ns);
        put_u64(out, response.stages.engine_ns);
        put_u64(out, response.stages.link_ns);
        put_u64(out, response.result.conflict_cid);
    }
    end_frame(out, at);
}

void
encode_stats_request(std::vector<uint8_t>& out)
{
    const size_t at = begin_frame(out, MsgType::kStats);
    end_frame(out, at);
}

void
encode_stats_reply(std::vector<uint8_t>& out, std::string_view json)
{
    const size_t at = begin_frame(out, MsgType::kStatsReply);
    out.insert(out.end(), json.begin(), json.end());
    end_frame(out, at);
}

void
encode_topk_request(std::vector<uint8_t>& out)
{
    const size_t at = begin_frame(out, MsgType::kTopK);
    end_frame(out, at);
}

void
encode_topk_reply(std::vector<uint8_t>& out, std::string_view json)
{
    const size_t at = begin_frame(out, MsgType::kTopKReply);
    out.insert(out.end(), json.begin(), json.end());
    end_frame(out, at);
}

void
encode_dump_request(std::vector<uint8_t>& out)
{
    const size_t at = begin_frame(out, MsgType::kDump);
    end_frame(out, at);
}

void
encode_dump_reply(std::vector<uint8_t>& out, std::string_view json)
{
    const size_t at = begin_frame(out, MsgType::kDumpReply);
    out.insert(out.end(), json.begin(), json.end());
    end_frame(out, at);
}

void
encode_series_request(std::vector<uint8_t>& out)
{
    const size_t at = begin_frame(out, MsgType::kSeries);
    end_frame(out, at);
}

void
encode_series_reply(std::vector<uint8_t>& out, std::string_view json)
{
    const size_t at = begin_frame(out, MsgType::kSeriesReply);
    out.insert(out.end(), json.begin(), json.end());
    end_frame(out, at);
}

void
encode_prom_request(std::vector<uint8_t>& out)
{
    const size_t at = begin_frame(out, MsgType::kProm);
    end_frame(out, at);
}

void
encode_prom_reply(std::vector<uint8_t>& out, std::string_view text)
{
    const size_t at = begin_frame(out, MsgType::kPromReply);
    out.insert(out.end(), text.begin(), text.end());
    end_frame(out, at);
}

std::optional<WireRequest>
decode_request(MsgType type, const uint8_t* payload, size_t size)
{
    const bool v2 = type == MsgType::kRequestV2;
    if (!v2 && type != MsgType::kRequest) return std::nullopt;
    const size_t fixed = v2 ? 8 + 8 + 8 + 8 + 8 : 8 + 8 + 8;
    if (size < fixed + 8) return std::nullopt;
    WireRequest request;
    request.request_id = get_u64(payload);
    request.offload.snapshot_cid = get_u64(payload + 8);
    request.deadline_ns = get_u64(payload + 16);
    if (v2) {
        request.trace_id = get_u64(payload + 24);
        request.parent_span_id = get_u64(payload + 32);
    }
    if (!get_address_sets(payload + fixed, size - fixed, request.offload)) {
        return std::nullopt;
    }
    return request;
}

std::optional<WireResponse>
decode_response(MsgType type, const uint8_t* payload, size_t size)
{
    const bool v2 = type == MsgType::kResponseV2;
    if (!v2 && type != MsgType::kResponse) return std::nullopt;
    constexpr size_t kV1Fixed = 8 + 1 + 1 + 8;
    if (size != (v2 ? kV1Fixed + 5 * 8 : kV1Fixed)) return std::nullopt;
    WireResponse response;
    response.request_id = get_u64(payload);
    const uint8_t verdict = payload[8];
    const uint8_t reason = payload[9];
    if (verdict > static_cast<uint8_t>(core::Verdict::kRejected) ||
        reason >= obs::kAbortReasonCount) {
        return std::nullopt;
    }
    response.result.verdict = static_cast<core::Verdict>(verdict);
    response.result.reason = static_cast<obs::AbortReason>(reason);
    response.result.cid = get_u64(payload + 10);
    if (v2) {
        response.stages.server_queue_ns = get_u64(payload + 18);
        response.stages.batch_wait_ns = get_u64(payload + 26);
        response.stages.engine_ns = get_u64(payload + 34);
        response.stages.link_ns = get_u64(payload + 42);
        response.result.conflict_cid = get_u64(payload + 50);
        response.has_stages = true;
    }
    return response;
}

void
FrameReader::append(const uint8_t* data, size_t size)
{
    // Compact lazily: drop fully consumed bytes before growing, so the
    // buffer stays at one frame's working set under streaming load.
    if (consumed_ > 0) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<FrameReader::Frame>
FrameReader::next(bool* malformed)
{
    if (malformed != nullptr) *malformed = false;
    if (buffered() < kFrameHeaderBytes) return std::nullopt;
    const uint8_t* head = buffer_.data() + consumed_;
    const uint32_t len = uint32_t(head[0]) | uint32_t(head[1]) << 8 |
                         uint32_t(head[2]) << 16 | uint32_t(head[3]) << 24;
    const uint8_t type = head[4];
    if (len > kMaxPayloadBytes ||
        type < static_cast<uint8_t>(MsgType::kRequest) ||
        type > static_cast<uint8_t>(MsgType::kPromReply)) {
        if (malformed != nullptr) *malformed = true;
        return std::nullopt;
    }
    if (buffered() < kFrameHeaderBytes + len) return std::nullopt;
    Frame frame{static_cast<MsgType>(type), head + kFrameHeaderBytes, len};
    consumed_ += kFrameHeaderBytes + len;
    return frame;
}

} // namespace rococo::svc
