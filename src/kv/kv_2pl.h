/// @file
/// Conservative two-phase-locking baseline behind the same
/// KvInterface as the OCC store, so both engines race under identical
/// traffic (docs/KV.md, the comparison "On the Cost of Concurrency in
/// Hybrid Transactional Memory" motivates).
///
/// Deadlock freedom by construction: the slot table is covered by
/// contiguous lock stripes sized at least one probe window, so each
/// key's window spans at most two stripes. An operation computes the
/// stripe set of *all* its keys up front (conservative 2PL — no lock
/// is acquired after the first data access), sorts it, and acquires
/// in ascending stripe order; every transaction observes one global
/// lock order, so no cycle of waiters can form and operations never
/// retry (kv.txn.{aborts,retries} stay 0 — tests/kv_test.cc pins this
/// under forced cyclic workloads and TSan).
///
/// The price is pessimism: readers serialize on their stripes even
/// when no conflict exists, which is exactly the effect the YCSB
/// read-heavy mixes measure against OCC's invisible readers.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "kv/kv.h"
#include "kv/kv_metrics.h"
#include "kv/key_mapper.h"

namespace rococo::kv {

struct Kv2plConfig
{
    /// Slot count; same sizing advice as KvStoreConfig::capacity.
    size_t capacity = size_t{1} << 16;
    /// Upper bound on lock stripes; clamped so each stripe covers at
    /// least one probe window (then rounded to a power of two).
    size_t lock_stripes = 1024;
};

class KvStore2pl final : public KvInterface
{
  public:
    explicit KvStore2pl(const Kv2plConfig& config = {});

    std::string name() const override { return "kv/2pl"; }

    void thread_init(unsigned) override {}
    void thread_fini() override {}

    KvStatus get(std::string_view key, uint64_t& value_out) override;
    KvStatus put(std::string_view key, uint64_t value) override;
    KvStatus erase(std::string_view key) override;
    KvStatus scan(std::span<const std::string_view> keys,
                  std::span<RmwEntry> out) override;
    KvStatus rmw(std::span<const std::string_view> keys,
                 RmwFn fn) override;

    const obs::Registry& metrics() const override { return metrics_; }

    const KeyMapper& mapper() const { return mapper_; }
    size_t lock_stripes() const { return stripe_count_; }

    /// The ascending stripe-lock order an operation over @p keys
    /// acquires — exposed so tests can assert the global order that
    /// makes the baseline deadlock-free.
    std::vector<uint32_t> lock_order(
        std::span<const std::string_view> keys) const;

  private:
    /// Inline capacity of a stripe set: 2 stripes per key covers a
    /// full-fan-in rmw without allocation.
    static constexpr size_t kInlineStripes = 2 * kMaxTxnKeys;

    uint32_t stripe_of(size_t slot) const
    {
        return static_cast<uint32_t>(slot >> stripe_shift_);
    }

    /// Append @p key's (deduplicated) stripes to @p stripes.
    template <typename Vec>
    void gather_stripes(std::string_view key, Vec& stripes) const;

    struct Probe
    {
        size_t slot = KeyMapper::kNpos;
        size_t insert = KeyMapper::kNpos;
    };
    Probe probe(const KeyMapper::Ref& ref, uint64_t& collisions) const;

    KeyMapper mapper_;
    std::vector<uint64_t> meta_;
    std::vector<uint64_t> value_;
    size_t stripe_count_;
    unsigned stripe_shift_;
    std::unique_ptr<std::mutex[]> stripes_;
    obs::Registry metrics_;
    HotMetrics hot_;
};

} // namespace rococo::kv
