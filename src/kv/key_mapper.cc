#include "kv/key_mapper.h"

#include <bit>

#include "common/check.h"

namespace rococo::kv {
namespace {

/// SplitMix64 finisher: full-avalanche mixing of a 64-bit word.
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

/// FNV-1a over the key bytes, then mixed — FNV alone is weak in the
/// low bits, and the home slot is taken from them.
uint64_t
hash_key(std::string_view key)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return mix64(h);
}

} // namespace

KeyMapper::KeyMapper(size_t capacity)
{
    ROCOCO_CHECK(capacity <= (size_t{1} << 48));
    const size_t rounded = std::bit_ceil(std::max<size_t>(capacity, 64));
    mask_ = rounded - 1;
}

KeyMapper::Ref
KeyMapper::map(std::string_view key) const
{
    const uint64_t h = hash_key(key);
    // Fingerprint and home slot come from independent mixes so probe
    // neighbours don't share fingerprint bits. The two reserved meta
    // values are remapped (a per-key bias of 2^-63, never observable
    // at benchmark scales).
    uint64_t fingerprint = h;
    if (fingerprint < kMinFingerprint) fingerprint += kMinFingerprint;
    return Ref{fingerprint, static_cast<size_t>(mix64(h + 1)) & mask_};
}

} // namespace rococo::kv
