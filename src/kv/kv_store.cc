#include "kv/kv_store.h"

#include "common/check.h"

namespace rococo::kv {

const char*
to_string(KvStatus status)
{
    switch (status) {
      case KvStatus::kOk: return "ok";
      case KvStatus::kNotFound: return "not-found";
      case KvStatus::kNoSpace: return "no-space";
    }
    return "?";
}

KvStore::KvStore(const KvStoreConfig& config)
    : mapper_(config.capacity), slots_(mapper_.capacity()),
      runtime_(config.tm)
{
    hot_.resolve(metrics_);
}

KvStore::Probe
KvStore::probe(tm::Tx& tx, const KeyMapper::Ref& ref,
               uint64_t& collisions) const
{
    Probe result;
    for (size_t step = 0; step < KeyMapper::kMaxProbe; ++step) {
        const size_t s = mapper_.slot_at(ref.home, step);
        const tm::Word meta = tx.load(slots_[s].meta);
        if (meta == KeyMapper::kEmpty) {
            // End of the probe chain: the key is absent, and this is
            // the insert candidate unless a tombstone came earlier.
            if (result.insert == KeyMapper::kNpos) result.insert = s;
            return result;
        }
        if (meta == KeyMapper::kTombstone) {
            if (result.insert == KeyMapper::kNpos) result.insert = s;
            continue;
        }
        if (meta == ref.fingerprint) {
            result.slot = s;
            return result;
        }
        ++collisions; // a live slot owned by a different key
    }
    return result;
}

KvStatus
KvStore::get(std::string_view key, uint64_t& value_out)
{
    struct Ctx
    {
        KvStore* self;
        KeyMapper::Ref ref;
        uint64_t value = 0;
        bool found = false;
        uint64_t collisions = 0;
        unsigned attempts = 0;
    };
    Ctx ctx{this, mapper_.map(key)};
    const uint64_t start = obs::now_ns();
    runtime_.execute([&ctx](tm::Tx& tx) {
        ++ctx.attempts;
        ctx.collisions = 0;
        ctx.found = false;
        const Probe p = ctx.self->probe(tx, ctx.ref, ctx.collisions);
        if (p.slot != KeyMapper::kNpos) {
            ctx.found = true;
            ctx.value = tx.load(ctx.self->slots_[p.slot].value);
        }
    });
    hot_.finish_op(kOpGet, start, ctx.attempts, ctx.collisions);
    if (!ctx.found) return KvStatus::kNotFound;
    value_out = ctx.value;
    return KvStatus::kOk;
}

KvStatus
KvStore::put(std::string_view key, uint64_t value)
{
    struct Ctx
    {
        KvStore* self;
        KeyMapper::Ref ref;
        uint64_t value;
        bool no_space = false;
        uint64_t collisions = 0;
        unsigned attempts = 0;
    };
    Ctx ctx{this, mapper_.map(key), value};
    const uint64_t start = obs::now_ns();
    runtime_.execute([&ctx](tm::Tx& tx) {
        ++ctx.attempts;
        ctx.collisions = 0;
        ctx.no_space = false;
        const Probe p = ctx.self->probe(tx, ctx.ref, ctx.collisions);
        if (p.slot != KeyMapper::kNpos) {
            tx.store(ctx.self->slots_[p.slot].value, ctx.value);
            return;
        }
        if (p.insert == KeyMapper::kNpos) {
            // Probe window full: commit read-only and report failure.
            ctx.no_space = true;
            return;
        }
        Slot& slot = ctx.self->slots_[p.insert];
        tx.store(slot.meta, ctx.ref.fingerprint);
        tx.store(slot.value, ctx.value);
    });
    hot_.finish_op(kOpPut, start, ctx.attempts, ctx.collisions);
    return ctx.no_space ? KvStatus::kNoSpace : KvStatus::kOk;
}

KvStatus
KvStore::erase(std::string_view key)
{
    struct Ctx
    {
        KvStore* self;
        KeyMapper::Ref ref;
        bool found = false;
        uint64_t collisions = 0;
        unsigned attempts = 0;
    };
    Ctx ctx{this, mapper_.map(key)};
    const uint64_t start = obs::now_ns();
    runtime_.execute([&ctx](tm::Tx& tx) {
        ++ctx.attempts;
        ctx.collisions = 0;
        ctx.found = false;
        const Probe p = ctx.self->probe(tx, ctx.ref, ctx.collisions);
        if (p.slot != KeyMapper::kNpos) {
            ctx.found = true;
            // Tombstone, not empty: later keys of this probe chain
            // must stay reachable.
            tx.store(ctx.self->slots_[p.slot].meta,
                     KeyMapper::kTombstone);
        }
    });
    hot_.finish_op(kOpDelete, start, ctx.attempts, ctx.collisions);
    return ctx.found ? KvStatus::kOk : KvStatus::kNotFound;
}

KvStatus
KvStore::scan(std::span<const std::string_view> keys,
              std::span<RmwEntry> out)
{
    ROCOCO_CHECK(keys.size() == out.size());
    struct Ctx
    {
        KvStore* self;
        std::span<const std::string_view> keys;
        std::span<RmwEntry> out;
        uint64_t collisions = 0;
        unsigned attempts = 0;
    };
    Ctx ctx{this, keys, out};
    const uint64_t start = obs::now_ns();
    runtime_.execute([&ctx](tm::Tx& tx) {
        ++ctx.attempts;
        ctx.collisions = 0;
        for (size_t i = 0; i < ctx.keys.size(); ++i) {
            const KeyMapper::Ref ref =
                ctx.self->mapper_.map(ctx.keys[i]);
            const Probe p = ctx.self->probe(tx, ref, ctx.collisions);
            RmwEntry& entry = ctx.out[i];
            entry.write = false;
            entry.found = p.slot != KeyMapper::kNpos;
            entry.value =
                entry.found
                    ? tx.load(ctx.self->slots_[p.slot].value)
                    : 0;
        }
    });
    hot_.finish_op(kOpScan, start, ctx.attempts, ctx.collisions);
    return KvStatus::kOk;
}

KvStatus
KvStore::rmw(std::span<const std::string_view> keys, RmwFn fn)
{
    ROCOCO_CHECK(keys.size() <= kMaxTxnKeys);
    struct Ctx
    {
        KvStore* self;
        std::span<const std::string_view> keys;
        RmwFn* fn;
        bool no_space = false;
        uint64_t collisions = 0;
        unsigned attempts = 0;
        RmwEntry entries[kMaxTxnKeys];
        KeyMapper::Ref refs[kMaxTxnKeys];
        size_t slot[kMaxTxnKeys];
    };
    Ctx ctx{this, keys, &fn, false, 0, 0, {}, {}, {}};
    const uint64_t start = obs::now_ns();
    runtime_.execute([&ctx](tm::Tx& tx) {
        ++ctx.attempts;
        ctx.collisions = 0;
        ctx.no_space = false;
        const size_t n = ctx.keys.size();
        for (size_t i = 0; i < n; ++i) {
            ctx.refs[i] = ctx.self->mapper_.map(ctx.keys[i]);
            const Probe p =
                ctx.self->probe(tx, ctx.refs[i], ctx.collisions);
            ctx.slot[i] = p.slot;
            RmwEntry& entry = ctx.entries[i];
            entry.write = false;
            entry.found = p.slot != KeyMapper::kNpos;
            entry.value =
                entry.found
                    ? tx.load(ctx.self->slots_[p.slot].value)
                    : 0;
        }
        (*ctx.fn)(std::span<RmwEntry>{ctx.entries, n});
        // Assign every written-but-absent key its insert slot before
        // the first store — all-or-nothing on kNoSpace, and two
        // inserts in one transaction must not claim the same free
        // slot. A slot claimed by an earlier key of this transaction
        // is skipped even when its metadata still reads empty; the
        // skipped slot turns live at commit, so later lookups still
        // terminate at the first *committed* empty slot.
        size_t claimed[kMaxTxnKeys];
        size_t n_claimed = 0;
        for (size_t i = 0; i < n; ++i) {
            if (!ctx.entries[i].write ||
                ctx.slot[i] != KeyMapper::kNpos) {
                continue;
            }
            for (size_t step = 0;
                 step < KeyMapper::kMaxProbe &&
                 ctx.slot[i] == KeyMapper::kNpos;
                 ++step) {
                const size_t s =
                    ctx.self->mapper_.slot_at(ctx.refs[i].home, step);
                const tm::Word meta =
                    tx.load(ctx.self->slots_[s].meta);
                if (meta != KeyMapper::kEmpty &&
                    meta != KeyMapper::kTombstone) {
                    continue;
                }
                bool taken = false;
                for (size_t c = 0; c < n_claimed && !taken; ++c) {
                    taken = claimed[c] == s;
                }
                if (taken) continue;
                ctx.slot[i] = s;
                claimed[n_claimed++] = s;
            }
            if (ctx.slot[i] == KeyMapper::kNpos) {
                ctx.no_space = true;
                return;
            }
        }
        for (size_t i = 0; i < n; ++i) {
            if (!ctx.entries[i].write) continue;
            Slot& slot = ctx.self->slots_[ctx.slot[i]];
            if (!ctx.entries[i].found) {
                tx.store(slot.meta, ctx.refs[i].fingerprint);
            }
            tx.store(slot.value, ctx.entries[i].value);
        }
    });
    hot_.finish_op(kOpRmw, start, ctx.attempts, ctx.collisions);
    return ctx.no_space ? KvStatus::kNoSpace : KvStatus::kOk;
}

size_t
KvStore::resolve_slot(std::string_view key) const
{
    const KeyMapper::Ref ref = mapper_.map(key);
    for (size_t step = 0; step < KeyMapper::kMaxProbe; ++step) {
        const size_t s = mapper_.slot_at(ref.home, step);
        const tm::Word meta = slots_[s].meta.unsafe_load();
        if (meta == KeyMapper::kEmpty) return KeyMapper::kNpos;
        if (meta == ref.fingerprint) return s;
    }
    return KeyMapper::kNpos;
}

} // namespace rococo::kv
