/// @file
/// The kv.* metric plumbing shared by the OCC store and the 2PL
/// baseline: one counter per operation kind, transaction-outcome
/// counters, the collision counter, and per-op latency histograms —
/// all resolved once at store construction so the operation hot path
/// never takes the registry's name-lookup mutex (or allocates the
/// lookup string: several family names exceed std::string's inline
/// buffer).
#pragma once

#include <cstdint>

#include "obs/clock.h"
#include "obs/registry.h"

namespace rococo::kv {

enum Op
{
    kOpGet,
    kOpPut,
    kOpDelete,
    kOpScan,
    kOpRmw,
    kOpCount,
};

inline constexpr const char* kOpNames[kOpCount] = {
    "get", "put", "delete", "scan", "rmw",
};

/// Pre-resolved kv.* metric handles. Invariants exported to
/// scripts/check_trace_json.py: sum over ops of kv.ops.<op> equals
/// kv.txn.commits (every operation is one committed transaction), and
/// each kv.latency.<op> histogram holds exactly kv.ops.<op> samples.
struct HotMetrics
{
    obs::Counter* ops[kOpCount];
    obs::LatencyHistogram* latency[kOpCount];
    obs::Counter* commits;
    obs::Counter* aborts;
    obs::Counter* retries;
    obs::Counter* collisions;

    void
    resolve(obs::Registry& registry)
    {
        for (int op = 0; op < kOpCount; ++op) {
            ops[op] = &registry.counter(std::string("kv.ops.") +
                                        kOpNames[op]);
            latency[op] = &registry.histogram(
                std::string("kv.latency.") + kOpNames[op]);
        }
        commits = &registry.counter("kv.txn.commits");
        aborts = &registry.counter("kv.txn.aborts");
        retries = &registry.counter("kv.txn.retries");
        collisions = &registry.counter("kv.key_collisions");
    }

    /// Account one finished (committed) operation: @p attempts is the
    /// number of body executions (1 = first-try commit), @p collided
    /// the committed attempt's foreign-slot probe encounters.
    void
    finish_op(Op op, uint64_t start_ns, unsigned attempts,
              uint64_t collided)
    {
        ops[op]->add(1);
        commits->add(1);
        if (attempts > 1) {
            retries->add(1);
            aborts->add(attempts - 1);
        }
        if (collided > 0) collisions->add(collided);
        latency[op]->record(obs::now_ns() - start_ns);
    }
};

} // namespace rococo::kv
