/// @file
/// The OCC transactional key-value store: string keys over
/// tm::RococoTm (docs/KV.md).
///
/// Layout: the hashed key space (key_mapper.h) addresses a slot table
/// where each slot is a pair of transactional cells — metadata (the
/// owning key's fingerprint, or empty/tombstone) and the 64-bit
/// value. Every operation is one runtime transaction: probes read
/// slot metadata transactionally, so concurrent inserts racing for
/// one free slot conflict on its metadata cell and OCC validation
/// serializes them; no store-level locking exists at all.
///
/// Read-only operations (get, scan) ride RococoTm's CPU-side
/// read-only commit path — no validation offload, no commit-log slot.
/// Updates ship at most 2·kMaxTxnKeys addresses (meta + value per
/// key), which fits the offload request's inline capacity, keeping
/// the whole op path allocation-free in steady state
/// (tests/hotpath_alloc_test.cc pins this down).
#pragma once

#include <cstdint>
#include <vector>

#include "kv/kv.h"
#include "kv/kv_metrics.h"
#include "kv/key_mapper.h"
#include "tm/rococo_tm.h"

namespace rococo::kv {

struct KvStoreConfig
{
    /// Slot count (rounded up to a power of two ≥ 64). Size well above
    /// the live key count: load factors past ~0.7 make the bounded
    /// probe window fill up (kNoSpace) and inflate kv.key_collisions.
    size_t capacity = size_t{1} << 16;
    /// The underlying runtime's configuration — validation shards,
    /// validation service socket, recorder/monitor, all pass through
    /// (docs/SERVICE.md, docs/SHARDING.md).
    tm::RococoTmConfig tm;
};

class KvStore final : public KvInterface
{
  public:
    explicit KvStore(const KvStoreConfig& config = {});

    std::string name() const override { return "kv/occ"; }

    void thread_init(unsigned thread_id) override
    {
        runtime_.thread_init(thread_id);
    }
    void thread_fini() override { runtime_.thread_fini(); }

    KvStatus get(std::string_view key, uint64_t& value_out) override;
    KvStatus put(std::string_view key, uint64_t value) override;
    KvStatus erase(std::string_view key) override;
    KvStatus scan(std::span<const std::string_view> keys,
                  std::span<RmwEntry> out) override;
    KvStatus rmw(std::span<const std::string_view> keys,
                 RmwFn fn) override;

    const obs::Registry& metrics() const override { return metrics_; }

    tm::RococoTm& runtime() { return runtime_; }
    const KeyMapper& mapper() const { return mapper_; }

    /// The slot @p key currently occupies, or KeyMapper::kNpos.
    /// Non-transactional — for quiescent forensics (--key-map-out)
    /// only.
    size_t resolve_slot(std::string_view key) const;

  private:
    struct Slot
    {
        tm::TmCell meta;
        tm::TmCell value;
    };

    /// Probe outcome: `slot` is the key's slot (kNpos if absent),
    /// `insert` the first reusable slot of the sequence (kNpos if the
    /// window is full). All inspected metadata was read through @p tx.
    struct Probe
    {
        size_t slot = KeyMapper::kNpos;
        size_t insert = KeyMapper::kNpos;
    };
    Probe probe(tm::Tx& tx, const KeyMapper::Ref& ref,
                uint64_t& collisions) const;

    KeyMapper mapper_;
    std::vector<Slot> slots_;
    tm::RococoTm runtime_;
    obs::Registry metrics_;
    HotMetrics hot_;
};

} // namespace rococo::kv
