/// @file
/// Stable hashed key→address mapping of the KV layer (docs/KV.md).
///
/// String keys hash to a 64-bit fingerprint plus a home slot in a
/// power-of-two slot table; lookups probe linearly from the home slot
/// for at most kMaxProbe steps. The mapping is *stable*: it depends
/// only on the key bytes and the table capacity, never on insertion
/// history — so the same key maps to the same probe sequence in the
/// OCC store, the 2PL baseline and the service-mode YCSB clients, and
/// the wire addresses below let conflict forensics (svcctl top,
/// scripts/resolve_topk.py) be joined back to string keys.
///
/// Collision accounting: every probe step that lands on a slot owned
/// by a *different* key is one open-addressing collision — observable
/// as the kv.key_collisions counter, so false conflicts introduced by
/// the hashed address space are measurable rather than silent.
/// Distinct keys with equal 64-bit fingerprints are not
/// distinguished; at benchmark key-space sizes (≤ 2^32 keys) the
/// collision odds are below 2^-32 per pair, an accepted limit
/// documented in docs/KV.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rococo::kv {

class KeyMapper
{
  public:
    /// Probe window: a lookup inspects at most this many slots. Bounds
    /// both the transactional read set of a point operation and the
    /// stripe span the 2PL baseline must lock.
    static constexpr size_t kMaxProbe = 32;

    static constexpr size_t kNpos = ~size_t{0};

    /// @param capacity slot count; rounded up to a power of two ≥ 64.
    explicit KeyMapper(size_t capacity);

    size_t capacity() const { return mask_ + 1; }

    struct Ref
    {
        uint64_t fingerprint; ///< ≥ kMinFingerprint, stable per key
        size_t home;          ///< first slot of the probe sequence
    };

    Ref map(std::string_view key) const;

    /// @p step'th slot of @p home's probe sequence (wraps around).
    size_t
    slot_at(size_t home, size_t step) const
    {
        return (home + step) & mask_;
    }

    /// Slot-derived wire addresses: the deterministic 64-bit addresses
    /// service-mode validation requests carry for a slot's metadata
    /// and value cells. These — not process-local cell pointers — are
    /// what --key-map-out dumps and resolve_topk.py joins against.
    static uint64_t meta_addr(size_t slot) { return uint64_t(slot) * 2; }
    static uint64_t value_addr(size_t slot)
    {
        return uint64_t(slot) * 2 + 1;
    }

    /// Slot metadata encoding shared by both stores: 0 = never used,
    /// 1 = tombstone, anything else = the owning key's fingerprint.
    static constexpr uint64_t kEmpty = 0;
    static constexpr uint64_t kTombstone = 1;
    static constexpr uint64_t kMinFingerprint = 2;

  private:
    size_t mask_;
};

} // namespace rococo::kv
