#include "kv/kv_2pl.h"

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/small_vector.h"

namespace rococo::kv {
namespace {

/// Sort + dedupe a gathered stripe set in place (no allocation).
template <typename Vec>
void
normalize(Vec& stripes)
{
    std::sort(stripes.begin(), stripes.end());
    size_t out = 0;
    for (size_t i = 0; i < stripes.size(); ++i) {
        if (out == 0 || stripes[i] != stripes[out - 1]) {
            stripes[out++] = stripes[i];
        }
    }
    stripes.resize(out);
}

/// Scoped conservative lock set: acquires the (sorted, deduplicated)
/// stripes in ascending order, releases in reverse.
template <typename Vec>
class StripeGuard
{
  public:
    StripeGuard(std::mutex* stripes, const Vec& order)
        : stripes_(stripes), order_(order)
    {
        for (size_t i = 0; i < order_.size(); ++i) {
            stripes_[order_[i]].lock();
        }
    }
    ~StripeGuard()
    {
        for (size_t i = order_.size(); i > 0; --i) {
            stripes_[order_[i - 1]].unlock();
        }
    }
    StripeGuard(const StripeGuard&) = delete;
    StripeGuard& operator=(const StripeGuard&) = delete;

  private:
    std::mutex* stripes_ = nullptr;
    const Vec& order_;
};

} // namespace

KvStore2pl::KvStore2pl(const Kv2plConfig& config)
    : mapper_(config.capacity), meta_(mapper_.capacity(), 0),
      value_(mapper_.capacity(), 0)
{
    // Each stripe must cover at least one probe window so any key's
    // window touches at most two stripes.
    const size_t max_stripes =
        std::max<size_t>(1, mapper_.capacity() / KeyMapper::kMaxProbe);
    stripe_count_ = std::bit_floor(
        std::clamp<size_t>(config.lock_stripes, 1, max_stripes));
    const size_t slots_per_stripe = mapper_.capacity() / stripe_count_;
    stripe_shift_ =
        static_cast<unsigned>(std::countr_zero(slots_per_stripe));
    stripes_ = std::make_unique<std::mutex[]>(stripe_count_);
    hot_.resolve(metrics_);
}

template <typename Vec>
void
KvStore2pl::gather_stripes(std::string_view key, Vec& stripes) const
{
    const KeyMapper::Ref ref = mapper_.map(key);
    const uint32_t first = stripe_of(ref.home);
    const uint32_t last =
        stripe_of(mapper_.slot_at(ref.home, KeyMapper::kMaxProbe - 1));
    stripes.push_back(first);
    if (last != first) stripes.push_back(last);
}

KvStore2pl::Probe
KvStore2pl::probe(const KeyMapper::Ref& ref, uint64_t& collisions) const
{
    Probe result;
    for (size_t step = 0; step < KeyMapper::kMaxProbe; ++step) {
        const size_t s = mapper_.slot_at(ref.home, step);
        const uint64_t meta = meta_[s];
        if (meta == KeyMapper::kEmpty) {
            if (result.insert == KeyMapper::kNpos) result.insert = s;
            return result;
        }
        if (meta == KeyMapper::kTombstone) {
            if (result.insert == KeyMapper::kNpos) result.insert = s;
            continue;
        }
        if (meta == ref.fingerprint) {
            result.slot = s;
            return result;
        }
        ++collisions;
    }
    return result;
}

KvStatus
KvStore2pl::get(std::string_view key, uint64_t& value_out)
{
    const uint64_t start = obs::now_ns();
    const KeyMapper::Ref ref = mapper_.map(key);
    SmallVector<uint32_t, 2> stripes;
    gather_stripes(key, stripes);
    normalize(stripes);
    uint64_t collisions = 0;
    bool found = false;
    {
        StripeGuard guard(stripes_.get(), stripes);
        const Probe p = probe(ref, collisions);
        if (p.slot != KeyMapper::kNpos) {
            found = true;
            value_out = value_[p.slot];
        }
    }
    hot_.finish_op(kOpGet, start, 1, collisions);
    return found ? KvStatus::kOk : KvStatus::kNotFound;
}

KvStatus
KvStore2pl::put(std::string_view key, uint64_t value)
{
    const uint64_t start = obs::now_ns();
    const KeyMapper::Ref ref = mapper_.map(key);
    SmallVector<uint32_t, 2> stripes;
    gather_stripes(key, stripes);
    normalize(stripes);
    uint64_t collisions = 0;
    bool no_space = false;
    {
        StripeGuard guard(stripes_.get(), stripes);
        const Probe p = probe(ref, collisions);
        if (p.slot != KeyMapper::kNpos) {
            value_[p.slot] = value;
        } else if (p.insert != KeyMapper::kNpos) {
            meta_[p.insert] = ref.fingerprint;
            value_[p.insert] = value;
        } else {
            no_space = true;
        }
    }
    hot_.finish_op(kOpPut, start, 1, collisions);
    return no_space ? KvStatus::kNoSpace : KvStatus::kOk;
}

KvStatus
KvStore2pl::erase(std::string_view key)
{
    const uint64_t start = obs::now_ns();
    const KeyMapper::Ref ref = mapper_.map(key);
    SmallVector<uint32_t, 2> stripes;
    gather_stripes(key, stripes);
    normalize(stripes);
    uint64_t collisions = 0;
    bool found = false;
    {
        StripeGuard guard(stripes_.get(), stripes);
        const Probe p = probe(ref, collisions);
        if (p.slot != KeyMapper::kNpos) {
            found = true;
            meta_[p.slot] = KeyMapper::kTombstone;
        }
    }
    hot_.finish_op(kOpDelete, start, 1, collisions);
    return found ? KvStatus::kOk : KvStatus::kNotFound;
}

KvStatus
KvStore2pl::scan(std::span<const std::string_view> keys,
                 std::span<RmwEntry> out)
{
    ROCOCO_CHECK(keys.size() == out.size());
    const uint64_t start = obs::now_ns();
    SmallVector<uint32_t, kInlineStripes> stripes;
    for (const std::string_view key : keys) {
        gather_stripes(key, stripes);
    }
    normalize(stripes);
    uint64_t collisions = 0;
    {
        StripeGuard guard(stripes_.get(), stripes);
        for (size_t i = 0; i < keys.size(); ++i) {
            const KeyMapper::Ref ref = mapper_.map(keys[i]);
            const Probe p = probe(ref, collisions);
            out[i].write = false;
            out[i].found = p.slot != KeyMapper::kNpos;
            out[i].value = out[i].found ? value_[p.slot] : 0;
        }
    }
    hot_.finish_op(kOpScan, start, 1, collisions);
    return KvStatus::kOk;
}

KvStatus
KvStore2pl::rmw(std::span<const std::string_view> keys, RmwFn fn)
{
    ROCOCO_CHECK(keys.size() <= kMaxTxnKeys);
    const uint64_t start = obs::now_ns();
    SmallVector<uint32_t, kInlineStripes> stripes;
    for (const std::string_view key : keys) {
        gather_stripes(key, stripes);
    }
    normalize(stripes);
    uint64_t collisions = 0;
    bool no_space = false;
    RmwEntry entries[kMaxTxnKeys];
    {
        StripeGuard guard(stripes_.get(), stripes);
        const size_t n = keys.size();
        KeyMapper::Ref refs[kMaxTxnKeys];
        size_t slot[kMaxTxnKeys];
        for (size_t i = 0; i < n; ++i) {
            refs[i] = mapper_.map(keys[i]);
            const Probe p = probe(refs[i], collisions);
            slot[i] = p.slot;
            entries[i].write = false;
            entries[i].found = p.slot != KeyMapper::kNpos;
            entries[i].value =
                entries[i].found ? value_[p.slot] : 0;
        }
        fn(std::span<RmwEntry>{entries, n});
        // Assign insert targets before writing anything — same
        // all-or-nothing and claimed-slot discipline as the OCC
        // store's rmw (two inserts must not share one free slot).
        size_t claimed[kMaxTxnKeys];
        size_t n_claimed = 0;
        for (size_t i = 0; i < n && !no_space; ++i) {
            if (!entries[i].write || slot[i] != KeyMapper::kNpos) {
                continue;
            }
            for (size_t step = 0;
                 step < KeyMapper::kMaxProbe &&
                 slot[i] == KeyMapper::kNpos;
                 ++step) {
                const size_t s = mapper_.slot_at(refs[i].home, step);
                if (meta_[s] != KeyMapper::kEmpty &&
                    meta_[s] != KeyMapper::kTombstone) {
                    continue;
                }
                bool taken = false;
                for (size_t c = 0; c < n_claimed && !taken; ++c) {
                    taken = claimed[c] == s;
                }
                if (taken) continue;
                slot[i] = s;
                claimed[n_claimed++] = s;
            }
            no_space = slot[i] == KeyMapper::kNpos;
        }
        if (!no_space) {
            for (size_t i = 0; i < n; ++i) {
                if (!entries[i].write) continue;
                if (!entries[i].found) {
                    meta_[slot[i]] = refs[i].fingerprint;
                }
                value_[slot[i]] = entries[i].value;
            }
        }
    }
    hot_.finish_op(kOpRmw, start, 1, collisions);
    return no_space ? KvStatus::kNoSpace : KvStatus::kOk;
}

std::vector<uint32_t>
KvStore2pl::lock_order(std::span<const std::string_view> keys) const
{
    std::vector<uint32_t> stripes;
    for (const std::string_view key : keys) {
        gather_stripes(key, stripes);
    }
    normalize(stripes);
    return stripes;
}

} // namespace rococo::kv
