/// @file
/// The transactional key-value interface both engines implement: the
/// OCC store over tm::RococoTm (kv_store.h) and the conservative
/// two-phase-locking baseline (kv_2pl.h), so the YCSB driver races
/// them under identical traffic (docs/KV.md).
///
/// Operations are single atomic transactions over string keys and
/// 64-bit values:
///
///   * get / put / erase — point operations.
///   * scan — one consistent multi-read: every value returned belongs
///     to the same serializable snapshot. The hashed key→address
///     mapping (key_mapper.h) has no global key order, so a scan is
///     driven by an explicit key list, not a range.
///   * rmw — a multi-key read-modify-write transaction: the body sees
///     all current values atomically and marks which to write back.
///
/// Every implementation exports the same metric families into its
/// registry — kv.ops.{get,put,delete,scan,rmw}, kv.txn.{commits,
/// aborts,retries}, kv.key_collisions and the kv.latency.* per-op
/// histograms — with the invariant sum(kv.ops.*) == kv.txn.commits
/// (each operation is exactly one committed transaction), which
/// scripts/check_trace_json.py enforces on telemetry captures.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/function_ref.h"
#include "obs/registry.h"

namespace rococo::kv {

enum class KvStatus
{
    kOk,
    kNotFound, ///< get/erase of an absent key
    kNoSpace,  ///< the bounded probe window is full (table overloaded)
};

const char* to_string(KvStatus status);

/// Fan-in bound of one rmw transaction. Eight keys keep the offloaded
/// address sets (two cells per key) within fpga::kInlineAddresses, so
/// a maximal rmw still travels the validation path allocation-free.
inline constexpr size_t kMaxTxnKeys = 8;

/// One key's slice of a scan or rmw transaction.
struct RmwEntry
{
    uint64_t value = 0; ///< in: current value if found; out: new value
    bool found = false; ///< key was present at transaction time
    bool write = false; ///< out (rmw only): write `value` back
};

/// A read-modify-write body: sees one RmwEntry per requested key (same
/// order), mutates values and sets `write` on the entries to update.
/// The body may run several times (OCC retries) — it must be pure in
/// everything but its entries.
using RmwFn = FunctionRef<void(std::span<RmwEntry>)>;

class KvInterface
{
  public:
    virtual ~KvInterface() = default;

    virtual std::string name() const = 0;

    /// Worker-thread lifecycle, mirroring tm::TmRuntime: call
    /// thread_init(tid) before a thread's first operation and
    /// thread_fini() before it joins.
    virtual void thread_init(unsigned thread_id) = 0;
    virtual void thread_fini() = 0;

    virtual KvStatus get(std::string_view key, uint64_t& value_out) = 0;
    virtual KvStatus put(std::string_view key, uint64_t value) = 0;
    virtual KvStatus erase(std::string_view key) = 0;

    /// Consistent multi-read of @p keys into @p out (same length).
    /// Always kOk; per-key presence lands in RmwEntry::found.
    virtual KvStatus scan(std::span<const std::string_view> keys,
                          std::span<RmwEntry> out) = 0;

    /// Multi-key read-modify-write; at most kMaxTxnKeys *distinct*
    /// keys (a repeated key may be inserted into two slots). Written
    /// entries for absent keys are inserted. kNoSpace if any insert
    /// cannot find a free slot (nothing is written then).
    virtual KvStatus rmw(std::span<const std::string_view> keys,
                         RmwFn fn) = 0;

    /// The kv.* metric registry (see the file comment for the
    /// families and their invariants).
    virtual const obs::Registry& metrics() const = 0;
};

} // namespace rococo::kv
