/// @file
/// Directed graph over transaction indices, the (T, ->rw) relation of
/// the paper's formalization (§3). Used by the order-theory utilities,
/// the serializability oracle and as the reference model for the
/// hardware reachability matrix.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace rococo::graph {

/// A simple directed graph with a fixed vertex count and adjacency
/// lists. Parallel edges are tolerated (they do not affect reachability
/// or cycle questions).
class DependencyGraph
{
  public:
    explicit DependencyGraph(size_t vertices = 0);

    size_t vertex_count() const { return successors_.size(); }
    size_t edge_count() const { return edge_count_; }

    /// Add vertex and return its index.
    size_t add_vertex();

    /// Add edge @p from -> @p to (from happens-before to).
    void add_edge(size_t from, size_t to);

    bool has_edge(size_t from, size_t to) const;

    const std::vector<size_t>& successors(size_t v) const
    {
        return successors_[v];
    }
    const std::vector<size_t>& predecessors(size_t v) const
    {
        return predecessors_[v];
    }

    /// All edges as (from, to) pairs.
    std::vector<std::pair<size_t, size_t>> edges() const;

  private:
    std::vector<std::vector<size_t>> successors_;
    std::vector<std::vector<size_t>> predecessors_;
    size_t edge_count_ = 0;
};

} // namespace rococo::graph
