/// @file
/// Interval-order checking (§3.2).
///
/// A strict partial order is an interval order iff it contains no
/// "2+2" sub-order — two disjoint related pairs t1 -> t2, t3 -> t4 with
/// neither t1 -> t4 nor t3 -> t2 (Fishburn). The paper uses this to
/// show that any timestamp-based OCC (whose real-time order is an
/// interval order) must impose phantom orderings, i.e. TOCC is
/// sufficient but NOT necessary for serializability.
#pragma once

#include <array>
#include <optional>

#include "common/bitmatrix.h"
#include "graph/dependency_graph.h"

namespace rococo::graph {

/// Witness of a 2+2 pattern: related pairs (a -> b) and (c -> d) with
/// a !-> d and c !-> b.
struct TwoPlusTwo
{
    size_t a, b, c, d;
};

/// Find a 2+2 pattern in the strict partial order given by closure
/// matrix @p reach (reach[i][j] = i precedes j; the diagonal is
/// ignored). Returns nullopt iff the order is an interval order.
std::optional<TwoPlusTwo> find_two_plus_two(const BitMatrix& reach);

/// Convenience: is the transitive closure of @p g an interval order?
/// @pre g is acyclic.
bool is_interval_order(const DependencyGraph& g);

} // namespace rococo::graph
