#include "graph/topo_sort.h"

#include <cstdint>
#include <queue>

namespace rococo::graph {

std::optional<std::vector<size_t>>
topological_sort(const DependencyGraph& g)
{
    const size_t n = g.vertex_count();
    std::vector<size_t> in_degree(n, 0);
    for (size_t v = 0; v < n; ++v) {
        in_degree[v] = g.predecessors(v).size();
    }

    // Min-heap over ready vertices for deterministic tie-breaking.
    std::priority_queue<size_t, std::vector<size_t>, std::greater<>> ready;
    for (size_t v = 0; v < n; ++v) {
        if (in_degree[v] == 0) ready.push(v);
    }

    std::vector<size_t> order;
    order.reserve(n);
    while (!ready.empty()) {
        const size_t v = ready.top();
        ready.pop();
        order.push_back(v);
        for (size_t s : g.successors(v)) {
            if (--in_degree[s] == 0) ready.push(s);
        }
    }
    if (order.size() != n) return std::nullopt; // leftover vertices: cycle
    return order;
}

bool
is_topological_order(const DependencyGraph& g,
                     const std::vector<size_t>& order)
{
    const size_t n = g.vertex_count();
    if (order.size() != n) return false;
    std::vector<size_t> position(n, SIZE_MAX);
    for (size_t i = 0; i < n; ++i) {
        if (order[i] >= n || position[order[i]] != SIZE_MAX) return false;
        position[order[i]] = i;
    }
    for (const auto& [from, to] : g.edges()) {
        if (position[from] >= position[to]) return false;
    }
    return true;
}

} // namespace rococo::graph
