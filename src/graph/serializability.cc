#include "graph/serializability.h"

#include "graph/cycle.h"
#include "graph/topo_sort.h"

namespace rococo::graph {

SerializabilityResult
check_serializability(const DependencyGraph& rw)
{
    SerializabilityResult result;
    auto order = topological_sort(rw);
    if (order) {
        result.serializable = true;
        result.witness_order = std::move(*order);
    } else {
        auto cycle = find_cycle(rw);
        if (cycle) result.cycle = std::move(*cycle);
    }
    return result;
}

bool
respects_real_time(const std::vector<size_t>& order,
                   const std::vector<TxInterval>& intervals)
{
    // order[i] must not be required to precede order[j] for j < i:
    // whenever a's interval ends before b's begins, a must appear first.
    std::vector<size_t> position(intervals.size(), SIZE_MAX);
    for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    for (size_t a = 0; a < intervals.size(); ++a) {
        for (size_t b = 0; b < intervals.size(); ++b) {
            if (a == b) continue;
            if (intervals[a].end <= intervals[b].start &&
                position[a] != SIZE_MAX && position[b] != SIZE_MAX &&
                position[a] > position[b]) {
                return false;
            }
        }
    }
    return true;
}

} // namespace rococo::graph
