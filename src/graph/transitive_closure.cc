#include "graph/transitive_closure.h"

#include "common/check.h"

namespace rococo::graph {

BitMatrix
adjacency_matrix(const DependencyGraph& g)
{
    BitMatrix a(g.vertex_count());
    for (size_t v = 0; v < g.vertex_count(); ++v) {
        for (size_t s : g.successors(v)) a.set(v, s);
    }
    return a;
}

BitMatrix
warshall_closure(const DependencyGraph& g, bool reflexive)
{
    BitMatrix r = adjacency_matrix(g);
    const size_t n = r.size();
    // r[i] |= r[k] whenever i reaches k: after processing pivot k, r
    // captures all paths whose intermediate vertices are <= k.
    for (size_t k = 0; k < n; ++k) {
        for (size_t i = 0; i < n; ++i) {
            if (r.test(i, k)) r.row(i) |= r.row(k);
        }
    }
    if (reflexive) r.set_diagonal();
    return r;
}

void
closure_extend_vectors(const BitMatrix& r, const BitVector& f,
                       const BitVector& b, BitVector& p, BitVector& s)
{
    const size_t n = r.size();
    ROCOCO_CHECK(f.size() == n && b.size() == n);
    p = f;
    s = b;
    for (size_t j = 0; j < n; ++j) {
        // p[i] |= f[j] & r[j][i]  (reach i through direct successor j)
        if (f.test(j)) p |= r.row(j);
    }
    for (size_t i = 0; i < n; ++i) {
        if (s.test(i)) continue;
        // s[i] |= b[j] & r[i][j]  (i reaches the new vertex through j)
        if (r.row(i).intersects(b)) s.set(i);
    }
}

} // namespace rococo::graph
