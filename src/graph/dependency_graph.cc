#include "graph/dependency_graph.h"

#include <algorithm>

#include "common/check.h"

namespace rococo::graph {

DependencyGraph::DependencyGraph(size_t vertices)
    : successors_(vertices), predecessors_(vertices)
{
}

size_t
DependencyGraph::add_vertex()
{
    successors_.emplace_back();
    predecessors_.emplace_back();
    return successors_.size() - 1;
}

void
DependencyGraph::add_edge(size_t from, size_t to)
{
    ROCOCO_CHECK(from < vertex_count() && to < vertex_count());
    successors_[from].push_back(to);
    predecessors_[to].push_back(from);
    ++edge_count_;
}

bool
DependencyGraph::has_edge(size_t from, size_t to) const
{
    const auto& succ = successors_[from];
    return std::find(succ.begin(), succ.end(), to) != succ.end();
}

std::vector<std::pair<size_t, size_t>>
DependencyGraph::edges() const
{
    std::vector<std::pair<size_t, size_t>> out;
    out.reserve(edge_count_);
    for (size_t v = 0; v < vertex_count(); ++v) {
        for (size_t s : successors_[v]) out.emplace_back(v, s);
    }
    return out;
}

} // namespace rococo::graph
