#include "graph/cycle.h"

#include <algorithm>
#include <cstdint>

namespace rococo::graph {
namespace {

enum class Color : unsigned char { kWhite, kGray, kBlack };

} // namespace

std::optional<std::vector<size_t>>
find_cycle(const DependencyGraph& g)
{
    const size_t n = g.vertex_count();
    std::vector<Color> color(n, Color::kWhite);
    std::vector<size_t> parent(n, SIZE_MAX);

    for (size_t root = 0; root < n; ++root) {
        if (color[root] != Color::kWhite) continue;
        // Iterative DFS with an explicit (vertex, next-child) stack to
        // stay safe on deep graphs.
        std::vector<std::pair<size_t, size_t>> stack{{root, 0}};
        color[root] = Color::kGray;
        while (!stack.empty()) {
            auto& [v, child] = stack.back();
            const auto& succ = g.successors(v);
            if (child < succ.size()) {
                const size_t s = succ[child++];
                if (color[s] == Color::kGray) {
                    // Back edge v -> s closes a cycle; walk parents back.
                    std::vector<size_t> cycle{s};
                    for (size_t u = v; u != s; u = parent[u]) {
                        cycle.push_back(u);
                    }
                    cycle.push_back(s);
                    std::reverse(cycle.begin() + 1, cycle.end() - 1);
                    return cycle;
                }
                if (color[s] == Color::kWhite) {
                    color[s] = Color::kGray;
                    parent[s] = v;
                    stack.emplace_back(s, 0);
                }
            } else {
                color[v] = Color::kBlack;
                stack.pop_back();
            }
        }
    }
    return std::nullopt;
}

bool
has_cycle(const DependencyGraph& g)
{
    return find_cycle(g).has_value();
}

} // namespace rococo::graph
