/// @file
/// Cycle detection oracle (iterative DFS). Acyclicity of ->rw is the
/// if-and-only-if condition for serializability (§3.2), so this oracle
/// is the ground truth every CC algorithm in the repo is tested against.
#pragma once

#include <optional>
#include <vector>

#include "graph/dependency_graph.h"

namespace rococo::graph {

/// True iff @p g contains a directed cycle.
bool has_cycle(const DependencyGraph& g);

/// A directed cycle of @p g as a vertex sequence (first == last), or
/// nullopt if acyclic. Useful in test failure messages.
std::optional<std::vector<size_t>> find_cycle(const DependencyGraph& g);

} // namespace rococo::graph
