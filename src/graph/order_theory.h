/// @file
/// Order-theory utilities backing the paper's formalization (§2-3):
/// linear extensions and the order-extension principle. The
/// compositionality analysis built on top of these lives with the
/// history checkers in cc/semantics.h.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/dependency_graph.h"

namespace rococo::graph {

/// All linear extensions of the strict partial order induced by @p g's
/// reachability, capped at @p limit results (the count grows
/// factorially). @pre g is acyclic; returns empty if it is not.
std::vector<std::vector<size_t>>
linear_extensions(const DependencyGraph& g, size_t limit = 1000);

/// Count of linear extensions, capped at @p limit. The count is the
/// "slack" a CC algorithm has: TOCC commits exactly one extension (the
/// timestamp order); ROCoCo keeps the whole set alive (§3.2).
size_t count_linear_extensions(const DependencyGraph& g,
                               size_t limit = 1000);

/// Order-extension principle, constructively: any acyclic relation
/// extends to a linear order (§3.2 footnote 2). Returns nullopt iff
/// @p g is cyclic. (Semantically identical to topological_sort; named
/// for the theory it instantiates.)
std::optional<std::vector<size_t>> order_extension(const DependencyGraph& g);

} // namespace rococo::graph
