#include "graph/order_theory.h"

#include "graph/topo_sort.h"

namespace rococo::graph {
namespace {

/// Backtracking enumeration of linear extensions (Varol-Rotem style
/// simple recursion over minimal elements).
struct Enumerator
{
    const DependencyGraph& g;
    size_t limit;
    std::vector<size_t> in_degree;
    std::vector<char> placed;
    std::vector<size_t> current;
    std::vector<std::vector<size_t>>* out; ///< nullptr: count only
    size_t count = 0;

    void
    recurse()
    {
        if (count >= limit) return;
        if (current.size() == g.vertex_count()) {
            ++count;
            if (out) out->push_back(current);
            return;
        }
        for (size_t v = 0; v < g.vertex_count(); ++v) {
            if (placed[v] || in_degree[v] != 0) continue;
            placed[v] = 1;
            current.push_back(v);
            for (size_t s : g.successors(v)) --in_degree[s];
            recurse();
            for (size_t s : g.successors(v)) ++in_degree[s];
            current.pop_back();
            placed[v] = 0;
            if (count >= limit) return;
        }
    }
};

Enumerator
make_enumerator(const DependencyGraph& g, size_t limit,
                std::vector<std::vector<size_t>>* out)
{
    Enumerator e{g, limit, {}, {}, {}, out, 0};
    e.in_degree.assign(g.vertex_count(), 0);
    for (size_t v = 0; v < g.vertex_count(); ++v) {
        e.in_degree[v] = g.predecessors(v).size();
    }
    e.placed.assign(g.vertex_count(), 0);
    return e;
}

} // namespace

std::vector<std::vector<size_t>>
linear_extensions(const DependencyGraph& g, size_t limit)
{
    std::vector<std::vector<size_t>> out;
    if (!topological_sort(g)) return out; // cyclic: no extensions
    Enumerator e = make_enumerator(g, limit, &out);
    e.recurse();
    return out;
}

size_t
count_linear_extensions(const DependencyGraph& g, size_t limit)
{
    if (!topological_sort(g)) return 0;
    Enumerator e = make_enumerator(g, limit, nullptr);
    e.recurse();
    return e.count;
}

std::optional<std::vector<size_t>>
order_extension(const DependencyGraph& g)
{
    return topological_sort(g);
}

} // namespace rococo::graph
