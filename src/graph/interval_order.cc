#include "graph/interval_order.h"

#include "graph/transitive_closure.h"

namespace rococo::graph {

std::optional<TwoPlusTwo>
find_two_plus_two(const BitMatrix& reach)
{
    const size_t n = reach.size();
    // Collect related pairs, then test pairs of pairs. O(E^2) with E the
    // number of related pairs; fine for analysis-sized orders.
    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            if (i != j && reach.test(i, j)) pairs.emplace_back(i, j);
        }
    }
    for (const auto& [a, b] : pairs) {
        for (const auto& [c, d] : pairs) {
            if (a == c || a == d || b == c || b == d) continue;
            if (!reach.test(a, d) && !reach.test(c, b)) {
                return TwoPlusTwo{a, b, c, d};
            }
        }
    }
    return std::nullopt;
}

bool
is_interval_order(const DependencyGraph& g)
{
    const BitMatrix reach = warshall_closure(g, /*reflexive=*/false);
    return !find_two_plus_two(reach).has_value();
}

} // namespace rococo::graph
