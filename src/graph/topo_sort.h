/// @file
/// Kahn's topological sort (Kahn 1962). The paper contrasts ROCoCo with
/// Kahn-style validation, which "presumes a linear order on a DAG during
/// its traversal" and therefore suffers the phantom ordering (§4.1); we
/// keep it both as the linear-order constructor of the serializability
/// proof and as a comparison point.
#pragma once

#include <optional>
#include <vector>

#include "graph/dependency_graph.h"

namespace rococo::graph {

/// Topological order of @p g (every edge goes left-to-right in the
/// returned sequence), or nullopt if the graph is cyclic. Ties are
/// broken by smallest vertex index, so the result is deterministic.
std::optional<std::vector<size_t>> topological_sort(const DependencyGraph& g);

/// True iff @p order is a permutation of the vertices of @p g that
/// respects every edge. Used to validate witness serial orders.
bool is_topological_order(const DependencyGraph& g,
                          const std::vector<size_t>& order);

} // namespace rococo::graph
