/// @file
/// Serializability utilities built on the axiom of §3.2: a set of
/// committed transactions is serializable iff its ->rw relation is
/// acyclic, in which case any topological order is a witness serial
/// execution.
#pragma once

#include <optional>
#include <vector>

#include <cstdint>

#include "graph/dependency_graph.h"

namespace rococo::graph {

/// Result of checking a committed history.
struct SerializabilityResult
{
    bool serializable = false;
    /// A witness serial order (vertex indices) when serializable.
    std::vector<size_t> witness_order;
    /// A cycle (first == last) when not serializable.
    std::vector<size_t> cycle;
};

/// Decide serializability of a ->rw graph over committed transactions
/// and produce a witness (serial order or cycle).
SerializabilityResult check_serializability(const DependencyGraph& rw);

/// Real-time order check: given per-transaction [start, end) intervals,
/// is @p order consistent with the interval precedence (t1 before t2
/// whenever t1.end <= t2.start)? Strict serializability = serializable
/// with a witness passing this check.
struct TxInterval
{
    uint64_t start;
    uint64_t end;
};

bool respects_real_time(const std::vector<size_t>& order,
                        const std::vector<TxInterval>& intervals);

} // namespace rococo::graph
