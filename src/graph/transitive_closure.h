/// @file
/// Transitive-closure computation.
///
/// warshall_closure is the classic O(n^3) algorithm (Warshall 1962) the
/// paper cites as the starting point of ROCoCo; it serves as the
/// reference implementation the incremental hardware-shaped
/// ReachabilityMatrix is property-tested against.
#pragma once

#include "common/bitmatrix.h"
#include "graph/dependency_graph.h"

namespace rococo::graph {

/// Adjacency matrix of @p g (a[i][j] = 1 iff edge i -> j).
BitMatrix adjacency_matrix(const DependencyGraph& g);

/// Transitive closure of @p g by Warshall's algorithm. If @p reflexive
/// is true, the result includes the diagonal (every vertex reaches
/// itself), matching the convention of the paper's reachability matrix
/// ("a vertex can always reach itself", §4.1).
BitMatrix warshall_closure(const DependencyGraph& g, bool reflexive = true);

/// Incremental closure: given the closure @p r of a DAG over vertices
/// [0, n) and a new vertex with direct forward edges @p f (new -> i) and
/// backward edges @p b (i -> new), compute the reach ("proceeding") and
/// reached-from ("succeeding") vectors of the new vertex:
///   p[i] = f[i] or exists j: f[j] and r[j][i]
///   s[i] = b[i] or exists j: b[j] and r[i][j]
/// This mirrors Warshall's fact and its dual (§4.1); exposed here so
/// tests can check the O(n) hardware path against this O(n^2) spelling.
void closure_extend_vectors(const BitMatrix& r, const BitVector& f,
                            const BitVector& b, BitVector& p, BitVector& s);

} // namespace rococo::graph
