/// @file
/// The Manager of the FPGA pipeline (Fig. 5, right): the reachability
/// matrix held in 2D registers plus the commit/evict control. A thin,
/// statistics-carrying wrapper around the sliding-window validator —
/// the bit-parallel data path itself lives in
/// core/reachability_matrix.h.
#pragma once

#include "common/stats.h"
#include "core/sliding_window.h"

namespace rococo::fpga {

class Manager
{
  public:
    explicit Manager(size_t window);

    size_t window() const { return validator_.window(); }
    uint64_t next_cid() const { return validator_.next_cid(); }
    uint64_t window_start() const { return validator_.window_start(); }

    /// Validate-and-commit one classified request (one pipeline beat).
    core::ValidationResult decide(const core::ValidationRequest& request);

    /// Verdict counters since construction.
    const CounterBag& stats() const { return stats_; }

    const core::SlidingWindowValidator& validator() const
    {
        return validator_;
    }

  private:
    core::SlidingWindowValidator validator_;
    CounterBag stats_;
};

} // namespace rococo::fpga
