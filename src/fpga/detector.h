/// @file
/// The conflict Detector of the FPGA pipeline (Fig. 5, left).
///
/// The detector keeps, for each of the last W committed transactions,
/// a pair of bloom-filter signatures (read set, write set) — the
/// bookkeeping h_0..h_{W-1} — and classifies an incoming transaction's
/// addresses against them into forward/backward dependency vectors for
/// the Manager. Addresses arrive as plain 64-bit words (the paper ships
/// addresses, not signatures, so the more precise per-address *query*
/// operation can be used, §5.3).
///
/// The history is stored *bit-sliced* (sig/sliced_history.h): per
/// signature bit position a W-bit occupancy column, so one address
/// yields its full W-bit match vector in k word ops — the comparator
/// array of the RTL, instead of a loop over W signatures. classify()
/// uses the bit-sliced kernel; classify_scalar() walks the row-major
/// shadow exactly like the original per-entry loop and serves as the
/// decision-identical oracle (tests/detector_equivalence_test.cc,
/// bench/micro_validate.cc).
///
/// Bloom false positives can only add spurious edges, i.e. make the
/// detector conservative: it may abort more than the exact classifier
/// (core/rococo_validator.h) but never misses a real dependency — a
/// property the test suite checks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/small_vector.h"
#include "core/sliding_window.h"
#include "sig/sliced_history.h"

namespace rococo::fpga {

/// Inline capacity of an OffloadRequest address set: requests whose
/// sets fit (the common case — paper workloads average < 10 accesses)
/// travel the whole submit path without a heap allocation.
inline constexpr size_t kInlineAddresses = 16;

/// An offloaded validation request: what the CPU ships over the pull
/// queue (§5.3).
struct OffloadRequest
{
    SmallVector<uint64_t, kInlineAddresses> reads;
    SmallVector<uint64_t, kInlineAddresses> writes;
    /// The transaction observed exactly commits with cid < snapshot_cid
    /// (its ValidTS).
    uint64_t snapshot_cid = 0;
};

/// Sliding history of per-commit signatures plus edge classification.
class ConflictDetector
{
  public:
    /// @param window W, must match the Manager's window
    /// @param config signature geometry shared with the CPU side
    ConflictDetector(size_t window,
                     std::shared_ptr<const sig::SignatureConfig> config);

    size_t window() const { return window_; }

    /// Classify @p request against the current history into a
    /// cid-addressed ValidationRequest, oldest cid first. Convenience
    /// wrapper over classify_into() that returns fresh vectors.
    core::ValidationRequest classify(const OffloadRequest& request) const;

    /// Bit-sliced classification into @p out, reusing its capacity (the
    /// zero-allocation hot path). Uses mutable per-detector scratch:
    /// callers must serialize classification per detector, which every
    /// deployment already does (engine mutex / shard lock).
    void classify_into(const OffloadRequest& request,
                       core::ValidationRequest* out) const;

    /// Row-major reference classification — the original per-entry
    /// signature loop, kept as the oracle the bit-sliced kernel is
    /// proven decision-identical against (and as the baseline
    /// bench/micro_validate measures the speedup over).
    core::ValidationRequest classify_scalar(
        const OffloadRequest& request) const;

    /// Record the signatures of a transaction that just committed with
    /// @p cid; evicts the oldest entry when the window is full.
    void record_commit(uint64_t cid, const OffloadRequest& request);

    /// Abort forensics: which of @p request's addresses actually matched
    /// committed @p cid's signatures (reads against its write set,
    /// writes against both planes)? Fills @p out with up to @p capacity
    /// addresses and returns the count — allocation-free, abort-path
    /// only. Conservative like everything bloom-based: false positives
    /// possible, misses impossible. Returns 0 when @p cid is no longer
    /// resident.
    size_t conflicting_addresses(const OffloadRequest& request, uint64_t cid,
                                 uint64_t* out, size_t capacity) const;

    /// Oldest cid still tracked (== next expected cid when empty).
    uint64_t history_start() const;

    size_t history_size() const { return size_; }

    /// Force both planes onto a specific match kernel (tests force each
    /// compiled kernel against the scalar oracle; benchmarks report a
    /// row per kernel). Defaults to the widest the CPU supports.
    void set_match_kernel(sig::MatchKernel kernel);

    sig::MatchKernel match_kernel() const { return read_plane_.kernel(); }

  private:
    size_t window_;
    std::shared_ptr<const sig::SignatureConfig> config_;
    sig::SlicedSignatureHistory read_plane_;  ///< committed read sets
    sig::SlicedSignatureHistory write_plane_; ///< committed write sets
    std::vector<uint64_t> cids_; ///< per-slot cid of the resident commit
    size_t head_ = 0;            ///< slot of the oldest entry
    size_t size_ = 0;            ///< occupied slots
    /// Match accumulators (2 x mask_words), reused across classify
    /// calls; mutable because classification is logically const.
    mutable std::vector<uint64_t> scratch_;
    /// Fused two-plane kernel for the selected MatchKernel.
    sig::ClassifyFn classify_fn_;
};

} // namespace rococo::fpga
