/// @file
/// The conflict Detector of the FPGA pipeline (Fig. 5, left).
///
/// The detector keeps, for each of the last W committed transactions,
/// a pair of bloom-filter signatures (read set, write set) — the
/// bookkeeping h_0..h_{W-1} — and classifies an incoming transaction's
/// addresses against them into forward/backward dependency vectors for
/// the Manager. Addresses arrive as plain 64-bit words (the paper ships
/// addresses, not signatures, so the more precise per-address *query*
/// operation can be used, §5.3).
///
/// Bloom false positives can only add spurious edges, i.e. make the
/// detector conservative: it may abort more than the exact classifier
/// (core/rococo_validator.h) but never misses a real dependency — a
/// property the test suite checks.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>

#include "core/sliding_window.h"
#include "sig/bloom_signature.h"

namespace rococo::fpga {

/// An offloaded validation request: what the CPU ships over the pull
/// queue (§5.3).
struct OffloadRequest
{
    std::vector<uint64_t> reads;
    std::vector<uint64_t> writes;
    /// The transaction observed exactly commits with cid < snapshot_cid
    /// (its ValidTS).
    uint64_t snapshot_cid = 0;
};

/// Sliding history of per-commit signatures plus edge classification.
class ConflictDetector
{
  public:
    /// @param window W, must match the Manager's window
    /// @param config signature geometry shared with the CPU side
    ConflictDetector(size_t window,
                     std::shared_ptr<const sig::SignatureConfig> config);

    size_t window() const { return window_; }

    /// Classify @p request against the current history into a
    /// cid-addressed ValidationRequest. @p next_cid is the cid the
    /// transaction would commit as (history entries hold cids in
    /// [next_cid - size, next_cid)).
    core::ValidationRequest classify(const OffloadRequest& request) const;

    /// Record the signatures of a transaction that just committed with
    /// @p cid; evicts the oldest entry when the window is full.
    void record_commit(uint64_t cid, const OffloadRequest& request);

    /// Oldest cid still tracked (== next expected cid when empty).
    uint64_t history_start() const;

    size_t history_size() const { return history_.size(); }

  private:
    struct Entry
    {
        uint64_t cid;
        sig::BloomSignature read_sig;
        sig::BloomSignature write_sig;
    };

    size_t window_;
    std::shared_ptr<const sig::SignatureConfig> config_;
    std::deque<Entry> history_; ///< oldest first
};

} // namespace rococo::fpga
