/// @file
/// First-order FPGA area/frequency model of the validation engine,
/// reproducing the resource table of §6.5.
///
/// The model decomposes the design into the structures the paper
/// describes — the W x W reachability matrix in 2D registers (plus its
/// transpose network), the m-bit bloom data path, the multiply-shift
/// hash units on DSPs, the signature history in BRAM, and the fixed
/// CCI-P shim/queue overhead — with per-structure cost coefficients
/// calibrated so that the paper's configuration (W = 64, m = 512,
/// k = 4 on an Arria 10 10AX115) lands on the published counts:
/// 113485 registers, 249442 ALMs, 223 DSPs, 2055802 BRAM bits at
/// 200 MHz. Sweeping W or m then gives self-consistent what-if numbers
/// for the ablation benches.
#pragma once

#include <cstdint>
#include <string>

namespace rococo::fpga {

/// Design parameters of the engine instance being estimated.
struct ResourceParams
{
    unsigned window = 64;         ///< W
    unsigned signature_bits = 512;///< m
    unsigned signature_hashes = 4;///< k
    unsigned address_lanes = 8;   ///< addresses ingested per cycle
};

/// Estimated consumption and achievable clock.
struct ResourceEstimate
{
    uint64_t registers = 0;
    uint64_t alms = 0;
    uint64_t dsps = 0;
    uint64_t bram_bits = 0;
    double clock_mhz = 0.0;

    double registers_pct = 0.0;
    double alms_pct = 0.0;
    double dsps_pct = 0.0;
    double bram_pct = 0.0;
};

/// Device capacity used for utilization percentages. Defaults follow
/// the ratios implied by the paper's table for the Arria 10
/// 10AX115U3F45E2SGE3.
struct DeviceCapacity
{
    uint64_t registers = 180421;
    uint64_t alms = 427200;
    uint64_t dsps = 1518;
    uint64_t bram_bits = 55562240;
};

/// Estimate resources and clock for @p params on @p device.
ResourceEstimate estimate_resources(const ResourceParams& params,
                                    const DeviceCapacity& device = {});

/// Render an estimate as the §6.5-style summary line.
std::string to_string(const ResourceEstimate& estimate);

} // namespace rococo::fpga
