#include "fpga/cci_link.h"

#include <algorithm>

namespace rococo::fpga {

CciLinkModel::CciLinkModel(const LinkParams& params)
    : params_(params)
{
}

uint64_t
CciLinkModel::request_cachelines(uint64_t reads, uint64_t writes) const
{
    const uint64_t words = reads + writes;
    const uint64_t per_line = params_.words_per_cacheline;
    return (words + per_line - 1) / per_line + 1; // +1 header/ValidTS line
}

uint64_t
CciLinkModel::occupancy_cycles(uint64_t reads, uint64_t writes) const
{
    // One cacheline (words_per_cacheline addresses, hashed by parallel
    // lanes) per cycle; at least one cycle per request.
    const uint64_t words = reads + writes;
    const uint64_t lanes = params_.words_per_cacheline;
    return words > 0 ? (words + lanes - 1) / lanes : 1;
}

double
CciLinkModel::pipeline_latency_ns(uint64_t reads, uint64_t writes) const
{
    return (static_cast<double>(params_.pipeline_depth) +
            static_cast<double>(occupancy_cycles(reads, writes))) *
           clock_period_ns();
}

double
CciLinkModel::isolated_latency_ns(uint64_t reads, uint64_t writes) const
{
    return round_trip_ns() + pipeline_latency_ns(reads, writes);
}

double
CciLinkModel::service_interval_ns(uint64_t reads, uint64_t writes) const
{
    // The engine ingests one address per cycle, but a request cannot be
    // served faster than its cachelines cross the link.
    const uint64_t stream_cycles = occupancy_cycles(reads, writes);
    const uint64_t line_cycles =
        request_cachelines(reads, writes) * params_.cycles_per_cacheline;
    return static_cast<double>(std::max(stream_cycles, line_cycles)) *
           clock_period_ns();
}

} // namespace rococo::fpga
