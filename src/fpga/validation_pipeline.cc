#include "fpga/validation_pipeline.h"

namespace rococo::fpga {

ValidationPipeline::ValidationPipeline(const EngineConfig& config)
    : config_(config), engine_(config)
{
    worker_ = std::thread([this] { worker_loop(); });
}

ValidationPipeline::~ValidationPipeline()
{
    stop();
}

void
ValidationPipeline::worker_loop()
{
    while (auto item = queue_.pop()) {
        core::ValidationResult result;
        {
            std::lock_guard<std::mutex> lock(engine_mutex_);
            result = engine_.process(item->request);
        }
        item->promise.set_value(result);
    }
}

std::future<core::ValidationResult>
ValidationPipeline::submit(OffloadRequest request)
{
    Item item{std::move(request), {}};
    std::future<core::ValidationResult> future = item.promise.get_future();
    // Track occupancy before the push; the +1 below accounts for the
    // request being enqueued.
    const size_t depth = queue_.size() + 1;
    size_t seen = high_water_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !high_water_.compare_exchange_weak(seen, depth)) {
    }
    if (!queue_.push(std::move(item))) {
        // Pipeline stopped: treat as a window overflow so callers retry
        // or fall back rather than hang.
        std::promise<core::ValidationResult> dead;
        dead.set_value({core::Verdict::kWindowOverflow, 0});
        return dead.get_future();
    }
    return future;
}

core::ValidationResult
ValidationPipeline::validate(OffloadRequest request)
{
    return submit(std::move(request)).get();
}

CounterBag
ValidationPipeline::stats() const
{
    CounterBag bag;
    {
        std::lock_guard<std::mutex> lock(engine_mutex_);
        bag = engine_.stats();
    }
    bag.bump("queue_high_water",
             high_water_.load(std::memory_order_relaxed));
    return bag;
}

std::shared_ptr<const sig::SignatureConfig>
ValidationPipeline::signature_config() const
{
    return engine_.signature_config();
}

void
ValidationPipeline::stop()
{
    queue_.close();
    if (worker_.joinable()) worker_.join();
}

} // namespace rococo::fpga
