#include "fpga/validation_pipeline.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/clock.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace rococo::fpga {

ValidationPipeline::ValidationPipeline(const EngineConfig& config)
    : config_(config), engine_(config),
      queue_depth_gauge_(obs::Registry::global().gauge("fpga.queue_depth")),
      window_occupancy_gauge_(
          obs::Registry::global().gauge("fpga.window_occupancy")),
      validate_ns_hist_(
          obs::Registry::global().histogram("fpga.validate_ns")),
      stage_queue_hist_(
          obs::Registry::global().histogram("fpga.stage.queue")),
      stage_engine_hist_(
          obs::Registry::global().histogram("fpga.stage.engine")),
      stage_link_hist_(obs::Registry::global().histogram("fpga.stage.link"))
{
    worker_ = std::thread([this] { worker_loop(); });
}

ValidationPipeline::~ValidationPipeline()
{
    stop();
}

ValidationPipeline::Slot*
ValidationPipeline::acquire_slot_locked()
{
    if (!free_.empty()) {
        Slot* slot = free_.back();
        free_.pop_back();
        return slot;
    }
    slab_.emplace_back();
    return &slab_.back();
}

void
ValidationPipeline::release_slot_locked(Slot* slot)
{
    slot->state = Slot::State::kFree;
    slot->promised = false;
    free_.push_back(slot);
}

void
ValidationPipeline::push_ring_locked(Slot* slot)
{
    if (ring_size_ == ring_.size()) {
        // Re-linearize into a larger ring. Happens only until the ring
        // reaches the backlog high-water, then never again.
        std::vector<Slot*> grown(std::max<size_t>(ring_.size() * 2, 16));
        for (size_t i = 0; i < ring_size_; ++i) {
            grown[i] = ring_[(ring_head_ + i) % ring_.size()];
        }
        ring_ = std::move(grown);
        ring_head_ = 0;
    }
    ring_[(ring_head_ + ring_size_) % ring_.size()] = slot;
    ++ring_size_;
}

ValidationPipeline::Slot*
ValidationPipeline::pop_ring_locked()
{
    Slot* slot = ring_[ring_head_];
    ring_head_ = (ring_head_ + 1) % ring_.size();
    --ring_size_;
    return slot;
}

ValidationPipeline::Slot*
ValidationPipeline::enqueue_locked(OffloadRequest&& request)
{
    ++submitted_;
    if (closed_) return nullptr;
    Slot* slot = acquire_slot_locked();
    slot->request = std::move(request);
    slot->result = {};
    slot->submit_ns = obs::now_ns();
    slot->state = Slot::State::kQueued;
    push_ring_locked(slot);
    if (ring_size_ > high_water_) high_water_ = ring_size_;
    return slot;
}

void
ValidationPipeline::worker_loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        queue_cv_.wait(lock, [this] { return closed_ || ring_size_ > 0; });
        if (ring_size_ == 0) break; // closed and drained
        Slot* slot = pop_ring_locked();
        const uint64_t submit_ns = slot->submit_ns;
        lock.unlock();

        core::ValidationResult result;
        double link_ns = 0.0;
        const uint64_t start = obs::now_ns();
        {
            obs::ScopedSpan span("fpga", "fpga.validate");
            std::lock_guard<std::mutex> engine_lock(engine_mutex_);
            result = engine_.process(slot->request);
            if (obs::telemetry_active()) {
                link_ns = engine_.isolated_latency_ns(slot->request);
            }
            if (result.verdict == core::Verdict::kCommit) {
                span.arg("cid", result.cid);
            }
        }
        const uint64_t elapsed = obs::now_ns() - start;

        // Record per-request telemetry before the waiter is woken: the
        // moment its validate() returns, the caller may export metrics,
        // and every answered request must already be in the histograms.
        if (obs::telemetry_active()) {
            validate_ns_hist_.record(elapsed);
            // Same decomposition axes as the remote backend's
            // svc.stage.* (minus the stages a socket adds), so local
            // vs. remote breakdowns compare column-for-column.
            if (submit_ns != 0 && start >= submit_ns) {
                stage_queue_hist_.record(start - submit_ns);
            }
            stage_engine_hist_.record(elapsed);
            stage_link_hist_.record(static_cast<uint64_t>(link_ns));
            {
                std::lock_guard<std::mutex> engine_lock(engine_mutex_);
                window_occupancy_gauge_.set(
                    static_cast<double>(engine_.next_cid() -
                                        engine_.window_start()));
            }
        }

        lock.lock();
        ++verdicts_[static_cast<size_t>(result.verdict)];
        busy_ns_ += elapsed;
        const size_t depth = ring_size_;
        if (slot->promised) {
            slot->promise.set_value(result);
            release_slot_locked(slot);
        } else if (slot->state == Slot::State::kAbandoned) {
            // The sync waiter already left with kTimeout; discard the
            // verdict (see the validate(timeout) caveat).
            release_slot_locked(slot);
        } else {
            slot->result = result;
            slot->state = Slot::State::kDone;
            slot->cv.notify_one();
        }
        lock.unlock();

        TRACE_COUNTER("fpga.queue_depth", depth);
        if (obs::telemetry_active()) {
            queue_depth_gauge_.set(static_cast<double>(depth));
        }
        // Off the engine-lock section: sampling takes the recorder's
        // own lock and never touches the slot just resolved.
        if (recorder_ != nullptr) recorder_->tick(obs::now_ns());

        lock.lock();
    }
}

std::future<core::ValidationResult>
ValidationPipeline::submit(OffloadRequest request)
{
    std::future<core::ValidationResult> future;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Slot* slot = enqueue_locked(std::move(request));
        if (slot == nullptr) {
            // Pipeline stopped: resolve with an explicit retry-later
            // verdict so callers retry or fall back rather than hang.
            std::promise<core::ValidationResult> dead;
            dead.set_value({core::Verdict::kRejected, 0,
                            obs::AbortReason::kBackpressure});
            return dead.get_future();
        }
        slot->promised = true;
        slot->promise = std::promise<core::ValidationResult>{};
        future = slot->promise.get_future();
    }
    queue_cv_.notify_one();
    return future;
}

core::ValidationResult
ValidationPipeline::validate(OffloadRequest request)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Slot* slot = enqueue_locked(std::move(request));
    if (slot == nullptr) {
        return {core::Verdict::kRejected, 0,
                obs::AbortReason::kBackpressure};
    }
    queue_cv_.notify_one();
    slot->cv.wait(lock, [slot] { return slot->state == Slot::State::kDone; });
    const core::ValidationResult result = slot->result;
    release_slot_locked(slot);
    return result;
}

core::ValidationResult
ValidationPipeline::validate(OffloadRequest request,
                             std::chrono::nanoseconds timeout)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Slot* slot = enqueue_locked(std::move(request));
    if (slot == nullptr) {
        return {core::Verdict::kRejected, 0,
                obs::AbortReason::kBackpressure};
    }
    queue_cv_.notify_one();
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (slot->state != Slot::State::kDone) {
        if (slot->cv.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
            // Deadline passed. The deadline is authoritative even if
            // the verdict landed while this thread was re-acquiring
            // the mutex: a verdict past the deadline is discarded (see
            // the header caveat), keeping zero-deadline calls
            // deterministic.
            ++timeouts_;
            if (slot->state == Slot::State::kDone) {
                release_slot_locked(slot);
            } else {
                // The worker recycles the slot when it gets there.
                slot->state = Slot::State::kAbandoned;
            }
            return {core::Verdict::kTimeout, 0, obs::AbortReason::kTimeout};
        }
    }
    const core::ValidationResult result = slot->result;
    release_slot_locked(slot);
    return result;
}

CounterBag
ValidationPipeline::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CounterBag bag;
    for (size_t i = 0; i < core::kVerdictCount; ++i) {
        if (verdicts_[i] == 0) continue;
        bag.bump(core::to_string(static_cast<core::Verdict>(i)),
                 verdicts_[i]);
    }
    bag.bump("queue_high_water", high_water_);
    bag.bump("submitted", submitted_);
    bag.bump("shutdown_aborts", shutdown_aborts_);
    bag.bump("timeout", timeouts_);
    return bag;
}

void
ValidationPipeline::export_metrics(obs::Registry& registry) const
{
    std::array<uint64_t, core::kVerdictCount> verdicts;
    size_t high_water;
    uint64_t submitted, busy_ns;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        verdicts = verdicts_;
        high_water = high_water_;
        submitted = submitted_;
        busy_ns = busy_ns_;
    }
    for (size_t i = 0; i < core::kVerdictCount; ++i) {
        if (verdicts[i] == 0) continue;
        registry
            .counter(std::string("fpga.verdict.") +
                     core::to_string(static_cast<core::Verdict>(i)))
            .add(verdicts[i]);
    }
    registry.counter("fpga.submitted").add(submitted);
    registry.counter("fpga.busy_ns").add(busy_ns);
    registry.gauge("fpga.queue_high_water")
        .set(static_cast<double>(high_water));
    {
        std::lock_guard<std::mutex> lock(engine_mutex_);
        registry.gauge("fpga.window_occupancy")
            .set(static_cast<double>(engine_.next_cid() -
                                     engine_.window_start()));
    }
}

std::shared_ptr<const sig::SignatureConfig>
ValidationPipeline::signature_config() const
{
    return engine_.signature_config();
}

void
ValidationPipeline::topk_json(std::string* out) const
{
    char buf[128];
    out->clear();
    obs::TopK::Entry top[obs::TopK::kCapacity];
    size_t n = 0;
    uint64_t offered = 0;
    {
        std::lock_guard<std::mutex> lock(engine_mutex_);
        const obs::TopK& sketch = engine_.conflict_topk();
        offered = sketch.offered();
        n = sketch.snapshot(top, obs::TopK::kCapacity);
    }
    std::snprintf(buf, sizeof(buf),
                  "{\"shards\": [{\"shard\": 0, \"offered\": %" PRIu64
                  ", \"entries\": [",
                  offered);
    *out += buf;
    for (size_t i = 0; i < n; ++i) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"key\": %" PRIu64 ", \"count\": %" PRIu64
                      ", \"error\": %" PRIu64 "}",
                      i == 0 ? "" : ", ", top[i].key, top[i].count,
                      top[i].error);
        *out += buf;
    }
    *out += "]}]}";
}

void
ValidationPipeline::stop()
{
    // Take the backlog away from the worker and resolve every pending
    // waiter with a typed retry-later abort: waiters must never see a
    // broken promise, and destruction must not wait for the engine to
    // chew through a backlog.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        const core::ValidationResult rejected{
            core::Verdict::kRejected, 0, obs::AbortReason::kBackpressure};
        while (ring_size_ > 0) {
            Slot* slot = pop_ring_locked();
            ++shutdown_aborts_;
            if (slot->promised) {
                slot->promise.set_value(rejected);
                release_slot_locked(slot);
            } else if (slot->state == Slot::State::kAbandoned) {
                release_slot_locked(slot);
            } else {
                slot->result = rejected;
                slot->state = Slot::State::kDone;
                slot->cv.notify_one();
            }
        }
    }
    queue_cv_.notify_all();
    if (worker_.joinable()) worker_.join();
}

} // namespace rococo::fpga
