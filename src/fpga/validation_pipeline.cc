#include "fpga/validation_pipeline.h"

#include "core/sliding_window.h"
#include "obs/clock.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace rococo::fpga {

ValidationPipeline::ValidationPipeline(const EngineConfig& config)
    : config_(config), engine_(config)
{
    worker_ = std::thread([this] { worker_loop(); });
}

ValidationPipeline::~ValidationPipeline()
{
    stop();
}

void
ValidationPipeline::worker_loop()
{
    while (auto item = queue_.pop()) {
        core::ValidationResult result;
        double link_ns = 0.0;
        const uint64_t start = obs::now_ns();
        {
            obs::ScopedSpan span("fpga", "fpga.validate");
            std::lock_guard<std::mutex> lock(engine_mutex_);
            result = engine_.process(item->request);
            if (obs::telemetry_active()) {
                link_ns = engine_.isolated_latency_ns(item->request);
            }
            if (result.verdict == core::Verdict::kCommit) {
                span.arg("cid", result.cid);
            }
        }
        const uint64_t elapsed = obs::now_ns() - start;
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            verdicts_.bump(core::to_string(result.verdict));
            busy_ns_ += elapsed;
        }
        TRACE_COUNTER("fpga.queue_depth", queue_.size());
        if (obs::telemetry_active()) {
            auto& registry = obs::Registry::global();
            registry.gauge("fpga.queue_depth")
                .set(static_cast<double>(queue_.size()));
            registry.histogram("fpga.validate_ns").record(elapsed);
            // Same decomposition axes as the remote backend's
            // svc.stage.* (minus the stages a socket adds), so local vs.
            // remote breakdowns compare column-for-column.
            if (item->submit_ns != 0 && start >= item->submit_ns) {
                registry.histogram("fpga.stage.queue")
                    .record(start - item->submit_ns);
            }
            registry.histogram("fpga.stage.engine").record(elapsed);
            registry.histogram("fpga.stage.link")
                .record(static_cast<uint64_t>(link_ns));
            {
                std::lock_guard<std::mutex> lock(engine_mutex_);
                registry.gauge("fpga.window_occupancy")
                    .set(static_cast<double>(engine_.next_cid() -
                                             engine_.window_start()));
            }
        }
        item->promise.set_value(result);
    }
}

std::future<core::ValidationResult>
ValidationPipeline::submit(OffloadRequest request)
{
    Item item{std::move(request), {}, obs::now_ns()};
    std::future<core::ValidationResult> future = item.promise.get_future();
    {
        // Track occupancy before the push; the +1 accounts for the
        // request being enqueued.
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++submitted_;
        const size_t depth = queue_.size() + 1;
        if (depth > high_water_) high_water_ = depth;
    }
    if (!queue_.push(std::move(item))) {
        // Pipeline stopped: resolve with an explicit retry-later
        // verdict so callers retry or fall back rather than hang.
        std::promise<core::ValidationResult> dead;
        dead.set_value({core::Verdict::kRejected, 0,
                        obs::AbortReason::kBackpressure});
        return dead.get_future();
    }
    return future;
}

core::ValidationResult
ValidationPipeline::validate(OffloadRequest request)
{
    return submit(std::move(request)).get();
}

core::ValidationResult
ValidationPipeline::validate(OffloadRequest request,
                             std::chrono::nanoseconds timeout)
{
    std::future<core::ValidationResult> future = submit(std::move(request));
    if (future.wait_for(timeout) != std::future_status::ready) {
        // The worker stalled past the deadline. Abandon the future (the
        // eventual verdict is discarded — see the header caveat) and
        // surface a typed timeout abort.
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++timeouts_;
        }
        return {core::Verdict::kTimeout, 0, obs::AbortReason::kTimeout};
    }
    return future.get();
}

CounterBag
ValidationPipeline::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    CounterBag bag = verdicts_;
    bag.bump("queue_high_water", high_water_);
    bag.bump("submitted", submitted_);
    bag.bump("shutdown_aborts", shutdown_aborts_);
    bag.bump("timeout", timeouts_);
    return bag;
}

void
ValidationPipeline::export_metrics(obs::Registry& registry) const
{
    CounterBag verdicts;
    size_t high_water;
    uint64_t submitted, busy_ns;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        verdicts = verdicts_;
        high_water = high_water_;
        submitted = submitted_;
        busy_ns = busy_ns_;
    }
    for (const auto& [verdict, count] : verdicts.counters()) {
        registry.counter("fpga.verdict." + verdict).add(count);
    }
    registry.counter("fpga.submitted").add(submitted);
    registry.counter("fpga.busy_ns").add(busy_ns);
    registry.gauge("fpga.queue_high_water")
        .set(static_cast<double>(high_water));
    {
        std::lock_guard<std::mutex> lock(engine_mutex_);
        registry.gauge("fpga.window_occupancy")
            .set(static_cast<double>(engine_.next_cid() -
                                     engine_.window_start()));
    }
}

std::shared_ptr<const sig::SignatureConfig>
ValidationPipeline::signature_config() const
{
    return engine_.signature_config();
}

void
ValidationPipeline::stop()
{
    // Take the backlog away from the worker and resolve every pending
    // promise with a typed retry-later abort: waiters must never see a
    // broken promise, and destruction must not wait for the engine to
    // chew through a backlog.
    std::deque<Item> pending = queue_.close_now();
    for (Item& item : pending) {
        item.promise.set_value({core::Verdict::kRejected, 0,
                                obs::AbortReason::kBackpressure});
    }
    if (!pending.empty()) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        shutdown_aborts_ += pending.size();
    }
    if (worker_.joinable()) worker_.join();
}

} // namespace rococo::fpga
