/// @file
/// Real-thread validation pipeline: the software stand-in for the FPGA
/// in the live ROCoCoTM runtime.
///
/// A dedicated worker thread owns a ValidationEngine and drains the
/// pull queue in arrival order, exactly like the hardware pipeline
/// drains cachelines (Fig. 6 (b)). Executing threads submit requests
/// and block on the verdict. Unlike the hardware, the worker shares the
/// CPU with the executors, so its *throughput* is not representative —
/// the paper-shaped timing figures come from the discrete-event
/// simulator (src/sim); this class provides the *functional* offload
/// for the real runtime and its tests.
///
/// The request path is allocation-free in steady state: requests live
/// in a slab of reusable completion slots (never freed, recycled
/// through a free list), the queue is a ring of slot pointers, and
/// synchronous validate() waits on the slot's own condition variable —
/// no per-request promise/shared-state heap churn. submit() still
/// hands out a std::future (allocating its shared state); callers on
/// the hot path should prefer validate().
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sliding_window.h"
#include "fpga/validation_backend.h"
#include "fpga/validation_engine.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"

namespace rococo::fpga {

class ValidationPipeline final : public ValidationBackend
{
  public:
    explicit ValidationPipeline(const EngineConfig& config = {});
    ~ValidationPipeline() override;

    ValidationPipeline(const ValidationPipeline&) = delete;
    ValidationPipeline& operator=(const ValidationPipeline&) = delete;

    /// Enqueue a request; the future resolves when the engine has
    /// decided — or, if the pipeline is stopped first, with a
    /// Verdict::kRejected / kBackpressure result. Never a broken
    /// promise.
    std::future<core::ValidationResult> submit(
        OffloadRequest request) override;

    /// submit() + wait, minus the future: the caller blocks on the
    /// completion slot directly, so the steady-state round trip
    /// performs no heap allocation.
    core::ValidationResult validate(OffloadRequest request) override;

    /// submit() + wait at most @p timeout. On expiry the caller gets a
    /// Verdict::kTimeout result with obs::AbortReason::kTimeout and the
    /// "timeout" counter is bumped; the worker may still reach the
    /// request later, and its verdict is then discarded. NOTE the
    /// window-consistency caveat: a discarded *commit* verdict still
    /// occupied a cid in the engine window, so callers that time out
    /// must abort the transaction (never half-commit) — which is
    /// exactly what the TM retry loop does.
    core::ValidationResult validate(
        OffloadRequest request, std::chrono::nanoseconds timeout) override;

    /// Snapshot of the pipeline's counters (thread-safe): the verdict
    /// counters ("commit" / "abort-cycle" / "window-overflow"), the
    /// number of requests accepted ("submitted"), requests aborted by
    /// stop() before the engine saw them ("shutdown_aborts"), caller
    /// deadline expiries ("timeout"), and the queue's observed
    /// high-water mark ("queue_high_water") — the back-pressure the
    /// paper avoids by keeping the pipeline free of stalls (§5.1).
    ///
    /// Consistency guarantee: every field is written and read under one
    /// mutex, so a snapshot is internally consistent — the verdict
    /// counters never exceed "submitted" (the difference is requests
    /// still in flight), and "queue_high_water" covers at least every
    /// submission the counters include. (Previously the verdict
    /// counters and the high-water mark were read under different
    /// synchronization, so a concurrent reader could see a high-water
    /// mark from a later submission batch than the verdicts.)
    CounterBag stats() const override;

    /// Export pipeline metrics into @p registry: verdict counters
    /// ("fpga.verdict.<verdict>"), "fpga.submitted", "fpga.busy_ns",
    /// and occupancy gauges ("fpga.queue_high_water",
    /// "fpga.window_occupancy"). While a TelemetrySession is active the
    /// worker additionally feeds per-stage histograms into the global
    /// registry — fpga.stage.{queue,engine,link} — the local-backend
    /// mirror of the service's svc.stage.* breakdown, so local vs.
    /// remote validation cost decompose on the same axes (link is the
    /// modeled CCI round trip in both).
    void export_metrics(obs::Registry& registry) const override;

    /// Signature geometry shared with CPU-side eager detection.
    std::shared_ptr<const sig::SignatureConfig> signature_config()
        const override;

    /// Attach a flight recorder (non-owning, may be nullptr to detach):
    /// the worker ticks it once per processed request, off the
    /// engine-lock hot section. Call before traffic starts — the
    /// pointer is read by the worker without synchronization.
    void attach_flight_recorder(obs::FlightRecorder* recorder)
    {
        recorder_ = recorder;
    }

    /// Serialize the engine's conflict top-K table in the same
    /// single-key shape the shard router exports ({"shards": [...]}
    /// with one entry), so svcctl/incident tooling parses both.
    void topk_json(std::string* out) const;

    /// Stop the worker. Requests still queued are NOT drained through
    /// the engine: their futures resolve immediately with
    /// Verdict::kRejected / obs::AbortReason::kBackpressure, so no
    /// waiter ever sees a broken promise and destruction is prompt even
    /// under a backlog. Idempotent.
    void stop() override;

  private:
    /// A reusable completion slot. Slots live in slab_ (a deque, so
    /// addresses are stable), are handed out through free_ and recycled
    /// forever — the steady-state request path never allocates.
    struct Slot
    {
        enum class State : uint8_t
        {
            kFree,      ///< on the free list
            kQueued,    ///< in the ring, awaiting the worker
            kDone,      ///< result ready; sync waiter will release
            kAbandoned, ///< sync waiter timed out; worker releases
        };

        OffloadRequest request;
        core::ValidationResult result;
        uint64_t submit_ns = 0; ///< enqueue time, for stage attribution
        State state = State::kFree;
        /// True when a future was handed out (submit() path): the
        /// worker resolves the promise and releases the slot itself.
        bool promised = false;
        std::promise<core::ValidationResult> promise;
        std::condition_variable cv; ///< signals kDone to a sync waiter
    };

    /// Slot and ring management; all *_locked helpers require mutex_.
    Slot* acquire_slot_locked();
    void release_slot_locked(Slot* slot);
    void push_ring_locked(Slot* slot);
    Slot* pop_ring_locked();
    /// Enqueue a request into a fresh slot and update the accounting
    /// ("submitted", high-water). Returns nullptr when closed.
    Slot* enqueue_locked(OffloadRequest&& request);

    void worker_loop();

    EngineConfig config_;
    mutable std::mutex engine_mutex_;
    ValidationEngine engine_;

    /// One mutex guards the slab, the free list, the ring, closed_ and
    /// every externally visible statistic, so stats() snapshots are
    /// consistent (see stats()).
    mutable std::mutex mutex_;
    std::condition_variable queue_cv_; ///< wakes the worker
    std::deque<Slot> slab_;            ///< all slots ever created
    std::vector<Slot*> free_;          ///< recycled slots
    std::vector<Slot*> ring_;          ///< FIFO of queued slots
    size_t ring_head_ = 0;
    size_t ring_size_ = 0;
    bool closed_ = false;

    std::array<uint64_t, core::kVerdictCount> verdicts_{}; ///< by worker
    size_t high_water_ = 0;        ///< max observed queue depth
    uint64_t submitted_ = 0;       ///< requests accepted by submit()
    uint64_t busy_ns_ = 0;         ///< worker time spent inside the engine
    uint64_t shutdown_aborts_ = 0; ///< requests aborted by stop()
    uint64_t timeouts_ = 0;        ///< validate() deadline expiries

    /// Telemetry handles hoisted out of the worker loop: Registry
    /// lookup takes a mutex, and references stay valid for the
    /// registry's lifetime (see obs/registry.h), so resolve them once
    /// at construction instead of per request.
    obs::Gauge& queue_depth_gauge_;
    obs::Gauge& window_occupancy_gauge_;
    obs::LatencyHistogram& validate_ns_hist_;
    obs::LatencyHistogram& stage_queue_hist_;
    obs::LatencyHistogram& stage_engine_hist_;
    obs::LatencyHistogram& stage_link_hist_;

    /// Optional flight recorder (see attach_flight_recorder()).
    obs::FlightRecorder* recorder_ = nullptr;

    std::thread worker_;
};

} // namespace rococo::fpga
